//! Coordinated throttling — the CMM-a/b/c policies of Sec. III-B3 / Fig. 6.
//!
//! The coordination insight: prefetch-friendly cores get their performance
//! from *prefetching*, not LLC capacity (Fig. 3), so they can live in a
//! small partition with prefetchers enabled; prefetch-unfriendly cores get
//! nothing from prefetching, so theirs can be throttled. Each core yields
//! the resource it does not need.
//!
//! * **CMM-a** (Fig. 6 a): the whole `Agg` set shares one small partition;
//!   group-level throttling is applied to the *unfriendly* cores inside it.
//! * **CMM-b** (Fig. 6 b): only the friendly cores are partitioned; the
//!   unfriendly ones stay in the shared pool but are throttled.
//! * **CMM-c** (Fig. 6 c): friendly and unfriendly cores get separate
//!   small partitions; the unfriendly ones are throttled.
//! * Empty `Agg` set (Fig. 6 d): fall back to [`super::dunn`] — handled by
//!   the driver, not here.
//!
//! Only prefetch-unfriendly cores are ever throttled; if there are none,
//! the policy degenerates to pure CP (paper, Sec. III-B3).

use super::cp::{CLOS_AGG, CLOS_AGG2};
use super::{partition_ways, Detection, PartitionPlan};
use cmm_sim::msr::contiguous_mask;

/// Which Fig. 6 option to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Fig. 6 (a).
    A,
    /// Fig. 6 (b).
    B,
    /// Fig. 6 (c).
    C,
}

/// Builds the partition side of a CMM policy. Returns `None` when the
/// `Agg` set is empty — the caller must fall back to Dunn (option d).
pub fn cmm_plan(
    variant: Variant,
    det: &Detection,
    num_cores: usize,
    llc_ways: u32,
    scale: f64,
    min_ways_per_core: u32,
) -> Option<PartitionPlan> {
    if det.agg.is_empty() {
        return None;
    }
    let mut plan = PartitionPlan::flat(num_cores, llc_ways);
    match variant {
        Variant::A => {
            let ways = partition_ways(det.agg.len(), scale, llc_ways, min_ways_per_core);
            plan.masks.push((CLOS_AGG, contiguous_mask(0, ways)));
            for (core, clos) in plan.assignments.iter_mut() {
                if det.agg.contains(core) {
                    *clos = CLOS_AGG;
                }
            }
        }
        Variant::B => {
            if det.friendly.is_empty() {
                // Nothing to partition: unfriendly cores stay in the pool
                // (they will be throttled instead).
                return Some(plan);
            }
            let ways = partition_ways(det.friendly.len(), scale, llc_ways, min_ways_per_core);
            plan.masks.push((CLOS_AGG, contiguous_mask(0, ways)));
            for (core, clos) in plan.assignments.iter_mut() {
                if det.friendly.contains(core) {
                    *clos = CLOS_AGG;
                }
            }
        }
        Variant::C => {
            if det.friendly.is_empty() || det.unfriendly.is_empty() {
                // With one subset empty, (c) is identical to (a).
                return cmm_plan(Variant::A, det, num_cores, llc_ways, scale, min_ways_per_core);
            }
            let wf = partition_ways(det.friendly.len(), scale, llc_ways, min_ways_per_core);
            let wu = partition_ways(det.unfriendly.len(), scale, llc_ways, min_ways_per_core);
            let budget = llc_ways.saturating_sub(2).max(2);
            let (wf, wu) = if wf + wu > budget {
                let wf2 = (wf * budget / (wf + wu)).max(1);
                (wf2, (budget - wf2).max(1))
            } else {
                (wf, wu)
            };
            plan.masks.push((CLOS_AGG, contiguous_mask(0, wf)));
            plan.masks.push((CLOS_AGG2, contiguous_mask(wf, wu)));
            for (core, clos) in plan.assignments.iter_mut() {
                if det.friendly.contains(core) {
                    *clos = CLOS_AGG;
                } else if det.unfriendly.contains(core) {
                    *clos = CLOS_AGG2;
                }
            }
        }
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(agg: Vec<usize>, friendly: Vec<usize>, unfriendly: Vec<usize>) -> Detection {
        Detection { interval1: Vec::new(), agg, friendly, unfriendly, profiling_cycles: 0 }
    }

    fn clos_of(plan: &PartitionPlan, core: usize) -> usize {
        plan.assignments.iter().find(|(c, _)| *c == core).unwrap().1
    }

    fn mask_of(plan: &PartitionPlan, clos: usize) -> u64 {
        plan.masks.iter().find(|(c, _)| *c == clos).unwrap().1
    }

    #[test]
    fn empty_agg_returns_none_for_dunn_fallback() {
        for v in [Variant::A, Variant::B, Variant::C] {
            assert!(cmm_plan(v, &det(vec![], vec![], vec![]), 8, 20, 1.5, 1).is_none());
        }
    }

    #[test]
    fn variant_a_partitions_whole_agg_set() {
        let d = det(vec![0, 1, 2], vec![0, 1], vec![2]);
        let p = cmm_plan(Variant::A, &d, 8, 20, 1.5, 1).unwrap();
        // ceil(1.5 × 3) = 5 ways.
        assert_eq!(mask_of(&p, CLOS_AGG), 0b11111);
        for c in 0..3 {
            assert_eq!(clos_of(&p, c), CLOS_AGG);
        }
        for c in 3..8 {
            assert_eq!(clos_of(&p, c), 0);
        }
    }

    #[test]
    fn variant_b_partitions_only_friendly() {
        let d = det(vec![0, 1, 2], vec![0, 1], vec![2]);
        let p = cmm_plan(Variant::B, &d, 8, 20, 1.5, 1).unwrap();
        assert_eq!(clos_of(&p, 0), CLOS_AGG);
        assert_eq!(clos_of(&p, 1), CLOS_AGG);
        // The unfriendly core shares the whole cache...
        assert_eq!(clos_of(&p, 2), 0);
        // ...and the friendly partition is sized for 2 cores: 3 ways.
        assert_eq!(mask_of(&p, CLOS_AGG), 0b111);
    }

    #[test]
    fn variant_b_without_friendly_cores_partitions_nothing() {
        let d = det(vec![2, 3], vec![], vec![2, 3]);
        let p = cmm_plan(Variant::B, &d, 8, 20, 1.5, 1).unwrap();
        assert!(p.assignments.iter().all(|&(_, clos)| clos == 0));
    }

    #[test]
    fn variant_c_separates_subsets() {
        let d = det(vec![0, 1, 2, 3], vec![0, 1], vec![2, 3]);
        let p = cmm_plan(Variant::C, &d, 8, 20, 1.5, 1).unwrap();
        let mf = mask_of(&p, CLOS_AGG);
        let mu = mask_of(&p, CLOS_AGG2);
        assert_eq!(mf & mu, 0, "friendly/unfriendly partitions are disjoint");
        assert_eq!(clos_of(&p, 0), CLOS_AGG);
        assert_eq!(clos_of(&p, 3), CLOS_AGG2);
        assert_eq!(clos_of(&p, 7), 0);
    }

    #[test]
    fn variant_c_degenerates_to_a_when_one_subset_empty() {
        let d = det(vec![0, 1], vec![0, 1], vec![]);
        let pc = cmm_plan(Variant::C, &d, 8, 20, 1.5, 1).unwrap();
        let pa = cmm_plan(Variant::A, &d, 8, 20, 1.5, 1).unwrap();
        assert_eq!(pc, pa);
    }

    #[test]
    fn all_masks_contiguous() {
        let d = det(vec![0, 1, 2, 3, 4], vec![0, 1, 2], vec![3, 4]);
        for v in [Variant::A, Variant::B, Variant::C] {
            let p = cmm_plan(v, &d, 8, 20, 1.5, 1).unwrap();
            for &(_, m) in &p.masks {
                assert!(cmm_sim::msr::mask_is_contiguous(m), "{v:?}: mask {m:#x}");
            }
        }
    }
}
