//! Cache Partitioning (CP) back-end — Sec. III-B2.
//!
//! Two plans, both CAT-only (all prefetchers stay enabled):
//!
//! * **Pref-CP** — the whole `Agg` set shares one small partition
//!   (`ceil(1.5 × |Agg|)` ways at the low end of the mask); the neutral
//!   cores keep the full cache. Partitions *overlap*: neutral insertions
//!   may still use the low ways, but the aggressors cannot thrash the high
//!   ways.
//! * **Pref-CP2** — the `Agg` set is split into its friendly and
//!   unfriendly subsets, each with its own small partition (disjoint from
//!   each other, both overlapped by the neutral full mask).

use super::{partition_ways, Detection, PartitionPlan};
use cmm_sim::msr::contiguous_mask;

/// CLOS ids used by the CP plans (CLOS 0 stays the neutral full mask).
pub const CLOS_AGG: usize = 1;
/// Second partition for Pref-CP2's unfriendly subset.
pub const CLOS_AGG2: usize = 2;

/// Builds the Pref-CP plan. An empty `Agg` set degenerates to the flat
/// plan (the paper applies no CP-side isolation when nothing is
/// aggressive).
pub fn pref_cp_plan(
    det: &Detection,
    num_cores: usize,
    llc_ways: u32,
    scale: f64,
    min_ways_per_core: u32,
) -> PartitionPlan {
    if det.agg.is_empty() {
        return PartitionPlan::flat(num_cores, llc_ways);
    }
    let ways = partition_ways(det.agg.len(), scale, llc_ways, min_ways_per_core);
    let mut plan = PartitionPlan::flat(num_cores, llc_ways);
    plan.masks.push((CLOS_AGG, contiguous_mask(0, ways)));
    for (core, clos) in plan.assignments.iter_mut() {
        if det.agg.contains(core) {
            *clos = CLOS_AGG;
        }
    }
    plan
}

/// Builds the Pref-CP2 plan. Degenerates to [`pref_cp_plan`] when either
/// subset is empty (one partition suffices), and to flat when `Agg` is
/// empty.
pub fn pref_cp2_plan(
    det: &Detection,
    num_cores: usize,
    llc_ways: u32,
    scale: f64,
    min_ways_per_core: u32,
) -> PartitionPlan {
    if det.agg.is_empty() {
        return PartitionPlan::flat(num_cores, llc_ways);
    }
    if det.friendly.is_empty() || det.unfriendly.is_empty() {
        return pref_cp_plan(det, num_cores, llc_ways, scale, min_ways_per_core);
    }
    let wf = partition_ways(det.friendly.len(), scale, llc_ways, min_ways_per_core);
    let wu = partition_ways(det.unfriendly.len(), scale, llc_ways, min_ways_per_core);
    // Keep the pair of partitions from covering the whole cache.
    let budget = llc_ways.saturating_sub(2).max(2);
    let (wf, wu) = if wf + wu > budget {
        let wf2 = (wf * budget / (wf + wu)).max(1);
        (wf2, (budget - wf2).max(1))
    } else {
        (wf, wu)
    };
    let mut plan = PartitionPlan::flat(num_cores, llc_ways);
    plan.masks.push((CLOS_AGG, contiguous_mask(0, wf)));
    plan.masks.push((CLOS_AGG2, contiguous_mask(wf, wu)));
    for (core, clos) in plan.assignments.iter_mut() {
        if det.friendly.contains(core) {
            *clos = CLOS_AGG;
        } else if det.unfriendly.contains(core) {
            *clos = CLOS_AGG2;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(agg: Vec<usize>, friendly: Vec<usize>, unfriendly: Vec<usize>) -> Detection {
        Detection { interval1: Vec::new(), agg, friendly, unfriendly, profiling_cycles: 0 }
    }

    #[test]
    fn empty_agg_is_flat() {
        let p = pref_cp_plan(&det(vec![], vec![], vec![]), 8, 20, 1.5, 1);
        assert_eq!(p, PartitionPlan::flat(8, 20));
    }

    #[test]
    fn pref_cp_places_agg_in_small_low_partition() {
        let d = det(vec![1, 4], vec![1], vec![4]);
        let p = pref_cp_plan(&d, 8, 20, 1.5, 1);
        // ceil(1.5 × 2) = 3 ways at the low end.
        assert!(p.masks.contains(&(CLOS_AGG, 0b111)));
        let clos_of = |c: usize| p.assignments.iter().find(|(core, _)| *core == c).unwrap().1;
        assert_eq!(clos_of(1), CLOS_AGG);
        assert_eq!(clos_of(4), CLOS_AGG);
        assert_eq!(clos_of(0), 0);
        // Neutral CLOS keeps the full mask (overlapping partitioning).
        assert!(p.masks.contains(&(0, (1 << 20) - 1)));
    }

    #[test]
    fn pref_cp2_splits_friendly_and_unfriendly() {
        let d = det(vec![0, 1, 2, 3], vec![0, 1], vec![2, 3]);
        let p = pref_cp2_plan(&d, 8, 20, 1.5, 1);
        // Friendly: 3 low ways; unfriendly: next 3 ways.
        assert!(p.masks.contains(&(CLOS_AGG, 0b000111)));
        assert!(p.masks.contains(&(CLOS_AGG2, 0b111000)));
        let clos_of = |c: usize| p.assignments.iter().find(|(core, _)| *core == c).unwrap().1;
        assert_eq!(clos_of(0), CLOS_AGG);
        assert_eq!(clos_of(2), CLOS_AGG2);
        assert_eq!(clos_of(7), 0);
    }

    #[test]
    fn pref_cp2_degenerates_without_a_split() {
        let d = det(vec![0, 1], vec![0, 1], vec![]);
        let p2 = pref_cp2_plan(&d, 8, 20, 1.5, 1);
        let p1 = pref_cp_plan(&d, 8, 20, 1.5, 1);
        assert_eq!(p2, p1);
    }

    #[test]
    fn pref_cp2_partitions_never_cover_whole_cache() {
        // 4 friendly + 4 unfriendly on a narrow 8-way LLC would want 6+6.
        let d = det(vec![0, 1, 2, 3, 4, 5, 6, 7], (0..4).collect(), (4..8).collect());
        let p = pref_cp2_plan(&d, 8, 8, 1.5, 1);
        let m1 = p.masks.iter().find(|(c, _)| *c == CLOS_AGG).unwrap().1;
        let m2 = p.masks.iter().find(|(c, _)| *c == CLOS_AGG2).unwrap().1;
        assert_eq!(m1 & m2, 0, "partitions must be disjoint");
        assert!((m1 | m2).count_ones() <= 6, "must leave exclusive ways to the neutral set");
    }

    #[test]
    fn masks_are_contiguous_and_valid() {
        let d = det(vec![0, 1, 2], vec![0], vec![1, 2]);
        for plan in [pref_cp_plan(&d, 8, 20, 1.5, 1), pref_cp2_plan(&d, 8, 20, 1.5, 1)] {
            for &(_, m) in &plan.masks {
                assert!(cmm_sim::msr::mask_is_contiguous(m), "mask {m:#x}");
                assert!(m < (1 << 20));
            }
        }
    }
}
