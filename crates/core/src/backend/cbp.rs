//! CBP-style memory-bandwidth coordination (extension beyond the paper).
//!
//! CBP (Nejat et al.) extends the paper's two-resource coordination with
//! memory-bandwidth partitioning: after the prefetch × CAT plan is in
//! force, a third search assigns Intel MBA-style delay levels to the
//! aggressor throttle groups. This module holds the bandwidth half of
//! that mechanism — the delay-level search and the availability probe —
//! while [`crate::driver::Driver`] composes it with the existing CMM-a
//! plan (the hierarchical prefetch → CAT → MBA search order) or runs it
//! stand-alone as the bandwidth-only `MBA` ablation.
//!
//! The search mirrors [`super::search_throttle_levels_in`]: every
//! combination of [`MBA_LEVELS`] across the throttle groups, one sampling
//! interval each, ranked by domain-local `hm_ipc`, with the same
//! `kept_last_good` retreat when the winner cannot be programmed. Trials
//! carry both the prefetch MSR image in force (fixed during this search)
//! and the per-core MBA level image, so the journal shows the joint
//! configuration each trial actually ran.

use super::{sample_hm_ipc, sample_logged, write_msr_logged};
use crate::substrate::Substrate;
use crate::telemetry::{FaultRecord, Trial};
use cmm_sim::msr::MSR_MBA_THROTTLE;

/// The MBA delay levels the search considers per throttle group:
/// unthrottled, moderate (40 %), and aggressive (90 % → ≈10 % of peak
/// request rate). Three levels keeps the combination count at
/// `3^groups ≤ 27` — the same budget as the PT-fine engine search.
pub const MBA_LEVELS: [u64; 3] = [0, 40, 90];

/// Outcome of an MBA delay-level search.
#[derive(Debug, Clone, PartialEq)]
pub struct MbaSearch {
    /// The winning per-core delay-level image (already applied),
    /// domain-local (`len` entries).
    pub best: Vec<u64>,
    /// Cycles spent on trial intervals.
    pub cycles: u64,
    /// Every trialed configuration with its `hm_ipc`, in trial order.
    pub trials: Vec<Trial>,
    /// Index of the winner in `trials`; `None` when no trial ran.
    pub winner: Option<usize>,
}

/// Probes whether the substrate exposes the MBA throttle register at all:
/// writing the power-on level 0 must succeed. On parts without MBA (or
/// when the fault layer has taken the register away) this fails and the
/// caller degrades CBP → CMM-a (or MBA → no-op). The probe write is a
/// no-op on a healthy machine, so probing never perturbs a run.
pub fn mba_available<S: Substrate>(sys: &mut S, anchor: usize, log: &mut Vec<FaultRecord>) -> bool {
    write_msr_logged(sys, anchor, MSR_MBA_THROTTLE, 0, log).is_ok()
}

/// Searches MBA delay-level combinations over `groups` of cores, scoped to
/// the `len` cores starting at `base` (one CAT domain) — the bandwidth
/// analogue of [`super::search_throttle_levels_in`], with the same
/// domain-local conventions: `groups` hold global core ids within the
/// range, trial `hm_ipc` is computed over the domain's cores only, and the
/// returned image is domain-local. `pf_image` is the per-core prefetch MSR
/// image in force throughout the search (embedded in each trial record so
/// the journal shows the joint configuration).
///
/// Cores outside the groups stay unthrottled. Applies the winning image
/// and returns it with the trial log; if applying the winner fails the
/// search reverts to all-unthrottled (the power-on state every trial
/// started from) and logs `kept_last_good`.
#[allow(clippy::too_many_arguments)]
pub fn search_mba_levels_in<S: Substrate>(
    sys: &mut S,
    groups: &[Vec<usize>],
    levels: &[u64],
    pf_image: &[u64],
    sampling_interval: u64,
    log: &mut Vec<FaultRecord>,
    base: usize,
    len: usize,
) -> MbaSearch {
    assert!(!levels.is_empty());
    assert_eq!(pf_image.len(), len, "prefetch image must cover the domain");
    let unthrottled = vec![0u64; len];
    if groups.is_empty() {
        for i in 0..len {
            let _ = write_msr_logged(sys, base + i, MSR_MBA_THROTTLE, 0, log);
        }
        return MbaSearch { best: unthrottled, cycles: 0, trials: Vec::new(), winner: None };
    }
    let combos = levels.len().pow(groups.len() as u32);
    let mut best = unthrottled.clone();
    let mut best_hm = f64::NEG_INFINITY;
    let mut winner = 0;
    let mut spent = 0;
    let mut trials = Vec::with_capacity(combos);
    for combo in 0..combos {
        let mut image = unthrottled.clone();
        let mut c = combo;
        for cores in groups {
            let level = levels[c % levels.len()];
            c /= levels.len();
            for &core in cores {
                image[core - base] = level;
            }
        }
        for (i, &level) in image.iter().enumerate() {
            let _ = write_msr_logged(sys, base + i, MSR_MBA_THROTTLE, level, log);
        }
        let deltas = sample_logged(sys, sampling_interval, log);
        spent += sampling_interval;
        let hm = sample_hm_ipc(&deltas[base..base + len]);
        trials.push(Trial { msr_1a4: pf_image.to_vec(), mba: image.clone(), hm_ipc: hm });
        if hm > best_hm {
            best_hm = hm;
            winner = trials.len() - 1;
            best = image;
        }
    }
    let before = log.len();
    for (i, &level) in best.iter().enumerate() {
        let _ = write_msr_logged(sys, base + i, MSR_MBA_THROTTLE, level, log);
    }
    if log.iter().skip(before).any(|f| f.action == "gave_up") {
        // Same last-known-good retreat as the prefetch searches:
        // all-unthrottled is the state every trial started from and the
        // power-on default.
        for i in 0..len {
            let _ = write_msr_logged(sys, base + i, MSR_MBA_THROTTLE, 0, log);
        }
        log.push(FaultRecord {
            cycle: sys.now(),
            kind: "degraded",
            core: None,
            msr: None,
            action: "kept_last_good",
        });
        return MbaSearch { best: unthrottled, cycles: spent, trials, winner: Some(winner) };
    }
    MbaSearch { best, cycles: spent, trials, winner: Some(winner) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultySubstrate};
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Idle;
    use cmm_sim::System;

    fn machine(cores: usize) -> System {
        System::new(SystemConfig::tiny(cores), (0..cores).map(|_| Box::new(Idle) as _).collect())
    }

    #[test]
    fn probe_succeeds_on_a_healthy_machine_and_is_a_noop() {
        let mut sys = machine(2);
        Substrate::set_mba_throttle(&mut sys, 1, 40).unwrap();
        let mut log = Vec::new();
        assert!(mba_available(&mut sys, 0, &mut log));
        assert!(log.is_empty());
        // Probing core 0 did not disturb core 1's programmed level.
        assert_eq!(Substrate::mba_throttle(&sys, 1), 40);
    }

    #[test]
    fn probe_fails_when_the_register_is_rejected() {
        let mut s = FaultySubstrate::new(machine(1), FaultConfig::mba_only(3, 1.0));
        let mut log = Vec::new();
        assert!(!mba_available(&mut s, 0, &mut log));
        assert!(log.iter().any(|f| f.action == "gave_up"));
    }

    #[test]
    fn empty_groups_clear_the_levels_without_trials() {
        let mut sys = machine(2);
        Substrate::set_mba_throttle(&mut sys, 0, 80).unwrap();
        let mut log = Vec::new();
        let s = search_mba_levels_in(&mut sys, &[], &MBA_LEVELS, &[0, 0], 1_000, &mut log, 0, 2);
        assert!(s.trials.is_empty());
        assert_eq!(s.winner, None);
        assert_eq!(Substrate::mba_throttle(&sys, 0), 0);
    }

    #[test]
    fn search_tries_every_level_combo_and_applies_the_winner() {
        let mut sys = machine(2);
        let mut log = Vec::new();
        let s = search_mba_levels_in(
            &mut sys,
            &[vec![0], vec![1]],
            &MBA_LEVELS,
            &[0, 0xF],
            1_000,
            &mut log,
            0,
            2,
        );
        assert_eq!(s.trials.len(), 9);
        let w = s.winner.unwrap();
        let best = s.trials[w].hm_ipc;
        assert!(s.trials.iter().all(|t| t.hm_ipc <= best));
        // Trials carry the joint configuration: fixed prefetch image plus
        // the per-trial MBA image.
        assert!(s.trials.iter().all(|t| t.msr_1a4 == vec![0, 0xF]));
        assert!(s.trials.iter().any(|t| t.mba == vec![90, 90]));
        // The applied machine state matches the winner.
        for c in 0..2 {
            assert_eq!(Substrate::mba_throttle(&sys, c), s.best[c]);
        }
    }
}
