//! Prefetch Throttling (PT) back-end — Sec. III-B1.
//!
//! Every epoch: detect the `Agg` set (all-on interval), probe friendliness
//! (all-off interval), then search the on/off space over the `Agg` cores —
//! exhaustively while `2^|Agg|` is small, else over k-means traffic groups
//! — one sampling interval per setting, ranked by `hm_ipc`. The winning
//! setting runs for the next execution epoch. PT never touches CAT.

use super::{detect_logged, search_throttle, search_throttle_levels, throttle_groups, Detection};
use crate::policy::ControllerConfig;
use crate::substrate::Substrate;
use crate::telemetry::FaultRecord;

/// The three MSR 0x1A4 levels the PT-fine extension searches: all engines
/// on, only the two L2 engines (streamer + adjacent) off, and all off.
pub const FINE_LEVELS: [u64; 3] = [0x0, 0x3, 0xF];

/// Result of one PT profiling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PtOutcome {
    /// The detection that drove the decision.
    pub detection: Detection,
    /// The chosen per-core prefetch enabling (already applied).
    pub prefetch_on: Vec<bool>,
    /// Cycles spent profiling (detection + search intervals).
    pub profiling_cycles: u64,
    /// Every trialed configuration with its `hm_ipc` (telemetry).
    pub trials: Vec<crate::telemetry::Trial>,
    /// Index of the applied winner in `trials`; `None` when no search ran.
    pub winner: Option<usize>,
}

/// PT-fine (extension): like [`profile`], but each throttle group is
/// searched over the three [`FINE_LEVELS`] instead of binary on/off.
/// Groups are capped at 2 so the search stays within 9 sampling intervals.
pub fn profile_fine<S: Substrate>(
    sys: &mut S,
    ctrl: &ControllerConfig,
    det_cfg: &crate::frontend::DetectorConfig,
    log: &mut Vec<FaultRecord>,
) -> PtOutcome {
    let detection = detect_logged(sys, ctrl, det_cfg, log);
    let groups = throttle_groups(
        &detection.agg,
        &detection.interval1,
        2, // exhaustive limit: per-core groups only up to 2 cores
        2,
    );
    let search = search_throttle_levels(sys, &groups, &FINE_LEVELS, ctrl.sampling_interval, log);
    let profiling_cycles = detection.profiling_cycles + search.cycles;
    PtOutcome {
        detection,
        prefetch_on: search.best.iter().map(|&m| m != 0xF).collect(),
        profiling_cycles,
        trials: search.trials,
        winner: search.winner,
    }
}

/// Runs PT's full profiling epoch and applies the winner.
pub fn profile<S: Substrate>(
    sys: &mut S,
    ctrl: &ControllerConfig,
    det_cfg: &crate::frontend::DetectorConfig,
    log: &mut Vec<FaultRecord>,
) -> PtOutcome {
    let detection = detect_logged(sys, ctrl, det_cfg, log);
    let groups = throttle_groups(
        &detection.agg,
        &detection.interval1,
        ctrl.exhaustive_limit,
        ctrl.throttle_groups,
    );
    let search = search_throttle(sys, &groups, ctrl.sampling_interval, log);
    let profiling_cycles = detection.profiling_cycles + search.cycles;
    PtOutcome {
        detection,
        prefetch_on: search.best,
        profiling_cycles,
        trials: search.trials,
        winner: search.winner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::DetectorConfig;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Workload;
    use cmm_sim::System;
    use cmm_workloads::spec;

    fn system_with(names: &[&str]) -> System {
        let cfg = SystemConfig::scaled(names.len());
        let llc = cfg.llc.size_bytes;
        let ws: Vec<Box<dyn Workload + Send>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 7))
                    as Box<dyn Workload + Send>
            })
            .collect();
        System::new(cfg, ws)
    }

    #[test]
    fn detects_stream_as_aggressive_and_friendly() {
        let mut sys = system_with(&["bwaves3d", "povray_rt", "gobmk_ai", "namd_md"]);
        sys.run(600_000); // warm past the cache-resident benchmarks' cold phase
        let ctrl = ControllerConfig::quick();
        let out = profile(&mut sys, &ctrl, &DetectorConfig::default(), &mut Vec::new());
        assert_eq!(out.detection.agg, vec![0], "only the stream is aggressive");
        assert_eq!(out.detection.friendly, vec![0], "the stream profits from prefetching");
        assert!(out.detection.unfriendly.is_empty());
        // The chosen config must keep the friendly stream's prefetchers on:
        // throttling it would tank hm_ipc.
        assert!(out.prefetch_on[0]);
    }

    #[test]
    fn throttles_the_random_access_aggressor() {
        let mut sys = system_with(&["rand_access", "mcf_refine", "povray_rt", "omnet_events"]);
        sys.run(600_000);
        let ctrl = ControllerConfig::quick();
        let out = profile(&mut sys, &ctrl, &DetectorConfig::default(), &mut Vec::new());
        assert!(
            out.detection.agg.contains(&0),
            "burst-random must be detected as aggressive: {:?}",
            out.detection
        );
        assert!(
            out.detection.unfriendly.contains(&0),
            "burst-random prefetching is useless: {:?}",
            out.detection
        );
    }

    #[test]
    fn no_aggressor_means_no_throttling() {
        // Long warm-up: the L2-resident benchmarks legitimately look like
        // streams during their cold first pass.
        let mut sys = system_with(&["povray_rt", "gobmk_ai", "namd_md", "hmmer_search"]);
        sys.run(600_000);
        let ctrl = ControllerConfig::quick();
        let out = profile(&mut sys, &ctrl, &DetectorConfig::default(), &mut Vec::new());
        assert!(out.detection.agg.is_empty());
        assert!(out.prefetch_on.iter().all(|&on| on));
        // Only the mandatory all-on interval was needed.
        assert_eq!(out.profiling_cycles, ctrl.sampling_interval);
    }

    #[test]
    fn fine_throttling_can_pick_the_middle_level() {
        // A burst-random aggressor: its L2 engines flood, its L1 engines
        // are nearly free. PT-fine must at least not do worse than binary
        // PT's options, and the chosen MSR must be one of the three levels.
        let mut sys = system_with(&["rand_access", "mcf_refine", "povray_rt", "omnet_events"]);
        sys.run(600_000);
        let ctrl = ControllerConfig::quick();
        let out = profile_fine(&mut sys, &ctrl, &DetectorConfig::default(), &mut Vec::new());
        for core in 0..4 {
            let msr = sys.read_msr(core, cmm_sim::msr::MSR_MISC_FEATURE_CONTROL).unwrap();
            assert!(FINE_LEVELS.contains(&msr), "core {core} msr {msr:#x}");
        }
        assert_eq!(out.prefetch_on.len(), 4);
    }

    #[test]
    fn profiling_cycles_accounted() {
        let mut sys = system_with(&["bwaves3d", "rand_access", "povray_rt", "mcf_refine"]);
        sys.run(100_000);
        let ctrl = ControllerConfig::quick();
        let before = sys.now();
        let out = profile(&mut sys, &ctrl, &DetectorConfig::default(), &mut Vec::new());
        assert_eq!(sys.now() - before, out.profiling_cycles);
    }
}
