//! CMM back-end: resource allocators.
//!
//! Shared plumbing for the four allocator families:
//!
//! * [`pt`] — prefetch throttling (Sec. III-B1);
//! * [`cp`] — Pref-CP / Pref-CP2 cache partitioning (Sec. III-B2);
//! * [`dunn`] — the Selfa et al. clustering baseline;
//! * [`cmm`] — the coordinated CMM-a/b/c policies (Sec. III-B3).
//!
//! All allocators speak in terms of a [`PartitionPlan`] (CLOS masks +
//! core→CLOS assignments) and per-core prefetch enable vectors, applied
//! through the [`Substrate`] MSR surface.
//!
//! Every actuator path here is *fault-aware*: MSR writes go through
//! [`write_msr_logged`] (bounded retry of transient rejections), PMU reads
//! through [`pmu_read_stable`] (re-read until two snapshots agree), and
//! each operation that observes a fault appends a
//! [`crate::telemetry::FaultRecord`] to the caller's log so the journal
//! can show what the hardware did and how the controller degraded.

pub mod cbp;
pub mod cmm;
pub mod cp;
pub mod dunn;
pub mod pt;

use crate::substrate::Substrate;
use crate::telemetry::FaultRecord;
use cmm_sim::msr::{contiguous_mask, CatError, MSR_MISC_FEATURE_CONTROL};
use cmm_sim::pmu::PmuDelta;
use cmm_sim::system::MsrError;

/// How many times a transiently rejected WRMSR is retried before the
/// controller gives up on the write and degrades.
pub const MSR_WRITE_RETRIES: usize = 3;

/// How many extra PMU snapshots [`pmu_read_stable`] takes chasing two
/// consecutive reads that agree.
pub const PMU_READ_RETRIES: usize = 3;

/// Classifies an [`MsrError`] into the journal's fault taxonomy.
fn fault_kind(e: &MsrError) -> &'static str {
    match e {
        MsrError::Rejected(_) => "msr_rejected",
        MsrError::Cat(CatError::BadClos(_)) => "clos_exhausted",
        _ => "msr_error",
    }
}

/// WRMSR with bounded retry of transient rejections. A rejection that a
/// retry clears is logged with action `retry_ok`; a write that still fails
/// after [`MSR_WRITE_RETRIES`] retries (or fails permanently, e.g. CLOS
/// exhaustion) is logged with `gave_up` and returned to the caller, whose
/// job is to pick a degradation.
pub fn write_msr_logged<S: Substrate>(
    sys: &mut S,
    core: usize,
    msr: u32,
    value: u64,
    log: &mut Vec<FaultRecord>,
) -> Result<(), MsrError> {
    let mut attempts = 0;
    loop {
        match sys.write_msr(core, msr, value) {
            Ok(()) => {
                if attempts > 0 {
                    log.push(FaultRecord {
                        cycle: sys.now(),
                        kind: "msr_rejected",
                        core: Some(core),
                        msr: Some(msr),
                        action: "retry_ok",
                    });
                }
                return Ok(());
            }
            Err(MsrError::Rejected(_)) if attempts < MSR_WRITE_RETRIES => attempts += 1,
            Err(e) => {
                log.push(FaultRecord {
                    cycle: sys.now(),
                    kind: fault_kind(&e),
                    core: Some(core),
                    msr: Some(msr),
                    action: "gave_up",
                });
                return Err(e);
            }
        }
    }
}

/// Snapshots the PMUs until two consecutive reads agree. Reading does not
/// advance the machine clock, so clean reads always agree; a transiently
/// corrupted read (bus garbage, mid-overflow) differs from its neighbour
/// and is logged with action `reread`. After [`PMU_READ_RETRIES`]
/// disagreements the last snapshot is returned — the sampling backstop in
/// [`sample_logged`] then discards anything still implausible.
pub fn pmu_read_stable<S: Substrate>(
    sys: &mut S,
    log: &mut Vec<FaultRecord>,
) -> Vec<cmm_sim::pmu::Pmu> {
    let mut prev = sys.pmu_all();
    for _ in 0..PMU_READ_RETRIES {
        let next = sys.pmu_all();
        if next == prev {
            return next;
        }
        log.push(FaultRecord {
            cycle: sys.now(),
            kind: "pmu_anomaly",
            core: None,
            msr: None,
            action: "reread",
        });
        prev = next;
    }
    prev
}

/// How many [`pmu_read_stable`] rounds [`pmu_read_checked`] takes chasing
/// a snapshot that also passes the plausibility window. Corrupted reads
/// are transient, so each round is an independent chance at a clean pair;
/// 16 rounds make survival of a corrupt snapshot astronomically unlikely
/// even at the fault sweep's highest rates.
pub const PMU_CHECKED_RETRIES: usize = 16;

/// How far past the machine clock a clean core clock may legitimately
/// read: a core finishes its quantum on the first op boundary at or after
/// the quantum end, so its published cycle counter can overshoot `now` by
/// at most one op's latency. Anything beyond this is corruption.
pub const PMU_OVERSHOOT_SLACK: u64 = 1 << 20;

/// True when every core's snapshot could have come from a healthy machine
/// whose global clock reads `now`: cores never halt and sync at quantum
/// boundaries, so a clean core clock sits in `[now, now + one op]`. A
/// wrapped counter reads far *below* `now`; garbage reads far above it.
fn pmu_snapshot_plausible(snap: &[cmm_sim::pmu::Pmu], now: u64) -> bool {
    snap.iter().all(|p| p.cycles >= now && p.cycles - now <= PMU_OVERSHOOT_SLACK)
}

/// [`pmu_read_stable`] hardened for measurement-window boundaries: the
/// snapshot is additionally validated against the clean-machine clock
/// window (see [`pmu_snapshot_plausible`]) and re-read while it fails.
///
/// The profiling path can afford to *discard* a sample that survives the
/// stability check corrupted ([`sample_logged`]'s zeroing backstop — the
/// trial just ranks last); a window boundary cannot, because the window
/// delta IS the run's result: one wrapped boundary core would report the
/// whole run's harmonic-mean IPC as zero. Re-reading is always safe here —
/// reads do not advance the machine — and terminates in practice because
/// corruption is per-read transient. On a clean substrate the first
/// snapshot passes and this is exactly [`pmu_read_stable`], record for
/// record.
pub fn pmu_read_checked<S: Substrate>(
    sys: &mut S,
    log: &mut Vec<FaultRecord>,
) -> Vec<cmm_sim::pmu::Pmu> {
    let now = sys.now();
    let mut snap = pmu_read_stable(sys, log);
    for _ in 0..PMU_CHECKED_RETRIES {
        if pmu_snapshot_plausible(&snap, now) {
            return snap;
        }
        log.push(FaultRecord {
            cycle: now,
            kind: "pmu_anomaly",
            core: None,
            msr: None,
            action: "reread",
        });
        snap = pmu_read_stable(sys, log);
    }
    snap
}

/// A complete CAT programming: which mask each CLOS holds and which CLOS
/// each core belongs to. CLOS 0 is conventionally the full-LLC "neutral"
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// `(clos, way_mask)` pairs to program.
    pub masks: Vec<(usize, u64)>,
    /// `(core, clos)` assignments.
    pub assignments: Vec<(usize, usize)>,
}

impl PartitionPlan {
    /// The no-partitioning plan: every core in the full-mask CLOS 0.
    pub fn flat(num_cores: usize, llc_ways: u32) -> Self {
        PartitionPlan {
            masks: vec![(0, contiguous_mask(0, llc_ways))],
            assignments: (0..num_cores).map(|c| (c, 0)).collect(),
        }
    }

    /// Shifts every core assignment by `base` — turns a plan built against
    /// socket-local core ids (what the per-domain allocators produce) into
    /// one addressing the machine's global ids. Masks are untouched: CLOS
    /// ids are already socket-local on the target domain.
    pub fn offset(mut self, base: usize) -> Self {
        for (core, _) in self.assignments.iter_mut() {
            *core += base;
        }
        self
    }

    /// Programs the plan into the machine, retrying transient rejections.
    ///
    /// Fails fast on the first unrecoverable write: CAT state is then
    /// partially programmed and the caller must fall back to a safe
    /// configuration ([`Substrate::reset_cat`]) before continuing —
    /// exactly what [`crate::driver::Driver`] does.
    pub fn apply<S: Substrate>(
        &self,
        sys: &mut S,
        log: &mut Vec<FaultRecord>,
    ) -> Result<(), MsrError> {
        self.apply_at(sys, 0, log)
    }

    /// [`PartitionPlan::apply`] with the CLOS mask writes issued via
    /// `anchor` instead of core 0. CAT mask MSRs are socket-scoped, so the
    /// anchor core selects which socket's CAT domain the masks land on;
    /// pass the domain's base core when applying a per-domain plan.
    pub fn apply_at<S: Substrate>(
        &self,
        sys: &mut S,
        anchor: usize,
        log: &mut Vec<FaultRecord>,
    ) -> Result<(), MsrError> {
        for &(clos, mask) in &self.masks {
            write_msr_logged(
                sys,
                anchor,
                cmm_sim::msr::IA32_L3_QOS_MASK_BASE + clos as u32,
                mask,
                log,
            )?;
        }
        for &(core, clos) in &self.assignments {
            write_msr_logged(sys, core, cmm_sim::msr::IA32_PQR_ASSOC, clos as u64, log)?;
        }
        Ok(())
    }
}

/// The paper's partition-sizing rule (Sec. III-B3): a partition holding
/// `cores` cores gets `ceil(scale × cores)` ways, clamped so the partition
/// never swallows the whole cache (at least one way must stay exclusive to
/// the neutral set for isolation to mean anything) and never goes below
/// CAT's 1-way minimum.
///
/// `min_ways_per_core` is the inclusive-LLC coverage floor: a partition
/// smaller than the sum of its cores' private L2 capacities makes the
/// (inclusive) LLC back-invalidate the very lines those L2s are using —
/// an eviction war real CAT deployments avoid by never sizing masks below
/// L2 coverage. On the paper's geometry one 1 MiB way covers an entire
/// 256 KiB L2 (`min = 1`, the rule is purely 1.5×); on the scaled
/// geometry a way is 128 KiB, so the floor is 2 ways per core.
pub fn partition_ways(cores: usize, scale: f64, llc_ways: u32, min_ways_per_core: u32) -> u32 {
    assert!(cores > 0);
    let want = (scale * cores as f64).ceil() as u32;
    let floor = cores as u32 * min_ways_per_core.max(1);
    want.max(floor).clamp(1, llc_ways.saturating_sub(2).max(1))
}

/// The inclusive-LLC coverage floor for a machine: how many LLC ways it
/// takes to cover one private L2 (see [`partition_ways`]).
pub fn min_ways_per_core(cfg: &cmm_sim::config::SystemConfig) -> u32 {
    let way_bytes = cfg.llc.size_bytes / cfg.llc.ways as u64;
    (cfg.l2.size_bytes.div_ceil(way_bytes)) as u32
}

/// One profiling sample: run the machine for `cycles` and return the
/// per-core PMU deltas, logging any PMU anomalies encountered.
///
/// Both boundary snapshots go through [`pmu_read_stable`]; as a backstop,
/// a per-core delta whose cycle count is zero (wrapped counter — the
/// saturating subtraction clamped it) or implausibly large (garbage that
/// survived the stability check) is zeroed and logged with action
/// `zeroed_sample`. A zeroed core gives the sample an `hm_ipc` of 0, so a
/// corrupted trial ranks last instead of poisoning the search.
pub fn sample_logged<S: Substrate>(
    sys: &mut S,
    cycles: u64,
    log: &mut Vec<FaultRecord>,
) -> Vec<PmuDelta> {
    let before = pmu_read_stable(sys, log);
    sys.run(cycles);
    let after = pmu_read_stable(sys, log);
    let mut deltas: Vec<PmuDelta> = after.iter().zip(before).map(|(&after, b)| after - b).collect();
    let bound = cycles.saturating_mul(4).saturating_add(10_000);
    for (core, d) in deltas.iter_mut().enumerate() {
        if (d.cycles == 0 || d.cycles > bound) && *d != PmuDelta::default() {
            *d = PmuDelta::default();
            log.push(FaultRecord {
                cycle: sys.now(),
                kind: "pmu_anomaly",
                core: Some(core),
                msr: None,
                action: "zeroed_sample",
            });
        }
    }
    deltas
}

/// [`sample_logged`] without a fault log — the convenience harnesses and
/// examples use on a clean substrate.
pub fn sample<S: Substrate>(sys: &mut S, cycles: u64) -> Vec<PmuDelta> {
    sample_logged(sys, cycles, &mut Vec::new())
}

/// Harmonic-mean IPC of a sample — the paper's configuration-ranking proxy.
pub fn sample_hm_ipc(deltas: &[PmuDelta]) -> f64 {
    let ipcs: Vec<f64> = deltas.iter().map(|d| d.ipc()).collect();
    cmm_metrics::hm_ipc(&ipcs)
}

/// Sets each core's prefetchers per the enable vector, retrying transient
/// rejections. A core whose write still fails keeps its previous setting —
/// throttling is an optimisation, not a correctness requirement, so
/// per-core failures are logged and tolerated rather than propagated.
pub fn apply_prefetch_logged<S: Substrate>(
    sys: &mut S,
    enabled: &[bool],
    log: &mut Vec<FaultRecord>,
) {
    apply_prefetch_range_logged(sys, 0, enabled, log)
}

/// [`apply_prefetch_logged`] for the core range starting at `base`:
/// `enabled[i]` programs core `base + i`. Cores outside the range are left
/// untouched — this is how per-domain controllers throttle their own
/// socket without clobbering a concurrent search on another one.
pub fn apply_prefetch_range_logged<S: Substrate>(
    sys: &mut S,
    base: usize,
    enabled: &[bool],
    log: &mut Vec<FaultRecord>,
) {
    for (i, &on) in enabled.iter().enumerate() {
        let value = if on { 0x0 } else { 0xF };
        let _ = write_msr_logged(sys, base + i, MSR_MISC_FEATURE_CONTROL, value, log);
    }
}

/// [`apply_prefetch_logged`] without a fault log.
pub fn apply_prefetch<S: Substrate>(sys: &mut S, enabled: &[bool]) {
    apply_prefetch_logged(sys, enabled, &mut Vec::new())
}

/// What the first two sampling intervals establish (Sec. III-B1): the
/// `Agg` set from an all-prefetchers-on interval, and its friendly /
/// unfriendly split from an interval with the `Agg` prefetchers disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Per-core deltas of the all-on interval (used for M-3 clustering and
    /// by Dunn's stall clustering).
    pub interval1: Vec<PmuDelta>,
    /// Prefetch-aggressive cores, ascending.
    pub agg: Vec<usize>,
    /// `Agg` cores whose IPC drops ≥ the friendliness threshold without
    /// prefetching.
    pub friendly: Vec<usize>,
    /// `Agg` cores that are not prefetch friendly.
    pub unfriendly: Vec<usize>,
    /// Cycles consumed by the detection intervals.
    pub profiling_cycles: u64,
}

/// Runs the first one or two sampling intervals: interval 1 with every
/// prefetcher on (mandatory — cores throttled last epoch would otherwise
/// never be re-observed), and, if the `Agg` set is non-empty, interval 2
/// with the `Agg` prefetchers off to probe prefetch friendliness.
/// Prefetchers are left all-on afterwards.
pub fn detect_logged<S: Substrate>(
    sys: &mut S,
    ctrl: &crate::policy::ControllerConfig,
    det: &crate::frontend::DetectorConfig,
    log: &mut Vec<FaultRecord>,
) -> Detection {
    detect_domains_logged(sys, ctrl, det, log, 1).pop().expect("one domain")
}

/// [`detect_logged`] generalised to `domains` equal slices of the machine
/// (one per CAT domain / socket). The sampling intervals are *shared*: one
/// all-on interval for everybody, then — if any domain found aggressors —
/// one interval with every domain's `Agg` prefetchers off simultaneously.
/// That keeps wall-clock profiling cost independent of the socket count,
/// which is what lets the per-domain controllers run "concurrently".
///
/// Each returned [`Detection`] is **domain-local**: `interval1` holds just
/// that domain's core deltas and the `agg`/`friendly`/`unfriendly` indices
/// are offsets into the domain (add `d * len` for global core ids).
pub fn detect_domains_logged<S: Substrate>(
    sys: &mut S,
    ctrl: &crate::policy::ControllerConfig,
    det: &crate::frontend::DetectorConfig,
    log: &mut Vec<FaultRecord>,
    domains: usize,
) -> Vec<Detection> {
    let n = sys.num_cores();
    assert!(domains > 0 && n.is_multiple_of(domains), "domains must evenly split the cores");
    let len = n / domains;
    apply_prefetch_logged(sys, &vec![true; n], log);
    let interval1 = sample_logged(sys, ctrl.sampling_interval, log);
    let aggs: Vec<Vec<usize>> = (0..domains)
        .map(|d| crate::frontend::detect_agg(&interval1[d * len..(d + 1) * len], det))
        .collect();
    if aggs.iter().all(|a| a.is_empty()) {
        return (0..domains)
            .map(|d| Detection {
                interval1: interval1[d * len..(d + 1) * len].to_vec(),
                agg: Vec::new(),
                friendly: Vec::new(),
                unfriendly: Vec::new(),
                profiling_cycles: ctrl.sampling_interval,
            })
            .collect();
    }

    let mut enabled = vec![true; n];
    for (d, agg) in aggs.iter().enumerate() {
        for &c in agg {
            enabled[d * len + c] = false;
        }
    }
    apply_prefetch_logged(sys, &enabled, log);
    let interval2 = sample_logged(sys, ctrl.sampling_interval, log);
    apply_prefetch_logged(sys, &vec![true; n], log);

    aggs.into_iter()
        .enumerate()
        .map(|(d, agg)| {
            let i1 = &interval1[d * len..(d + 1) * len];
            let i2 = &interval2[d * len..(d + 1) * len];
            let mut friendly = Vec::new();
            let mut unfriendly = Vec::new();
            for &c in &agg {
                let with_pf = i1[c].ipc();
                let without = i2[c].ipc();
                if without > 0.0 && with_pf / without > 1.0 + ctrl.friendly_speedup {
                    friendly.push(c);
                } else {
                    unfriendly.push(c);
                }
            }
            Detection {
                interval1: i1.to_vec(),
                agg,
                friendly,
                unfriendly,
                profiling_cycles: 2 * ctrl.sampling_interval,
            }
        })
        .collect()
}

/// [`detect_logged`] without a fault log — the convenience examples use.
pub fn detect<S: Substrate>(
    sys: &mut S,
    ctrl: &crate::policy::ControllerConfig,
    det: &crate::frontend::DetectorConfig,
) -> Detection {
    detect_logged(sys, ctrl, det, &mut Vec::new())
}

/// Outcome of a throttling search: the applied winner plus the full trial
/// log the telemetry journal records.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleSearch {
    /// The winning per-core prefetch enable vector (already applied).
    pub best: Vec<bool>,
    /// Cycles spent on trial intervals.
    pub cycles: u64,
    /// Every trialed configuration with its `hm_ipc`, in trial order.
    pub trials: Vec<crate::telemetry::Trial>,
    /// Index of the winner in `trials`; `None` when no trial ran.
    pub winner: Option<usize>,
}

/// Searches the on/off space over `groups` of cores, one sampling interval
/// per setting, ranking by `hm_ipc` (the paper's "best" criterion — the
/// reciprocal of ANTT up to the unknown run-alone IPCs). Cores outside the
/// groups keep their prefetchers on. Applies the winning enable vector and
/// returns it together with the per-trial log.
///
/// Trial-interval write failures are tolerated (the trial ranks whatever
/// configuration actually took hold). If applying the *winner* fails, the
/// search reverts to the all-on entry state — the last configuration known
/// to be fully programmed — and logs `kept_last_good`.
pub fn search_throttle<S: Substrate>(
    sys: &mut S,
    groups: &[Vec<usize>],
    sampling_interval: u64,
    log: &mut Vec<FaultRecord>,
) -> ThrottleSearch {
    let n = sys.num_cores();
    search_throttle_in(sys, groups, sampling_interval, log, 0, n)
}

/// [`search_throttle`] scoped to the `len` cores starting at `base` (one
/// CAT domain): `groups` hold **global** core ids within that range, the
/// trial `hm_ipc` is computed over the domain's cores only (another
/// domain's phase change must not steer this domain's search), and the
/// returned enable vector / trial images are domain-local (`len` entries,
/// index = global id − `base`). The whole machine still advances during
/// each trial interval — cores outside the domain just keep whatever
/// prefetch setting they have.
pub fn search_throttle_in<S: Substrate>(
    sys: &mut S,
    groups: &[Vec<usize>],
    sampling_interval: u64,
    log: &mut Vec<FaultRecord>,
    base: usize,
    len: usize,
) -> ThrottleSearch {
    let all_on = vec![true; len];
    if groups.is_empty() {
        apply_prefetch_range_logged(sys, base, &all_on, log);
        return ThrottleSearch { best: all_on, cycles: 0, trials: Vec::new(), winner: None };
    }
    let mut best = all_on.clone();
    let mut best_hm = f64::NEG_INFINITY;
    let mut winner = 0;
    let mut spent = 0;
    let mut trials = Vec::with_capacity(1 << groups.len());
    for combo in 0..(1u32 << groups.len()) {
        let mut enabled = all_on.clone();
        for (g, cores) in groups.iter().enumerate() {
            if combo & (1 << g) == 0 {
                for &c in cores {
                    enabled[c - base] = false;
                }
            }
        }
        apply_prefetch_range_logged(sys, base, &enabled, log);
        let deltas = sample_logged(sys, sampling_interval, log);
        spent += sampling_interval;
        let hm = sample_hm_ipc(&deltas[base..base + len]);
        trials.push(crate::telemetry::Trial {
            msr_1a4: enabled.iter().map(|&on| if on { 0x0 } else { 0xF }).collect(),
            mba: Vec::new(),
            hm_ipc: hm,
        });
        if hm > best_hm {
            best_hm = hm;
            winner = trials.len() - 1;
            best = enabled;
        }
    }
    let before = log.len();
    apply_prefetch_range_logged(sys, base, &best, log);
    if log.iter().skip(before).any(|f| f.action == "gave_up") {
        // The winner could not be fully programmed: revert to the all-on
        // entry state (best effort — prefetch-on is also the power-on
        // default) rather than run an unknown mixture.
        apply_prefetch_range_logged(sys, base, &all_on, log);
        log.push(FaultRecord {
            cycle: sys.now(),
            kind: "degraded",
            core: None,
            msr: None,
            action: "kept_last_good",
        });
        return ThrottleSearch { best: all_on, cycles: spent, trials, winner: Some(winner) };
    }
    ThrottleSearch { best, cycles: spent, trials, winner: Some(winner) }
}

/// Outcome of a level-granular throttling search (the PT-fine extension).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSearch {
    /// The winning per-core MSR 0x1A4 image (already applied).
    pub best: Vec<u64>,
    /// Cycles spent on trial intervals.
    pub cycles: u64,
    /// Every trialed configuration with its `hm_ipc`, in trial order.
    pub trials: Vec<crate::telemetry::Trial>,
    /// Index of the winner in `trials`; `None` when no trial ran.
    pub winner: Option<usize>,
}

/// Generalised throttling search over arbitrary per-group MSR 0x1A4
/// *levels* (used by the PT-fine extension): tries every combination of
/// `levels` across `groups`, one sampling interval each, ranked by
/// `hm_ipc`. Cores outside the groups keep all prefetchers on. Applies
/// the winning per-core MSR image and returns it with the trial log.
pub fn search_throttle_levels<S: Substrate>(
    sys: &mut S,
    groups: &[Vec<usize>],
    levels: &[u64],
    sampling_interval: u64,
    log: &mut Vec<FaultRecord>,
) -> LevelSearch {
    let n = sys.num_cores();
    search_throttle_levels_in(sys, groups, levels, sampling_interval, log, 0, n)
}

/// [`search_throttle_levels`] scoped to the `len` cores starting at `base`
/// — the level-granular analogue of [`search_throttle_in`], with the same
/// domain-local conventions (global group ids, domain-sliced `hm_ipc`,
/// `len`-sized MSR images).
pub fn search_throttle_levels_in<S: Substrate>(
    sys: &mut S,
    groups: &[Vec<usize>],
    levels: &[u64],
    sampling_interval: u64,
    log: &mut Vec<FaultRecord>,
    base: usize,
    len: usize,
) -> LevelSearch {
    let all_on = vec![0u64; len];
    assert!(!levels.is_empty());
    if groups.is_empty() {
        for i in 0..len {
            let _ = write_msr_logged(sys, base + i, MSR_MISC_FEATURE_CONTROL, 0, log);
        }
        return LevelSearch { best: all_on, cycles: 0, trials: Vec::new(), winner: None };
    }
    let combos = levels.len().pow(groups.len() as u32);
    let mut best = all_on.clone();
    let mut best_hm = f64::NEG_INFINITY;
    let mut winner = 0;
    let mut spent = 0;
    let mut trials = Vec::with_capacity(combos);
    for combo in 0..combos {
        let mut image = all_on.clone();
        let mut c = combo;
        for cores in groups {
            let level = levels[c % levels.len()];
            c /= levels.len();
            for &core in cores {
                image[core - base] = level;
            }
        }
        for (i, &msr) in image.iter().enumerate() {
            let _ = write_msr_logged(sys, base + i, MSR_MISC_FEATURE_CONTROL, msr, log);
        }
        let deltas = sample_logged(sys, sampling_interval, log);
        spent += sampling_interval;
        let hm = sample_hm_ipc(&deltas[base..base + len]);
        trials.push(crate::telemetry::Trial {
            msr_1a4: image.clone(),
            mba: Vec::new(),
            hm_ipc: hm,
        });
        if hm > best_hm {
            best_hm = hm;
            winner = trials.len() - 1;
            best = image;
        }
    }
    let before = log.len();
    for (i, &msr) in best.iter().enumerate() {
        let _ = write_msr_logged(sys, base + i, MSR_MISC_FEATURE_CONTROL, msr, log);
    }
    if log.iter().skip(before).any(|f| f.action == "gave_up") {
        // Same last-known-good retreat as the binary search: all-engines-on
        // is the state every trial started from.
        for i in 0..len {
            let _ = write_msr_logged(sys, base + i, MSR_MISC_FEATURE_CONTROL, 0, log);
        }
        log.push(FaultRecord {
            cycle: sys.now(),
            kind: "degraded",
            core: None,
            msr: None,
            action: "kept_last_good",
        });
        return LevelSearch { best: all_on, cycles: spent, trials, winner: Some(winner) };
    }
    LevelSearch { best, cycles: spent, trials, winner: Some(winner) }
}

/// Groups `agg` cores for throttling: exhaustive (each core its own group)
/// when the set is small, otherwise k-means on the cores' L2 PTR (M-3) into
/// at most `groups` clusters (Sec. III-B1's scalability mechanism).
pub fn throttle_groups(
    agg: &[usize],
    deltas: &[PmuDelta],
    exhaustive_limit: usize,
    groups: usize,
) -> Vec<Vec<usize>> {
    if agg.is_empty() {
        return Vec::new();
    }
    if agg.len() <= exhaustive_limit {
        return agg.iter().map(|&c| vec![c]).collect();
    }
    let ptrs: Vec<f64> = agg.iter().map(|&c| crate::frontend::metrics(&deltas[c]).l2_ptr).collect();
    let clustering = cmm_metrics::kmeans_1d(&ptrs, groups);
    (0..clustering.k())
        .map(|g| clustering.members(g).into_iter().map(|i| agg[i]).collect())
        .filter(|g: &Vec<usize>| !g.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::pmu::Pmu;
    use cmm_sim::workload::Idle;
    use cmm_sim::System;

    #[test]
    fn partition_ways_follows_the_1_5x_rule() {
        assert_eq!(partition_ways(1, 1.5, 20, 1), 2);
        assert_eq!(partition_ways(2, 1.5, 20, 1), 3);
        assert_eq!(partition_ways(4, 1.5, 20, 1), 6);
        assert_eq!(partition_ways(8, 1.5, 20, 1), 12);
    }

    #[test]
    fn partition_ways_clamped() {
        // Never swallow the whole cache...
        assert_eq!(partition_ways(20, 1.5, 20, 1), 18);
        // ...and never below one way.
        assert_eq!(partition_ways(1, 0.1, 20, 1), 1);
        assert_eq!(partition_ways(1, 1.5, 2, 1), 1);
    }

    #[test]
    fn partition_ways_respects_l2_coverage_floor() {
        // 2 ways per core floor (scaled geometry): a 2-core partition gets
        // 4 ways even though 1.5× asks for 3.
        assert_eq!(partition_ways(2, 1.5, 20, 2), 4);
        assert_eq!(partition_ways(4, 1.5, 20, 2), 8);
        // Floor still clamped below the whole cache.
        assert_eq!(partition_ways(12, 1.5, 20, 2), 18);
    }

    #[test]
    fn min_ways_per_core_from_geometry() {
        // Paper geometry: 1 MiB way covers the 256 KiB L2.
        assert_eq!(min_ways_per_core(&cmm_sim::config::SystemConfig::paper()), 1);
        // Scaled geometry: 128 KiB way → 2 ways per L2.
        assert_eq!(min_ways_per_core(&cmm_sim::config::SystemConfig::scaled(8)), 2);
    }

    #[test]
    fn flat_plan_applies() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), Box::new(Idle)]);
        sys.set_clos_mask(1, 0b1).unwrap();
        sys.assign_clos(1, 1).unwrap();
        let mut log = Vec::new();
        PartitionPlan::flat(2, sys.llc_ways()).apply(&mut sys, &mut log).unwrap();
        assert_eq!(sys.effective_mask(1), 0b1111);
        assert!(log.is_empty(), "clean machine, no faults: {log:?}");
    }

    #[test]
    fn bad_plan_fails_instead_of_panicking() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), Box::new(Idle)]);
        let plan = PartitionPlan {
            masks: vec![(0, 0b1111), (99, 0b11)], // CLOS 99 does not exist
            assignments: vec![(0, 0)],
        };
        let mut log = Vec::new();
        let err = plan.apply(&mut sys, &mut log).unwrap_err();
        // CLOS 99's mask register is beyond the machine's MSR map entirely.
        assert!(matches!(err, MsrError::UnknownMsr(_)), "{err:?}");
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, "msr_error");
        assert_eq!(log[0].action, "gave_up");
    }

    #[test]
    fn write_msr_logged_retries_transient_rejections() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        // Rejection rate low enough that MSR_WRITE_RETRIES almost surely
        // clears at least one rejected write across many attempts.
        let mut faulty = FaultySubstrate::new(sys, FaultConfig::uniform(11, 0.4));
        let mut log = Vec::new();
        let mut oks = 0;
        for _ in 0..32 {
            if write_msr_logged(&mut faulty, 0, MSR_MISC_FEATURE_CONTROL, 0xF, &mut log).is_ok() {
                oks += 1;
            }
        }
        assert_eq!(oks, 32, "rate 0.4 with 3 retries should always clear");
        assert!(log.iter().any(|f| f.kind == "msr_rejected" && f.action == "retry_ok"));
        assert!(faulty.injected().msr_rejections > 0);
    }

    #[test]
    fn stable_read_filters_transient_garbage() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), Box::new(Idle)]);
        let mut cfg = FaultConfig::none();
        cfg.seed = 5;
        cfg.pmu_garbage_rate = 0.5;
        let mut faulty = FaultySubstrate::new(sys, cfg);
        faulty.run(20_000);
        let mut log = Vec::new();
        let deltas = sample_logged(&mut faulty, 10_000, &mut log);
        // Whatever the schedule injected, the deltas must be plausible:
        // either a clean interval or a zeroed (discarded) core.
        for d in &deltas {
            assert!(d.cycles <= 10_000 * 4 + 10_000, "implausible delta {}", d.cycles);
        }
        if faulty.injected().pmu_garbage > 0 {
            assert!(log.iter().any(|f| f.kind == "pmu_anomaly"), "{log:?}");
        }
    }

    #[test]
    fn sample_returns_deltas() {
        let mut sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        sys.run(1_000);
        let d = sample(&mut sys, 5_000);
        assert_eq!(d.len(), 1);
        // The core clock can sit up to one op ahead of the global clock at
        // the sampling boundaries, so the delta is approximate.
        assert!(
            d[0].cycles >= 4_800 && d[0].cycles < 5_500,
            "delta, not cumulative: {}",
            d[0].cycles
        );
    }

    #[test]
    fn apply_prefetch_sets_each_core() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), Box::new(Idle)]);
        apply_prefetch(&mut sys, &[true, false]);
        assert!(sys.prefetching_enabled(0));
        assert!(!sys.prefetching_enabled(1));
    }

    fn ptr_delta(pf_miss: u64) -> PmuDelta {
        Pmu { cycles: 100_000, l2_pf_miss: pf_miss, l2_pf_req: pf_miss + 1, ..Pmu::default() }
    }

    #[test]
    fn small_agg_sets_get_exhaustive_groups() {
        let deltas = vec![ptr_delta(100); 8];
        let g = throttle_groups(&[1, 5], &deltas, 3, 3);
        assert_eq!(g, vec![vec![1], vec![5]]);
    }

    #[test]
    fn large_agg_sets_get_clustered() {
        // Six aggressive cores with two distinct traffic levels.
        let mut deltas = vec![ptr_delta(0); 8];
        for &c in &[0, 1, 2] {
            deltas[c] = ptr_delta(100);
        }
        for &c in &[3, 4, 5] {
            deltas[c] = ptr_delta(10_000);
        }
        let g = throttle_groups(&[0, 1, 2, 3, 4, 5], &deltas, 3, 3);
        assert!(g.len() <= 3);
        // Similar-traffic cores must share a group.
        let find = |c: usize| g.iter().position(|grp| grp.contains(&c)).unwrap();
        assert_eq!(find(0), find(1));
        assert_eq!(find(3), find(4));
        assert_ne!(find(0), find(3));
    }

    #[test]
    fn empty_agg_has_no_groups() {
        assert!(throttle_groups(&[], &[], 3, 3).is_empty());
    }
}
