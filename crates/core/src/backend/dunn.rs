//! The "Dunn" baseline — Selfa et al., *Application Clustering Policies to
//! Address System Fairness with Intel's Cache Allocation Technology*,
//! PACT 2017 — the best prior CP algorithm the paper compares against
//! (Sec. V-B) and CMM's fallback when the `Agg` set is empty
//! (Fig. 6 (d)).
//!
//! Cores are k-means-clustered by their `STALLS_L2_PENDING` counts; the
//! partitions are **nested**: every mask starts at way 0, and a cluster
//! with higher average stalls gets a wider mask (more ways), the top
//! cluster receiving the whole cache. Prefetching is not considered — the
//! omission the paper exploits.

use super::PartitionPlan;
use cmm_sim::msr::contiguous_mask;
use cmm_sim::pmu::PmuDelta;

/// CLOS ids `1..=k` hold the nested masks; CLOS 0 keeps the full mask but
/// is unused once every core is assigned a cluster.
pub fn dunn_plan(deltas: &[PmuDelta], llc_ways: u32, clusters: usize) -> PartitionPlan {
    let n = deltas.len();
    assert!(n > 0);
    let stalls: Vec<f64> = deltas.iter().map(|d| d.stalls_l2_pending as f64).collect();
    let clustering = cmm_metrics::kmeans_1d(&stalls, clusters);
    let k = clustering.k();

    let mut plan = PartitionPlan::flat(n, llc_ways);
    // Nested widths: cluster g (ascending stalls) gets ceil(ways·(g+1)/k),
    // with a generous floor of 40% of the cache (on an inclusive LLC a
    // starved low-stall cluster back-invalidates the private caches of
    // L2-resident applications, which Selfa et al.'s allocations avoid in
    // practice); the top cluster gets everything.
    let floor = ((llc_ways as f64 * 0.4).ceil() as u32).max(2);
    for g in 0..k {
        let ways = if g + 1 == k {
            llc_ways
        } else {
            (((llc_ways as usize * (g + 1)).div_ceil(k)) as u32).max(floor).min(llc_ways)
        };
        plan.masks.push((g + 1, contiguous_mask(0, ways)));
    }
    for (core, clos) in plan.assignments.iter_mut() {
        *clos = clustering.assignments[*core] + 1;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::pmu::Pmu;

    fn stalled(cycles: u64, stalls: u64) -> PmuDelta {
        Pmu { cycles, stalls_l2_pending: stalls, ..Pmu::default() }
    }

    #[test]
    fn higher_stalls_get_more_ways() {
        let deltas = vec![
            stalled(100_000, 100),
            stalled(100_000, 90_000),
            stalled(100_000, 200),
            stalled(100_000, 85_000),
        ];
        let plan = dunn_plan(&deltas, 20, 4);
        let mask_of = |core: usize| {
            let clos = plan.assignments.iter().find(|(c, _)| *c == core).unwrap().1;
            plan.masks.iter().find(|(c, _)| *c == clos).unwrap().1
        };
        assert!(mask_of(1).count_ones() > mask_of(0).count_ones());
        assert!(mask_of(3).count_ones() > mask_of(2).count_ones());
        // The most-stalled cluster owns the whole cache.
        assert_eq!(mask_of(1), (1 << 20) - 1);
    }

    #[test]
    fn masks_are_nested() {
        let deltas: Vec<PmuDelta> =
            (0..8).map(|i| stalled(100_000, (i as u64 + 1) * 10_000)).collect();
        let plan = dunn_plan(&deltas, 20, 4);
        let mut masks: Vec<u64> =
            plan.masks.iter().filter(|(c, _)| *c > 0).map(|&(_, m)| m).collect();
        masks.sort_unstable();
        for w in masks.windows(2) {
            assert_eq!(w[0] & w[1], w[0], "partitions must be nested: {w:?}");
        }
    }

    #[test]
    fn every_core_assigned_and_every_mask_valid() {
        let deltas: Vec<PmuDelta> = (0..8).map(|i| stalled(100_000, i * 7_919)).collect();
        let plan = dunn_plan(&deltas, 20, 4);
        assert_eq!(plan.assignments.len(), 8);
        for &(_, m) in &plan.masks {
            assert!(cmm_sim::msr::mask_is_contiguous(m));
            assert!(m.count_ones() >= 2);
        }
        for &(_, clos) in &plan.assignments {
            assert!(plan.masks.iter().any(|(c, _)| *c == clos));
        }
    }

    #[test]
    fn identical_cores_collapse_to_one_cluster() {
        let deltas = vec![stalled(100_000, 5_000); 4];
        let plan = dunn_plan(&deltas, 20, 4);
        // One cluster → it is the "top" cluster → full mask for everyone.
        let clos = plan.assignments[0].1;
        assert!(plan.assignments.iter().all(|&(_, c)| c == clos));
        assert_eq!(plan.masks.iter().find(|(c, _)| *c == clos).unwrap().1, (1 << 20) - 1);
    }
}
