//! Experiment harness: runs workload mixes under mechanisms and produces
//! the per-core numbers behind every figure of the evaluation.
//!
//! Methodology mirrors Sec. IV: each workload runs for a fixed simulated
//! time under the baseline and under each mechanism (benchmarks are
//! infinite generators, the analogue of the paper restarting finished
//! programs), and per-core IPC over the whole run feeds the HS/WS/
//! worst-case metrics. Run-alone IPCs for HS come from single-core runs of
//! the same machine configuration.

use crate::driver::Driver;
use crate::fault::{FaultConfig, FaultySubstrate};
use crate::governor::GovernorConfig;
use crate::learned::Learner;
use crate::policy::{ControllerConfig, Mechanism};
use crate::substrate::Substrate;
use cmm_sim::config::SystemConfig;
use cmm_sim::pmu::Pmu;
use cmm_sim::System;
use cmm_workloads::{Mix, Slot};

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Machine geometry for mix runs (one core per mix benchmark).
    pub sys: SystemConfig,
    /// Controller tuning.
    pub ctrl: ControllerConfig,
    /// Simulated cycles per mix run (the paper's 2.5 minutes, scaled).
    pub total_cycles: u64,
    /// Simulated cycles for run-alone IPC measurements.
    pub alone_cycles: u64,
    /// Cycles run before measurement starts (cache warm-up).
    pub warmup_cycles: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sys: SystemConfig::scaled(8),
            ctrl: ControllerConfig::default(),
            total_cycles: 12_000_000,
            alone_cycles: 2_000_000,
            // LLC-sensitive chases take ~2M cycles to populate their
            // working sets; measuring earlier under-weights the capacity
            // effects every CP mechanism depends on.
            warmup_cycles: 2_000_000,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and `--quick` harness runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            sys: SystemConfig::scaled(8),
            ctrl: ControllerConfig::quick(),
            total_cycles: 2_500_000,
            alone_cycles: 500_000,
            warmup_cycles: 1_200_000,
        }
    }
}

/// Outcome of one (mix, mechanism) run.
#[derive(Debug, Clone)]
pub struct MixResult {
    /// The mechanism that ran.
    pub mechanism: Mechanism,
    /// The mix name (e.g. `"PrefAgg-03"`).
    pub mix_name: String,
    /// Workload name per core (benchmark or trace label).
    pub benchmarks: Vec<String>,
    /// Whole-run IPC per core (measurement window only).
    pub ipcs: Vec<f64>,
    /// Whole-run PMU deltas per core.
    pub pmu: Vec<Pmu>,
    /// Total memory traffic (demand + prefetch + writeback bytes), summed
    /// over cores — the Fig. 14 series.
    pub mem_bytes: u64,
    /// Summed `STALLS_L2_PENDING` — the Fig. 15 series.
    pub stalls_l2: u64,
    /// Controller overhead fraction (0 for the baseline).
    pub overhead_ratio: f64,
    /// Per-epoch decision telemetry of the measurement window (see
    /// [`crate::telemetry`]); feeds the `cmm-journal/2` run journal.
    pub epochs: Vec<crate::telemetry::EpochRecord>,
}

impl MixResult {
    /// Memory bandwidth in bytes/cycle over the measurement window.
    pub fn bandwidth_bpc(&self, cycles: u64) -> f64 {
        self.mem_bytes as f64 / cycles.max(1) as f64
    }
}

fn build_system(mix: &Mix, cfg: &ExperimentConfig) -> System {
    let mut sys_cfg = cfg.sys.clone();
    sys_cfg.set_num_cores(mix.num_cores());
    let workloads = mix.instantiate(sys_cfg.llc.size_bytes);
    System::new(sys_cfg, workloads)
}

/// Runs `mix` on an already-built substrate under `mechanism` and reports
/// the measurement-window statistics. The substrate must host the mix's
/// workloads (see [`run_mix`] / [`run_mix_with_faults`] for the usual
/// entry points).
///
/// Measurement-window PMU reads go through the checked-read path
/// ([`crate::backend::pmu_read_checked`]), so a corrupted boundary
/// snapshot on a faulty substrate degrades to a re-read instead of
/// poisoning the whole run's IPCs.
pub fn run_mix_on<S: Substrate>(
    mut sys: S,
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
) -> MixResult {
    // Warm-up outside the measurement window, uncontrolled. The driver is
    // constructed afterwards but has no machine side effects, so warming
    // before or after wrapping is indistinguishable.
    if cfg.warmup_cycles > 0 {
        sys.run(cfg.warmup_cycles);
    }
    run_mix_on_warmed(sys, mix, mechanism, cfg)
}

/// [`run_mix_on`] for a substrate that has already been warmed up (or that
/// deliberately starts cold): runs only the measurement window. This is
/// the restore path of warm-up sharing — see [`WarmupPool`].
pub fn run_mix_on_warmed<S: Substrate>(
    sys: S,
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
) -> MixResult {
    run_mix_driver(Driver::new(sys, mechanism, cfg.ctrl.clone()), mix, mechanism, cfg)
}

/// Runs the measurement window of an already-constructed driver (warmed
/// substrate). The seam [`run_mix_governed`] uses to attach a governor
/// without duplicating the window bookkeeping.
fn run_mix_driver<S: Substrate>(
    mut driver: Driver<S>,
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
) -> MixResult {
    let mut window_log = Vec::new();
    let before = crate::backend::pmu_read_checked(driver.system_mut(), &mut window_log);
    let traffic_before: u64 =
        (0..mix.num_cores()).map(|c| driver.system().traffic(c).total_bytes()).sum();

    driver.run_total(cfg.total_cycles);

    let after = crate::backend::pmu_read_checked(driver.system_mut(), &mut window_log);
    let deltas: Vec<Pmu> = after.iter().zip(before).map(|(&a, b)| a - b).collect();
    let traffic_after: u64 =
        (0..mix.num_cores()).map(|c| driver.system().traffic(c).total_bytes()).sum();

    MixResult {
        mechanism,
        mix_name: mix.name.clone(),
        benchmarks: mix.slots.iter().map(|s| s.name().to_string()).collect(),
        ipcs: deltas.iter().map(|d| d.ipc()).collect(),
        pmu: deltas.to_vec(),
        mem_bytes: traffic_after - traffic_before,
        stalls_l2: deltas.iter().map(|d| d.stalls_l2_pending).sum(),
        overhead_ratio: driver.overhead_ratio(),
        epochs: driver.take_records(),
    }
}

/// Runs `mix` under `mechanism` for the configured duration and reports
/// the measurement-window statistics.
pub fn run_mix(mix: &Mix, mechanism: Mechanism, cfg: &ExperimentConfig) -> MixResult {
    run_mix_on(build_system(mix, cfg), mix, mechanism, cfg)
}

/// Shares warm-up simulation across the mechanism trials of each mix.
///
/// Warm-up runs uncontrolled — no mechanism programs an MSR before the
/// measurement window — so the post-warm-up machine state depends only on
/// the mix and the [`ExperimentConfig`]. The pool simulates that warm-up
/// once per mix, captures it with [`System::snapshot`], and hands every
/// subsequent trial of the same mix a restored copy: a `(mix, N
/// mechanisms)` evaluation pays for one warm-up instead of `N`, with
/// byte-identical results (a restored machine *is* the warmed machine).
///
/// One pool serves one `ExperimentConfig`; snapshots are keyed by mix name
/// only, so callers sweeping configs must use one pool per sweep point.
/// Mixes whose workloads cannot be cloned (no
/// [`cmm_sim::Workload::try_clone_box`] support) fall back to a fresh
/// warm-up per trial, transparently.
#[derive(Default)]
pub struct WarmupPool {
    // Snapshots are only ever touched under the lock (restore() is a
    // memcpy, negligible next to a trial), which keeps the pool `Sync`
    // without demanding `Sync` workloads.
    snaps: std::sync::Mutex<std::collections::HashMap<String, WarmupEntry>>,
}

enum WarmupEntry {
    /// Warm-up captured; every trial restores from here. Boxed so the
    /// common `Uncloneable` probe doesn't pay the snapshot's footprint.
    Shared(Box<cmm_sim::SystemSnapshot>),
    /// Workloads not cloneable: each trial re-warms from scratch.
    Uncloneable,
}

impl WarmupPool {
    /// An empty pool for one evaluation's `ExperimentConfig`.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<String, WarmupEntry>> {
        // A panicking trial must not wedge every later trial of the run on
        // a poisoned lock; the map is always in a consistent state.
        self.snaps.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A machine for `mix` with warm-up already applied: restored from the
    /// pooled snapshot when available, freshly built and warmed otherwise.
    fn warmed_system(&self, mix: &Mix, cfg: &ExperimentConfig) -> System {
        match self.lock().get(&mix.name) {
            Some(WarmupEntry::Shared(snap)) => return snap.restore(),
            Some(WarmupEntry::Uncloneable) | None => {}
        }
        // Warm up with the lock released (it is the expensive part). Two
        // trials of one mix may race here; the first insert wins and the
        // states are identical either way (warm-up is deterministic).
        let mut sys = build_system(mix, cfg);
        if cfg.warmup_cycles > 0 {
            sys.run(cfg.warmup_cycles);
        }
        let mut guard = self.lock();
        if let std::collections::hash_map::Entry::Vacant(v) = guard.entry(mix.name.clone()) {
            v.insert(match sys.snapshot() {
                Some(snap) => WarmupEntry::Shared(Box::new(snap)),
                None => WarmupEntry::Uncloneable,
            });
        }
        sys
    }

    /// Drops the pooled warm-up state of `mix` (frees its snapshot once
    /// all the mix's trials have completed).
    pub fn evict(&self, mix_name: &str) {
        self.lock().remove(mix_name);
    }
}

/// [`run_mix`] with warm-up shared through `pool`: identical results, one
/// warm-up simulation per mix instead of one per (mix, mechanism).
pub fn run_mix_pooled(
    pool: &WarmupPool,
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
) -> MixResult {
    run_mix_on_warmed(pool.warmed_system(mix, cfg), mix, mechanism, cfg)
}

/// Like [`run_mix`], but over a [`FaultySubstrate`] injecting the given
/// fault schedule — the `repro faults` sweep and the fault-injection
/// integration tests run through this.
pub fn run_mix_with_faults(
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
    faults: &FaultConfig,
) -> MixResult {
    let sys = FaultySubstrate::new(build_system(mix, cfg), faults.clone());
    run_mix_on(sys, mix, mechanism, cfg)
}

/// [`run_mix_with_faults`] with the safety governor attached to the
/// driver: apply-then-verify rollback, PMU quarantine and circuit
/// breakers all armed. At a zero fault rate the governor never
/// intervenes and the result is byte-identical to
/// [`run_mix_with_faults`].
pub fn run_mix_governed(
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
    faults: &FaultConfig,
    gov: GovernorConfig,
) -> MixResult {
    let mut sys = FaultySubstrate::new(build_system(mix, cfg), faults.clone());
    if cfg.warmup_cycles > 0 {
        sys.run(cfg.warmup_cycles);
    }
    let driver = Driver::new(sys, mechanism, cfg.ctrl.clone()).with_governor(gov);
    run_mix_driver(driver, mix, mechanism, cfg)
}

/// [`run_mix`] with a learned controller attached to the driver: the
/// `ML-Sel` classifier or the `RL-CBP` bandit policy drives the epoch
/// decisions instead of (or alongside) the profiling search. With no
/// learner the learned mechanisms degrade to the CMM-a search every
/// epoch, so passing `None` is well-defined but journals a fallback per
/// epoch.
pub fn run_mix_learned(
    mix: &Mix,
    mechanism: Mechanism,
    cfg: &ExperimentConfig,
    learner: Option<Learner>,
) -> MixResult {
    let mut sys = build_system(mix, cfg);
    if cfg.warmup_cycles > 0 {
        sys.run(cfg.warmup_cycles);
    }
    let mut driver = Driver::new(sys, mechanism, cfg.ctrl.clone());
    if let Some(l) = learner {
        driver = driver.with_learner(l);
    }
    run_mix_driver(driver, mix, mechanism, cfg)
}

/// Measures a workload's run-alone IPC: a single-core machine with the
/// same cache/memory configuration, all prefetchers on, no control.
/// Accepts any [`Slot`], so trace-driven cores get alone-IPCs from the
/// same machine as synthetic ones.
pub fn run_alone_ipc(slot: &Slot, cfg: &ExperimentConfig) -> f64 {
    let mut sys_cfg = cfg.sys.clone();
    sys_cfg.set_num_cores(1);
    let w = slot.instantiate(sys_cfg.llc.size_bytes, 1 << 36, 7);
    let mut sys = System::new(sys_cfg, vec![w]);
    sys.run(cfg.warmup_cycles.max(1));
    let before = sys.pmu(0);
    sys.run(cfg.alone_cycles);
    (sys.pmu(0) - before).ipc()
}

/// Run-alone IPCs for every distinct workload in `mix`, in core order,
/// with memoisation across repeated slots (keyed by slot name).
pub fn run_alone_ipcs(mix: &Mix, cfg: &ExperimentConfig) -> Vec<f64> {
    let mut cache: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    mix.slots
        .iter()
        .map(|s| *cache.entry(s.name().to_string()).or_insert_with(|| run_alone_ipc(s, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_workloads::build_mixes;

    #[test]
    fn baseline_mix_run_produces_sane_numbers() {
        let mix = &build_mixes(3, 1)[1]; // a PrefAgg mix
        let cfg = ExperimentConfig::quick();
        let r = run_mix(mix, Mechanism::Baseline, &cfg);
        assert_eq!(r.ipcs.len(), 8);
        assert!(r.ipcs.iter().all(|&i| i > 0.0 && i <= 4.0), "{:?}", r.ipcs);
        assert!(r.mem_bytes > 0);
        assert!(r.stalls_l2 > 0);
        assert_eq!(r.overhead_ratio, 0.0);
    }

    #[test]
    fn run_alone_beats_contended_for_sensitive_benchmark() {
        let mix = &build_mixes(3, 1)[1];
        let cfg = ExperimentConfig::quick();
        let alone = run_alone_ipcs(mix, &cfg);
        let together = run_mix(mix, Mechanism::Baseline, &cfg);
        // In aggregate, running together cannot beat running alone.
        let sum_ratio: f64 =
            together.ipcs.iter().zip(&alone).map(|(&t, &a)| t / a.max(1e-9)).sum::<f64>() / 8.0;
        assert!(sum_ratio < 1.05, "together/alone ratio {sum_ratio:.3}");
    }

    #[test]
    fn memoised_alone_ipcs_consistent() {
        let mix = &build_mixes(3, 1)[0];
        let cfg = ExperimentConfig::quick();
        let a = run_alone_ipcs(mix, &cfg);
        assert_eq!(a.len(), 8);
        // Duplicate benchmarks in the mix must get identical alone-IPCs.
        for i in 0..8 {
            for j in 0..8 {
                if mix.slots[i].name() == mix.slots[j].name() {
                    assert_eq!(a[i], a[j]);
                }
            }
        }
    }

    #[test]
    fn managed_run_reports_overhead() {
        let mix = &build_mixes(3, 1)[1];
        let cfg = ExperimentConfig::quick();
        let r = run_mix(mix, Mechanism::CmmA, &cfg);
        assert!(r.overhead_ratio > 0.0 && r.overhead_ratio < 0.02);
    }
}
