//! Per-epoch controller telemetry — the `cmm-journal/2` run journal.
//!
//! CMM's value is its control loop: every profiling epoch the front-end
//! computes the metric cascade (M-1..M-7, Fig. 5), detects the `Agg` set,
//! and the back-end trials candidate configurations ranked by `hm_ipc`.
//! Before this module the only window into those decisions was scraping
//! `println!` output. Now the [`crate::driver::Driver`] records one
//! [`EpochRecord`] per profiling epoch — the cascade values per core, the
//! detected sets, every trialed configuration with its `hm_ipc`, the
//! winner, and the CAT/throttle state actually applied (read back from the
//! machine, not inferred) — and harnesses serialize them as a JSONL
//! journal:
//!
//! ```text
//! {"schema":"cmm-journal/2","kind":"manifest","target":"table1",...}
//! {"kind":"epoch","run":"PrefAgg-00: CMM-a","epoch":1,"cycle":...,...}
//! ```
//!
//! Schema `/2` extends `/1` with the fault/degradation story: per-epoch
//! `faults` (every substrate fault the controller observed and what it did
//! about it — see [`FaultRecord`]), `degraded` (the fallback mechanism the
//! epoch retreated to, if any), and `exec_hm_ipc` / `exec_ipc_delta`
//! (harmonic-mean IPC over the preceding execution epoch and its change
//! versus the one before — "did the applied winner actually help?").
//! Readers that accept `/1` journals can read `/2` journals by ignoring
//! the new keys; nothing was removed or reordered. Schema `/3` adds the
//! multi-socket story (`topology` in the manifest, `domain` per epoch) and
//! `/4` the bandwidth knob (`mba` levels in trials and the `applied`
//! block) — both purely additive in the same way.
//!
//! One JSON object per line; the first line is the run manifest (git SHA,
//! host info, config digest), every further line one epoch. The rendering
//! is hand-rolled (the build environment has no serde) and deliberately
//! timestamp-free: a journal is a pure function of (workload, seed,
//! configuration), so the same run produces a byte-identical journal at
//! any `--jobs` — which is exactly what makes it usable as a regression
//! fixture.

use crate::frontend::Metrics;
use cmm_sim::system::CoreControl;

/// One substrate fault the controller observed, and what it did about it.
///
/// `kind` names the fault class, `action` the controller's response:
///
/// | kind             | meaning                                   | actions                     |
/// |------------------|-------------------------------------------|-----------------------------|
/// | `msr_rejected`   | transient WRMSR rejection                 | `retry_ok`, `gave_up`       |
/// | `clos_exhausted` | CAT write to a CLOS the part doesn't have | `gave_up`                   |
/// | `msr_error`      | any other WRMSR failure                   | `retry_ok`, `gave_up`       |
/// | `pmu_anomaly`    | unstable / implausible PMU snapshot       | `reread`, `zeroed_sample`   |
/// | `degraded`       | epoch-level fallback decision             | `fallback_dunn`, `fallback_noop`, `fallback_throttle`, `kept_last_good` |
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Machine clock when the fault was observed.
    pub cycle: u64,
    /// Fault class (see table above).
    pub kind: &'static str,
    /// Core the operation targeted, when core-specific.
    pub core: Option<usize>,
    /// MSR address involved, for MSR-class faults.
    pub msr: Option<u32>,
    /// What the controller did in response (see table above).
    pub action: &'static str,
}

impl FaultRecord {
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str(&format!("{{\"cycle\":{},\"kind\":\"{}\"", self.cycle, escape(self.kind)));
        match self.core {
            Some(c) => s.push_str(&format!(",\"core\":{c}")),
            None => s.push_str(",\"core\":null"),
        }
        match self.msr {
            Some(m) => s.push_str(&format!(",\"msr\":{m}")),
            None => s.push_str(",\"msr\":null"),
        }
        s.push_str(&format!(",\"action\":\"{}\"}}", escape(self.action)));
        s
    }
}

/// One safety-governor intervention (schema `cmm-journal/5`).
///
/// `action` names what the governor did:
///
/// | action          | meaning                                              |
/// |-----------------|------------------------------------------------------|
/// | `rollback`      | exec hm_ipc regressed past the bound; previous state restored |
/// | `quarantine`    | a core's PMU stream went implausible; core excluded for a cooldown |
/// | `breaker_open`  | K consecutive hard MSR failures on `class`; retries suspended |
/// | `breaker_close` | the breaker's cooldown expired; the class is probed again |
///
/// `core` is set for core-scoped actions (`quarantine`), `class` for
/// register-class-scoped ones (`breaker_open`/`breaker_close`:
/// `"prefetch"`, `"cat"` or `"mba"`).
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorEvent {
    /// Machine clock when the governor intervened.
    pub cycle: u64,
    /// What the governor did (see table above).
    pub action: &'static str,
    /// Core the action targeted, for core-scoped actions.
    pub core: Option<usize>,
    /// Register class the action targeted, for breaker actions.
    pub class: Option<&'static str>,
}

impl GovernorEvent {
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(80);
        s.push_str(&format!("{{\"cycle\":{},\"action\":\"{}\"", self.cycle, escape(self.action)));
        match self.core {
            Some(c) => s.push_str(&format!(",\"core\":{c}")),
            None => s.push_str(",\"core\":null"),
        }
        match self.class {
            Some(c) => s.push_str(&format!(",\"class\":\"{}\"}}", escape(c))),
            None => s.push_str(",\"class\":null}"),
        }
        s
    }
}

/// One trialed back-end configuration and its rank.
///
/// The configuration is the per-core `MSR 0x1A4` image the trial ran with
/// (`0x0` = all engines on, `0xF` = all off, `0x3` = the two L2 engines
/// off) — binary throttling and the PT-fine levels share this encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Per-core prefetcher MSR image during the trial interval.
    pub msr_1a4: Vec<u64>,
    /// Per-core MBA throttle levels during the trial interval. Empty for
    /// mechanisms that never program the bandwidth knob — and serialized
    /// only when non-empty, so /1–/3 journals stay byte-identical.
    pub mba: Vec<u64>,
    /// Harmonic-mean IPC observed over the trial interval (the paper's
    /// ranking criterion).
    pub hm_ipc: f64,
}

/// One core's sampled metrics over the detection interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSample {
    /// IPC over the interval.
    pub ipc: f64,
    /// The Table I metric cascade (M-1..M-7).
    pub metrics: Metrics,
}

/// Everything one profiling epoch decided and applied.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// 1-based profiling-epoch index within the run.
    pub epoch: u64,
    /// Machine clock when the profiling epoch began.
    pub cycle: u64,
    /// Mechanism label (`"PT"`, `"CMM-a"`, …).
    pub mechanism: &'static str,
    /// CAT domain (socket) this record describes on a multi-socket
    /// machine; `None` on single-socket runs. When set, `cores`, the
    /// detected sets, trials, and `applied` all describe that domain's
    /// cores in socket-local order, and each profiling epoch emits one
    /// record per domain (schema `cmm-journal/3`).
    pub domain: Option<usize>,
    /// Per-core cascade samples from the detection interval. Empty when
    /// the mechanism does not profile (the baseline).
    pub cores: Vec<CoreSample>,
    /// Detected prefetch-aggressive cores, ascending.
    pub agg: Vec<usize>,
    /// Prefetch-friendly subset of `agg`.
    pub friendly: Vec<usize>,
    /// Prefetch-unfriendly subset of `agg`.
    pub unfriendly: Vec<usize>,
    /// Back-end trials in the order they ran. Empty for mechanisms that
    /// never search (CP variants, Dunn, baseline).
    pub trials: Vec<Trial>,
    /// Index into `trials` of the applied winner; `None` when no search
    /// ran.
    pub winner: Option<usize>,
    /// Harmonic-mean IPC over the execution epoch that preceded this
    /// profiling epoch. `None` for the first epoch (no execution epoch has
    /// completed yet).
    pub exec_hm_ipc: Option<f64>,
    /// Change in `exec_hm_ipc` versus the previous execution epoch — the
    /// journal's direct answer to "did the applied winner actually help?".
    /// `None` until two execution epochs have completed.
    pub exec_ipc_delta: Option<f64>,
    /// Every substrate fault observed during this epoch and the
    /// controller's response, in observation order.
    pub faults: Vec<FaultRecord>,
    /// Fallback mechanism this epoch retreated to when its own allocator
    /// could not be applied (`"Dunn"`, `"no-op"` or `"throttle-only"`);
    /// `None` when the epoch's own decision was applied.
    pub degraded: Option<&'static str>,
    /// Safety-governor interventions during this epoch, in order (schema
    /// `cmm-journal/5`). Empty — and unserialized — for ungoverned runs,
    /// so /1–/4 journals stay byte-identical.
    pub governor: Vec<GovernorEvent>,
    /// Mix-level mean feature vector the learned controller classified on
    /// (schema `cmm-journal/6`, `cmm_learn::FEATURE_NAMES` order). Empty —
    /// and unserialized — for unlearned mechanisms, so /1–/5 journals stay
    /// byte-identical.
    pub features: Vec<f64>,
    /// The learned controller's chosen action label for this epoch (e.g.
    /// `"pf=0xf,cat=cmm,mba=0,stretch=1"` for RL-CBP or `"pf=0x0"` for
    /// ML-Sel). `None` — and unserialized — for unlearned mechanisms
    /// (schema `cmm-journal/6`).
    pub action: Option<String>,
    /// CAT/throttle state in force after the epoch's decision was applied,
    /// read back from the machine.
    pub applied: Vec<CoreControl>,
}

impl EpochRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    /// `run` labels which (mix × mechanism) cell the epoch belongs to.
    pub fn to_json_line(&self, run: &str) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"kind\":\"epoch\"");
        s.push_str(&format!(",\"run\":\"{}\"", escape(run)));
        s.push_str(&format!(",\"mechanism\":\"{}\"", escape(self.mechanism)));
        // Only multi-socket journals (schema /3) carry the domain key;
        // single-socket output must stay byte-identical to /2.
        if let Some(d) = self.domain {
            s.push_str(&format!(",\"domain\":{d}"));
        }
        s.push_str(&format!(",\"epoch\":{}", self.epoch));
        s.push_str(&format!(",\"cycle\":{}", self.cycle));
        s.push_str(",\"cores\":[");
        for (i, c) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let m = &c.metrics;
            s.push_str(&format!(
                "{{\"ipc\":{},\"m1_l2_llc\":{},\"m2_pf_frac\":{},\"m3_ptr\":{},\
                 \"m4_pga\":{},\"m5_pmr\":{},\"m6_ppm\":{},\"m7_llc_pt\":{}}}",
                num(c.ipc),
                m.l2_llc_traffic,
                num(m.l2_pf_miss_frac),
                num(m.l2_ptr),
                num(m.pga),
                num(m.l2_pmr),
                num(m.l2_ppm),
                num(m.llc_pt),
            ));
        }
        s.push(']');
        s.push_str(&format!(",\"agg\":{}", idx_list(&self.agg)));
        s.push_str(&format!(",\"friendly\":{}", idx_list(&self.friendly)));
        s.push_str(&format!(",\"unfriendly\":{}", idx_list(&self.unfriendly)));
        s.push_str(",\"trials\":[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let mba = if t.mba.is_empty() {
                String::new()
            } else {
                format!(",\"mba\":{}", u64_list(&t.mba))
            };
            s.push_str(&format!(
                "{{\"msr_1a4\":{}{},\"hm_ipc\":{}}}",
                u64_list(&t.msr_1a4),
                mba,
                num(t.hm_ipc)
            ));
        }
        s.push(']');
        match self.winner {
            Some(w) => s.push_str(&format!(",\"winner\":{w}")),
            None => s.push_str(",\"winner\":null"),
        }
        match self.exec_hm_ipc {
            Some(v) => s.push_str(&format!(",\"exec_hm_ipc\":{}", num(v))),
            None => s.push_str(",\"exec_hm_ipc\":null"),
        }
        match self.exec_ipc_delta {
            Some(v) => s.push_str(&format!(",\"exec_ipc_delta\":{}", num(v))),
            None => s.push_str(",\"exec_ipc_delta\":null"),
        }
        s.push_str(",\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f.to_json());
        }
        s.push(']');
        match self.degraded {
            Some(d) => s.push_str(&format!(",\"degraded\":\"{}\"", escape(d))),
            None => s.push_str(",\"degraded\":null"),
        }
        // The governor key joined in schema /5; epochs the governor never
        // touched omit it so ungoverned journals stay byte-identical.
        if !self.governor.is_empty() {
            s.push_str(",\"governor\":[");
            for (i, g) in self.governor.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&g.to_json());
            }
            s.push(']');
        }
        // The learned-controller keys joined in schema /6; epochs from
        // unlearned mechanisms omit both so /1–/5 journals stay
        // byte-identical.
        if !self.features.is_empty() {
            s.push_str(",\"features\":[");
            push_joined(&mut s, self.features.iter().map(|&v| num(v)));
            s.push(']');
        }
        if let Some(a) = &self.action {
            s.push_str(&format!(",\"action\":\"{}\"", escape(a)));
        }
        s.push_str(",\"applied\":{\"clos\":[");
        push_joined(&mut s, self.applied.iter().map(|a| a.clos.to_string()));
        s.push_str("],\"way_mask\":[");
        push_joined(&mut s, self.applied.iter().map(|a| a.way_mask.to_string()));
        s.push_str("],\"msr_1a4\":[");
        push_joined(&mut s, self.applied.iter().map(|a| a.msr_1a4.to_string()));
        s.push_str("],\"prefetch\":[");
        push_joined(&mut s, self.applied.iter().map(|a| a.prefetching().to_string()));
        s.push(']');
        // The bandwidth knob joined in schema /4; epochs that never engage
        // it (every level still 0) omit the key so /1–/3 journals are
        // byte-identical to the pre-MBA renderer.
        if self.applied.iter().any(|a| a.mba_level != 0) {
            s.push_str(",\"mba\":[");
            push_joined(&mut s, self.applied.iter().map(|a| a.mba_level.to_string()));
            s.push(']');
        }
        s.push_str("}}");
        s
    }
}

/// Run-level context for the journal's manifest line.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The repro target this journal belongs to (`"table1"`, `"fig7"`, …).
    pub target: String,
    /// Whether the run used the `--quick` durations.
    pub quick: bool,
    /// Mix-construction seed.
    pub seed: u64,
    /// Git commit of the tree that produced the journal (or `"unknown"`).
    pub git_sha: String,
    /// Host operating system (`std::env::consts::OS`).
    pub host_os: String,
    /// Host architecture (`std::env::consts::ARCH`).
    pub host_arch: String,
    /// Host logical CPU count.
    pub host_cpus: usize,
    /// FNV-1a digest of the run's configuration (see [`config_digest`]).
    pub config_digest: String,
    /// Machine topology label (`"2x16"`) on multi-socket runs; `None` on
    /// single-socket runs, which keep the `/2` manifest byte-identical.
    pub topology: Option<String>,
    /// Whether the run's mechanisms may program the MBA bandwidth knob.
    /// `true` bumps the declared schema to `cmm-journal/4`; legacy targets
    /// keep emitting /2 (or /3 with a topology) unchanged.
    pub mba: bool,
    /// Whether the run wraps the controller in the safety governor.
    /// `true` bumps the declared schema to `cmm-journal/5` and adds a
    /// `governor` manifest key; ungoverned targets are unchanged.
    pub governor: bool,
    /// Whether the run uses learned mechanisms (ML-Sel / RL-CBP) whose
    /// epochs carry `features`/`action` keys. `true` bumps the declared
    /// schema to `cmm-journal/6` and adds a `learn` manifest key; every
    /// legacy target is unchanged.
    pub learn: bool,
}

impl Manifest {
    /// Renders the manifest as the journal's first JSONL line (no trailing
    /// newline). Deliberately excludes `--jobs` and wall-clock time: the
    /// journal must be byte-identical across thread counts and runs.
    /// Multi-socket runs declare schema `cmm-journal/3` and add the
    /// `topology` key; single-socket output is unchanged `/2`. Runs whose
    /// mechanisms may program the MBA knob declare `cmm-journal/4`
    /// (keeping the `topology` key when multi-socket).
    pub fn to_json_line(&self) -> String {
        let mut topology = match &self.topology {
            Some(t) => format!(",\"topology\":\"{}\"", escape(t)),
            None => String::new(),
        };
        if self.governor {
            topology.push_str(",\"governor\":true");
        }
        if self.learn {
            topology.push_str(",\"learn\":true");
        }
        let schema = if self.learn {
            "cmm-journal/6"
        } else if self.governor {
            "cmm-journal/5"
        } else if self.mba {
            "cmm-journal/4"
        } else if self.topology.is_some() {
            "cmm-journal/3"
        } else {
            "cmm-journal/2"
        };
        format!(
            "{{\"schema\":\"{}\",\"kind\":\"manifest\",\"target\":\"{}\",\
             \"quick\":{},\"seed\":{}{},\"git_sha\":\"{}\",\
             \"host\":{{\"os\":\"{}\",\"arch\":\"{}\",\"cpus\":{}}},\
             \"config_digest\":\"{}\"}}",
            schema,
            escape(&self.target),
            self.quick,
            self.seed,
            topology,
            escape(&self.git_sha),
            escape(&self.host_os),
            escape(&self.host_arch),
            self.host_cpus,
            escape(&self.config_digest),
        )
    }
}

/// FNV-1a digest of a configuration's canonical (Debug) rendering —
/// enough to tell "same config?" apart across journal files without a
/// hash dependency.
pub fn config_digest(canonical: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{h:016x}")
}

/// JSON float: finite values round-trip at 6 decimals (the journal is a
/// decision log, not a bit-exact PMU dump); non-finite degrades to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

fn idx_list(v: &[usize]) -> String {
    let mut s = String::from("[");
    push_joined(&mut s, v.iter().map(|i| i.to_string()));
    s.push(']');
    s
}

fn u64_list(v: &[u64]) -> String {
    let mut s = String::from("[");
    push_joined(&mut s, v.iter().map(|i| i.to_string()));
    s.push(']');
    s
}

fn push_joined(s: &mut String, items: impl Iterator<Item = String>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&item);
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> EpochRecord {
        EpochRecord {
            epoch: 3,
            cycle: 1_200_000,
            mechanism: "CMM-a",
            domain: None,
            cores: vec![CoreSample {
                ipc: 1.25,
                metrics: Metrics {
                    l2_llc_traffic: 1000,
                    l2_pf_miss_frac: 0.9,
                    l2_ptr: 0.01,
                    pga: 2.5,
                    l2_pmr: 0.8,
                    l2_ppm: 4.0,
                    llc_pt: 1.5,
                },
            }],
            agg: vec![0],
            friendly: vec![0],
            unfriendly: vec![],
            trials: vec![
                Trial { msr_1a4: vec![0x0], mba: vec![], hm_ipc: 1.2 },
                Trial { msr_1a4: vec![0xF], mba: vec![], hm_ipc: 0.9 },
            ],
            winner: Some(0),
            exec_hm_ipc: Some(1.1),
            exec_ipc_delta: Some(-0.05),
            faults: vec![FaultRecord {
                cycle: 1_200_100,
                kind: "msr_rejected",
                core: Some(0),
                msr: Some(0x1A4),
                action: "retry_ok",
            }],
            degraded: None,
            governor: vec![],
            features: vec![],
            action: None,
            applied: vec![CoreControl { clos: 1, way_mask: 0b11, msr_1a4: 0x0, mba_level: 0 }],
        }
    }

    #[test]
    fn epoch_line_contains_all_sections() {
        let line = sample_record().to_json_line("PrefAgg-00: CMM-a");
        assert!(line.starts_with("{\"kind\":\"epoch\""));
        assert!(line.ends_with("}"));
        assert!(!line.contains('\n'));
        for key in [
            "\"run\":\"PrefAgg-00: CMM-a\"",
            "\"mechanism\":\"CMM-a\"",
            "\"epoch\":3",
            "\"cycle\":1200000",
            "\"m4_pga\":2.500000",
            "\"agg\":[0]",
            "\"friendly\":[0]",
            "\"unfriendly\":[]",
            "\"msr_1a4\":[0]",
            "\"hm_ipc\":1.200000",
            "\"winner\":0",
            "\"exec_hm_ipc\":1.100000",
            "\"exec_ipc_delta\":-0.050000",
            "\"faults\":[{\"cycle\":1200100,\"kind\":\"msr_rejected\",\"core\":0,\"msr\":420,\"action\":\"retry_ok\"}]",
            "\"degraded\":null",
            "\"way_mask\":[3]",
            "\"prefetch\":[true]",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn no_winner_serializes_as_null() {
        let mut r = sample_record();
        r.trials.clear();
        r.winner = None;
        r.exec_hm_ipc = None;
        r.exec_ipc_delta = None;
        r.faults.clear();
        assert!(r.to_json_line("x").contains("\"winner\":null"));
        assert!(r.to_json_line("x").contains("\"trials\":[]"));
        assert!(r.to_json_line("x").contains("\"exec_hm_ipc\":null"));
        assert!(r.to_json_line("x").contains("\"exec_ipc_delta\":null"));
        assert!(r.to_json_line("x").contains("\"faults\":[]"));
    }

    #[test]
    fn degradation_serializes_with_its_faults() {
        let mut r = sample_record();
        r.degraded = Some("no-op");
        r.faults.push(FaultRecord {
            cycle: 1_200_200,
            kind: "degraded",
            core: None,
            msr: None,
            action: "fallback_noop",
        });
        let line = r.to_json_line("x");
        assert!(line.contains("\"degraded\":\"no-op\""));
        assert!(line.contains(
            "{\"cycle\":1200200,\"kind\":\"degraded\",\"core\":null,\"msr\":null,\
             \"action\":\"fallback_noop\"}"
        ));
    }

    #[test]
    fn manifest_line_shape() {
        let m = Manifest {
            target: "table1".into(),
            quick: true,
            seed: 42,
            git_sha: "abc123".into(),
            host_os: "linux".into(),
            host_arch: "x86_64".into(),
            host_cpus: 8,
            config_digest: config_digest("cfg"),
            topology: None,
            mba: false,
            governor: false,
            learn: false,
        };
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/2\",\"kind\":\"manifest\""));
        assert!(line.contains("\"target\":\"table1\""));
        assert!(line.contains("\"cpus\":8"));
        assert!(line.contains("\"config_digest\":\"fnv1a:"));
        // Single-socket manifests carry no topology key at all.
        assert!(!line.contains("topology"));
        // No --jobs and no wall-clock: journals must not depend on either.
        assert!(!line.contains("jobs"));
    }

    #[test]
    fn multi_socket_manifest_declares_schema_3() {
        let m = Manifest {
            target: "scale".into(),
            quick: true,
            seed: 42,
            git_sha: "abc123".into(),
            host_os: "linux".into(),
            host_arch: "x86_64".into(),
            host_cpus: 8,
            config_digest: config_digest("cfg"),
            topology: Some("2x16".into()),
            mba: false,
            governor: false,
            learn: false,
        };
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/3\",\"kind\":\"manifest\""));
        assert!(line.contains("\"topology\":\"2x16\""));
    }

    #[test]
    fn mba_manifest_declares_schema_4() {
        let mut m = Manifest {
            target: "bandwidth".into(),
            quick: true,
            seed: 42,
            git_sha: "abc123".into(),
            host_os: "linux".into(),
            host_arch: "x86_64".into(),
            host_cpus: 8,
            config_digest: config_digest("cfg"),
            topology: None,
            mba: true,
            governor: false,
            learn: false,
        };
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/4\",\"kind\":\"manifest\""));
        assert!(!line.contains("topology"));
        // Multi-socket MBA runs keep the topology key under the /4 schema.
        m.topology = Some("2x16".into());
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/4\",\"kind\":\"manifest\""));
        assert!(line.contains("\"topology\":\"2x16\""));
    }

    #[test]
    fn mba_keys_emitted_only_when_engaged() {
        // A record that never touches the bandwidth knob renders exactly as
        // it did before the knob existed.
        let quiet = sample_record().to_json_line("x");
        assert!(!quiet.contains("\"mba\""));
        let mut r = sample_record();
        r.trials[0].mba = vec![0, 40];
        r.applied[0].mba_level = 80;
        let line = r.to_json_line("x");
        assert!(line.contains("{\"msr_1a4\":[0],\"mba\":[0,40],\"hm_ipc\":1.200000}"));
        assert!(line.contains("\"prefetch\":[true],\"mba\":[80]}"));
    }

    #[test]
    fn governor_manifest_declares_schema_5() {
        let mut m = Manifest {
            target: "governor".into(),
            quick: true,
            seed: 42,
            git_sha: "abc123".into(),
            host_os: "linux".into(),
            host_arch: "x86_64".into(),
            host_cpus: 8,
            config_digest: config_digest("cfg"),
            topology: None,
            mba: true,
            governor: true,
            learn: false,
        };
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/5\",\"kind\":\"manifest\""));
        assert!(line.contains("\"governor\":true"));
        // The governor flag outranks mba and topology in schema selection.
        m.topology = Some("2x16".into());
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/5\""));
        assert!(line.contains("\"topology\":\"2x16\",\"governor\":true"));
    }

    #[test]
    fn governor_key_emitted_only_when_events_exist() {
        // An epoch the governor never touched renders exactly as before
        // the governor existed.
        let quiet = sample_record().to_json_line("x");
        assert!(!quiet.contains("\"governor\""));
        let mut r = sample_record();
        r.governor = vec![
            GovernorEvent { cycle: 7, action: "rollback", core: None, class: None },
            GovernorEvent { cycle: 9, action: "quarantine", core: Some(2), class: None },
            GovernorEvent { cycle: 11, action: "breaker_open", core: None, class: Some("mba") },
        ];
        let line = r.to_json_line("x");
        assert!(line.contains(
            "\"degraded\":null,\"governor\":[\
             {\"cycle\":7,\"action\":\"rollback\",\"core\":null,\"class\":null},\
             {\"cycle\":9,\"action\":\"quarantine\",\"core\":2,\"class\":null},\
             {\"cycle\":11,\"action\":\"breaker_open\",\"core\":null,\"class\":\"mba\"}],\
             \"applied\":"
        ));
    }

    #[test]
    fn learn_manifest_declares_schema_6() {
        let mut m = Manifest {
            target: "learn".into(),
            quick: true,
            seed: 42,
            git_sha: "abc123".into(),
            host_os: "linux".into(),
            host_arch: "x86_64".into(),
            host_cpus: 8,
            config_digest: config_digest("cfg"),
            topology: None,
            mba: true,
            governor: false,
            learn: true,
        };
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/6\",\"kind\":\"manifest\""));
        assert!(line.contains("\"learn\":true"));
        // The learn flag outranks governor, mba and topology in schema
        // selection, and the manifest keys stack in ladder order.
        m.governor = true;
        m.topology = Some("2x16".into());
        let line = m.to_json_line();
        assert!(line.starts_with("{\"schema\":\"cmm-journal/6\""));
        assert!(line.contains("\"topology\":\"2x16\",\"governor\":true,\"learn\":true"));
    }

    #[test]
    fn learn_keys_emitted_only_when_present() {
        // An epoch from an unlearned mechanism renders exactly as before
        // the learned controllers existed.
        let quiet = sample_record().to_json_line("x");
        assert!(!quiet.contains("\"features\""));
        // Nothing between degraded and applied (fault records legitimately
        // carry their own "action" key).
        assert!(quiet.contains("\"degraded\":null,\"applied\":"));
        let mut r = sample_record();
        r.features = vec![1.25, 0.5, 0.0];
        r.action = Some("pf=0xf,cat=cmm,mba=0,stretch=1".into());
        let line = r.to_json_line("x");
        assert!(line.contains(
            "\"degraded\":null,\"features\":[1.250000,0.500000,0.000000],\
             \"action\":\"pf=0xf,cat=cmm,mba=0,stretch=1\",\"applied\":"
        ));
    }

    #[test]
    fn domain_key_only_on_multi_socket_records() {
        let single = sample_record().to_json_line("x");
        assert!(!single.contains("\"domain\""));
        let mut r = sample_record();
        r.domain = Some(1);
        let multi = r.to_json_line("x");
        assert!(multi.contains("\"mechanism\":\"CMM-a\",\"domain\":1,\"epoch\":3"));
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(config_digest("a"), config_digest("a"));
        assert_ne!(config_digest("a"), config_digest("b"));
        assert_eq!(config_digest(""), "fnv1a:cbf29ce484222325");
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("a\nb"), "a\\u000ab");
    }
}
