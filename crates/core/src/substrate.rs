//! The hardware surface the controller is written against.
//!
//! The paper's mechanism is a kernel module whose entire view of the
//! machine is PMU reads, `MSR 0x1A4` throttle writes, CAT mask/CLOS
//! programming, and the passage of time. [`Substrate`] captures exactly
//! that surface as a trait, so the whole controller stack — the
//! [`crate::driver::Driver`], the [`crate::backend`] allocators and the
//! [`crate::resctrl`] text interface — is generic over *what machine it
//! runs on*: the canonical [`cmm_sim::System`], a fault-injecting
//! decorator ([`crate::fault::FaultySubstrate`]), or, later, a
//! multi-socket composite.
//!
//! The trait's required methods are the raw architectural surface
//! (RDMSR/WRMSR, PMU snapshot, cycle advance); the convenience methods the
//! controller actually calls (`set_prefetching`, `set_clos_mask`, …) are
//! provided defaults built strictly on top of that surface, so a decorator
//! that intercepts `write_msr`/`read_msr` automatically intercepts every
//! higher-level operation too.

use cmm_sim::config::SystemConfig;
use cmm_sim::memory::CoreMemTraffic;
use cmm_sim::msr::{
    IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MBA_THROTTLE, MSR_MISC_FEATURE_CONTROL,
};
use cmm_sim::pmu::Pmu;
use cmm_sim::system::{CoreControl, MsrError};
use cmm_sim::System;

/// The machine surface the controller programs and observes.
///
/// Everything the CMM control loop does goes through this trait; nothing
/// in `cmm_core` names [`cmm_sim::System`] concretely except the blanket
/// impl below and the convenience re-exports.
pub trait Substrate {
    /// Number of logical cores.
    fn num_cores(&self) -> usize;

    /// LLC associativity (CAT mask width).
    fn llc_ways(&self) -> u32;

    /// The machine geometry the controller sizes partitions against.
    fn config(&self) -> &SystemConfig;

    /// Global cycle count.
    fn now(&self) -> u64;

    /// Advances the machine by `cycles` cycles.
    fn run(&mut self, cycles: u64);

    /// Snapshots every core's PMU at once (the paper's PMI-handler read).
    /// Takes `&mut self` because a faulty substrate consumes entropy per
    /// read; reading does not advance the machine clock.
    fn pmu_all(&mut self) -> Vec<Pmu>;

    /// Per-core memory traffic counters (uncore counters on real parts).
    fn traffic(&self, core: usize) -> CoreMemTraffic;

    /// WRMSR. The controller writes `MSR_MISC_FEATURE_CONTROL` (0x1A4),
    /// `IA32_PQR_ASSOC` and `IA32_L3_QOS_MASK_BASE + n`.
    fn write_msr(&mut self, core: usize, msr: u32, value: u64) -> Result<(), MsrError>;

    /// RDMSR over the same register set.
    fn read_msr(&self, core: usize, msr: u32) -> Result<u64, MsrError>;

    /// Restores power-on CAT state (every core sees the whole LLC). This
    /// is the controller's infallible escape hatch: when CAT programming
    /// fails mid-plan the machine must still have a safe configuration to
    /// fall back to, exactly as unloading the kernel module would.
    fn reset_cat(&mut self);

    /// Restores power-on CAT state on one socket's CAT domain only — the
    /// per-domain escape hatch the multi-socket controller uses so one
    /// domain's degradation does not tear down another's partitions.
    /// Substrates without socket-scoped CAT fall back to a full reset.
    fn reset_cat_domain(&mut self, socket: usize) {
        let _ = socket;
        self.reset_cat();
    }

    /// Read-back of the control state in force per core (CLOS, effective
    /// way mask, raw prefetcher MSR image) — the telemetry journal's
    /// "what was actually programmed" half.
    fn control_state(&self) -> Vec<CoreControl>;

    // ----- conveniences, all routed through the raw MSR surface ---------

    /// Enables (`true`) or disables (`false`) all prefetch engines of one
    /// core — the granularity the paper's binary mechanisms use.
    fn set_prefetching(&mut self, core: usize, enabled: bool) -> Result<(), MsrError> {
        self.write_msr(core, MSR_MISC_FEATURE_CONTROL, if enabled { 0x0 } else { 0xF })
    }

    /// True if any prefetch engine of `core` is enabled. Unreadable MSRs
    /// report `true` (the power-on state).
    fn prefetching_enabled(&self, core: usize) -> bool {
        self.read_msr(core, MSR_MISC_FEATURE_CONTROL).map(|v| v != 0xF).unwrap_or(true)
    }

    /// Programs the way mask of a CLOS.
    fn set_clos_mask(&mut self, clos: usize, mask: u64) -> Result<(), MsrError> {
        self.write_msr(0, IA32_L3_QOS_MASK_BASE + clos as u32, mask)
    }

    /// Moves a core into a CLOS.
    fn assign_clos(&mut self, core: usize, clos: usize) -> Result<(), MsrError> {
        self.write_msr(core, IA32_PQR_ASSOC, clos as u64)
    }

    /// Programs the MBA delay level of a core (`0` unthrottled through
    /// `90`, step 10). Routed through `write_msr` so fault-injecting and
    /// logging decorators intercept bandwidth programming for free.
    fn set_mba_throttle(&mut self, core: usize, level: u64) -> Result<(), MsrError> {
        self.write_msr(core, MSR_MBA_THROTTLE, level)
    }

    /// The MBA delay level in force for a core. Unreadable registers
    /// report `0` (the power-on, unthrottled state).
    fn mba_throttle(&self, core: usize) -> u64 {
        self.read_msr(core, MSR_MBA_THROTTLE).unwrap_or(0)
    }

    /// Current allocation mask in force for a core; the full mask when the
    /// CAT registers cannot be read.
    fn effective_mask(&self, core: usize) -> u64 {
        let full = (1u64 << self.llc_ways()) - 1;
        let clos = match self.read_msr(core, IA32_PQR_ASSOC) {
            Ok(c) => c as u32,
            Err(_) => return full,
        };
        self.read_msr(core, IA32_L3_QOS_MASK_BASE + clos).unwrap_or(full)
    }
}

/// The simulator is the canonical substrate; every method forwards to the
/// inherent [`System`] API unchanged, so a `Driver<System>` behaves
/// bit-for-bit like the pre-trait controller did.
impl Substrate for System {
    fn num_cores(&self) -> usize {
        System::num_cores(self)
    }

    fn llc_ways(&self) -> u32 {
        System::llc_ways(self)
    }

    fn config(&self) -> &SystemConfig {
        System::config(self)
    }

    fn now(&self) -> u64 {
        System::now(self)
    }

    fn run(&mut self, cycles: u64) {
        System::run(self, cycles)
    }

    fn pmu_all(&mut self) -> Vec<Pmu> {
        System::pmu_all(self)
    }

    fn traffic(&self, core: usize) -> CoreMemTraffic {
        System::traffic(self, core)
    }

    fn write_msr(&mut self, core: usize, msr: u32, value: u64) -> Result<(), MsrError> {
        System::write_msr(self, core, msr, value)
    }

    fn read_msr(&self, core: usize, msr: u32) -> Result<u64, MsrError> {
        System::read_msr(self, core, msr)
    }

    fn reset_cat(&mut self) {
        System::reset_cat(self)
    }

    fn reset_cat_domain(&mut self, socket: usize) {
        System::reset_cat_domain(self, socket)
    }

    fn control_state(&self) -> Vec<CoreControl> {
        System::control_state(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Idle;

    fn machine(cores: usize) -> System {
        System::new(SystemConfig::tiny(cores), (0..cores).map(|_| Box::new(Idle) as _).collect())
    }

    /// Exercises the trait surface through a generic function, proving the
    /// defaults compose over `write_msr`/`read_msr` only.
    fn drive<S: Substrate>(sys: &mut S) {
        sys.set_prefetching(0, false).unwrap();
        assert!(!sys.prefetching_enabled(0));
        sys.set_clos_mask(1, 0b11).unwrap();
        sys.assign_clos(1, 1).unwrap();
        assert_eq!(sys.effective_mask(1), 0b11);
        sys.reset_cat();
        assert_eq!(sys.effective_mask(1), (1 << sys.llc_ways()) - 1);
        sys.set_prefetching(0, true).unwrap();
        sys.set_mba_throttle(1, 40).unwrap();
        assert_eq!(sys.mba_throttle(1), 40);
        assert_eq!(sys.mba_throttle(0), 0);
        sys.set_mba_throttle(1, 0).unwrap();
    }

    #[test]
    fn system_satisfies_the_surface_generically() {
        let mut sys = machine(2);
        drive(&mut sys);
        // Trait defaults and inherent System methods agree.
        assert!(System::prefetching_enabled(&sys, 0));
        assert_eq!(Substrate::effective_mask(&sys, 0), System::effective_mask(&sys, 0));
    }

    #[test]
    fn trait_and_inherent_control_state_agree() {
        let mut sys = machine(2);
        Substrate::set_prefetching(&mut sys, 1, false).unwrap();
        let via_trait = Substrate::control_state(&sys);
        assert_eq!(via_trait, System::control_state(&sys));
        assert_eq!(via_trait[1].msr_1a4, 0xF);
    }

    #[test]
    fn effective_mask_degrades_to_full_on_unreadable_cat() {
        // Core index out of range: the convenience must not panic.
        let sys = machine(1);
        assert_eq!(Substrate::effective_mask(&sys, 7), (1 << sys.llc_ways()) - 1);
    }

    #[test]
    fn mba_throttle_degrades_to_unthrottled_on_unreadable_msr() {
        let sys = machine(1);
        assert_eq!(Substrate::mba_throttle(&sys, 7), 0);
    }

    #[test]
    fn mba_throttle_rejects_invalid_levels() {
        let mut sys = machine(1);
        assert!(Substrate::set_mba_throttle(&mut sys, 0, 37).is_err());
        assert_eq!(Substrate::mba_throttle(&sys, 0), 0);
    }
}
