//! A Linux-`resctrl`-style text interface over the machine's CAT state.
//!
//! The paper's mechanism is a kernel module, but an operator deploying CAT
//! by hand uses the `resctrl` filesystem, whose `schemata` files carry
//! lines like `L3:0=fffff;1=00003` (per-CLOS way masks in hex) and whose
//! `cpus_list` files assign cores to groups. This module implements that
//! text dialect over [`cmm_sim::System`], so the examples — and any
//! downstream tooling — can drive partitioning exactly the way a sysadmin
//! would, and the controller's decisions can be *printed* as the schemata
//! an operator could apply on real hardware.

use cmm_sim::system::MsrError;
use cmm_sim::System;

/// Errors from parsing or applying a schemata line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResctrlError {
    /// The line does not start with `L3:`.
    MissingPrefix,
    /// A `clos=mask` token is malformed.
    BadToken(String),
    /// A CLOS id is not a number or out of range.
    BadClos(String),
    /// A mask is not valid hex.
    BadMask(String),
    /// The machine rejected the programming (e.g. non-contiguous mask).
    Msr(String),
}

impl std::fmt::Display for ResctrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResctrlError::MissingPrefix => write!(f, "schemata line must start with 'L3:'"),
            ResctrlError::BadToken(t) => write!(f, "malformed token '{t}' (want clos=mask)"),
            ResctrlError::BadClos(t) => write!(f, "bad CLOS id '{t}'"),
            ResctrlError::BadMask(t) => write!(f, "bad way mask '{t}'"),
            ResctrlError::Msr(e) => write!(f, "rejected by CAT: {e}"),
        }
    }
}

impl std::error::Error for ResctrlError {}

impl From<MsrError> for ResctrlError {
    fn from(e: MsrError) -> Self {
        ResctrlError::Msr(e.to_string())
    }
}

/// Parses a schemata line (`L3:0=fffff;1=3`) into `(clos, mask)` pairs.
pub fn parse_schemata(line: &str) -> Result<Vec<(usize, u64)>, ResctrlError> {
    let body = line.trim().strip_prefix("L3:").ok_or(ResctrlError::MissingPrefix)?;
    let mut out = Vec::new();
    for token in body.split(';') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let (clos_s, mask_s) =
            token.split_once('=').ok_or_else(|| ResctrlError::BadToken(token.to_string()))?;
        let clos = clos_s
            .trim()
            .parse::<usize>()
            .map_err(|_| ResctrlError::BadClos(clos_s.to_string()))?;
        let mask = u64::from_str_radix(mask_s.trim(), 16)
            .map_err(|_| ResctrlError::BadMask(mask_s.to_string()))?;
        out.push((clos, mask));
    }
    if out.is_empty() {
        return Err(ResctrlError::BadToken(body.to_string()));
    }
    Ok(out)
}

/// Applies a schemata line to the machine's CAT masks.
pub fn apply_schemata(sys: &mut System, line: &str) -> Result<(), ResctrlError> {
    for (clos, mask) in parse_schemata(line)? {
        sys.set_clos_mask(clos, mask)?;
    }
    Ok(())
}

/// Renders the current CAT masks of CLOS `0..n` as a schemata line.
pub fn format_schemata(sys: &System, num_clos: usize) -> String {
    let mut parts = Vec::with_capacity(num_clos);
    for clos in 0..num_clos {
        let mask = sys
            .read_msr(0, cmm_sim::msr::IA32_L3_QOS_MASK_BASE + clos as u32)
            .expect("clos in range");
        parts.push(format!("{clos}={mask:x}"));
    }
    format!("L3:{}", parts.join(";"))
}

/// Parses a `cpus_list`-style string (`0,2,4-6`) into core ids.
pub fn parse_cpus_list(list: &str) -> Result<Vec<usize>, ResctrlError> {
    let mut out = Vec::new();
    for token in list.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = token.split_once('-') {
            let lo: usize =
                lo.trim().parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?;
            let hi: usize =
                hi.trim().parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?;
            if lo > hi {
                return Err(ResctrlError::BadToken(token.to_string()));
            }
            out.extend(lo..=hi);
        } else {
            out.push(token.parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Assigns the cores of a `cpus_list` string to a CLOS (one resctrl group).
pub fn assign_group(sys: &mut System, clos: usize, cpus: &str) -> Result<(), ResctrlError> {
    for core in parse_cpus_list(cpus)? {
        sys.assign_clos(core, clos)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Idle;

    fn machine(cores: usize) -> System {
        System::new(SystemConfig::scaled(cores), (0..cores).map(|_| Box::new(Idle) as _).collect())
    }

    #[test]
    fn parse_basic_schemata() {
        assert_eq!(parse_schemata("L3:0=fffff;1=3").unwrap(), vec![(0, 0xFFFFF), (1, 0x3)]);
        assert_eq!(parse_schemata("  L3: 2 = 1f ").unwrap(), vec![(2, 0x1F)]);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert_eq!(parse_schemata("MB:0=10"), Err(ResctrlError::MissingPrefix));
        assert!(matches!(parse_schemata("L3:zero=3"), Err(ResctrlError::BadClos(_))));
        assert!(matches!(parse_schemata("L3:0=zz"), Err(ResctrlError::BadMask(_))));
        assert!(matches!(parse_schemata("L3:"), Err(ResctrlError::BadToken(_))));
    }

    #[test]
    fn apply_and_format_roundtrip() {
        let mut sys = machine(2);
        apply_schemata(&mut sys, "L3:0=fffff;1=00003").unwrap();
        let line = format_schemata(&sys, 2);
        assert_eq!(line, "L3:0=fffff;1=3");
    }

    #[test]
    fn invalid_masks_surface_cat_errors() {
        let mut sys = machine(1);
        let err = apply_schemata(&mut sys, "L3:0=5").unwrap_err(); // non-contiguous
        assert!(matches!(err, ResctrlError::Msr(_)), "{err}");
    }

    #[test]
    fn cpus_list_parsing() {
        assert_eq!(parse_cpus_list("0,2,4-6").unwrap(), vec![0, 2, 4, 5, 6]);
        assert_eq!(parse_cpus_list("3").unwrap(), vec![3]);
        assert_eq!(parse_cpus_list("1-1,1").unwrap(), vec![1]);
        assert!(parse_cpus_list("5-2").is_err());
        assert!(parse_cpus_list("a").is_err());
    }

    #[test]
    fn group_assignment_applies() {
        let mut sys = machine(4);
        apply_schemata(&mut sys, "L3:1=3").unwrap();
        assign_group(&mut sys, 1, "1,3").unwrap();
        assert_eq!(sys.effective_mask(1), 0b11);
        assert_eq!(sys.effective_mask(3), 0b11);
        assert_eq!(sys.effective_mask(0), (1 << 20) - 1);
    }

    #[test]
    fn out_of_range_core_rejected() {
        let mut sys = machine(2);
        assert!(assign_group(&mut sys, 0, "0-5").is_err());
    }
}
