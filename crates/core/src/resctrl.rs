//! A Linux-`resctrl`-style text interface over the machine's CAT state.
//!
//! The paper's mechanism is a kernel module, but an operator deploying CAT
//! by hand uses the `resctrl` filesystem, whose `schemata` files carry
//! lines like `L3:0=fffff;1=00003` (per-CLOS way masks in hex) and whose
//! `cpus_list` files assign cores to groups. This module implements that
//! text dialect over any [`Substrate`], so the examples — and any
//! downstream tooling — can drive partitioning exactly the way a sysadmin
//! would, and the controller's decisions can be *printed* as the schemata
//! an operator could apply on real hardware.
//!
//! Application is **atomic per line**: a schemata line is fully parsed
//! before any MSR is touched, so a malformed line never leaves the machine
//! half-programmed. MSR failures mid-application are still possible on a
//! faulty substrate and surface as [`ResctrlError::Msr`].

use crate::substrate::Substrate;
use cmm_sim::system::MsrError;

/// Errors from parsing or applying a schemata line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResctrlError {
    /// The line does not start with `L3:`.
    MissingPrefix,
    /// A `clos=mask` token is malformed.
    BadToken(String),
    /// A CLOS id is not a number or out of range.
    BadClos(String),
    /// A mask is not valid hex.
    BadMask(String),
    /// The machine rejected the programming (e.g. non-contiguous mask).
    Msr(String),
}

impl std::fmt::Display for ResctrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResctrlError::MissingPrefix => write!(f, "schemata line must start with 'L3:'"),
            ResctrlError::BadToken(t) => write!(f, "malformed token '{t}' (want clos=mask)"),
            ResctrlError::BadClos(t) => write!(f, "bad CLOS id '{t}'"),
            ResctrlError::BadMask(t) => write!(f, "bad way mask '{t}'"),
            ResctrlError::Msr(e) => write!(f, "rejected by CAT: {e}"),
        }
    }
}

impl std::error::Error for ResctrlError {}

impl From<MsrError> for ResctrlError {
    fn from(e: MsrError) -> Self {
        ResctrlError::Msr(e.to_string())
    }
}

/// Parses a schemata line (`L3:0=fffff;1=3`) into `(clos, mask)` pairs.
pub fn parse_schemata(line: &str) -> Result<Vec<(usize, u64)>, ResctrlError> {
    let body = line.trim().strip_prefix("L3:").ok_or(ResctrlError::MissingPrefix)?;
    let mut out = Vec::new();
    for token in body.split(';') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let (clos_s, mask_s) =
            token.split_once('=').ok_or_else(|| ResctrlError::BadToken(token.to_string()))?;
        let clos = clos_s
            .trim()
            .parse::<usize>()
            .map_err(|_| ResctrlError::BadClos(clos_s.to_string()))?;
        let mask = u64::from_str_radix(mask_s.trim(), 16)
            .map_err(|_| ResctrlError::BadMask(mask_s.to_string()))?;
        out.push((clos, mask));
    }
    if out.is_empty() {
        return Err(ResctrlError::BadToken(body.to_string()));
    }
    Ok(out)
}

/// Applies a schemata line to the machine's CAT masks. The line is fully
/// parsed first, so a syntax error never touches the machine.
pub fn apply_schemata<S: Substrate>(sys: &mut S, line: &str) -> Result<(), ResctrlError> {
    for (clos, mask) in parse_schemata(line)? {
        sys.set_clos_mask(clos, mask)?;
    }
    Ok(())
}

/// Renders the current CAT masks of CLOS `0..n` as a schemata line.
/// An unreadable mask register renders as `?` (a real resctrl would show
/// the file read failing; a text dump must not panic).
pub fn format_schemata<S: Substrate>(sys: &S, num_clos: usize) -> String {
    let mut parts = Vec::with_capacity(num_clos);
    for clos in 0..num_clos {
        match sys.read_msr(0, cmm_sim::msr::IA32_L3_QOS_MASK_BASE + clos as u32) {
            Ok(mask) => parts.push(format!("{clos}={mask:x}")),
            Err(_) => parts.push(format!("{clos}=?")),
        }
    }
    format!("L3:{}", parts.join(";"))
}

/// Parses a `cpus_list`-style string (`0,2,4-6`) into core ids.
pub fn parse_cpus_list(list: &str) -> Result<Vec<usize>, ResctrlError> {
    let mut out = Vec::new();
    for token in list.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = token.split_once('-') {
            let lo: usize =
                lo.trim().parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?;
            let hi: usize =
                hi.trim().parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?;
            if lo > hi {
                return Err(ResctrlError::BadToken(token.to_string()));
            }
            out.extend(lo..=hi);
        } else {
            out.push(token.parse().map_err(|_| ResctrlError::BadToken(token.to_string()))?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Assigns the cores of a `cpus_list` string to a CLOS (one resctrl group).
pub fn assign_group<S: Substrate>(
    sys: &mut S,
    clos: usize,
    cpus: &str,
) -> Result<(), ResctrlError> {
    for core in parse_cpus_list(cpus)? {
        sys.assign_clos(core, clos)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Idle;
    use cmm_sim::System;

    fn machine(cores: usize) -> System {
        System::new(SystemConfig::scaled(cores), (0..cores).map(|_| Box::new(Idle) as _).collect())
    }

    #[test]
    fn parse_basic_schemata() {
        assert_eq!(parse_schemata("L3:0=fffff;1=3").unwrap(), vec![(0, 0xFFFFF), (1, 0x3)]);
        assert_eq!(parse_schemata("  L3: 2 = 1f ").unwrap(), vec![(2, 0x1F)]);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert_eq!(parse_schemata("MB:0=10"), Err(ResctrlError::MissingPrefix));
        assert!(matches!(parse_schemata("L3:zero=3"), Err(ResctrlError::BadClos(_))));
        assert!(matches!(parse_schemata("L3:0=zz"), Err(ResctrlError::BadMask(_))));
        assert!(matches!(parse_schemata("L3:"), Err(ResctrlError::BadToken(_))));
    }

    #[test]
    fn apply_and_format_roundtrip() {
        let mut sys = machine(2);
        apply_schemata(&mut sys, "L3:0=fffff;1=00003").unwrap();
        let line = format_schemata(&sys, 2);
        assert_eq!(line, "L3:0=fffff;1=3");
    }

    #[test]
    fn invalid_masks_surface_cat_errors() {
        let mut sys = machine(1);
        let err = apply_schemata(&mut sys, "L3:0=5").unwrap_err(); // non-contiguous
        assert!(matches!(err, ResctrlError::Msr(_)), "{err}");
    }

    #[test]
    fn cpus_list_parsing() {
        assert_eq!(parse_cpus_list("0,2,4-6").unwrap(), vec![0, 2, 4, 5, 6]);
        assert_eq!(parse_cpus_list("3").unwrap(), vec![3]);
        assert_eq!(parse_cpus_list("1-1,1").unwrap(), vec![1]);
        assert!(parse_cpus_list("5-2").is_err());
        assert!(parse_cpus_list("a").is_err());
    }

    #[test]
    fn group_assignment_applies() {
        let mut sys = machine(4);
        apply_schemata(&mut sys, "L3:1=3").unwrap();
        assign_group(&mut sys, 1, "1,3").unwrap();
        assert_eq!(sys.effective_mask(1), 0b11);
        assert_eq!(sys.effective_mask(3), 0b11);
        assert_eq!(sys.effective_mask(0), (1 << 20) - 1);
    }

    #[test]
    fn out_of_range_core_rejected() {
        let mut sys = machine(2);
        assert!(assign_group(&mut sys, 0, "0-5").is_err());
    }

    #[test]
    fn malformed_schemata_leaves_machine_untouched() {
        let mut sys = machine(2);
        apply_schemata(&mut sys, "L3:1=3").unwrap();
        let before = format_schemata(&sys, 4);
        // A valid first token followed by a malformed one: the parse-then-
        // apply contract means nothing may have been written.
        for bad in ["L3:2=1;x=3", "L3:2=1;3=zz", "L3:2=1;nonsense", "MB:2=1"] {
            assert!(apply_schemata(&mut sys, bad).is_err(), "{bad} should not parse");
            assert_eq!(format_schemata(&sys, 4), before, "{bad} must not touch the machine");
        }
        // Round-trip of the untouched state still works.
        let line = format_schemata(&sys, 2);
        let mut other = machine(2);
        apply_schemata(&mut other, &line).unwrap();
        assert_eq!(format_schemata(&other, 2), line);
    }

    #[test]
    fn msr_rejection_propagates_as_resctrl_msr_error() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        // Every WRMSR rejected: the error must surface as ResctrlError::Msr
        // through the trait, not a panic.
        let mut faulty = FaultySubstrate::new(machine(2), FaultConfig::uniform(1, 1.0));
        let err = apply_schemata(&mut faulty, "L3:1=3").unwrap_err();
        match &err {
            ResctrlError::Msr(msg) => assert!(msg.contains("rejected"), "{msg}"),
            other => panic!("want Msr, got {other:?}"),
        }
        let err = assign_group(&mut faulty, 0, "0").unwrap_err();
        assert!(matches!(err, ResctrlError::Msr(_)), "{err:?}");
    }

    #[test]
    fn clos_exhaustion_propagates_and_format_degrades() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let mut cfg = FaultConfig::none();
        cfg.clos_limit = Some(2);
        let mut faulty = FaultySubstrate::new(machine(2), cfg);
        // CLOS 0/1 fine, CLOS 2 exhausted mid-line: the machine is left
        // partially programmed and the caller learns why.
        let err = apply_schemata(&mut faulty, "L3:1=3;2=3").unwrap_err();
        match &err {
            ResctrlError::Msr(msg) => assert!(msg.contains("CLOS"), "{msg}"),
            other => panic!("want Msr, got {other:?}"),
        }
        // CLOS 1 did land before the failure (per-line atomicity covers
        // parsing, not the substrate), and formatting the readable CLOS
        // still works.
        assert!(format_schemata(&faulty, 2).contains("1=3"));
    }
}
