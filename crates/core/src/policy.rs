//! Mechanism selection and controller tuning knobs.

/// The resource-management mechanisms evaluated in the paper
/// (Sec. V, Fig. 13 compares all seven against the uncontrolled baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// All prefetchers on, no partitioning, no control (the paper's
    /// baseline).
    Baseline,
    /// Prefetch throttling only (Sec. III-B1).
    Pt,
    /// Clustering cache partitioning of Selfa et al. PACT'17 — the
    /// best-known prior CP algorithm the paper compares against.
    Dunn,
    /// Whole `Agg` set into one small partition (Sec. III-B2 plan 1).
    PrefCp,
    /// Friendly / unfriendly `Agg` subsets into two partitions (plan 2).
    PrefCp2,
    /// Coordinated: `Agg` set partitioned + unfriendly throttled
    /// (Fig. 6 (a)).
    CmmA,
    /// Coordinated: only friendly cores partitioned, unfriendly throttled
    /// (Fig. 6 (b)).
    CmmB,
    /// Coordinated: friendly and unfriendly in separate partitions,
    /// unfriendly throttled (Fig. 6 (c)).
    CmmC,
    /// **Extension beyond the paper**: fine-grained prefetch throttling.
    /// The paper's mechanisms treat the four engines as one on/off entity
    /// (noting Intel lacks POWER7's depth knob), but MSR 0x1A4 does expose
    /// the engines individually; this mechanism searches
    /// {all-on, L2-prefetchers-off, all-off} per throttle group — a middle
    /// setting that keeps the cheap L1 engines while silencing the
    /// LLC/memory-flooding L2 streamer and adjacent-line engines.
    PtFine,
    /// **Extension beyond the paper**: memory-bandwidth partitioning only
    /// (Intel MBA-style per-core delay levels), the bandwidth-axis
    /// ablation. Detects the `Agg` set like CMM, then searches MBA delay
    /// levels for the aggressor throttle groups with prefetchers untouched
    /// and the cache unpartitioned.
    Mba,
    /// **Extension beyond the paper**: CBP-style three-resource
    /// coordination (after Nejat et al.). Runs the full CMM-a plan
    /// (prefetch throttle search + Agg partition), then layers an MBA
    /// delay-level search for the aggressor groups on top of the winning
    /// prefetch configuration — the hierarchical (prefetch × CAT × MBA)
    /// search. Degrades CBP → CMM-a when the bandwidth knob is
    /// unavailable.
    Cbp,
    /// **Extension beyond the paper**: learned phase selection. An
    /// offline-trained multinomial-logistic phase classifier (`cmm-learn`,
    /// `cmm-model/1` format) maps each core's PMU feature vector straight
    /// to a prefetcher configuration every epoch — zero profiling trials.
    /// Partitioning follows the CMM-a plan. Below the classifier's
    /// confidence floor (or with no model loaded) the epoch degrades to
    /// the full CMM-a search, journaled as `fallback_cmm_a`.
    MlSel,
    /// **Extension beyond the paper**: online reinforcement learning over
    /// the discretized (prefetch × CAT-plan × MBA-level × epoch-stretch)
    /// action space. A seeded epsilon-greedy contextual bandit replaces
    /// the exhaustive per-epoch search; reward is the epoch-over-epoch
    /// `hm_ipc` delta, and epoch-length stretching is a learned knob.
    RlCbp,
}

impl Mechanism {
    /// The seven managed mechanisms, in the paper's Fig. 13 order.
    pub fn all_managed() -> [Mechanism; 7] {
        [
            Mechanism::Pt,
            Mechanism::Dunn,
            Mechanism::PrefCp,
            Mechanism::PrefCp2,
            Mechanism::CmmA,
            Mechanism::CmmB,
            Mechanism::CmmC,
        ]
    }

    /// Label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::Pt => "PT",
            Mechanism::Dunn => "Dunn",
            Mechanism::PrefCp => "Pref-CP",
            Mechanism::PrefCp2 => "Pref-CP2",
            Mechanism::CmmA => "CMM-a",
            Mechanism::CmmB => "CMM-b",
            Mechanism::CmmC => "CMM-c",
            Mechanism::PtFine => "PT-fine",
            Mechanism::Mba => "MBA",
            Mechanism::Cbp => "CBP",
            Mechanism::MlSel => "ML-Sel",
            Mechanism::RlCbp => "RL-CBP",
        }
    }

    /// Inverse of [`label`](Self::label) — used when decoding checkpointed
    /// results back into typed form.
    pub fn from_label(label: &str) -> Option<Mechanism> {
        let all = [
            Mechanism::Baseline,
            Mechanism::Pt,
            Mechanism::Dunn,
            Mechanism::PrefCp,
            Mechanism::PrefCp2,
            Mechanism::CmmA,
            Mechanism::CmmB,
            Mechanism::CmmC,
            Mechanism::PtFine,
            Mechanism::Mba,
            Mechanism::Cbp,
            Mechanism::MlSel,
            Mechanism::RlCbp,
        ];
        all.into_iter().find(|m| m.label() == label)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Controller tuning. Defaults follow the paper scaled by the simulator's
/// 1000× cycle compression (Sec. IV-B: 5 B-cycle execution epochs,
/// 100 M-cycle sampling intervals, a 50:1 ratio the paper found robust).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Length of one execution epoch in cycles.
    pub execution_epoch: u64,
    /// Length of one sampling interval in cycles.
    pub sampling_interval: u64,
    /// L2 PMR above this keeps a core in the `Agg` candidate set
    /// (paper: "a threshold (say 70%)").
    pub pmr_threshold: f64,
    /// Minimum L2 prefetch-miss traffic rate (misses/cycle) for a core to
    /// pressure the LLC enough to matter.
    pub ptr_threshold: f64,
    /// Absolute PGA floor for the aggressiveness candidate stage
    /// (see [`crate::frontend::DetectorConfig::pga_floor`]).
    pub pga_floor: f64,
    /// IPC speedup from prefetching above which a core is *prefetch
    /// friendly*. The paper's Sec. III-B1 suggests "say 50%", but its own
    /// Sec. IV-B classification uses 30%; sampled speedups under
    /// contention sit well below run-alone speedups, so the lower bound is
    /// the robust choice.
    pub friendly_speedup: f64,
    /// Exhaustive throttling search is used up to this `Agg`-set size;
    /// beyond it, k-means group-level throttling.
    pub exhaustive_limit: usize,
    /// Number of k-means throttle groups (paper: "say 3" ⇒ ≤8 settings).
    pub throttle_groups: usize,
    /// Partition sizing factor: ways = ceil(factor × cores-in-partition)
    /// (paper: experimentally determined 1.5).
    pub partition_scale: f64,
    /// Cluster count for the Dunn baseline (Selfa et al. use 4 groups).
    pub dunn_clusters: usize,
    /// Simulated controller cost charged per profiling invocation, for the
    /// overhead accounting the paper reports (<0.1 %).
    pub overhead_cycles: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            execution_epoch: 2_000_000,
            sampling_interval: 40_000,
            pmr_threshold: 0.55,
            ptr_threshold: 0.003,
            pga_floor: 1.1,
            friendly_speedup: 0.3,
            exhaustive_limit: 3,
            throttle_groups: 3,
            partition_scale: 1.5,
            dunn_clusters: 4,
            overhead_cycles: 1_500,
        }
    }
}

impl ControllerConfig {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        ControllerConfig {
            execution_epoch: 200_000,
            sampling_interval: 10_000,
            ..ControllerConfig::default()
        }
    }

    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(self.execution_epoch > 0 && self.sampling_interval > 0);
        assert!(
            self.execution_epoch >= self.sampling_interval,
            "execution epoch must dominate the sampling interval"
        );
        assert!(self.throttle_groups >= 1 && self.throttle_groups <= 6);
        assert!(self.partition_scale > 0.0);
        assert!(self.dunn_clusters >= 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratio_matches_paper() {
        let c = ControllerConfig::default();
        c.validate();
        assert_eq!(c.execution_epoch / c.sampling_interval, 50, "paper's 50:1 ratio");
    }

    #[test]
    fn seven_managed_mechanisms() {
        let all = Mechanism::all_managed();
        assert_eq!(all.len(), 7);
        assert!(!all.contains(&Mechanism::Baseline));
        // The bandwidth extensions stay out of the paper's Fig. 13 set so
        // every legacy target keeps its exact mechanism roster.
        assert!(!all.contains(&Mechanism::Mba));
        assert!(!all.contains(&Mechanism::Cbp));
        assert!(!all.contains(&Mechanism::MlSel));
        assert!(!all.contains(&Mechanism::RlCbp));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Mechanism::PrefCp.label(), "Pref-CP");
        assert_eq!(Mechanism::CmmA.to_string(), "CMM-a");
    }

    #[test]
    fn from_label_inverts_label() {
        for m in Mechanism::all_managed() {
            assert_eq!(Mechanism::from_label(m.label()), Some(m));
        }
        assert_eq!(Mechanism::from_label("Baseline"), Some(Mechanism::Baseline));
        assert_eq!(Mechanism::from_label("PT-fine"), Some(Mechanism::PtFine));
        assert_eq!(Mechanism::from_label("MBA"), Some(Mechanism::Mba));
        assert_eq!(Mechanism::from_label("CBP"), Some(Mechanism::Cbp));
        assert_eq!(Mechanism::from_label("ML-Sel"), Some(Mechanism::MlSel));
        assert_eq!(Mechanism::from_label("RL-CBP"), Some(Mechanism::RlCbp));
        assert_eq!(Mechanism::from_label("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "dominate")]
    fn bad_ratio_panics() {
        ControllerConfig {
            execution_epoch: 10,
            sampling_interval: 100,
            ..ControllerConfig::default()
        }
        .validate();
    }
}
