//! # cmm-core — the CMM controller (the paper's contribution)
//!
//! Implements *Coordinated Multi-resource Management* from Sun, Shen &
//! Veidenbaum, IPDPS 2019: a software controller that treats the hardware
//! prefetchers and the shared LLC as two separately allocatable resources
//! and manages them per execution epoch.
//!
//! The design mirrors the paper's decoupled structure:
//!
//! * [`frontend`] — computes the Table I metrics from PMU deltas and
//!   detects the **prefetch-aggressive (`Agg`) core set** with the Fig. 5
//!   cascade (PGA above average → L2 PMR locality filter → L2 PTR
//!   pressure).
//! * [`backend`] — the resource allocators:
//!   [`backend::pt`] (prefetch throttling with exhaustive or k-means
//!   group-level search), [`backend::cp`] (Pref-CP / Pref-CP2
//!   partitioning), [`backend::dunn`] (the Selfa et al. PACT'17 baseline)
//!   and [`backend::cmm`] (the coordinated CMM-a/b/c policies of Fig. 6).
//! * [`driver`] — the epoch/sampling scheduler of Fig. 4: each execution
//!   epoch is followed by a profiling epoch of short sampling intervals in
//!   which candidate configurations are trialled and ranked by `hm_ipc`.
//! * [`experiment`] — harness utilities that run a workload mix under a
//!   [`policy::Mechanism`] and produce the per-core IPC / bandwidth /
//!   stall numbers behind every figure of the evaluation.
//! * [`governor`] — the runtime safety governor: apply-then-verify with
//!   rollback, PMU anomaly quarantine, and per-register-class circuit
//!   breakers wrapping any mechanism the driver runs.
//!
//! The controller talks to the machine exclusively through the
//! [`substrate::Substrate`] trait — PMU reads, MSR 0x1A4 throttle writes,
//! CAT mask/CLOS programming, cycle advance; exactly the interface the
//! paper's kernel module has on real hardware. [`cmm_sim::System`] is the
//! canonical implementation and [`fault::FaultySubstrate`] decorates any
//! substrate with a deterministic fault schedule, so the algorithms here
//! would port to an actual MSR/resctrl backend unchanged — and are tested
//! against the error surface that backend would throw.

pub mod backend;
pub mod driver;
pub mod experiment;
pub mod fault;
pub mod frontend;
pub mod governor;
pub mod learned;
pub mod policy;
pub mod resctrl;
pub mod substrate;
pub mod telemetry;

/// The types most users need.
pub mod prelude {
    pub use crate::backend::{partition_ways, PartitionPlan};
    pub use crate::driver::Driver;
    pub use crate::experiment::{
        run_alone_ipc, run_mix, run_mix_governed, run_mix_learned, run_mix_pooled,
        ExperimentConfig, MixResult, WarmupPool,
    };
    pub use crate::fault::{FaultConfig, FaultySubstrate};
    pub use crate::frontend::{detect_agg, metrics, DetectorConfig, Metrics};
    pub use crate::governor::{Governor, GovernorConfig, RegClass};
    pub use crate::learned::{Learner, RlPolicy};
    pub use crate::policy::{ControllerConfig, Mechanism};
    pub use crate::substrate::Substrate;
    pub use crate::telemetry::{
        CoreSample, EpochRecord, FaultRecord, GovernorEvent, Manifest, Trial,
    };
}
