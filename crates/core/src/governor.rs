//! The runtime safety governor — closes the controller's open loop.
//!
//! The paper's controller applies each profiling epoch's winner open-loop:
//! the plan runs for a whole execution epoch even if it regresses the
//! machine, and the driver trusts PMU readings the fault model shows can
//! be garbage. [`Governor`] wraps any mechanism the
//! [`crate::driver::Driver`] runs with four cooperating defenses:
//!
//! 1. **Apply-then-verify with rollback** — the driver snapshots the
//!    control state ([`cmm_sim::system::CoreControl`] per core) before
//!    applying a plan; when the next execution-epoch measurement comes in
//!    it asks [`Governor::should_roll_back`] whether harmonic-mean IPC
//!    dropped more than [`GovernorConfig::rollback_margin`] below the
//!    last-known-good epoch, and if so restores the snapshot via
//!    [`restore`] and journals a `rollback`.
//! 2. **PMU anomaly quarantine** — cores whose PMU stream produced an
//!    implausible sample (the `pmu_anomaly`/`zeroed_sample` faults
//!    `sample_logged` already detects) are quarantined for
//!    [`GovernorConfig::quarantine_epochs`] profiling epochs, starting
//!    with the epoch that observed the anomaly. A quarantined core's
//!    fresh classification is discarded and its **last trusted
//!    classification** reinstated ([`Governor::filter_detection`]), so
//!    one lying counter can neither eject an aggressor from the `Agg`
//!    set nor promote an innocent core into it — the ungoverned
//!    controller replans from the poisoned sample instead.
//! 3. **Substrate circuit breakers** — per register class
//!    ([`RegClass::Prefetch`], [`RegClass::Cat`], [`RegClass::Mba`]) the
//!    governor counts consecutive *hard* MSR failures (retries exhausted);
//!    at [`GovernorConfig::breaker_threshold`] it opens the class's
//!    breaker for a seeded exponential-backoff cooldown (with jitter) and
//!    the driver pins the documented degradation leg (CBP → CMM-a → Dunn
//!    → no-op) instead of paying the retry tax every epoch.
//! 4. The fourth defense — the cell hang watchdog — lives in the bench
//!    harness (`cmm_bench::runner`), not here: a wedged *simulation* is a
//!    harness-level fault, not a substrate one.
//!
//! Everything is deterministic: the jitter stream is seeded splitmix64,
//! state advances only on observed faults, and a run at fault rate zero
//! never triggers any defense — governed zero-rate journals are
//! byte-identical to ungoverned ones (golden-diff pinned in CI, like MBA
//! level 0).

use crate::backend::Detection;
use crate::substrate::Substrate;
use crate::telemetry::{FaultRecord, GovernorEvent};
use cmm_sim::msr::{
    IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MBA_THROTTLE, MSR_MISC_FEATURE_CONTROL,
};
use cmm_sim::system::CoreControl;

/// Register classes the circuit breakers track. Each class maps to one
/// rung of the degradation chain: a dead `Mba` register costs CBP its
/// third resource (→ CMM-a), a dead `Cat` class costs the partitioner
/// (→ Dunn's reset leg → no-op), a dead `Prefetch` class costs the
/// throttle search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// `MSR_MISC_FEATURE_CONTROL` (0x1A4) — the prefetch throttle knob.
    Prefetch,
    /// `IA32_PQR_ASSOC` / `IA32_L3_QOS_MASK_BASE+n` — CAT programming.
    Cat,
    /// `MSR_MBA_THROTTLE` — the bandwidth knob.
    Mba,
}

impl RegClass {
    /// Journal label for the class.
    pub fn label(self) -> &'static str {
        match self {
            RegClass::Prefetch => "prefetch",
            RegClass::Cat => "cat",
            RegClass::Mba => "mba",
        }
    }

    fn index(self) -> usize {
        match self {
            RegClass::Prefetch => 0,
            RegClass::Cat => 1,
            RegClass::Mba => 2,
        }
    }

    /// Classifies a journaled MSR fault by register address. CAT mask
    /// registers occupy a window above `IA32_L3_QOS_MASK_BASE`; anything
    /// unrecognised is unclassified (`None`) and never trips a breaker.
    pub fn of_msr(msr: u32) -> Option<RegClass> {
        match msr {
            MSR_MISC_FEATURE_CONTROL => Some(RegClass::Prefetch),
            IA32_PQR_ASSOC => Some(RegClass::Cat),
            MSR_MBA_THROTTLE => Some(RegClass::Mba),
            m if (IA32_L3_QOS_MASK_BASE..IA32_L3_QOS_MASK_BASE + 128).contains(&m) => {
                Some(RegClass::Cat)
            }
            _ => None,
        }
    }
}

/// Governor tuning. Every field participates in the deterministic state
/// machine; two governors with equal configs and equal fault streams make
/// byte-identical decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Seed of the jitter stream (splitmix64). Entropy is consumed only
    /// when a breaker opens, so fault-free runs never draw.
    pub seed: u64,
    /// Maximum fractional drop of exec hm_ipc below the last-known-good
    /// epoch before the governor rolls the control state back.
    pub rollback_margin: f64,
    /// Profiling epochs a PMU-anomalous core stays quarantined.
    pub quarantine_epochs: u32,
    /// Consecutive hard MSR failures on one register class before its
    /// breaker opens.
    pub breaker_threshold: u32,
    /// Base breaker cooldown in profiling epochs; doubles per trip
    /// (capped at 8× base) — classic exponential backoff.
    pub breaker_cooldown: u32,
    /// Maximum extra cooldown epochs drawn from the seeded jitter stream.
    pub breaker_jitter: u32,
}

impl GovernorConfig {
    /// Production defaults: a 5% regression bound, 3-epoch quarantine,
    /// breakers opening after 2 consecutive hard failures for 4–6 epochs.
    pub fn new(seed: u64) -> Self {
        GovernorConfig {
            seed,
            rollback_margin: 0.05,
            quarantine_epochs: 3,
            breaker_threshold: 2,
            breaker_cooldown: 4,
            breaker_jitter: 2,
        }
    }
}

/// One register class's breaker state.
#[derive(Debug, Clone, Default, PartialEq)]
struct Breaker {
    /// Consecutive hard failures since the last success or trip.
    consecutive: u32,
    /// Remaining profiling epochs the breaker stays open; 0 = closed.
    open_for: u32,
    /// Lifetime trip count (drives the exponential backoff).
    trips: u32,
}

/// The governor state machine. One instance wraps one driver; all state
/// advances deterministically from the observed fault stream.
#[derive(Debug, Clone)]
pub struct Governor {
    cfg: GovernorConfig,
    rng: u64,
    /// Last execution-epoch hm_ipc the governor accepted as healthy.
    last_good: Option<f64>,
    /// Whether the previous epoch observed any substrate fault. Rollback
    /// is only armed while faults are active: natural workload-phase IPC
    /// swings on a healthy machine must never trigger a restore (this is
    /// also what keeps zero-rate runs byte-identical to ungoverned ones).
    fault_active: bool,
    /// Control state captured before the last plan was applied.
    snapshot: Option<Vec<CoreControl>>,
    /// Per-core remaining quarantine epochs; 0 = trusted.
    quarantine: Vec<u32>,
    /// Per-core last trusted classification, as membership bits
    /// (bit 0 = `Agg`, bit 1 = friendly, bit 2 = unfriendly). Reinstated
    /// for quarantined cores by [`Governor::filter_detection`].
    last_class: Vec<u8>,
    breakers: [Breaker; 3],
    events: Vec<GovernorEvent>,
    /// Lifetime rollback count (exposed for tests and summaries).
    rollbacks: u64,
}

impl Governor {
    /// A governor for a `num_cores`-core machine.
    pub fn new(cfg: GovernorConfig, num_cores: usize) -> Self {
        let rng = cfg.seed;
        Governor {
            cfg,
            rng,
            last_good: None,
            fault_active: false,
            snapshot: None,
            quarantine: vec![0; num_cores],
            last_class: vec![0; num_cores],
            breakers: Default::default(),
            events: Vec::new(),
            rollbacks: 0,
        }
    }

    /// The governor's tuning.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Lifetime rollback count.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Advances per-epoch cooldowns: quarantines expire silently, breaker
    /// expiries journal a `breaker_close`. Call once at the top of every
    /// profiling epoch, before classification.
    pub fn begin_epoch(&mut self, cycle: u64) {
        for q in &mut self.quarantine {
            *q = q.saturating_sub(1);
        }
        for (i, b) in self.breakers.iter_mut().enumerate() {
            if b.open_for > 0 {
                b.open_for -= 1;
                if b.open_for == 0 {
                    let class = [RegClass::Prefetch, RegClass::Cat, RegClass::Mba][i];
                    self.events.push(GovernorEvent {
                        cycle,
                        action: "breaker_close",
                        core: None,
                        class: Some(class.label()),
                    });
                }
            }
        }
    }

    /// True while `core`'s PMU stream is untrusted: the driver drops the
    /// core from Agg/friendly/unfriendly sets and throttle search.
    pub fn quarantined(&self, core: usize) -> bool {
        self.quarantine.get(core).is_some_and(|&q| q > 0)
    }

    /// True while `class`'s breaker is closed (operations may proceed).
    pub fn allow(&self, class: RegClass) -> bool {
        self.breakers[class.index()].open_for == 0
    }

    /// Records the control state in force before a plan is applied — the
    /// state [`restore`] reinstates if the verification window regresses.
    pub fn note_snapshot(&mut self, state: Vec<CoreControl>) {
        self.snapshot = Some(state);
    }

    /// The snapshot to restore on rollback, if one was captured.
    pub fn snapshot(&self) -> Option<&[CoreControl]> {
        self.snapshot.as_deref()
    }

    /// Apply-then-verify: given the measured hm_ipc of the execution
    /// epoch that just ran under the last applied plan, decides whether
    /// to roll back. Rollback requires (a) an armed fault state — a
    /// substrate fault observed the epoch before, so a healthy machine
    /// can never regress "past the bound" from workload phase changes
    /// alone — (b) a last-known-good reference, and (c) a captured
    /// snapshot to restore.
    pub fn should_roll_back(&self, exec_hm_ipc: f64) -> bool {
        self.fault_active
            && self.snapshot.is_some()
            && self
                .last_good
                .is_some_and(|good| exec_hm_ipc < good * (1.0 - self.cfg.rollback_margin))
    }

    /// Accepts an execution epoch's hm_ipc as the new last-known-good.
    pub fn accept(&mut self, exec_hm_ipc: f64) {
        if exec_hm_ipc.is_finite() && exec_hm_ipc > 0.0 {
            self.last_good = Some(exec_hm_ipc);
        }
    }

    /// Journals a rollback (the driver performs the [`restore`] itself,
    /// since only it holds the substrate).
    pub fn log_rollback(&mut self, cycle: u64) {
        self.rollbacks += 1;
        self.events.push(GovernorEvent { cycle, action: "rollback", core: None, class: None });
    }

    /// Feeds one epoch's journaled fault stream through the breaker and
    /// quarantine state machines. `cycle` stamps any resulting events.
    pub fn observe_faults(&mut self, faults: &[FaultRecord], cycle: u64) {
        self.fault_active = !faults.is_empty();
        for f in faults {
            match f.kind {
                "msr_rejected" | "msr_error" | "clos_exhausted" => {
                    let class = match f.msr.and_then(RegClass::of_msr) {
                        Some(c) => c,
                        None if f.kind == "clos_exhausted" => RegClass::Cat,
                        None => continue,
                    };
                    let threshold = self.cfg.breaker_threshold;
                    let b = &mut self.breakers[class.index()];
                    if f.action == "gave_up" {
                        b.consecutive += 1;
                        if b.consecutive >= threshold && b.open_for == 0 {
                            self.trip(class, cycle);
                        }
                    } else {
                        // A successful retry proves the register lives.
                        b.consecutive = 0;
                    }
                }
                "pmu_anomaly" => {
                    if let Some(core) = f.core {
                        self.quarantine_core(core, cycle);
                    }
                }
                _ => {}
            }
        }
    }

    /// Quarantines `core` for the configured cooldown (idempotent while
    /// already quarantined — no duplicate event, no cooldown extension).
    fn quarantine_core(&mut self, core: usize, cycle: u64) {
        if core < self.quarantine.len() && !self.quarantined(core) {
            self.quarantine[core] = self.cfg.quarantine_epochs;
            self.events.push(GovernorEvent {
                cycle,
                action: "quarantine",
                core: Some(core),
                class: None,
            });
        }
    }

    /// Scans the fault records a detection pass just produced and
    /// quarantines every core whose sample was flagged implausible
    /// (`pmu_anomaly` with a core attribution, e.g. `zeroed_sample`).
    /// Called by the driver *between* detection and planning, so the
    /// quarantine covers the very epoch that observed the anomaly — by the
    /// next epoch the transient corruption is usually gone and the damage
    /// (a misclassification) already done.
    pub fn observe_detection(&mut self, records: &[FaultRecord], cycle: u64) {
        for f in records {
            if f.kind == "pmu_anomaly" {
                if let Some(core) = f.core {
                    self.quarantine_core(core, cycle);
                }
            }
        }
    }

    /// Governor defense 2: rewrites a fresh [`Detection`] so quarantined
    /// cores keep their last *trusted* classification instead of whatever
    /// the untrusted sample produced, and records the classification of
    /// every trusted core as the new reference. Set order stays ascending,
    /// so downstream plans are deterministic.
    pub fn filter_detection(&mut self, det: &mut Detection) {
        for core in 0..self.quarantine.len() {
            if self.quarantined(core) {
                let bits = self.last_class.get(core).copied().unwrap_or(0);
                set_membership(&mut det.agg, core, bits & 1 != 0);
                set_membership(&mut det.friendly, core, bits & 2 != 0);
                set_membership(&mut det.unfriendly, core, bits & 4 != 0);
            } else {
                self.last_class[core] = u8::from(det.agg.contains(&core))
                    | u8::from(det.friendly.contains(&core)) << 1
                    | u8::from(det.unfriendly.contains(&core)) << 2;
            }
        }
    }

    /// Opens `class`'s breaker: exponential backoff (cooldown ×2 per
    /// trip, capped at 8× base) plus seeded jitter.
    fn trip(&mut self, class: RegClass, cycle: u64) {
        let b = &mut self.breakers[class.index()];
        let backoff = self.cfg.breaker_cooldown << b.trips.min(3);
        let jitter = if self.cfg.breaker_jitter > 0 {
            (splitmix64(&mut self.rng) % (self.cfg.breaker_jitter as u64 + 1)) as u32
        } else {
            0
        };
        b.open_for = backoff + jitter;
        b.trips += 1;
        b.consecutive = 0;
        self.events.push(GovernorEvent {
            cycle,
            action: "breaker_open",
            core: None,
            class: Some(class.label()),
        });
    }

    /// Drains the events accumulated since the last call — the driver
    /// attaches them to the epoch's journal record.
    pub fn take_events(&mut self) -> Vec<GovernorEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Reinstates a captured control state: per core, the prefetcher MSR
/// image, CLOS association + way mask, and the MBA level. Best-effort —
/// a register that faults during restore is skipped (the breaker state
/// machine will see its fault records like any other write's).
pub fn restore<S: Substrate>(sys: &mut S, state: &[CoreControl]) {
    for (core, ctl) in state.iter().enumerate() {
        let _ = sys.write_msr(core, MSR_MISC_FEATURE_CONTROL, ctl.msr_1a4);
        let _ = sys.set_clos_mask(ctl.clos, ctl.way_mask);
        let _ = sys.assign_clos(core, ctl.clos);
        let _ = sys.set_mba_throttle(core, ctl.mba_level);
    }
}

/// Adds or removes `core` from an ascending membership set, preserving
/// order (and determinism) either way.
fn set_membership(set: &mut Vec<usize>, core: usize, member: bool) {
    match (set.iter().position(|&c| c == core), member) {
        (Some(i), false) => {
            set.remove(i);
        }
        (None, true) => {
            let at = set.partition_point(|&c| c < core);
            set.insert(at, core);
        }
        _ => {}
    }
}

/// The jitter stream: splitmix64, the same generator the fault schedule
/// and workload builders use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Idle;
    use cmm_sim::System;

    fn gov() -> Governor {
        Governor::new(GovernorConfig::new(42), 4)
    }

    fn hard_fault(class: RegClass) -> FaultRecord {
        let msr = match class {
            RegClass::Prefetch => MSR_MISC_FEATURE_CONTROL,
            RegClass::Cat => IA32_PQR_ASSOC,
            RegClass::Mba => MSR_MBA_THROTTLE,
        };
        FaultRecord {
            cycle: 0,
            kind: "msr_error",
            core: Some(0),
            msr: Some(msr),
            action: "gave_up",
        }
    }

    #[test]
    fn msr_addresses_classify_to_register_classes() {
        assert_eq!(RegClass::of_msr(MSR_MISC_FEATURE_CONTROL), Some(RegClass::Prefetch));
        assert_eq!(RegClass::of_msr(IA32_PQR_ASSOC), Some(RegClass::Cat));
        assert_eq!(RegClass::of_msr(IA32_L3_QOS_MASK_BASE + 3), Some(RegClass::Cat));
        assert_eq!(RegClass::of_msr(MSR_MBA_THROTTLE), Some(RegClass::Mba));
        assert_eq!(RegClass::of_msr(0x10), None);
    }

    #[test]
    fn rollback_requires_armed_faults_and_a_snapshot() {
        let mut g = gov();
        g.accept(1.0);
        // No faults observed: even a huge regression must not roll back.
        assert!(!g.should_roll_back(0.5));
        g.observe_faults(&[hard_fault(RegClass::Mba)], 10);
        // Faults armed but no snapshot captured yet.
        assert!(!g.should_roll_back(0.5));
        g.note_snapshot(vec![CoreControl { clos: 0, way_mask: 0xFF, msr_1a4: 0, mba_level: 0 }]);
        assert!(g.should_roll_back(0.5));
        // Within the margin: accepted.
        assert!(!g.should_roll_back(0.96));
        // Fault stream went quiet again: disarmed.
        g.observe_faults(&[], 20);
        assert!(!g.should_roll_back(0.5));
    }

    #[test]
    fn accept_ignores_degenerate_samples() {
        let mut g = gov();
        g.accept(f64::NAN);
        g.accept(0.0);
        g.note_snapshot(vec![]);
        g.observe_faults(&[hard_fault(RegClass::Cat)], 0);
        assert!(!g.should_roll_back(0.1), "no last-known-good yet");
        g.accept(2.0);
        g.note_snapshot(vec![CoreControl { clos: 0, way_mask: 1, msr_1a4: 0, mba_level: 0 }]);
        assert!(g.should_roll_back(1.0));
    }

    #[test]
    fn breaker_opens_after_threshold_and_closes_after_cooldown() {
        let mut g = gov();
        assert!(g.allow(RegClass::Mba));
        g.observe_faults(&[hard_fault(RegClass::Mba)], 1);
        assert!(g.allow(RegClass::Mba), "one failure is below the threshold");
        g.observe_faults(&[hard_fault(RegClass::Mba)], 2);
        assert!(!g.allow(RegClass::Mba), "second consecutive failure trips");
        let events = g.take_events();
        assert_eq!(events.iter().filter(|e| e.action == "breaker_open").count(), 1);
        assert_eq!(events.last().unwrap().class, Some("mba"));
        // Other classes are unaffected.
        assert!(g.allow(RegClass::Prefetch));
        assert!(g.allow(RegClass::Cat));
        // Cooldown: 4..=6 epochs at default config, then a close event.
        let mut epochs = 0;
        while !g.allow(RegClass::Mba) {
            g.begin_epoch(100 + epochs);
            epochs += 1;
            assert!(epochs <= 6, "breaker never closed");
        }
        assert!(epochs >= 4, "closed before the base cooldown");
        let events = g.take_events();
        assert_eq!(events.iter().filter(|e| e.action == "breaker_close").count(), 1);
    }

    #[test]
    fn successful_retry_resets_the_consecutive_count() {
        let mut g = gov();
        g.observe_faults(&[hard_fault(RegClass::Prefetch)], 1);
        let mut ok = hard_fault(RegClass::Prefetch);
        ok.kind = "msr_rejected";
        ok.action = "retry_ok";
        g.observe_faults(&[ok], 2);
        g.observe_faults(&[hard_fault(RegClass::Prefetch)], 3);
        assert!(g.allow(RegClass::Prefetch), "retry_ok must reset the streak");
    }

    #[test]
    fn clos_exhaustion_without_an_msr_counts_against_cat() {
        let mut g = gov();
        let f = FaultRecord {
            cycle: 0,
            kind: "clos_exhausted",
            core: None,
            msr: None,
            action: "gave_up",
        };
        g.observe_faults(&[f.clone(), f], 5);
        assert!(!g.allow(RegClass::Cat));
    }

    #[test]
    fn backoff_grows_exponentially_with_trips() {
        let mut cfg = GovernorConfig::new(42);
        cfg.breaker_jitter = 0; // isolate the deterministic backoff
        let mut g = Governor::new(cfg, 1);
        let mut open_spans = Vec::new();
        let mut cycle = 0;
        for _ in 0..3 {
            g.observe_faults(&[hard_fault(RegClass::Mba), hard_fault(RegClass::Mba)], cycle);
            let mut span = 0;
            while !g.allow(RegClass::Mba) {
                g.begin_epoch(cycle);
                cycle += 1;
                span += 1;
            }
            open_spans.push(span);
        }
        assert_eq!(open_spans, vec![4, 8, 16]);
    }

    #[test]
    fn quarantine_excludes_a_core_for_the_cooldown_then_expires() {
        let mut g = gov();
        let f = FaultRecord {
            cycle: 7,
            kind: "pmu_anomaly",
            core: Some(2),
            msr: None,
            action: "zeroed_sample",
        };
        g.observe_faults(std::slice::from_ref(&f), 7);
        assert!(g.quarantined(2));
        assert!(!g.quarantined(0));
        // Re-observing while quarantined does not emit a duplicate event.
        g.observe_faults(&[f], 8);
        let events = g.take_events();
        assert_eq!(events.iter().filter(|e| e.action == "quarantine").count(), 1);
        assert_eq!(events[0].core, Some(2));
        for e in 0..3 {
            assert!(g.quarantined(2), "expired after {e} epochs, want 3");
            g.begin_epoch(10 + e);
        }
        assert!(!g.quarantined(2));
        // Out-of-range cores never quarantine (and never panic).
        assert!(!g.quarantined(99));
    }

    #[test]
    fn quarantined_cores_keep_their_last_trusted_classification() {
        let mut g = gov();
        let det = |agg: &[usize], friendly: &[usize], unfriendly: &[usize]| Detection {
            interval1: Vec::new(),
            agg: agg.to_vec(),
            friendly: friendly.to_vec(),
            unfriendly: unfriendly.to_vec(),
            profiling_cycles: 0,
        };
        // Epoch 1: clean detection establishes the trusted reference.
        let mut d1 = det(&[1, 3], &[1], &[3]);
        g.filter_detection(&mut d1);
        assert_eq!(d1.agg, vec![1, 3], "clean detections pass through");
        // Epoch 2: core 3's sample zeroes out mid-detection, so the fresh
        // classification drops it from Agg — and smuggles core 2 in.
        let anomaly = FaultRecord {
            cycle: 9,
            kind: "pmu_anomaly",
            core: Some(3),
            msr: None,
            action: "zeroed_sample",
        };
        g.observe_detection(&[anomaly], 9);
        let mut d2 = det(&[1, 2], &[1, 2], &[]);
        g.filter_detection(&mut d2);
        assert_eq!(d2.agg, vec![1, 2, 3], "core 3 reinstated from the trusted class");
        assert_eq!(d2.unfriendly, vec![3]);
        assert_eq!(d2.friendly, vec![1, 2], "trusted cores' fresh classes stand");
        // Epoch 3+: quarantine expires, fresh samples are trusted again.
        for c in 0..3 {
            g.begin_epoch(10 + c);
        }
        let mut d3 = det(&[2], &[], &[2]);
        g.filter_detection(&mut d3);
        assert_eq!(d3.agg, vec![2]);
        let events = g.take_events();
        assert_eq!(events.iter().filter(|e| e.action == "quarantine").count(), 1);
    }

    #[test]
    fn identical_fault_streams_produce_identical_governors() {
        let feed = |g: &mut Governor| {
            for c in 0..20u64 {
                g.begin_epoch(c);
                g.observe_faults(&[hard_fault(RegClass::Mba), hard_fault(RegClass::Cat)], c);
                g.accept(1.0 + c as f64 * 0.01);
            }
            g.take_events()
        };
        let mut a = gov();
        let mut b = gov();
        let (ea, eb) = (feed(&mut a), feed(&mut b));
        assert_eq!(ea, eb);
        assert!(!ea.is_empty());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A different seed shifts the jittered cooldowns but the breaker
        // still cycles open/closed deterministically for that seed.
        let mut c = Governor::new(GovernorConfig::new(43), 4);
        let mut d = Governor::new(GovernorConfig::new(43), 4);
        let (ec, ed) = (feed(&mut c), feed(&mut d));
        assert_eq!(ec, ed);
        assert!(ec.iter().any(|e| e.action == "breaker_open"));
    }

    #[test]
    fn restore_reinstates_the_snapshot_on_a_live_substrate() {
        let mut sys =
            System::new(SystemConfig::tiny(2), (0..2).map(|_| Box::new(Idle) as _).collect());
        let clean = Substrate::control_state(&sys);
        Substrate::set_prefetching(&mut sys, 0, false).unwrap();
        Substrate::set_clos_mask(&mut sys, 1, 0b11).unwrap();
        Substrate::assign_clos(&mut sys, 1, 1).unwrap();
        Substrate::set_mba_throttle(&mut sys, 1, 40).unwrap();
        assert_ne!(Substrate::control_state(&sys), clean);
        restore(&mut sys, &clean);
        assert_eq!(Substrate::control_state(&sys), clean);
    }
}
