//! The epoch/sampling scheduler (Fig. 4) — the analogue of the paper's
//! loadable kernel module.
//!
//! Execution is a sequence of *execution epochs*, each preceded by a
//! *profiling epoch* of short sampling intervals in which the front-end
//! detects the `Agg` set and the back-end trials candidate configurations.
//! The winning configuration is applied for the following execution epoch.
//!
//! The controller's own work is charged as
//! [`ControllerConfig::overhead_cycles`] per invocation and reported by
//! [`Driver::overhead_ratio`] — the analogue of the paper's PMU-vs-TSC
//! overhead measurement (<0.1 %).

use crate::backend::{self, cmm, cp, dunn, pt, PartitionPlan};
use crate::frontend::DetectorConfig;
use crate::policy::{ControllerConfig, Mechanism};
use cmm_sim::System;

/// Drives one [`System`] under one [`Mechanism`].
pub struct Driver {
    sys: System,
    mechanism: Mechanism,
    ctrl: ControllerConfig,
    det_cfg: DetectorConfig,
    epochs: u64,
    overhead_cycles: u64,
    /// Agg-set size observed at each profiling epoch (diagnostics).
    agg_history: Vec<usize>,
}

impl Driver {
    /// Wraps a machine. The detector thresholds are taken from `ctrl`.
    pub fn new(sys: System, mechanism: Mechanism, ctrl: ControllerConfig) -> Self {
        ctrl.validate();
        let det_cfg = DetectorConfig {
            pmr_threshold: ctrl.pmr_threshold,
            ptr_threshold: ctrl.ptr_threshold,
            pga_floor: ctrl.pga_floor,
        };
        Driver {
            sys,
            mechanism,
            ctrl,
            det_cfg,
            epochs: 0,
            overhead_cycles: 0,
            agg_history: Vec::new(),
        }
    }

    /// The managed machine.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable access (tests and harnesses).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Consumes the driver, returning the machine.
    pub fn into_system(self) -> System {
        self.sys
    }

    /// Profiling epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `Agg`-set sizes per epoch (empty entries mean no profiling ran,
    /// e.g. for the baseline).
    pub fn agg_history(&self) -> &[usize] {
        &self.agg_history
    }

    /// Fraction of machine time spent in the controller itself.
    pub fn overhead_ratio(&self) -> f64 {
        if self.sys.now() == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.sys.now() as f64
        }
    }

    /// Runs until the machine clock reaches (at least) `total_cycles`,
    /// alternating profiling and execution epochs.
    pub fn run_total(&mut self, total_cycles: u64) {
        let target = self.sys.now() + total_cycles;
        while self.sys.now() < target {
            self.epoch();
            let remaining = target.saturating_sub(self.sys.now());
            let exec = remaining.min(self.ctrl.execution_epoch);
            if exec > 0 {
                self.sys.run(exec);
            }
        }
    }

    /// Runs exactly one profiling epoch (decision + application), without
    /// the following execution epoch. Exposed for tests and examples.
    pub fn epoch(&mut self) {
        self.epochs += 1;
        if self.mechanism != Mechanism::Baseline {
            self.overhead_cycles += self.ctrl.overhead_cycles;
        }
        let n = self.sys.num_cores();
        let ways = self.sys.llc_ways();
        let min_pc = backend::min_ways_per_core(self.sys.config());
        match self.mechanism {
            Mechanism::Baseline => {
                // No control: prefetchers on, flat CAT — enforced once so a
                // baseline run after a managed run is truly uncontrolled.
                backend::apply_prefetch(&mut self.sys, &vec![true; n]);
                self.sys.reset_cat();
            }
            Mechanism::Pt => {
                let out = pt::profile(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(out.detection.agg.len());
            }
            Mechanism::PtFine => {
                let out = pt::profile_fine(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(out.detection.agg.len());
            }
            Mechanism::Dunn => {
                // Dunn observes one all-on interval and clusters stalls.
                backend::apply_prefetch(&mut self.sys, &vec![true; n]);
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let d1 = backend::sample(&mut self.sys, self.ctrl.sampling_interval);
                dunn::dunn_plan(&d1, ways, self.ctrl.dunn_clusters).apply(&mut self.sys);
                self.agg_history.push(0);
            }
            Mechanism::PrefCp | Mechanism::PrefCp2 => {
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let det = backend::detect(&mut self.sys, &self.ctrl, &self.det_cfg);
                let plan = if self.mechanism == Mechanism::PrefCp {
                    cp::pref_cp_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                } else {
                    cp::pref_cp2_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                };
                plan.apply(&mut self.sys);
                self.agg_history.push(det.agg.len());
            }
            Mechanism::CmmA | Mechanism::CmmB | Mechanism::CmmC => {
                let variant = match self.mechanism {
                    Mechanism::CmmA => cmm::Variant::A,
                    Mechanism::CmmB => cmm::Variant::B,
                    _ => cmm::Variant::C,
                };
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let det = backend::detect(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(det.agg.len());
                match cmm::cmm_plan(variant, &det, n, ways, self.ctrl.partition_scale, min_pc) {
                    Some(plan) => {
                        // Coordinated order per the paper: partition first,
                        // then search throttle settings for the unfriendly
                        // cores inside the partitioned machine.
                        plan.apply(&mut self.sys);
                        let groups = backend::throttle_groups(
                            &det.unfriendly,
                            &det.interval1,
                            self.ctrl.exhaustive_limit,
                            self.ctrl.throttle_groups,
                        );
                        backend::search_throttle(
                            &mut self.sys,
                            &groups,
                            self.ctrl.sampling_interval,
                        );
                    }
                    None => {
                        // Fig. 6 (d): empty Agg set ⇒ Dunn partitioning.
                        let d1 = &det.interval1;
                        dunn::dunn_plan(d1, ways, self.ctrl.dunn_clusters).apply(&mut self.sys);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Workload;
    use cmm_workloads::spec;

    fn system_with(names: &[&str]) -> System {
        let cfg = SystemConfig::scaled(names.len());
        let llc = cfg.llc.size_bytes;
        let ws: Vec<Box<dyn Workload + Send>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 11))
                    as Box<dyn Workload + Send>
            })
            .collect();
        System::new(cfg, ws)
    }

    #[test]
    fn baseline_driver_never_partitions_or_throttles() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::Baseline, ControllerConfig::quick());
        drv.run_total(500_000);
        let sys = drv.system();
        for c in 0..4 {
            assert!(sys.prefetching_enabled(c));
            assert_eq!(sys.effective_mask(c), (1 << sys.llc_ways()) - 1);
        }
    }

    #[test]
    fn pref_cp_partitions_the_aggressors() {
        let sys = system_with(&["bwaves3d", "lbm_fluid", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::PrefCp, ControllerConfig::quick());
        drv.run_total(800_000);
        let sys = drv.system();
        let full = (1u64 << sys.llc_ways()) - 1;
        // The two streams must sit in a small partition...
        assert!(sys.effective_mask(0).count_ones() < 20, "{:b}", sys.effective_mask(0));
        assert_eq!(sys.effective_mask(0), sys.effective_mask(1));
        // ...while the neutral cores keep the whole cache.
        assert_eq!(sys.effective_mask(2), full);
        assert_eq!(sys.effective_mask(3), full);
        // CP never throttles.
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
    }

    #[test]
    fn cmm_a_partitions_and_throttles_unfriendly() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let sys = drv.system();
        // Both aggressors (friendly stream + unfriendly random) partitioned.
        assert!(sys.effective_mask(0).count_ones() < 20);
        assert!(sys.effective_mask(1).count_ones() < 20);
        // The friendly stream's prefetchers must stay on — CMM only ever
        // throttles unfriendly cores.
        assert!(sys.prefetching_enabled(0));
        assert!(drv.agg_history().iter().any(|&a| a >= 2), "{:?}", drv.agg_history());
    }

    #[test]
    fn cmm_falls_back_to_dunn_on_empty_agg() {
        let sys = system_with(&["mcf_refine", "omnet_events", "povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.system_mut().run(400_000); // past the cold streaming phase
        drv.epoch();
        // No aggressor: Dunn's nested plan is in force; the most-stalled
        // core has the full mask, and nobody was throttled.
        let sys = drv.system();
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
        let full = (1u64 << sys.llc_ways()) - 1;
        assert!((0..4).any(|c| sys.effective_mask(c) == full));
    }

    #[test]
    fn overhead_is_small() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmC, ControllerConfig::quick());
        drv.run_total(2_000_000);
        assert!(drv.overhead_ratio() < 0.01, "overhead {:.4}", drv.overhead_ratio());
        assert!(drv.epochs() >= 2);
    }

    #[test]
    fn run_total_reaches_target() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Pt, ControllerConfig::quick());
        drv.run_total(300_000);
        assert!(drv.system().now() >= 300_000);
    }
}
