//! The epoch/sampling scheduler (Fig. 4) — the analogue of the paper's
//! loadable kernel module.
//!
//! Execution is a sequence of *execution epochs*, each preceded by a
//! *profiling epoch* of short sampling intervals in which the front-end
//! detects the `Agg` set and the back-end trials candidate configurations.
//! The winning configuration is applied for the following execution epoch.
//!
//! The controller's own work is charged as
//! [`ControllerConfig::overhead_cycles`] per invocation and reported by
//! [`Driver::overhead_ratio`] — the analogue of the paper's PMU-vs-TSC
//! overhead measurement (<0.1 %).
//!
//! The driver is generic over the [`Substrate`] it manages and **degrades
//! gracefully** when the substrate misbehaves: transiently rejected MSR
//! writes are retried (see [`backend::write_msr_logged`]), a CAT plan that
//! cannot be programmed makes the epoch retreat CMM → Dunn → no-op
//! (always via the infallible [`Substrate::reset_cat`] safe state first),
//! and every observed fault plus the chosen degradation lands in the
//! epoch's [`EpochRecord::faults`] / [`EpochRecord::degraded`] telemetry.

use crate::backend::{self, cbp, cmm, cp, dunn, pt, PartitionPlan};
use crate::frontend::DetectorConfig;
use crate::governor::{self, Governor, GovernorConfig, RegClass};
use crate::learned::{self, Learner};
use crate::policy::{ControllerConfig, Mechanism};
use crate::substrate::Substrate;
use crate::telemetry::{CoreSample, EpochRecord, FaultRecord, Trial};
use cmm_sim::msr;
use cmm_sim::pmu::{Pmu, PmuDelta};
use cmm_sim::System;

/// The register images of an RL-CBP action held in force across stretched
/// execution epochs (the learned epoch-length knob), per CAT domain.
struct RlHold {
    /// Execution epochs the action still has to run before re-planning.
    skip: u64,
    /// Domain-local MSR 0x1A4 image to re-assert after a shared detection
    /// interval turned every prefetcher back on.
    pf_image: Vec<u64>,
    /// Domain-local MBA levels to re-assert.
    mba_image: Vec<u64>,
    /// The held action's journal label.
    label: String,
}

/// Drives one [`Substrate`] under one [`Mechanism`].
pub struct Driver<S: Substrate = System> {
    sys: S,
    mechanism: Mechanism,
    ctrl: ControllerConfig,
    det_cfg: DetectorConfig,
    epochs: u64,
    overhead_cycles: u64,
    /// Agg-set size observed at each profiling epoch (diagnostics).
    agg_history: Vec<usize>,
    /// Full per-epoch decision telemetry (see [`crate::telemetry`]).
    records: Vec<EpochRecord>,
    /// `(cycle, pmus)` at the end of the previous `epoch()` call — the
    /// baseline the next epoch measures its execution-epoch IPC against.
    exec_anchor: Option<(u64, Vec<Pmu>)>,
    /// `exec_hm_ipc` of the previous epoch's record, for the delta.
    prev_exec_hm: Option<f64>,
    /// Multi-socket analogue of `prev_exec_hm`: one entry per CAT domain,
    /// sized lazily on the first multi-socket epoch.
    prev_exec_hm_dom: Vec<Option<f64>>,
    /// The safety governor, when attached ([`Driver::with_governor`]).
    /// `None` leaves every epoch byte-identical to the ungoverned driver.
    governor: Option<Governor>,
    /// The learned controller, when attached ([`Driver::with_learner`]).
    /// Without one, ML-Sel and RL-CBP degrade every epoch to the CMM-a
    /// search.
    learner: Option<Learner>,
    /// Per-domain stretched-action state for RL-CBP (index 0 on a
    /// single-socket machine), sized lazily on the first RL epoch.
    rl_hold: Vec<Option<RlHold>>,
}

impl<S: Substrate> Driver<S> {
    /// Wraps a machine. The detector thresholds are taken from `ctrl`.
    pub fn new(sys: S, mechanism: Mechanism, ctrl: ControllerConfig) -> Self {
        ctrl.validate();
        let det_cfg = DetectorConfig {
            pmr_threshold: ctrl.pmr_threshold,
            ptr_threshold: ctrl.ptr_threshold,
            pga_floor: ctrl.pga_floor,
        };
        Driver {
            sys,
            mechanism,
            ctrl,
            det_cfg,
            epochs: 0,
            overhead_cycles: 0,
            agg_history: Vec::new(),
            records: Vec::new(),
            exec_anchor: None,
            prev_exec_hm: None,
            prev_exec_hm_dom: Vec::new(),
            governor: None,
            learner: None,
            rl_hold: Vec::new(),
        }
    }

    /// Attaches a safety governor (see [`crate::governor`]): every
    /// subsequent epoch verifies the applied plan against the last-known-
    /// good hm_ipc (rolling back on regression under faults), drops
    /// quarantined cores from classification, and consults the circuit
    /// breakers before touching a register class. At fault rate zero none
    /// of the defenses ever fire and the run stays byte-identical to an
    /// ungoverned one.
    pub fn with_governor(mut self, cfg: GovernorConfig) -> Self {
        let cores = self.sys.num_cores();
        self.governor = Some(Governor::new(cfg, cores));
        self
    }

    /// The attached governor, if any (tests and run summaries).
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_ref()
    }

    /// Attaches a learned controller (see [`crate::learned`]): ML-Sel
    /// consults it as its phase classifier, RL-CBP as its bandit policy.
    /// Without a learner both mechanisms degrade every epoch to the CMM-a
    /// search, journaled as `fallback_cmm_a`.
    pub fn with_learner(mut self, learner: Learner) -> Self {
        self.learner = Some(learner);
        self
    }

    /// The attached learner, if any (tests and run summaries).
    pub fn learner(&self) -> Option<&Learner> {
        self.learner.as_ref()
    }

    /// The managed machine.
    pub fn system(&self) -> &S {
        &self.sys
    }

    /// Mutable access (tests and harnesses).
    pub fn system_mut(&mut self) -> &mut S {
        &mut self.sys
    }

    /// Consumes the driver, returning the machine.
    pub fn into_system(self) -> S {
        self.sys
    }

    /// Profiling epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `Agg`-set sizes per epoch (empty entries mean no profiling ran,
    /// e.g. for the baseline).
    pub fn agg_history(&self) -> &[usize] {
        &self.agg_history
    }

    /// Per-epoch decision telemetry recorded so far, in epoch order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Drains the recorded telemetry (harnesses call this once per run to
    /// move the records into the run journal).
    pub fn take_records(&mut self) -> Vec<EpochRecord> {
        std::mem::take(&mut self.records)
    }

    /// Fraction of machine time spent in the controller itself.
    pub fn overhead_ratio(&self) -> f64 {
        if self.sys.now() == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.sys.now() as f64
        }
    }

    /// Runs until the machine clock reaches (at least) `total_cycles`,
    /// alternating profiling and execution epochs.
    pub fn run_total(&mut self, total_cycles: u64) {
        let target = self.sys.now() + total_cycles;
        while self.sys.now() < target {
            self.epoch();
            let remaining = target.saturating_sub(self.sys.now());
            let exec = remaining.min(self.ctrl.execution_epoch);
            if exec > 0 {
                self.sys.run(exec);
            }
        }
    }

    /// Runs exactly one profiling epoch (decision + application), without
    /// the following execution epoch. Exposed for tests and examples.
    /// Every epoch appends one [`EpochRecord`] to [`Driver::records`].
    ///
    /// Never panics on substrate faults: unrecoverable CAT failures make
    /// the epoch retreat CMM → Dunn → no-op (flat CAT via `reset_cat`),
    /// recording the chosen degradation in the epoch's telemetry.
    ///
    /// On a single-socket machine the epoch runs the original whole-machine
    /// controller and appends one record (`domain: None`). On a multi-socket
    /// machine it runs one controller instance per CAT domain (see
    /// [`Driver::epoch_multi`]) and appends one record per domain.
    pub fn epoch(&mut self) {
        if self.sys.config().topology.is_single() {
            self.epoch_single()
        } else {
            self.epoch_multi()
        }
    }

    /// The original whole-machine profiling epoch (single CAT domain).
    fn epoch_single(&mut self) {
        self.epochs += 1;
        let epoch_start = self.sys.now();
        let mut log: Vec<FaultRecord> = Vec::new();
        // How did the execution epoch we just finished actually perform?
        let exec_hm_ipc = match self.exec_anchor.take() {
            Some((anchor_cycle, anchor)) if self.sys.now() > anchor_cycle => {
                let current = backend::pmu_read_stable(&mut self.sys, &mut log);
                let deltas: Vec<PmuDelta> =
                    current.iter().zip(anchor).map(|(&c, a)| c - a).collect();
                Some(backend::sample_hm_ipc(&deltas))
            }
            _ => None,
        };
        let exec_ipc_delta = match (exec_hm_ipc, self.prev_exec_hm) {
            (Some(cur), Some(prev)) => Some(cur - prev),
            _ => None,
        };
        if exec_hm_ipc.is_some() {
            self.prev_exec_hm = exec_hm_ipc;
        }
        // Governor defense 1 (apply-then-verify): the execution epoch that
        // just ran is the verification window of the previously applied
        // plan. A regression past the bound — only ever while substrate
        // faults are active — restores the pre-plan snapshot and skips
        // this epoch's profiling, letting the last-known-good state run
        // one more execution epoch instead of re-planning from
        // fault-tainted telemetry.
        let mut rolled_back = false;
        if let Some(g) = self.governor.as_mut() {
            g.begin_epoch(epoch_start);
            if let Some(hm) = exec_hm_ipc {
                if g.should_roll_back(hm) {
                    if let Some(snap) = g.snapshot() {
                        governor::restore(&mut self.sys, snap);
                    }
                    g.log_rollback(epoch_start);
                    log.push(FaultRecord {
                        cycle: epoch_start,
                        kind: "degraded",
                        core: None,
                        msr: None,
                        action: "kept_last_good",
                    });
                    rolled_back = true;
                } else {
                    g.accept(hm);
                    g.note_snapshot(self.sys.control_state());
                }
            } else {
                g.note_snapshot(self.sys.control_state());
            }
        }
        if self.mechanism != Mechanism::Baseline {
            self.overhead_cycles += self.ctrl.overhead_cycles;
        }
        let n = self.sys.num_cores();
        let ways = self.sys.llc_ways();
        let min_pc = backend::min_ways_per_core(self.sys.config());
        // Per-branch decision data, folded into one record at the end.
        let mut cores: Vec<CoreSample> = Vec::new();
        let mut agg: Vec<usize> = Vec::new();
        let mut friendly: Vec<usize> = Vec::new();
        let mut unfriendly: Vec<usize> = Vec::new();
        let mut trials: Vec<Trial> = Vec::new();
        let mut winner: Option<usize> = None;
        let mut degraded: Option<&'static str> = None;
        let mut features_vec: Vec<f64> = Vec::new();
        let mut action_lbl: Option<String> = None;
        match self.mechanism {
            // A rollback epoch runs the restored last-good state for one
            // more execution epoch: no profiling, no re-plan.
            _ if rolled_back => {}
            Mechanism::Baseline => {
                // No control: prefetchers on, flat CAT — enforced once so a
                // baseline run after a managed run is truly uncontrolled.
                backend::apply_prefetch_logged(&mut self.sys, &vec![true; n], &mut log);
                self.sys.reset_cat();
            }
            Mechanism::Pt => {
                let out = pt::profile(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                self.agg_history.push(out.detection.agg.len());
                cores = samples_of(&out.detection.interval1);
                agg = out.detection.agg;
                friendly = out.detection.friendly;
                unfriendly = out.detection.unfriendly;
                trials = out.trials;
                winner = out.winner;
            }
            Mechanism::PtFine => {
                let out = pt::profile_fine(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                self.agg_history.push(out.detection.agg.len());
                cores = samples_of(&out.detection.interval1);
                agg = out.detection.agg;
                friendly = out.detection.friendly;
                unfriendly = out.detection.unfriendly;
                trials = out.trials;
                winner = out.winner;
            }
            Mechanism::Dunn => {
                // Dunn observes one all-on interval and clusters stalls.
                backend::apply_prefetch_logged(&mut self.sys, &vec![true; n], &mut log);
                if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                }
                let d1 =
                    backend::sample_logged(&mut self.sys, self.ctrl.sampling_interval, &mut log);
                let plan = dunn::dunn_plan(&d1, ways, self.ctrl.dunn_clusters);
                if plan.apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                    degraded = Some(degrade(&mut log, self.sys.now(), "fallback_noop"));
                }
                self.agg_history.push(0);
                cores = samples_of(&d1);
            }
            Mechanism::PrefCp | Mechanism::PrefCp2 => {
                if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                }
                let det =
                    backend::detect_logged(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                let plan = if self.mechanism == Mechanism::PrefCp {
                    cp::pref_cp_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                } else {
                    cp::pref_cp2_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                };
                if plan.apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                    degraded = Some(degrade(&mut log, self.sys.now(), "fallback_noop"));
                }
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
            Mechanism::Mba => {
                // Bandwidth-only ablation: prefetchers on, flat CAT, MBA
                // delay-level search over the aggressor throttle groups.
                if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                }
                let det =
                    backend::detect_logged(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                if cbp::mba_available(&mut self.sys, 0, &mut log) {
                    let groups = backend::throttle_groups(
                        &det.agg,
                        &det.interval1,
                        self.ctrl.exhaustive_limit,
                        self.ctrl.throttle_groups,
                    );
                    // detect_logged leaves every prefetcher on.
                    let search = cbp::search_mba_levels_in(
                        &mut self.sys,
                        &groups,
                        &cbp::MBA_LEVELS,
                        &vec![0u64; n],
                        self.ctrl.sampling_interval,
                        &mut log,
                        0,
                        n,
                    );
                    trials = search.trials;
                    winner = search.winner;
                } else {
                    // No bandwidth knob: nothing left for the bandwidth-only
                    // mechanism to do.
                    degraded = Some(degrade(&mut log, self.sys.now(), "fallback_noop"));
                }
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
            Mechanism::CmmA | Mechanism::CmmB | Mechanism::CmmC | Mechanism::Cbp => {
                let variant = match self.mechanism {
                    Mechanism::CmmB => cmm::Variant::B,
                    Mechanism::CmmC => cmm::Variant::C,
                    // CMM-a and CBP share the paper's plan (a); CBP layers
                    // the MBA search on top of it below.
                    _ => cmm::Variant::A,
                };
                if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                }
                let det_log_start = log.len();
                let mut det =
                    backend::detect_logged(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                // Governor defense 2: a core whose detection sample was
                // flagged implausible is quarantined on the spot and keeps
                // its last trusted classification, so one lying counter
                // cannot steer this epoch's plan or the searches.
                if let Some(g) = self.governor.as_mut() {
                    g.observe_detection(&log[det_log_start..], self.sys.now());
                    g.filter_detection(&mut det);
                }
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                // Governor defense 3: consult the breakers before paying a
                // known-dead register class's per-epoch retry tax.
                let allow_pf = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Prefetch));
                let allow_cat = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Cat));
                let allow_mba = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Mba));
                match cmm::cmm_plan(variant, &det, n, ways, self.ctrl.partition_scale, min_pc) {
                    _ if !allow_cat => {
                        // CAT's breaker is open: every partition plan is
                        // doomed, so stop paying its per-epoch retry tax —
                        // but the prefetch and MBA register classes may
                        // well be alive, and for a prefetch-aggressive mix
                        // they carry most of the mechanism's value. Pin a
                        // throttle-only degradation over the flat (reset)
                        // cache until the breaker closes.
                        self.sys.reset_cat();
                        degraded = Some(degrade(&mut log, self.sys.now(), "fallback_throttle"));
                        let mut pf_image = vec![0u64; n];
                        if allow_pf {
                            let groups = backend::throttle_groups(
                                &det.unfriendly,
                                &det.interval1,
                                self.ctrl.exhaustive_limit,
                                self.ctrl.throttle_groups,
                            );
                            let search = backend::search_throttle(
                                &mut self.sys,
                                &groups,
                                self.ctrl.sampling_interval,
                                &mut log,
                            );
                            pf_image =
                                search.best.iter().map(|&on| if on { 0x0 } else { 0xF }).collect();
                            trials = search.trials;
                            winner = search.winner;
                        }
                        if self.mechanism == Mechanism::Cbp
                            && allow_mba
                            && cbp::mba_available(&mut self.sys, 0, &mut log)
                        {
                            let mba_groups = backend::throttle_groups(
                                &det.agg,
                                &det.interval1,
                                self.ctrl.exhaustive_limit,
                                self.ctrl.throttle_groups,
                            );
                            let msearch = cbp::search_mba_levels_in(
                                &mut self.sys,
                                &mba_groups,
                                &cbp::MBA_LEVELS,
                                &pf_image,
                                self.ctrl.sampling_interval,
                                &mut log,
                                0,
                                n,
                            );
                            if let Some(w) = msearch.winner {
                                winner = Some(trials.len() + w);
                            }
                            trials.extend(msearch.trials);
                        }
                    }
                    Some(plan) => {
                        // Coordinated order per the paper: partition first,
                        // then search throttle settings for the unfriendly
                        // cores inside the partitioned machine.
                        if plan.apply(&mut self.sys, &mut log).is_ok() {
                            // detect_logged leaves every prefetcher on; if
                            // the prefetch breaker is open the search is
                            // skipped and that all-on image stands.
                            let mut pf_image = vec![0u64; n];
                            if allow_pf {
                                let groups = backend::throttle_groups(
                                    &det.unfriendly,
                                    &det.interval1,
                                    self.ctrl.exhaustive_limit,
                                    self.ctrl.throttle_groups,
                                );
                                let search = backend::search_throttle(
                                    &mut self.sys,
                                    &groups,
                                    self.ctrl.sampling_interval,
                                    &mut log,
                                );
                                pf_image = search
                                    .best
                                    .iter()
                                    .map(|&on| if on { 0x0 } else { 0xF })
                                    .collect();
                                trials = search.trials;
                                winner = search.winner;
                            }
                            if self.mechanism == Mechanism::Cbp {
                                // The hierarchical third stage: with the
                                // prefetch winner and partition in force,
                                // search MBA delay levels for the whole
                                // Agg set. Without the knob, CBP is
                                // exactly CMM-a.
                                if allow_mba && cbp::mba_available(&mut self.sys, 0, &mut log) {
                                    let mba_groups = backend::throttle_groups(
                                        &det.agg,
                                        &det.interval1,
                                        self.ctrl.exhaustive_limit,
                                        self.ctrl.throttle_groups,
                                    );
                                    let msearch = cbp::search_mba_levels_in(
                                        &mut self.sys,
                                        &mba_groups,
                                        &cbp::MBA_LEVELS,
                                        &pf_image,
                                        self.ctrl.sampling_interval,
                                        &mut log,
                                        0,
                                        n,
                                    );
                                    if let Some(w) = msearch.winner {
                                        winner = Some(trials.len() + w);
                                    }
                                    trials.extend(msearch.trials);
                                } else {
                                    degraded =
                                        Some(degrade(&mut log, self.sys.now(), "fallback_cmm_a"));
                                }
                            }
                        } else {
                            // The coordinated plan could not be programmed
                            // (e.g. CLOS exhaustion). Back out to the safe
                            // state, then retreat down the chain: try the
                            // less CLOS-hungry Dunn plan; if even that
                            // fails, stay flat (no-op). Throttle search is
                            // skipped — coordinated throttling without its
                            // partition is not the mechanism the paper
                            // evaluates.
                            self.sys.reset_cat();
                            degraded = Some(degrade(&mut log, self.sys.now(), "fallback_dunn"));
                            let plan =
                                dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters);
                            if plan.apply(&mut self.sys, &mut log).is_err() {
                                self.sys.reset_cat();
                                degraded = Some(degrade(&mut log, self.sys.now(), "fallback_noop"));
                            }
                        }
                    }
                    None => {
                        // Fig. 6 (d): empty Agg set ⇒ Dunn partitioning.
                        let plan = dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters);
                        if plan.apply(&mut self.sys, &mut log).is_err() {
                            self.sys.reset_cat();
                            degraded = Some(degrade(&mut log, self.sys.now(), "fallback_noop"));
                        }
                    }
                }
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
            Mechanism::MlSel => {
                if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                    self.sys.reset_cat();
                }
                let det_log_start = log.len();
                let mut det =
                    backend::detect_logged(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                if let Some(g) = self.governor.as_mut() {
                    g.observe_detection(&log[det_log_start..], self.sys.now());
                    g.filter_detection(&mut det);
                }
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                features_vec = learned::mean_features(&det.interval1);
                let allow_pf = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Prefetch));
                let allow_cat = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Cat));
                // Classify every core; the epoch trusts the model only if
                // its *least* confident per-core posterior clears the floor.
                let image: Option<Vec<u64>> = match &self.learner {
                    Some(Learner::Ml { model, floor }) => {
                        let preds: Vec<_> = det
                            .interval1
                            .iter()
                            .map(|d| model.predict(&learned::core_features(d)))
                            .collect();
                        let min_conf =
                            preds.iter().map(|p| p.confidence).fold(f64::INFINITY, f64::min);
                        (min_conf >= *floor)
                            .then(|| preds.iter().map(|p| model.labels[p.class]).collect())
                    }
                    _ => None,
                };
                match image {
                    Some(image) => {
                        // The zero-trial epoch: CMM-a's partition plan plus
                        // the classifier's per-core prefetch image — no
                        // profiling search at all.
                        if allow_cat {
                            match cmm::cmm_plan(
                                cmm::Variant::A,
                                &det,
                                n,
                                ways,
                                self.ctrl.partition_scale,
                                min_pc,
                            ) {
                                Some(plan) => {
                                    if plan.apply(&mut self.sys, &mut log).is_err() {
                                        self.sys.reset_cat();
                                        degraded = Some(degrade(
                                            &mut log,
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                }
                                None => {
                                    // Empty Agg set ⇒ Dunn, as in CMM.
                                    let plan = dunn::dunn_plan(
                                        &det.interval1,
                                        ways,
                                        self.ctrl.dunn_clusters,
                                    );
                                    if plan.apply(&mut self.sys, &mut log).is_err() {
                                        self.sys.reset_cat();
                                        degraded = Some(degrade(
                                            &mut log,
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                }
                            }
                        } else {
                            self.sys.reset_cat();
                            degraded = Some(degrade(&mut log, self.sys.now(), "fallback_throttle"));
                        }
                        if allow_pf {
                            for (c, &img) in image.iter().enumerate() {
                                let _ = backend::write_msr_logged(
                                    &mut self.sys,
                                    c,
                                    msr::MSR_MISC_FEATURE_CONTROL,
                                    img,
                                    &mut log,
                                );
                            }
                        }
                        action_lbl = Some(pf_label(&image));
                    }
                    None => {
                        // Below the confidence floor (or no model loaded):
                        // this epoch runs the full CMM-a search instead.
                        degraded = Some(degrade(&mut log, self.sys.now(), "fallback_cmm_a"));
                        action_lbl = Some("fallback_cmm_a".into());
                        let (t, w, d) = self.cmm_a_leg(&det, &mut log, allow_pf, allow_cat);
                        trials = t;
                        winner = w;
                        if d.is_some() {
                            degraded = d;
                        }
                    }
                }
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
            Mechanism::RlCbp => {
                if self.rl_hold.is_empty() {
                    self.rl_hold.push(None);
                }
                // Credit the action in force with the execution epoch's
                // hm_ipc delta before picking the next one.
                if let Some(Learner::Rl(rl)) = self.learner.as_mut() {
                    if let Some(delta) = exec_ipc_delta {
                        rl.bandit_mut(0).observe(delta);
                    }
                }
                let holding = matches!(&self.rl_hold[0], Some(h) if h.skip > 0);
                if holding {
                    // A stretched action stays in force: no profiling, no
                    // re-plan — the learned epoch-length knob.
                    let h = self.rl_hold[0].as_mut().unwrap();
                    h.skip -= 1;
                    action_lbl = Some(format!("hold:{}", h.label));
                } else {
                    if PartitionPlan::flat(n, ways).apply(&mut self.sys, &mut log).is_err() {
                        self.sys.reset_cat();
                    }
                    let det_log_start = log.len();
                    let mut det =
                        backend::detect_logged(&mut self.sys, &self.ctrl, &self.det_cfg, &mut log);
                    if let Some(g) = self.governor.as_mut() {
                        g.observe_detection(&log[det_log_start..], self.sys.now());
                        g.filter_detection(&mut det);
                    }
                    self.agg_history.push(det.agg.len());
                    cores = samples_of(&det.interval1);
                    features_vec = learned::mean_features(&det.interval1);
                    let allow_pf =
                        self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Prefetch));
                    let allow_cat = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Cat));
                    let allow_mba = self.governor.as_ref().is_none_or(|g| g.allow(RegClass::Mba));
                    let chosen = match self.learner.as_mut() {
                        Some(Learner::Rl(rl)) => {
                            let b = rl.bandit_mut(0);
                            // A quiet machine gives the bandit nothing to
                            // throttle and no usable reward — exploit the
                            // incumbent instead of burning an exploration
                            // step it can never evaluate.
                            Some(if det.agg.is_empty() {
                                b.exploit(learned::state_of(&det))
                            } else {
                                b.select(learned::state_of(&det))
                            })
                        }
                        _ => None,
                    };
                    match chosen {
                        Some(a) => {
                            let act = learned::decode_action(a);
                            if act.cat_cmm {
                                if allow_cat {
                                    let plan = cmm::cmm_plan(
                                        cmm::Variant::A,
                                        &det,
                                        n,
                                        ways,
                                        self.ctrl.partition_scale,
                                        min_pc,
                                    )
                                    .unwrap_or_else(|| {
                                        // Fig. 6 (d), same as a CMM-a
                                        // epoch: empty Agg set ⇒ Dunn.
                                        dunn::dunn_plan(
                                            &det.interval1,
                                            ways,
                                            self.ctrl.dunn_clusters,
                                        )
                                    });
                                    if plan.apply(&mut self.sys, &mut log).is_err() {
                                        self.sys.reset_cat();
                                        degraded = Some(degrade(
                                            &mut log,
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                } else {
                                    self.sys.reset_cat();
                                    degraded = Some(degrade(
                                        &mut log,
                                        self.sys.now(),
                                        "fallback_throttle",
                                    ));
                                }
                            }
                            let mut pf_image = vec![0u64; n];
                            for &c in &det.unfriendly {
                                pf_image[c] = act.pf;
                            }
                            if allow_pf {
                                for (c, &img) in pf_image.iter().enumerate() {
                                    let _ = backend::write_msr_logged(
                                        &mut self.sys,
                                        c,
                                        msr::MSR_MISC_FEATURE_CONTROL,
                                        img,
                                        &mut log,
                                    );
                                }
                            }
                            let mut mba_image = vec![0u64; n];
                            for &c in &det.agg {
                                mba_image[c] = act.mba;
                            }
                            if allow_mba && cbp::mba_available(&mut self.sys, 0, &mut log) {
                                for (c, &lvl) in mba_image.iter().enumerate() {
                                    let _ = backend::write_msr_logged(
                                        &mut self.sys,
                                        c,
                                        msr::MSR_MBA_THROTTLE,
                                        lvl,
                                        &mut log,
                                    );
                                }
                            }
                            let label = learned::action_label(&act);
                            action_lbl = Some(label.clone());
                            self.rl_hold[0] =
                                Some(RlHold { skip: act.stretch - 1, pf_image, mba_image, label });
                        }
                        None => {
                            // No policy attached: the full CMM-a epoch.
                            degraded = Some(degrade(&mut log, self.sys.now(), "fallback_cmm_a"));
                            action_lbl = Some("fallback_cmm_a".into());
                            let (t, w, d) = self.cmm_a_leg(&det, &mut log, allow_pf, allow_cat);
                            trials = t;
                            winner = w;
                            if d.is_some() {
                                degraded = d;
                            }
                        }
                    }
                    agg = det.agg;
                    friendly = det.friendly;
                    unfriendly = det.unfriendly;
                }
            }
        }
        // Anchor for the next epoch's execution-IPC measurement.
        let anchor = backend::pmu_read_stable(&mut self.sys, &mut log);
        self.exec_anchor = Some((self.sys.now(), anchor));
        // Feed the epoch's fault stream through the breaker/quarantine
        // state machines and collect the interventions for the journal.
        let gov_events = match self.governor.as_mut() {
            Some(g) => {
                g.observe_faults(&log, self.sys.now());
                g.take_events()
            }
            None => Vec::new(),
        };
        self.records.push(EpochRecord {
            epoch: self.epochs,
            cycle: epoch_start,
            mechanism: self.mechanism.label(),
            domain: None,
            cores,
            agg,
            friendly,
            unfriendly,
            trials,
            winner,
            exec_hm_ipc,
            exec_ipc_delta,
            faults: log,
            degraded,
            governor: gov_events,
            features: features_vec,
            action: action_lbl,
            applied: self.sys.control_state(),
        });
    }

    /// The CMM-a plan + throttle search the learned mechanisms retreat to
    /// (ML-Sel below its confidence floor, RL-CBP without a policy). A
    /// deliberate duplicate of the `CmmA` arm's plan path, kept separate so
    /// the legacy arm's journal output stays byte-identical.
    fn cmm_a_leg(
        &mut self,
        det: &backend::Detection,
        log: &mut Vec<FaultRecord>,
        allow_pf: bool,
        allow_cat: bool,
    ) -> (Vec<Trial>, Option<usize>, Option<&'static str>) {
        let n = self.sys.num_cores();
        let ways = self.sys.llc_ways();
        let min_pc = backend::min_ways_per_core(self.sys.config());
        let mut degraded = None;
        if !allow_cat {
            self.sys.reset_cat();
            degraded = Some(degrade(log, self.sys.now(), "fallback_throttle"));
        } else {
            match cmm::cmm_plan(cmm::Variant::A, det, n, ways, self.ctrl.partition_scale, min_pc) {
                Some(plan) => {
                    if plan.apply(&mut self.sys, log).is_err() {
                        // Same retreat chain as CMM-a: Dunn, then no-op —
                        // and no throttle search without the partition.
                        self.sys.reset_cat();
                        degraded = Some(degrade(log, self.sys.now(), "fallback_dunn"));
                        let plan = dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters);
                        if plan.apply(&mut self.sys, log).is_err() {
                            self.sys.reset_cat();
                            degraded = Some(degrade(log, self.sys.now(), "fallback_noop"));
                        }
                        return (Vec::new(), None, degraded);
                    }
                }
                None => {
                    // Empty Agg set ⇒ Dunn partitioning, nothing to search.
                    let plan = dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters);
                    if plan.apply(&mut self.sys, log).is_err() {
                        self.sys.reset_cat();
                        degraded = Some(degrade(log, self.sys.now(), "fallback_noop"));
                    }
                    return (Vec::new(), None, degraded);
                }
            }
        }
        if allow_pf {
            let groups = backend::throttle_groups(
                &det.unfriendly,
                &det.interval1,
                self.ctrl.exhaustive_limit,
                self.ctrl.throttle_groups,
            );
            let search =
                backend::search_throttle(&mut self.sys, &groups, self.ctrl.sampling_interval, log);
            (search.trials, search.winner, degraded)
        } else {
            (Vec::new(), None, degraded)
        }
    }

    /// [`Driver::cmm_a_leg`] scoped to one CAT domain (the multi-socket
    /// learned fallback). The governor is single-socket scoped, so there
    /// are no breaker gates here — matching the legacy multi-socket arms.
    fn cmm_a_leg_at(
        &mut self,
        det: &backend::Detection,
        d: usize,
        base: usize,
        len: usize,
        ways: u32,
        dlog: &mut Vec<FaultRecord>,
    ) -> (Vec<Trial>, Option<usize>, Option<&'static str>) {
        let min_pc = backend::min_ways_per_core(self.sys.config());
        let mut degraded = None;
        match cmm::cmm_plan(cmm::Variant::A, det, len, ways, self.ctrl.partition_scale, min_pc) {
            Some(plan) => {
                if plan.offset(base).apply_at(&mut self.sys, base, dlog).is_err() {
                    self.sys.reset_cat_domain(d);
                    degraded = Some(degrade(dlog, self.sys.now(), "fallback_dunn"));
                    let plan =
                        dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters).offset(base);
                    if plan.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                        degraded = Some(degrade(dlog, self.sys.now(), "fallback_noop"));
                    }
                    return (Vec::new(), None, degraded);
                }
            }
            None => {
                let plan =
                    dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters).offset(base);
                if plan.apply_at(&mut self.sys, base, dlog).is_err() {
                    self.sys.reset_cat_domain(d);
                    degraded = Some(degrade(dlog, self.sys.now(), "fallback_noop"));
                }
                return (Vec::new(), None, degraded);
            }
        }
        let groups = globalize(
            backend::throttle_groups(
                &det.unfriendly,
                &det.interval1,
                self.ctrl.exhaustive_limit,
                self.ctrl.throttle_groups,
            ),
            base,
        );
        let search = backend::search_throttle_in(
            &mut self.sys,
            &groups,
            self.ctrl.sampling_interval,
            dlog,
            base,
            len,
        );
        (search.trials, search.winner, degraded)
    }

    /// One profiling epoch on a multi-socket machine: one controller
    /// instance per CAT domain, run "concurrently" — the detection
    /// intervals are shared across domains (two machine-wide samples total,
    /// see [`backend::detect_domains_logged`]), then each domain makes and
    /// applies its own decision against its socket's CAT state and cores.
    /// Throttle-search trial intervals do run per domain in sequence (each
    /// trial must measure its own domain undisturbed), which is also how
    /// independent per-socket daemons would interleave in wall-clock time.
    ///
    /// Appends one [`EpochRecord`] per domain, all stamped with this
    /// epoch's index and start cycle. Faults are attributed to the domain
    /// whose controller section observed them; machine-wide faults with a
    /// core id are routed to that core's domain, core-less ones to domain 0.
    fn epoch_multi(&mut self) {
        self.epochs += 1;
        let epoch_start = self.sys.now();
        let topo = self.sys.config().topology;
        let domains = topo.sockets;
        let len = topo.cores_per_socket;
        let mut log: Vec<FaultRecord> = Vec::new();
        let mut dom_logs: Vec<Vec<FaultRecord>> = vec![Vec::new(); domains];
        // How did the execution epoch each domain just finished perform?
        let exec_hms: Vec<Option<f64>> = match self.exec_anchor.take() {
            Some((anchor_cycle, anchor)) if self.sys.now() > anchor_cycle => {
                let current = backend::pmu_read_stable(&mut self.sys, &mut log);
                let deltas: Vec<PmuDelta> =
                    current.iter().zip(anchor).map(|(&c, a)| c - a).collect();
                (0..domains)
                    .map(|d| Some(backend::sample_hm_ipc(&deltas[d * len..(d + 1) * len])))
                    .collect()
            }
            _ => vec![None; domains],
        };
        if self.prev_exec_hm_dom.len() != domains {
            self.prev_exec_hm_dom = vec![None; domains];
        }
        let exec_deltas: Vec<Option<f64>> = (0..domains)
            .map(|d| match (exec_hms[d], self.prev_exec_hm_dom[d]) {
                (Some(cur), Some(prev)) => Some(cur - prev),
                _ => None,
            })
            .collect();
        for (prev, cur) in self.prev_exec_hm_dom.iter_mut().zip(&exec_hms) {
            if cur.is_some() {
                *prev = *cur;
            }
        }
        if self.mechanism != Mechanism::Baseline {
            // One controller instance per domain does its own bookkeeping.
            self.overhead_cycles += self.ctrl.overhead_cycles * domains as u64;
        }
        let n = self.sys.num_cores();
        let ways = self.sys.llc_ways();
        let min_pc = backend::min_ways_per_core(self.sys.config());
        // Per-domain decision data, folded into one record per domain.
        #[derive(Default)]
        struct DomainDecision {
            cores: Vec<CoreSample>,
            agg: Vec<usize>,
            friendly: Vec<usize>,
            unfriendly: Vec<usize>,
            trials: Vec<Trial>,
            winner: Option<usize>,
            degraded: Option<&'static str>,
            features: Vec<f64>,
            action: Option<String>,
        }
        let mut outs: Vec<DomainDecision> =
            (0..domains).map(|_| DomainDecision::default()).collect();
        match self.mechanism {
            Mechanism::Baseline => {
                backend::apply_prefetch_logged(&mut self.sys, &vec![true; n], &mut log);
                self.sys.reset_cat();
            }
            Mechanism::Pt | Mechanism::PtFine => {
                let dets = backend::detect_domains_logged(
                    &mut self.sys,
                    &self.ctrl,
                    &self.det_cfg,
                    &mut log,
                    domains,
                );
                self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                route_faults(&mut log, &mut dom_logs, len);
                for (d, det) in dets.into_iter().enumerate() {
                    let base = d * len;
                    let dlog = &mut dom_logs[d];
                    // PT throttles the whole Agg set (friendly included).
                    let groups = globalize(
                        backend::throttle_groups(
                            &det.agg,
                            &det.interval1,
                            self.ctrl.exhaustive_limit,
                            self.ctrl.throttle_groups,
                        ),
                        base,
                    );
                    let (trials, winner) = if self.mechanism == Mechanism::Pt {
                        let s = backend::search_throttle_in(
                            &mut self.sys,
                            &groups,
                            self.ctrl.sampling_interval,
                            dlog,
                            base,
                            len,
                        );
                        (s.trials, s.winner)
                    } else {
                        let s = backend::search_throttle_levels_in(
                            &mut self.sys,
                            &groups,
                            &pt::FINE_LEVELS,
                            self.ctrl.sampling_interval,
                            dlog,
                            base,
                            len,
                        );
                        (s.trials, s.winner)
                    };
                    outs[d].cores = samples_of(&det.interval1);
                    outs[d].agg = det.agg;
                    outs[d].friendly = det.friendly;
                    outs[d].unfriendly = det.unfriendly;
                    outs[d].trials = trials;
                    outs[d].winner = winner;
                }
            }
            Mechanism::Dunn => {
                backend::apply_prefetch_logged(&mut self.sys, &vec![true; n], &mut log);
                for (d, dlog) in dom_logs.iter_mut().enumerate() {
                    let base = d * len;
                    let flat = PartitionPlan::flat(len, ways).offset(base);
                    if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                    }
                }
                let d1 =
                    backend::sample_logged(&mut self.sys, self.ctrl.sampling_interval, &mut log);
                self.agg_history.push(0);
                route_faults(&mut log, &mut dom_logs, len);
                for d in 0..domains {
                    let base = d * len;
                    let local = &d1[base..base + len];
                    let plan = dunn::dunn_plan(local, ways, self.ctrl.dunn_clusters).offset(base);
                    if plan.apply_at(&mut self.sys, base, &mut dom_logs[d]).is_err() {
                        self.sys.reset_cat_domain(d);
                        outs[d].degraded =
                            Some(degrade(&mut dom_logs[d], self.sys.now(), "fallback_noop"));
                    }
                    outs[d].cores = samples_of(local);
                }
            }
            Mechanism::PrefCp | Mechanism::PrefCp2 => {
                for (d, dlog) in dom_logs.iter_mut().enumerate() {
                    let base = d * len;
                    let flat = PartitionPlan::flat(len, ways).offset(base);
                    if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                    }
                }
                let dets = backend::detect_domains_logged(
                    &mut self.sys,
                    &self.ctrl,
                    &self.det_cfg,
                    &mut log,
                    domains,
                );
                self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                route_faults(&mut log, &mut dom_logs, len);
                for (d, det) in dets.into_iter().enumerate() {
                    let base = d * len;
                    let plan = if self.mechanism == Mechanism::PrefCp {
                        cp::pref_cp_plan(&det, len, ways, self.ctrl.partition_scale, min_pc)
                    } else {
                        cp::pref_cp2_plan(&det, len, ways, self.ctrl.partition_scale, min_pc)
                    };
                    if plan.offset(base).apply_at(&mut self.sys, base, &mut dom_logs[d]).is_err() {
                        self.sys.reset_cat_domain(d);
                        outs[d].degraded =
                            Some(degrade(&mut dom_logs[d], self.sys.now(), "fallback_noop"));
                    }
                    outs[d].cores = samples_of(&det.interval1);
                    outs[d].agg = det.agg;
                    outs[d].friendly = det.friendly;
                    outs[d].unfriendly = det.unfriendly;
                }
            }
            Mechanism::Mba => {
                // Bandwidth-only ablation per domain: flat CAT, prefetchers
                // on, MBA search over each domain's aggressor groups.
                for (d, dlog) in dom_logs.iter_mut().enumerate() {
                    let base = d * len;
                    let flat = PartitionPlan::flat(len, ways).offset(base);
                    if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                    }
                }
                let dets = backend::detect_domains_logged(
                    &mut self.sys,
                    &self.ctrl,
                    &self.det_cfg,
                    &mut log,
                    domains,
                );
                self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                route_faults(&mut log, &mut dom_logs, len);
                for (d, det) in dets.into_iter().enumerate() {
                    let base = d * len;
                    if cbp::mba_available(&mut self.sys, base, &mut dom_logs[d]) {
                        let groups = globalize(
                            backend::throttle_groups(
                                &det.agg,
                                &det.interval1,
                                self.ctrl.exhaustive_limit,
                                self.ctrl.throttle_groups,
                            ),
                            base,
                        );
                        let search = cbp::search_mba_levels_in(
                            &mut self.sys,
                            &groups,
                            &cbp::MBA_LEVELS,
                            &vec![0u64; len],
                            self.ctrl.sampling_interval,
                            &mut dom_logs[d],
                            base,
                            len,
                        );
                        outs[d].trials = search.trials;
                        outs[d].winner = search.winner;
                    } else {
                        outs[d].degraded =
                            Some(degrade(&mut dom_logs[d], self.sys.now(), "fallback_noop"));
                    }
                    outs[d].cores = samples_of(&det.interval1);
                    outs[d].agg = det.agg;
                    outs[d].friendly = det.friendly;
                    outs[d].unfriendly = det.unfriendly;
                }
            }
            Mechanism::CmmA | Mechanism::CmmB | Mechanism::CmmC | Mechanism::Cbp => {
                let variant = match self.mechanism {
                    Mechanism::CmmB => cmm::Variant::B,
                    Mechanism::CmmC => cmm::Variant::C,
                    // CMM-a and CBP share plan (a); CBP layers the MBA
                    // search per domain below.
                    _ => cmm::Variant::A,
                };
                for (d, dlog) in dom_logs.iter_mut().enumerate() {
                    let base = d * len;
                    let flat = PartitionPlan::flat(len, ways).offset(base);
                    if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                    }
                }
                let dets = backend::detect_domains_logged(
                    &mut self.sys,
                    &self.ctrl,
                    &self.det_cfg,
                    &mut log,
                    domains,
                );
                self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                route_faults(&mut log, &mut dom_logs, len);
                for (d, det) in dets.into_iter().enumerate() {
                    let base = d * len;
                    outs[d].cores = samples_of(&det.interval1);
                    match cmm::cmm_plan(variant, &det, len, ways, self.ctrl.partition_scale, min_pc)
                    {
                        Some(plan) => {
                            if plan
                                .offset(base)
                                .apply_at(&mut self.sys, base, &mut dom_logs[d])
                                .is_ok()
                            {
                                let groups = globalize(
                                    backend::throttle_groups(
                                        &det.unfriendly,
                                        &det.interval1,
                                        self.ctrl.exhaustive_limit,
                                        self.ctrl.throttle_groups,
                                    ),
                                    base,
                                );
                                let search = backend::search_throttle_in(
                                    &mut self.sys,
                                    &groups,
                                    self.ctrl.sampling_interval,
                                    &mut dom_logs[d],
                                    base,
                                    len,
                                );
                                outs[d].trials = search.trials;
                                outs[d].winner = search.winner;
                                if self.mechanism == Mechanism::Cbp {
                                    if cbp::mba_available(&mut self.sys, base, &mut dom_logs[d]) {
                                        let pf_image: Vec<u64> = search
                                            .best
                                            .iter()
                                            .map(|&on| if on { 0x0 } else { 0xF })
                                            .collect();
                                        let mba_groups = globalize(
                                            backend::throttle_groups(
                                                &det.agg,
                                                &det.interval1,
                                                self.ctrl.exhaustive_limit,
                                                self.ctrl.throttle_groups,
                                            ),
                                            base,
                                        );
                                        let msearch = cbp::search_mba_levels_in(
                                            &mut self.sys,
                                            &mba_groups,
                                            &cbp::MBA_LEVELS,
                                            &pf_image,
                                            self.ctrl.sampling_interval,
                                            &mut dom_logs[d],
                                            base,
                                            len,
                                        );
                                        if let Some(w) = msearch.winner {
                                            outs[d].winner = Some(outs[d].trials.len() + w);
                                        }
                                        outs[d].trials.extend(msearch.trials);
                                    } else {
                                        outs[d].degraded = Some(degrade(
                                            &mut dom_logs[d],
                                            self.sys.now(),
                                            "fallback_cmm_a",
                                        ));
                                    }
                                }
                            } else {
                                // Same retreat chain as the single-socket
                                // path, scoped to this domain's CAT state.
                                self.sys.reset_cat_domain(d);
                                outs[d].degraded = Some(degrade(
                                    &mut dom_logs[d],
                                    self.sys.now(),
                                    "fallback_dunn",
                                ));
                                let plan =
                                    dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters)
                                        .offset(base);
                                if plan.apply_at(&mut self.sys, base, &mut dom_logs[d]).is_err() {
                                    self.sys.reset_cat_domain(d);
                                    outs[d].degraded = Some(degrade(
                                        &mut dom_logs[d],
                                        self.sys.now(),
                                        "fallback_noop",
                                    ));
                                }
                            }
                        }
                        None => {
                            let plan =
                                dunn::dunn_plan(&det.interval1, ways, self.ctrl.dunn_clusters)
                                    .offset(base);
                            if plan.apply_at(&mut self.sys, base, &mut dom_logs[d]).is_err() {
                                self.sys.reset_cat_domain(d);
                                outs[d].degraded = Some(degrade(
                                    &mut dom_logs[d],
                                    self.sys.now(),
                                    "fallback_noop",
                                ));
                            }
                        }
                    }
                    outs[d].agg = det.agg;
                    outs[d].friendly = det.friendly;
                    outs[d].unfriendly = det.unfriendly;
                }
            }
            Mechanism::MlSel => {
                for (d, dlog) in dom_logs.iter_mut().enumerate() {
                    let base = d * len;
                    let flat = PartitionPlan::flat(len, ways).offset(base);
                    if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                        self.sys.reset_cat_domain(d);
                    }
                }
                let dets = backend::detect_domains_logged(
                    &mut self.sys,
                    &self.ctrl,
                    &self.det_cfg,
                    &mut log,
                    domains,
                );
                self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                route_faults(&mut log, &mut dom_logs, len);
                for (d, det) in dets.into_iter().enumerate() {
                    let base = d * len;
                    outs[d].cores = samples_of(&det.interval1);
                    outs[d].features = learned::mean_features(&det.interval1);
                    let image: Option<Vec<u64>> = match &self.learner {
                        Some(Learner::Ml { model, floor }) => {
                            let preds: Vec<_> = det
                                .interval1
                                .iter()
                                .map(|delta| model.predict(&learned::core_features(delta)))
                                .collect();
                            let min_conf =
                                preds.iter().map(|p| p.confidence).fold(f64::INFINITY, f64::min);
                            (min_conf >= *floor)
                                .then(|| preds.iter().map(|p| model.labels[p.class]).collect())
                        }
                        _ => None,
                    };
                    match image {
                        Some(image) => {
                            match cmm::cmm_plan(
                                cmm::Variant::A,
                                &det,
                                len,
                                ways,
                                self.ctrl.partition_scale,
                                min_pc,
                            ) {
                                Some(plan) => {
                                    if plan
                                        .offset(base)
                                        .apply_at(&mut self.sys, base, &mut dom_logs[d])
                                        .is_err()
                                    {
                                        self.sys.reset_cat_domain(d);
                                        outs[d].degraded = Some(degrade(
                                            &mut dom_logs[d],
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                }
                                None => {
                                    let plan = dunn::dunn_plan(
                                        &det.interval1,
                                        ways,
                                        self.ctrl.dunn_clusters,
                                    )
                                    .offset(base);
                                    if plan.apply_at(&mut self.sys, base, &mut dom_logs[d]).is_err()
                                    {
                                        self.sys.reset_cat_domain(d);
                                        outs[d].degraded = Some(degrade(
                                            &mut dom_logs[d],
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                }
                            }
                            for (c, &img) in image.iter().enumerate() {
                                let _ = backend::write_msr_logged(
                                    &mut self.sys,
                                    base + c,
                                    msr::MSR_MISC_FEATURE_CONTROL,
                                    img,
                                    &mut dom_logs[d],
                                );
                            }
                            outs[d].action = Some(pf_label(&image));
                        }
                        None => {
                            outs[d].degraded =
                                Some(degrade(&mut dom_logs[d], self.sys.now(), "fallback_cmm_a"));
                            outs[d].action = Some("fallback_cmm_a".into());
                            let (t, w, dg) =
                                self.cmm_a_leg_at(&det, d, base, len, ways, &mut dom_logs[d]);
                            outs[d].trials = t;
                            outs[d].winner = w;
                            if dg.is_some() {
                                outs[d].degraded = dg;
                            }
                        }
                    }
                    outs[d].agg = det.agg;
                    outs[d].friendly = det.friendly;
                    outs[d].unfriendly = det.unfriendly;
                }
            }
            Mechanism::RlCbp => {
                if self.rl_hold.len() != domains {
                    self.rl_hold = (0..domains).map(|_| None).collect();
                }
                // Credit each domain's action in force with its execution
                // epoch's hm_ipc delta.
                if let Some(Learner::Rl(rl)) = self.learner.as_mut() {
                    for (d, delta) in exec_deltas.iter().enumerate() {
                        if let Some(delta) = delta {
                            rl.bandit_mut(d).observe(*delta);
                        }
                    }
                }
                let all_hold =
                    (0..domains).all(|d| matches!(&self.rl_hold[d], Some(h) if h.skip > 0));
                if all_hold {
                    // Every domain's action is stretched: no profiling at
                    // all this epoch.
                    for (d, out) in outs.iter_mut().enumerate() {
                        let h = self.rl_hold[d].as_mut().unwrap();
                        h.skip -= 1;
                        out.action = Some(format!("hold:{}", h.label));
                    }
                } else {
                    for (d, dlog) in dom_logs.iter_mut().enumerate() {
                        // Held partitions persist; only re-planning domains
                        // reset to flat.
                        if !matches!(&self.rl_hold[d], Some(h) if h.skip > 0) {
                            let base = d * len;
                            let flat = PartitionPlan::flat(len, ways).offset(base);
                            if flat.apply_at(&mut self.sys, base, dlog).is_err() {
                                self.sys.reset_cat_domain(d);
                            }
                        }
                    }
                    let dets = backend::detect_domains_logged(
                        &mut self.sys,
                        &self.ctrl,
                        &self.det_cfg,
                        &mut log,
                        domains,
                    );
                    self.agg_history.push(dets.iter().map(|det| det.agg.len()).sum());
                    route_faults(&mut log, &mut dom_logs, len);
                    for (d, det) in dets.into_iter().enumerate() {
                        let base = d * len;
                        if matches!(&self.rl_hold[d], Some(h) if h.skip > 0) {
                            // The shared detection interval turned every
                            // prefetcher back on: re-assert the held
                            // action's register images and keep holding.
                            let mut h = self.rl_hold[d].take().unwrap();
                            for (c, &img) in h.pf_image.iter().enumerate() {
                                let _ = backend::write_msr_logged(
                                    &mut self.sys,
                                    base + c,
                                    msr::MSR_MISC_FEATURE_CONTROL,
                                    img,
                                    &mut dom_logs[d],
                                );
                            }
                            if h.mba_image.iter().any(|&l| l != 0)
                                && cbp::mba_available(&mut self.sys, base, &mut dom_logs[d])
                            {
                                for (c, &lvl) in h.mba_image.iter().enumerate() {
                                    let _ = backend::write_msr_logged(
                                        &mut self.sys,
                                        base + c,
                                        msr::MSR_MBA_THROTTLE,
                                        lvl,
                                        &mut dom_logs[d],
                                    );
                                }
                            }
                            h.skip -= 1;
                            outs[d].action = Some(format!("hold:{}", h.label));
                            self.rl_hold[d] = Some(h);
                            continue;
                        }
                        outs[d].cores = samples_of(&det.interval1);
                        outs[d].features = learned::mean_features(&det.interval1);
                        let chosen = match self.learner.as_mut() {
                            Some(Learner::Rl(rl)) => {
                                let b = rl.bandit_mut(d);
                                // Quiet domain: exploit, don't explore
                                // (same rationale as the single-socket
                                // arm above).
                                Some(if det.agg.is_empty() {
                                    b.exploit(learned::state_of(&det))
                                } else {
                                    b.select(learned::state_of(&det))
                                })
                            }
                            _ => None,
                        };
                        match chosen {
                            Some(a) => {
                                let act = learned::decode_action(a);
                                if act.cat_cmm {
                                    let plan = cmm::cmm_plan(
                                        cmm::Variant::A,
                                        &det,
                                        len,
                                        ways,
                                        self.ctrl.partition_scale,
                                        min_pc,
                                    )
                                    .unwrap_or_else(|| {
                                        // Fig. 6 (d), same as a CMM-a
                                        // epoch: empty Agg set ⇒ Dunn.
                                        dunn::dunn_plan(
                                            &det.interval1,
                                            ways,
                                            self.ctrl.dunn_clusters,
                                        )
                                    });
                                    if plan
                                        .offset(base)
                                        .apply_at(&mut self.sys, base, &mut dom_logs[d])
                                        .is_err()
                                    {
                                        self.sys.reset_cat_domain(d);
                                        outs[d].degraded = Some(degrade(
                                            &mut dom_logs[d],
                                            self.sys.now(),
                                            "fallback_noop",
                                        ));
                                    }
                                }
                                let mut pf_image = vec![0u64; len];
                                for &c in &det.unfriendly {
                                    pf_image[c] = act.pf;
                                }
                                for (c, &img) in pf_image.iter().enumerate() {
                                    let _ = backend::write_msr_logged(
                                        &mut self.sys,
                                        base + c,
                                        msr::MSR_MISC_FEATURE_CONTROL,
                                        img,
                                        &mut dom_logs[d],
                                    );
                                }
                                let mut mba_image = vec![0u64; len];
                                for &c in &det.agg {
                                    mba_image[c] = act.mba;
                                }
                                if cbp::mba_available(&mut self.sys, base, &mut dom_logs[d]) {
                                    for (c, &lvl) in mba_image.iter().enumerate() {
                                        let _ = backend::write_msr_logged(
                                            &mut self.sys,
                                            base + c,
                                            msr::MSR_MBA_THROTTLE,
                                            lvl,
                                            &mut dom_logs[d],
                                        );
                                    }
                                }
                                let label = learned::action_label(&act);
                                outs[d].action = Some(label.clone());
                                self.rl_hold[d] = Some(RlHold {
                                    skip: act.stretch - 1,
                                    pf_image,
                                    mba_image,
                                    label,
                                });
                            }
                            None => {
                                outs[d].degraded = Some(degrade(
                                    &mut dom_logs[d],
                                    self.sys.now(),
                                    "fallback_cmm_a",
                                ));
                                outs[d].action = Some("fallback_cmm_a".into());
                                let (t, w, dg) =
                                    self.cmm_a_leg_at(&det, d, base, len, ways, &mut dom_logs[d]);
                                outs[d].trials = t;
                                outs[d].winner = w;
                                if dg.is_some() {
                                    outs[d].degraded = dg;
                                }
                            }
                        }
                        outs[d].agg = det.agg;
                        outs[d].friendly = det.friendly;
                        outs[d].unfriendly = det.unfriendly;
                    }
                }
            }
        }
        // Anchor for the next epoch's execution-IPC measurement.
        let anchor = backend::pmu_read_stable(&mut self.sys, &mut log);
        self.exec_anchor = Some((self.sys.now(), anchor));
        route_faults(&mut log, &mut dom_logs, len);
        let applied = self.sys.control_state();
        for (d, out) in outs.into_iter().enumerate() {
            let base = d * len;
            self.records.push(EpochRecord {
                epoch: self.epochs,
                cycle: epoch_start,
                mechanism: self.mechanism.label(),
                domain: Some(d),
                cores: out.cores,
                agg: out.agg,
                friendly: out.friendly,
                unfriendly: out.unfriendly,
                trials: out.trials,
                winner: out.winner,
                exec_hm_ipc: exec_hms[d],
                exec_ipc_delta: exec_deltas[d],
                faults: std::mem::take(&mut dom_logs[d]),
                degraded: out.degraded,
                // The governor is single-socket scoped for now; a
                // per-domain governor is future work.
                governor: Vec::new(),
                features: out.features,
                action: out.action,
                applied: applied[base..base + len].to_vec(),
            });
        }
    }
}

/// The journal's `action` label for an ML-Sel per-core prefetch image.
fn pf_label(image: &[u64]) -> String {
    let imgs: Vec<String> = image.iter().map(|v| format!("{v:#x}")).collect();
    format!("pf=[{}]", imgs.join(","))
}

/// Records an epoch-level degradation decision and returns its label for
/// [`EpochRecord::degraded`].
fn degrade(log: &mut Vec<FaultRecord>, cycle: u64, action: &'static str) -> &'static str {
    log.push(FaultRecord { cycle, kind: "degraded", core: None, msr: None, action });
    match action {
        "fallback_cmm_a" => "CMM-a",
        "fallback_dunn" => "Dunn",
        "fallback_throttle" => "throttle-only",
        _ => "no-op",
    }
}

/// Moves faults from a machine-wide phase into the per-domain logs: faults
/// naming a core go to that core's domain, core-less ones to domain 0.
fn route_faults(log: &mut Vec<FaultRecord>, dom_logs: &mut [Vec<FaultRecord>], len: usize) {
    for f in log.drain(..) {
        let d = f.core.map_or(0, |c| (c / len).min(dom_logs.len() - 1));
        dom_logs[d].push(f);
    }
}

/// Lifts socket-local throttle groups to global core ids (`+ base`).
fn globalize(groups: Vec<Vec<usize>>, base: usize) -> Vec<Vec<usize>> {
    groups.into_iter().map(|g| g.into_iter().map(|c| c + base).collect()).collect()
}

/// Per-core [`CoreSample`]s (IPC + metric cascade) of one interval.
fn samples_of(deltas: &[PmuDelta]) -> Vec<CoreSample> {
    deltas
        .iter()
        .map(|d| CoreSample { ipc: d.ipc(), metrics: crate::frontend::metrics(d) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Workload;
    use cmm_workloads::spec;

    fn system_with(names: &[&str]) -> System {
        let cfg = SystemConfig::scaled(names.len());
        let llc = cfg.llc.size_bytes;
        let ws: Vec<Box<dyn Workload + Send>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 11))
                    as Box<dyn Workload + Send>
            })
            .collect();
        System::new(cfg, ws)
    }

    #[test]
    fn baseline_driver_never_partitions_or_throttles() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::Baseline, ControllerConfig::quick());
        drv.run_total(500_000);
        let sys = drv.system();
        for c in 0..4 {
            assert!(sys.prefetching_enabled(c));
            assert_eq!(sys.effective_mask(c), (1 << sys.llc_ways()) - 1);
        }
    }

    #[test]
    fn pref_cp_partitions_the_aggressors() {
        let sys = system_with(&["bwaves3d", "lbm_fluid", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::PrefCp, ControllerConfig::quick());
        drv.run_total(800_000);
        let sys = drv.system();
        let full = (1u64 << sys.llc_ways()) - 1;
        // The two streams must sit in a small partition...
        assert!(sys.effective_mask(0).count_ones() < 20, "{:b}", sys.effective_mask(0));
        assert_eq!(sys.effective_mask(0), sys.effective_mask(1));
        // ...while the neutral cores keep the whole cache.
        assert_eq!(sys.effective_mask(2), full);
        assert_eq!(sys.effective_mask(3), full);
        // CP never throttles.
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
    }

    #[test]
    fn cmm_a_partitions_and_throttles_unfriendly() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let sys = drv.system();
        // Both aggressors (friendly stream + unfriendly random) partitioned.
        assert!(sys.effective_mask(0).count_ones() < 20);
        assert!(sys.effective_mask(1).count_ones() < 20);
        // The friendly stream's prefetchers must stay on — CMM only ever
        // throttles unfriendly cores.
        assert!(sys.prefetching_enabled(0));
        assert!(drv.agg_history().iter().any(|&a| a >= 2), "{:?}", drv.agg_history());
    }

    #[test]
    fn cmm_falls_back_to_dunn_on_empty_agg() {
        let sys = system_with(&["mcf_refine", "omnet_events", "povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.system_mut().run(400_000); // past the cold streaming phase
        drv.epoch();
        // No aggressor: Dunn's nested plan is in force; the most-stalled
        // core has the full mask, and nobody was throttled.
        let sys = drv.system();
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
        let full = (1u64 << sys.llc_ways()) - 1;
        assert!((0..4).any(|c| sys.effective_mask(c) == full));
    }

    #[test]
    fn overhead_is_small() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmC, ControllerConfig::quick());
        drv.run_total(2_000_000);
        assert!(drv.overhead_ratio() < 0.01, "overhead {:.4}", drv.overhead_ratio());
        assert!(drv.epochs() >= 2);
    }

    #[test]
    fn run_total_reaches_target() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Pt, ControllerConfig::quick());
        drv.run_total(300_000);
        assert!(drv.system().now() >= 300_000);
    }

    #[test]
    fn cmm_records_trials_and_winner() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let recs = drv.records();
        assert_eq!(recs.len() as u64, drv.epochs());
        // Some epoch detected aggressors and searched throttle settings.
        let searched = recs.iter().find(|r| !r.trials.is_empty()).expect("no trials recorded");
        assert_eq!(searched.mechanism, "CMM-a");
        assert!(!searched.agg.is_empty());
        let w = searched.winner.expect("search must pick a winner");
        let best = searched.trials[w].hm_ipc;
        assert!(searched.trials.iter().all(|t| t.hm_ipc <= best), "winner must rank first");
        // Cascade samples cover every core, and the applied state matches
        // the machine.
        assert_eq!(searched.cores.len(), 4);
        let last = recs.last().unwrap();
        assert_eq!(last.applied.len(), 4);
        for c in 0..4 {
            assert_eq!(last.applied[c].way_mask, drv.system().effective_mask(c));
            assert_eq!(last.applied[c].prefetching(), drv.system().prefetching_enabled(c));
        }
    }

    #[test]
    fn baseline_records_epochs_without_decisions() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Baseline, ControllerConfig::quick());
        drv.run_total(500_000);
        assert!(!drv.records().is_empty());
        for r in drv.records() {
            assert!(r.cores.is_empty() && r.agg.is_empty() && r.trials.is_empty());
            assert_eq!(r.winner, None);
            assert_eq!(r.applied.len(), 2);
        }
    }

    #[test]
    fn take_records_drains() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Pt, ControllerConfig::quick());
        drv.epoch();
        let taken = drv.take_records();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].epoch, 1);
        assert!(drv.records().is_empty());
    }

    #[test]
    fn exec_ipc_is_tracked_across_epochs() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_000_000);
        let recs = drv.records();
        assert!(recs.len() >= 3, "need several epochs: {}", recs.len());
        // First epoch has no completed execution epoch behind it.
        assert_eq!(recs[0].exec_hm_ipc, None);
        assert_eq!(recs[0].exec_ipc_delta, None);
        // From the second epoch on, the preceding execution epoch is
        // measured; from the third, the delta exists and is consistent.
        assert!(recs[1].exec_hm_ipc.unwrap() > 0.0);
        let (prev, cur) = (recs[1].exec_hm_ipc.unwrap(), recs[2].exec_hm_ipc.unwrap());
        let delta = recs[2].exec_ipc_delta.unwrap();
        assert!((delta - (cur - prev)).abs() < 1e-9);
        // A clean substrate records no faults and no degradation.
        for r in recs {
            assert!(r.faults.is_empty(), "{:?}", r.faults);
            assert_eq!(r.degraded, None);
        }
    }

    #[test]
    fn clos_exhaustion_walks_the_fallback_chain() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        // Only CLOS 0 exists: every partitioning plan (CMM and Dunn both
        // start at CLOS 1) is unprogrammable.
        let mut cfg = FaultConfig::none();
        cfg.clos_limit = Some(1);
        let faulty = FaultySubstrate::new(sys, cfg);
        let mut drv = Driver::new(faulty, Mechanism::CmmA, ControllerConfig::quick());
        drv.system_mut().run(600_000); // past the cold phase → nonempty Agg
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert!(!rec.agg.is_empty(), "mix must trigger the CMM plan: {rec:?}");
        let actions: Vec<&str> = rec.faults.iter().map(|f| f.action).collect();
        assert!(actions.contains(&"fallback_dunn"), "{actions:?}");
        assert!(actions.contains(&"fallback_noop"), "{actions:?}");
        assert_eq!(rec.degraded, Some("no-op"));
        assert!(rec.faults.iter().any(|f| f.kind == "clos_exhausted"));
        // The machine ends in the safe flat state, prefetchers on.
        let sys = drv.system();
        let full = (1u64 << sys.inner().llc_ways()) - 1;
        for c in 0..4 {
            assert_eq!(sys.inner().effective_mask(c), full);
        }
        // No throttle search ran without the partition.
        assert!(rec.trials.is_empty());
        assert_eq!(rec.winner, None);
    }

    #[test]
    fn cbp_layers_mba_trials_on_the_cmm_plan() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::Cbp, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let recs = drv.records();
        // Some epoch ran the full three-stage search: prefetch trials
        // (no mba image) followed by MBA trials (mba image present).
        let layered = recs
            .iter()
            .find(|r| r.trials.iter().any(|t| !t.mba.is_empty()))
            .expect("no MBA trials recorded");
        assert_eq!(layered.mechanism, "CBP");
        // Search order is hierarchical: any prefetch trials precede every
        // MBA trial.
        let first_mba = layered.trials.iter().position(|t| !t.mba.is_empty()).unwrap();
        assert!(layered.trials[first_mba..].iter().all(|t| !t.mba.is_empty()));
        assert_eq!(layered.degraded, None);
        // MBA trials never program an invalid level.
        for t in &layered.trials {
            assert!(t.mba.iter().all(|&l| cmm_sim::msr::mba_level_valid(l)), "{:?}", t.mba);
        }
        // The winner indexes the combined trial list.
        let w = layered.winner.expect("search must pick a winner");
        assert!(w < layered.trials.len());
        // The applied read-back includes the MBA level in force.
        for (c, a) in recs.last().unwrap().applied.iter().enumerate() {
            assert_eq!(a.mba_level, Substrate::mba_throttle(drv.system(), c));
        }
    }

    #[test]
    fn cbp_without_the_mba_knob_degrades_to_cmm_a() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        // Every MBA write fails permanently after retries; everything else
        // is healthy — CBP must retreat to exact CMM-a behavior.
        let faulty = FaultySubstrate::new(sys, FaultConfig::mba_only(7, 1.0));
        let mut drv = Driver::new(faulty, Mechanism::Cbp, ControllerConfig::quick());
        drv.system_mut().run(600_000); // past the cold phase → nonempty Agg
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert!(!rec.agg.is_empty(), "mix must trigger the plan: {rec:?}");
        assert_eq!(rec.degraded, Some("CMM-a"));
        assert!(rec.faults.iter().any(|f| f.action == "fallback_cmm_a"), "{:?}", rec.faults);
        // The prefetch search still ran; no MBA trial exists and no MBA
        // level is in force.
        assert!(!rec.trials.is_empty());
        assert!(rec.trials.iter().all(|t| t.mba.is_empty()));
        assert!(rec.applied.iter().all(|a| a.mba_level == 0));
    }

    #[test]
    fn mba_only_mechanism_never_partitions_or_throttles_prefetchers() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::Mba, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let sys = drv.system();
        let full = (1u64 << sys.llc_ways()) - 1;
        for c in 0..4 {
            assert!(sys.prefetching_enabled(c));
            assert_eq!(sys.effective_mask(c), full);
        }
        // Some epoch searched MBA levels for the aggressors.
        let searched =
            drv.records().iter().find(|r| !r.trials.is_empty()).expect("no MBA search recorded");
        assert!(searched.trials.iter().all(|t| !t.mba.is_empty()));
    }

    #[test]
    fn governed_clean_run_matches_ungoverned_byte_for_byte() {
        // The zero-fault invisibility contract: attaching a governor to a
        // healthy machine changes nothing — not timing, not decisions,
        // not the rendered journal.
        let mk = || system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut plain = Driver::new(mk(), Mechanism::Cbp, ControllerConfig::quick());
        let mut gov = Driver::new(mk(), Mechanism::Cbp, ControllerConfig::quick())
            .with_governor(GovernorConfig::new(9));
        plain.run_total(1_200_000);
        gov.run_total(1_200_000);
        let (ra, rb) = (plain.take_records(), gov.take_records());
        assert_eq!(ra.len(), rb.len());
        assert!(!ra.is_empty());
        for (a, b) in ra.iter().zip(&rb) {
            assert_eq!(a.to_json_line("cell"), b.to_json_line("cell"));
            assert!(b.governor.is_empty());
        }
    }

    #[test]
    fn governor_rollback_restores_last_good_and_skips_replanning() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick())
            .with_governor(GovernorConfig::new(1));
        drv.run_total(900_000); // several epochs: snapshot + last-good exist
        let before = drv.records().len();
        // Arm the governor by hand: a fault was observed and the
        // last-known-good hm_ipc is implausibly high, so the next
        // measurement reads as a regression past the bound.
        let g = drv.governor.as_mut().unwrap();
        g.accept(1e6);
        g.observe_faults(
            &[FaultRecord {
                cycle: 0,
                kind: "msr_rejected",
                core: Some(0),
                msr: Some(0x1A4),
                action: "retry_ok",
            }],
            0,
        );
        let snapshot = drv.governor.as_ref().unwrap().snapshot().unwrap().to_vec();
        drv.system_mut().run(100_000);
        drv.epoch();
        let rec = &drv.records()[before..].last().unwrap();
        assert!(rec.governor.iter().any(|e| e.action == "rollback"), "{:?}", rec.governor);
        assert!(rec.faults.iter().any(|f| f.action == "kept_last_good"), "{:?}", rec.faults);
        assert_eq!(drv.governor().unwrap().rollbacks(), 1);
        // The rollback epoch re-runs the restored state: no profiling, no
        // re-plan, and the applied read-back equals the snapshot.
        assert!(rec.cores.is_empty() && rec.trials.is_empty());
        assert_eq!(rec.winner, None);
        assert_eq!(rec.applied, snapshot);
    }

    #[test]
    fn quarantined_cores_are_dropped_from_classification() {
        let mk = || system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        // Reference: which cores does a healthy epoch classify as Agg?
        let mut reference = Driver::new(mk(), Mechanism::CmmA, ControllerConfig::quick());
        reference.system_mut().run(600_000);
        reference.epoch();
        let full_agg = reference.records().last().unwrap().agg.clone();
        assert!(!full_agg.is_empty(), "mix must produce aggressors");
        // Same machine, same point in time, but core agg[0]'s PMU stream
        // is quarantined: it must vanish from every detected set.
        let bad = full_agg[0];
        let mut drv = Driver::new(mk(), Mechanism::CmmA, ControllerConfig::quick())
            .with_governor(GovernorConfig::new(1));
        drv.system_mut().run(600_000);
        drv.governor.as_mut().unwrap().observe_faults(
            &[FaultRecord {
                cycle: 0,
                kind: "pmu_anomaly",
                core: Some(bad),
                msr: None,
                action: "zeroed_sample",
            }],
            0,
        );
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert!(!rec.agg.contains(&bad), "{:?}", rec.agg);
        assert!(!rec.friendly.contains(&bad));
        assert!(!rec.unfriendly.contains(&bad));
        assert!(rec.governor.iter().any(|e| e.action == "quarantine" && e.core == Some(bad)));
    }

    #[test]
    fn dead_mba_register_opens_the_breaker_and_pins_cmm_a() {
        use crate::fault::{FaultConfig, FaultySubstrate};
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let faulty = FaultySubstrate::new(sys, FaultConfig::mba_only(7, 1.0));
        let mut drv = Driver::new(faulty, Mechanism::Cbp, ControllerConfig::quick())
            .with_governor(GovernorConfig::new(3));
        drv.system_mut().run(600_000);
        for _ in 0..4 {
            drv.epoch();
            drv.system_mut().run(200_000);
        }
        let recs = drv.records();
        let open = recs
            .iter()
            .position(|r| r.governor.iter().any(|e| e.action == "breaker_open"))
            .expect("two consecutive hard MBA failures must open the breaker");
        assert_eq!(
            recs[open].governor.iter().find(|e| e.action == "breaker_open").unwrap().class,
            Some("mba")
        );
        // While the breaker is open the driver stops probing the dead
        // register (no MBA faults) but still degrades CBP to CMM-a.
        let after = &recs[open + 1];
        assert_eq!(after.degraded, Some("CMM-a"));
        assert!(
            after.faults.iter().all(|f| f.msr != Some(cmm_sim::msr::MSR_MBA_THROTTLE)),
            "{:?}",
            after.faults
        );
    }

    #[test]
    fn mlsel_without_a_model_journals_the_cmm_a_fallback() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::MlSel, ControllerConfig::quick());
        drv.system_mut().run(600_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        // No learner attached: every epoch degrades to the CMM-a search,
        // and the degradation is journaled under the /6 keys.
        assert_eq!(rec.degraded, Some("CMM-a"));
        assert_eq!(rec.action.as_deref(), Some("fallback_cmm_a"));
        assert!(rec.faults.iter().any(|f| f.action == "fallback_cmm_a"));
        assert!(!rec.trials.is_empty(), "the fallback runs the full search");
        assert_eq!(rec.features.len(), cmm_learn::N_FEATURES);
        assert!(rec.features[0] > 0.0, "mean IPC feature must be positive");
    }

    #[test]
    fn mlsel_with_a_confident_model_plans_without_trials() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        // A degenerate single-class model is maximally confident (p = 1)
        // and always picks "all prefetchers on".
        let model = cmm_learn::Model {
            labels: vec![0x0],
            weights: vec![vec![0.0; cmm_learn::N_FEATURES + 1]],
        };
        let mut drv = Driver::new(sys, Mechanism::MlSel, ControllerConfig::quick())
            .with_learner(Learner::Ml { model, floor: 0.5 });
        drv.system_mut().run(600_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        // Zero profiling trials, yet the CMM-a partition was applied.
        assert!(rec.trials.is_empty());
        assert_eq!(rec.winner, None);
        assert_eq!(rec.degraded, None);
        assert_eq!(rec.action.as_deref(), Some("pf=[0x0,0x0,0x0,0x0]"));
        assert!(!rec.agg.is_empty(), "mix must trigger the plan");
        let sys = drv.system();
        assert!(sys.effective_mask(rec.agg[0]).count_ones() < 20, "aggressor partitioned");
        assert!((0..4).all(|c| sys.prefetching_enabled(c)), "classifier chose all-on");
    }

    #[test]
    fn mlsel_below_the_confidence_floor_falls_back() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        // Two identical classes: every posterior is 0.5, below any floor
        // above one half — the fallback leg must run and be journaled.
        let model = cmm_learn::Model {
            labels: vec![0x0, 0xF],
            weights: vec![vec![0.0; cmm_learn::N_FEATURES + 1]; 2],
        };
        let mut drv = Driver::new(sys, Mechanism::MlSel, ControllerConfig::quick())
            .with_learner(Learner::Ml { model, floor: 0.9 });
        drv.system_mut().run(600_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert_eq!(rec.degraded, Some("CMM-a"));
        assert_eq!(rec.action.as_deref(), Some("fallback_cmm_a"));
        assert!(!rec.trials.is_empty());
    }

    #[test]
    fn rlcbp_zero_epsilon_applies_the_cmm_prior_deterministically() {
        let mk = || system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let run = |seed: u64| {
            let mut drv = Driver::new(mk(), Mechanism::RlCbp, ControllerConfig::quick())
                .with_learner(Learner::Rl(crate::learned::RlPolicy::new(seed, 0.0)));
            drv.run_total(1_200_000);
            drv.take_records().iter().map(|r| r.to_json_line("cell")).collect::<Vec<_>>()
        };
        // With epsilon 0 the bandit draws no entropy: the seed must not
        // matter and the greedy policy starts at the CMM-like prior.
        let a = run(1);
        let b = run(999);
        assert_eq!(a, b);
        assert!(
            a.iter().any(|l| l.contains("\"action\":\"pf=0xf,cat=cmm,mba=0,stretch=1\"")),
            "greedy start must be the CMM prior"
        );
        // Zero-trial epochs: the bandit replaces the exhaustive search.
        assert!(a.iter().all(|l| l.contains("\"trials\":[]")));
    }

    #[test]
    fn rlcbp_stretch_holds_the_action_without_profiling() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::RlCbp, ControllerConfig::quick())
            .with_learner(Learner::Rl(crate::learned::RlPolicy::new(5, 0.0)));
        drv.system_mut().run(600_000);
        drv.epoch();
        // Force a stretch by hand: the held action must skip the next
        // epoch's profiling entirely.
        drv.rl_hold[0].as_mut().unwrap().skip = 1;
        drv.system_mut().run(200_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert!(rec.action.as_deref().unwrap().starts_with("hold:"), "{:?}", rec.action);
        assert!(rec.cores.is_empty() && rec.trials.is_empty());
        assert!(rec.features.is_empty());
        // The epoch after the hold re-plans normally.
        drv.system_mut().run(200_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert!(!rec.cores.is_empty());
    }

    #[test]
    fn rlcbp_without_a_policy_falls_back_to_cmm_a() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::RlCbp, ControllerConfig::quick());
        drv.system_mut().run(600_000);
        drv.epoch();
        let rec = drv.records().last().unwrap();
        assert_eq!(rec.degraded, Some("CMM-a"));
        assert_eq!(rec.action.as_deref(), Some("fallback_cmm_a"));
        assert!(!rec.trials.is_empty());
    }

    #[test]
    fn epoch_records_are_ordered_and_cycle_stamped() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::PrefCp, ControllerConfig::quick());
        drv.run_total(900_000);
        let recs = drv.records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
        }
        for pair in recs.windows(2) {
            assert!(pair[0].cycle < pair[1].cycle, "cycles must advance");
        }
    }
}
