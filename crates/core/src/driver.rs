//! The epoch/sampling scheduler (Fig. 4) — the analogue of the paper's
//! loadable kernel module.
//!
//! Execution is a sequence of *execution epochs*, each preceded by a
//! *profiling epoch* of short sampling intervals in which the front-end
//! detects the `Agg` set and the back-end trials candidate configurations.
//! The winning configuration is applied for the following execution epoch.
//!
//! The controller's own work is charged as
//! [`ControllerConfig::overhead_cycles`] per invocation and reported by
//! [`Driver::overhead_ratio`] — the analogue of the paper's PMU-vs-TSC
//! overhead measurement (<0.1 %).

use crate::backend::{self, cmm, cp, dunn, pt, PartitionPlan};
use crate::frontend::DetectorConfig;
use crate::policy::{ControllerConfig, Mechanism};
use crate::telemetry::{CoreSample, EpochRecord, Trial};
use cmm_sim::pmu::PmuDelta;
use cmm_sim::System;

/// Drives one [`System`] under one [`Mechanism`].
pub struct Driver {
    sys: System,
    mechanism: Mechanism,
    ctrl: ControllerConfig,
    det_cfg: DetectorConfig,
    epochs: u64,
    overhead_cycles: u64,
    /// Agg-set size observed at each profiling epoch (diagnostics).
    agg_history: Vec<usize>,
    /// Full per-epoch decision telemetry (see [`crate::telemetry`]).
    records: Vec<EpochRecord>,
}

impl Driver {
    /// Wraps a machine. The detector thresholds are taken from `ctrl`.
    pub fn new(sys: System, mechanism: Mechanism, ctrl: ControllerConfig) -> Self {
        ctrl.validate();
        let det_cfg = DetectorConfig {
            pmr_threshold: ctrl.pmr_threshold,
            ptr_threshold: ctrl.ptr_threshold,
            pga_floor: ctrl.pga_floor,
        };
        Driver {
            sys,
            mechanism,
            ctrl,
            det_cfg,
            epochs: 0,
            overhead_cycles: 0,
            agg_history: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The managed machine.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable access (tests and harnesses).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Consumes the driver, returning the machine.
    pub fn into_system(self) -> System {
        self.sys
    }

    /// Profiling epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `Agg`-set sizes per epoch (empty entries mean no profiling ran,
    /// e.g. for the baseline).
    pub fn agg_history(&self) -> &[usize] {
        &self.agg_history
    }

    /// Per-epoch decision telemetry recorded so far, in epoch order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Drains the recorded telemetry (harnesses call this once per run to
    /// move the records into the run journal).
    pub fn take_records(&mut self) -> Vec<EpochRecord> {
        std::mem::take(&mut self.records)
    }

    /// Fraction of machine time spent in the controller itself.
    pub fn overhead_ratio(&self) -> f64 {
        if self.sys.now() == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.sys.now() as f64
        }
    }

    /// Runs until the machine clock reaches (at least) `total_cycles`,
    /// alternating profiling and execution epochs.
    pub fn run_total(&mut self, total_cycles: u64) {
        let target = self.sys.now() + total_cycles;
        while self.sys.now() < target {
            self.epoch();
            let remaining = target.saturating_sub(self.sys.now());
            let exec = remaining.min(self.ctrl.execution_epoch);
            if exec > 0 {
                self.sys.run(exec);
            }
        }
    }

    /// Runs exactly one profiling epoch (decision + application), without
    /// the following execution epoch. Exposed for tests and examples.
    /// Every epoch appends one [`EpochRecord`] to [`Driver::records`].
    pub fn epoch(&mut self) {
        self.epochs += 1;
        let epoch_start = self.sys.now();
        if self.mechanism != Mechanism::Baseline {
            self.overhead_cycles += self.ctrl.overhead_cycles;
        }
        let n = self.sys.num_cores();
        let ways = self.sys.llc_ways();
        let min_pc = backend::min_ways_per_core(self.sys.config());
        // Per-branch decision data, folded into one record at the end.
        let mut cores: Vec<CoreSample> = Vec::new();
        let mut agg: Vec<usize> = Vec::new();
        let mut friendly: Vec<usize> = Vec::new();
        let mut unfriendly: Vec<usize> = Vec::new();
        let mut trials: Vec<Trial> = Vec::new();
        let mut winner: Option<usize> = None;
        match self.mechanism {
            Mechanism::Baseline => {
                // No control: prefetchers on, flat CAT — enforced once so a
                // baseline run after a managed run is truly uncontrolled.
                backend::apply_prefetch(&mut self.sys, &vec![true; n]);
                self.sys.reset_cat();
            }
            Mechanism::Pt => {
                let out = pt::profile(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(out.detection.agg.len());
                cores = samples_of(&out.detection.interval1);
                agg = out.detection.agg;
                friendly = out.detection.friendly;
                unfriendly = out.detection.unfriendly;
                trials = out.trials;
                winner = out.winner;
            }
            Mechanism::PtFine => {
                let out = pt::profile_fine(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(out.detection.agg.len());
                cores = samples_of(&out.detection.interval1);
                agg = out.detection.agg;
                friendly = out.detection.friendly;
                unfriendly = out.detection.unfriendly;
                trials = out.trials;
                winner = out.winner;
            }
            Mechanism::Dunn => {
                // Dunn observes one all-on interval and clusters stalls.
                backend::apply_prefetch(&mut self.sys, &vec![true; n]);
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let d1 = backend::sample(&mut self.sys, self.ctrl.sampling_interval);
                dunn::dunn_plan(&d1, ways, self.ctrl.dunn_clusters).apply(&mut self.sys);
                self.agg_history.push(0);
                cores = samples_of(&d1);
            }
            Mechanism::PrefCp | Mechanism::PrefCp2 => {
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let det = backend::detect(&mut self.sys, &self.ctrl, &self.det_cfg);
                let plan = if self.mechanism == Mechanism::PrefCp {
                    cp::pref_cp_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                } else {
                    cp::pref_cp2_plan(&det, n, ways, self.ctrl.partition_scale, min_pc)
                };
                plan.apply(&mut self.sys);
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
            Mechanism::CmmA | Mechanism::CmmB | Mechanism::CmmC => {
                let variant = match self.mechanism {
                    Mechanism::CmmA => cmm::Variant::A,
                    Mechanism::CmmB => cmm::Variant::B,
                    _ => cmm::Variant::C,
                };
                PartitionPlan::flat(n, ways).apply(&mut self.sys);
                let det = backend::detect(&mut self.sys, &self.ctrl, &self.det_cfg);
                self.agg_history.push(det.agg.len());
                cores = samples_of(&det.interval1);
                match cmm::cmm_plan(variant, &det, n, ways, self.ctrl.partition_scale, min_pc) {
                    Some(plan) => {
                        // Coordinated order per the paper: partition first,
                        // then search throttle settings for the unfriendly
                        // cores inside the partitioned machine.
                        plan.apply(&mut self.sys);
                        let groups = backend::throttle_groups(
                            &det.unfriendly,
                            &det.interval1,
                            self.ctrl.exhaustive_limit,
                            self.ctrl.throttle_groups,
                        );
                        let search = backend::search_throttle(
                            &mut self.sys,
                            &groups,
                            self.ctrl.sampling_interval,
                        );
                        trials = search.trials;
                        winner = search.winner;
                    }
                    None => {
                        // Fig. 6 (d): empty Agg set ⇒ Dunn partitioning.
                        let d1 = &det.interval1;
                        dunn::dunn_plan(d1, ways, self.ctrl.dunn_clusters).apply(&mut self.sys);
                    }
                }
                agg = det.agg;
                friendly = det.friendly;
                unfriendly = det.unfriendly;
            }
        }
        self.records.push(EpochRecord {
            epoch: self.epochs,
            cycle: epoch_start,
            mechanism: self.mechanism.label(),
            cores,
            agg,
            friendly,
            unfriendly,
            trials,
            winner,
            applied: self.sys.control_state(),
        });
    }
}

/// Per-core [`CoreSample`]s (IPC + metric cascade) of one interval.
fn samples_of(deltas: &[PmuDelta]) -> Vec<CoreSample> {
    deltas
        .iter()
        .map(|d| CoreSample { ipc: d.ipc(), metrics: crate::frontend::metrics(d) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::workload::Workload;
    use cmm_workloads::spec;

    fn system_with(names: &[&str]) -> System {
        let cfg = SystemConfig::scaled(names.len());
        let llc = cfg.llc.size_bytes;
        let ws: Vec<Box<dyn Workload + Send>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 11))
                    as Box<dyn Workload + Send>
            })
            .collect();
        System::new(cfg, ws)
    }

    #[test]
    fn baseline_driver_never_partitions_or_throttles() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::Baseline, ControllerConfig::quick());
        drv.run_total(500_000);
        let sys = drv.system();
        for c in 0..4 {
            assert!(sys.prefetching_enabled(c));
            assert_eq!(sys.effective_mask(c), (1 << sys.llc_ways()) - 1);
        }
    }

    #[test]
    fn pref_cp_partitions_the_aggressors() {
        let sys = system_with(&["bwaves3d", "lbm_fluid", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::PrefCp, ControllerConfig::quick());
        drv.run_total(800_000);
        let sys = drv.system();
        let full = (1u64 << sys.llc_ways()) - 1;
        // The two streams must sit in a small partition...
        assert!(sys.effective_mask(0).count_ones() < 20, "{:b}", sys.effective_mask(0));
        assert_eq!(sys.effective_mask(0), sys.effective_mask(1));
        // ...while the neutral cores keep the whole cache.
        assert_eq!(sys.effective_mask(2), full);
        assert_eq!(sys.effective_mask(3), full);
        // CP never throttles.
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
    }

    #[test]
    fn cmm_a_partitions_and_throttles_unfriendly() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let sys = drv.system();
        // Both aggressors (friendly stream + unfriendly random) partitioned.
        assert!(sys.effective_mask(0).count_ones() < 20);
        assert!(sys.effective_mask(1).count_ones() < 20);
        // The friendly stream's prefetchers must stay on — CMM only ever
        // throttles unfriendly cores.
        assert!(sys.prefetching_enabled(0));
        assert!(drv.agg_history().iter().any(|&a| a >= 2), "{:?}", drv.agg_history());
    }

    #[test]
    fn cmm_falls_back_to_dunn_on_empty_agg() {
        let sys = system_with(&["mcf_refine", "omnet_events", "povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.system_mut().run(400_000); // past the cold streaming phase
        drv.epoch();
        // No aggressor: Dunn's nested plan is in force; the most-stalled
        // core has the full mask, and nobody was throttled.
        let sys = drv.system();
        assert!((0..4).all(|c| sys.prefetching_enabled(c)));
        let full = (1u64 << sys.llc_ways()) - 1;
        assert!((0..4).any(|c| sys.effective_mask(c) == full));
    }

    #[test]
    fn overhead_is_small() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmC, ControllerConfig::quick());
        drv.run_total(2_000_000);
        assert!(drv.overhead_ratio() < 0.01, "overhead {:.4}", drv.overhead_ratio());
        assert!(drv.epochs() >= 2);
    }

    #[test]
    fn run_total_reaches_target() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Pt, ControllerConfig::quick());
        drv.run_total(300_000);
        assert!(drv.system().now() >= 300_000);
    }

    #[test]
    fn cmm_records_trials_and_winner() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::CmmA, ControllerConfig::quick());
        drv.run_total(1_200_000);
        let recs = drv.records();
        assert_eq!(recs.len() as u64, drv.epochs());
        // Some epoch detected aggressors and searched throttle settings.
        let searched = recs.iter().find(|r| !r.trials.is_empty()).expect("no trials recorded");
        assert_eq!(searched.mechanism, "CMM-a");
        assert!(!searched.agg.is_empty());
        let w = searched.winner.expect("search must pick a winner");
        let best = searched.trials[w].hm_ipc;
        assert!(searched.trials.iter().all(|t| t.hm_ipc <= best), "winner must rank first");
        // Cascade samples cover every core, and the applied state matches
        // the machine.
        assert_eq!(searched.cores.len(), 4);
        let last = recs.last().unwrap();
        assert_eq!(last.applied.len(), 4);
        for c in 0..4 {
            assert_eq!(last.applied[c].way_mask, drv.system().effective_mask(c));
            assert_eq!(last.applied[c].prefetching(), drv.system().prefetching_enabled(c));
        }
    }

    #[test]
    fn baseline_records_epochs_without_decisions() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Baseline, ControllerConfig::quick());
        drv.run_total(500_000);
        assert!(!drv.records().is_empty());
        for r in drv.records() {
            assert!(r.cores.is_empty() && r.agg.is_empty() && r.trials.is_empty());
            assert_eq!(r.winner, None);
            assert_eq!(r.applied.len(), 2);
        }
    }

    #[test]
    fn take_records_drains() {
        let sys = system_with(&["povray_rt", "gobmk_ai"]);
        let mut drv = Driver::new(sys, Mechanism::Pt, ControllerConfig::quick());
        drv.epoch();
        let taken = drv.take_records();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].epoch, 1);
        assert!(drv.records().is_empty());
    }

    #[test]
    fn epoch_records_are_ordered_and_cycle_stamped() {
        let sys = system_with(&["bwaves3d", "rand_access", "mcf_refine", "povray_rt"]);
        let mut drv = Driver::new(sys, Mechanism::PrefCp, ControllerConfig::quick());
        drv.run_total(900_000);
        let recs = drv.records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
        }
        for pair in recs.windows(2) {
            assert!(pair[0].cycle < pair[1].cycle, "cycles must advance");
        }
    }
}
