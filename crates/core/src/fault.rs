//! Fault injection over any [`Substrate`] — the error surface real
//! hardware throws at the paper's kernel module.
//!
//! [`FaultySubstrate`] wraps an inner substrate and injects, on a
//! deterministic seeded schedule:
//!
//! * **MSR write rejection** ([`MsrError::Rejected`]) — the transient #GP
//!   a WRMSR can raise; a bounded retry usually clears it.
//! * **CLOS exhaustion** — parts ship with few CLOS; masks at or above
//!   `clos_limit` (and associations to them) fail like the register does
//!   not exist, which is how CAT unavailability presents in practice.
//! * **PMU overflow** — a counter wraps, so a snapshot reads far below its
//!   predecessor.
//! * **Transient read garbage** — one core's snapshot comes back as junk
//!   for a single read.
//!
//! The schedule is a pure function of `(seed, call sequence)`: the same
//! run replays the same faults, which is what makes fault-injection runs
//! journalable and byte-identical in CI. With every rate at zero the
//! decorator consumes no entropy and is an exact passthrough — a
//! zero-fault run over `FaultySubstrate` is indistinguishable, journal
//! byte for journal byte, from a run over the bare inner substrate.

use crate::substrate::Substrate;
use cmm_sim::config::SystemConfig;
use cmm_sim::memory::CoreMemTraffic;
use cmm_sim::msr::{CatError, IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MBA_THROTTLE};
use cmm_sim::pmu::Pmu;
use cmm_sim::system::{CoreControl, MsrError};

/// Fault schedule parameters. All rates are per-call probabilities in
/// `[0, 1]`; a rate of zero disables that fault class entirely (and draws
/// no entropy for it).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability that a WRMSR is transiently rejected.
    pub msr_reject_rate: f64,
    /// When set, CLOS ids `>= clos_limit` do not exist: their mask MSRs
    /// and associations fail permanently (CLOS exhaustion). `Some(1)`
    /// leaves only the default CLOS 0 — CAT effectively unavailable.
    pub clos_limit: Option<usize>,
    /// Probability that one core's counters in a PMU snapshot have
    /// wrapped (read far below the previous snapshot).
    pub pmu_overflow_rate: f64,
    /// Probability that one core's PMU snapshot is transient garbage.
    pub pmu_garbage_rate: f64,
    /// Probability that a write to the MBA throttle register is
    /// transiently rejected (distinct from `msr_reject_rate` so bandwidth
    /// faults can be dialed independently of prefetch/CAT faults).
    pub mba_reject_rate: f64,
    /// Probability that a write to the MBA throttle register is silently
    /// dropped: the WRMSR reports success but the register keeps its old
    /// level — the "stuck delay value" failure mode. Read-back (and hence
    /// the journal's `applied` block) exposes the stuck level.
    pub mba_stuck_rate: f64,
}

impl FaultConfig {
    /// No faults at all: the decorator is an exact passthrough.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            msr_reject_rate: 0.0,
            clos_limit: None,
            pmu_overflow_rate: 0.0,
            pmu_garbage_rate: 0.0,
            mba_reject_rate: 0.0,
            mba_stuck_rate: 0.0,
        }
    }

    /// A uniform schedule: MSR rejections and PMU overflows at `rate`,
    /// garbage reads at half of it (they are rarer in practice), no CLOS
    /// exhaustion.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            msr_reject_rate: rate,
            clos_limit: None,
            pmu_overflow_rate: rate,
            pmu_garbage_rate: rate / 2.0,
            mba_reject_rate: 0.0,
            mba_stuck_rate: 0.0,
        }
    }

    /// A schedule that faults only the MBA throttle register: transient
    /// rejections at `rate`, stuck writes at half of it. Every other fault
    /// class stays at zero, so the rest of the entropy stream is untouched.
    pub fn mba_only(seed: u64, rate: f64) -> Self {
        FaultConfig { mba_reject_rate: rate, mba_stuck_rate: rate / 2.0, ..FaultConfig::none() }
            .with_seed(seed)
    }

    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Injection counters (ground truth for tests: what the schedule actually
/// fired, independent of what the controller noticed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Transient WRMSR rejections injected.
    pub msr_rejections: u64,
    /// Writes refused because the CLOS does not exist.
    pub clos_rejections: u64,
    /// PMU snapshots with a wrapped core.
    pub pmu_overflows: u64,
    /// PMU snapshots with a garbage core.
    pub pmu_garbage: u64,
    /// Transient MBA throttle-write rejections injected.
    pub mba_rejections: u64,
    /// MBA throttle writes silently dropped (stuck delay value).
    pub mba_stuck: u64,
}

impl InjectedFaults {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.msr_rejections
            + self.clos_rejections
            + self.pmu_overflows
            + self.pmu_garbage
            + self.mba_rejections
            + self.mba_stuck
    }
}

/// splitmix64 — tiny, seedable, and good enough for a fault schedule.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `p`. Draws no entropy when `p <= 0`, so
    /// zero-rate configurations leave the stream untouched.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// A [`Substrate`] decorator injecting the [`FaultConfig`] schedule.
#[derive(Debug)]
pub struct FaultySubstrate<S> {
    inner: S,
    cfg: FaultConfig,
    rng: Rng,
    injected: InjectedFaults,
}

impl<S: Substrate> FaultySubstrate<S> {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: S, cfg: FaultConfig) -> Self {
        let rng = Rng(cfg.seed);
        FaultySubstrate { inner, cfg, rng, injected: InjectedFaults::default() }
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the decorator, returning the wrapped substrate.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// What the schedule has injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// True if `msr` addresses a CLOS (mask register or an association
    /// value) at or beyond the configured CLOS limit.
    fn clos_exhausted(&self, msr: u32, value: u64) -> Option<usize> {
        let limit = self.cfg.clos_limit?;
        if msr >= IA32_L3_QOS_MASK_BASE {
            let clos = (msr - IA32_L3_QOS_MASK_BASE) as usize;
            if clos >= limit && clos < self.inner.config().num_clos {
                return Some(clos);
            }
        }
        if msr == IA32_PQR_ASSOC && (value as usize) >= limit {
            return Some(value as usize);
        }
        None
    }
}

impl<S: Substrate> Substrate for FaultySubstrate<S> {
    fn num_cores(&self) -> usize {
        self.inner.num_cores()
    }

    fn llc_ways(&self) -> u32 {
        self.inner.llc_ways()
    }

    fn config(&self) -> &SystemConfig {
        self.inner.config()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn run(&mut self, cycles: u64) {
        self.inner.run(cycles)
    }

    fn pmu_all(&mut self) -> Vec<Pmu> {
        let mut pmus = self.inner.pmu_all();
        if pmus.is_empty() {
            return pmus;
        }
        if self.rng.chance(self.cfg.pmu_overflow_rate) {
            // One core's counters wrapped: the snapshot reads as if the
            // counters restarted recently. Transient — the next read sees
            // the true (monotone) values again.
            let core = (self.rng.next() as usize) % pmus.len();
            self.injected.pmu_overflows += 1;
            let p = &mut pmus[core];
            p.cycles &= 0xFFFF;
            p.instructions &= 0xFFFF;
            p.stalls_l2_pending &= 0xFFFF;
            p.stall_cycles &= 0xFFFF;
        }
        if self.rng.chance(self.cfg.pmu_garbage_rate) {
            // One core's snapshot is bus garbage for this read only.
            let core = (self.rng.next() as usize) % pmus.len();
            self.injected.pmu_garbage += 1;
            let p = &mut pmus[core];
            p.cycles = self.rng.next() | (1 << 62);
            p.instructions = self.rng.next() | (1 << 62);
            p.l2_pf_req = self.rng.next();
            p.l2_dm_req = self.rng.next();
        }
        pmus
    }

    fn traffic(&self, core: usize) -> CoreMemTraffic {
        self.inner.traffic(core)
    }

    fn write_msr(&mut self, core: usize, msr: u32, value: u64) -> Result<(), MsrError> {
        if let Some(clos) = self.clos_exhausted(msr, value) {
            self.injected.clos_rejections += 1;
            return Err(MsrError::Cat(CatError::BadClos(clos)));
        }
        if msr == MSR_MBA_THROTTLE {
            // Bandwidth-specific schedule, checked before the generic MSR
            // one. Legacy runs never write this register, so zero-rate
            // configurations leave every existing entropy stream intact.
            if self.rng.chance(self.cfg.mba_reject_rate) {
                self.injected.mba_rejections += 1;
                return Err(MsrError::Rejected(msr));
            }
            if self.rng.chance(self.cfg.mba_stuck_rate) {
                // Stuck delay value: WRMSR "succeeds" but the register
                // keeps its old level. Read-back tells the truth.
                self.injected.mba_stuck += 1;
                return Ok(());
            }
        }
        if self.rng.chance(self.cfg.msr_reject_rate) {
            self.injected.msr_rejections += 1;
            return Err(MsrError::Rejected(msr));
        }
        self.inner.write_msr(core, msr, value)
    }

    fn read_msr(&self, core: usize, msr: u32) -> Result<u64, MsrError> {
        self.inner.read_msr(core, msr)
    }

    fn reset_cat(&mut self) {
        // The safe state is always reachable — this models unloading the
        // module / rebooting CAT to its power-on default, which cannot
        // meaningfully "fail".
        self.inner.reset_cat()
    }

    fn reset_cat_domain(&mut self, socket: usize) {
        // Same reasoning as reset_cat: the per-domain safe state is always
        // reachable, so the fault layer never interposes here.
        self.inner.reset_cat_domain(socket)
    }

    fn control_state(&self) -> Vec<CoreControl> {
        self.inner.control_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::config::SystemConfig;
    use cmm_sim::msr::MSR_MISC_FEATURE_CONTROL;
    use cmm_sim::workload::Idle;
    use cmm_sim::System;

    fn machine(cores: usize) -> System {
        System::new(SystemConfig::tiny(cores), (0..cores).map(|_| Box::new(Idle) as _).collect())
    }

    #[test]
    fn zero_rates_are_exact_passthrough() {
        let mut plain = machine(2);
        let mut faulty = FaultySubstrate::new(machine(2), FaultConfig::none());
        plain.run(10_000);
        faulty.run(10_000);
        assert_eq!(Substrate::pmu_all(&mut plain), faulty.pmu_all());
        assert_eq!(faulty.write_msr(0, MSR_MISC_FEATURE_CONTROL, 0xF), Ok(()));
        assert_eq!(faulty.read_msr(0, MSR_MISC_FEATURE_CONTROL), Ok(0xF));
        assert_eq!(faulty.injected().total(), 0);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FaultySubstrate::new(machine(2), FaultConfig::uniform(seed, 0.5));
            let outcomes: Vec<bool> =
                (0..64).map(|_| s.write_msr(0, MSR_MISC_FEATURE_CONTROL, 0).is_ok()).collect();
            (outcomes, s.injected())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds must differ somewhere");
        let (_, injected) = run(7);
        assert!(injected.msr_rejections > 10, "{injected:?}");
    }

    #[test]
    fn rejections_are_transient() {
        // At rate 0.5, some write in a short retry burst must succeed.
        let mut s = FaultySubstrate::new(machine(1), FaultConfig::uniform(3, 0.5));
        let ok = (0..8).any(|_| s.write_msr(0, MSR_MISC_FEATURE_CONTROL, 0xF).is_ok());
        assert!(ok);
        assert_eq!(s.read_msr(0, MSR_MISC_FEATURE_CONTROL), Ok(0xF));
    }

    #[test]
    fn clos_limit_exhausts_cat() {
        let mut cfg = FaultConfig::none();
        cfg.clos_limit = Some(1);
        let mut s = FaultySubstrate::new(machine(2), cfg);
        // CLOS 0 still works; CLOS 1 mask and association both fail.
        assert!(Substrate::set_clos_mask(&mut s, 0, 0b11).is_ok());
        assert_eq!(
            Substrate::set_clos_mask(&mut s, 1, 0b11),
            Err(MsrError::Cat(CatError::BadClos(1)))
        );
        assert_eq!(Substrate::assign_clos(&mut s, 0, 1), Err(MsrError::Cat(CatError::BadClos(1))));
        assert_eq!(s.injected().clos_rejections, 2);
        // The safe-state escape hatch still works.
        s.reset_cat();
        assert_eq!(Substrate::effective_mask(&s, 0), 0b1111);
    }

    #[test]
    fn mba_rejections_are_transient_and_counted() {
        let mut cfg = FaultConfig::none();
        cfg.seed = 5;
        cfg.mba_reject_rate = 0.5;
        let mut s = FaultySubstrate::new(machine(1), cfg);
        // Dense retries must eventually land a write.
        let ok = (0..16).any(|_| Substrate::set_mba_throttle(&mut s, 0, 40).is_ok());
        assert!(ok);
        assert_eq!(Substrate::mba_throttle(&s, 0), 40);
        assert!(s.injected().mba_rejections > 0);
        // The MBA schedule leaves other register classes alone.
        assert_eq!(s.write_msr(0, MSR_MISC_FEATURE_CONTROL, 0xF), Ok(()));
        assert_eq!(s.injected().msr_rejections, 0);
    }

    #[test]
    fn stuck_mba_writes_report_success_but_keep_the_old_level() {
        let mut cfg = FaultConfig::none();
        cfg.mba_stuck_rate = 1.0;
        let mut s = FaultySubstrate::new(machine(1), cfg);
        assert_eq!(Substrate::set_mba_throttle(&mut s, 0, 80), Ok(()));
        // The write "succeeded" but the register is stuck at power-on 0 —
        // only read-back (what the journal's applied block records) shows it.
        assert_eq!(Substrate::mba_throttle(&s, 0), 0);
        assert_eq!(s.injected().mba_stuck, 1);
    }

    #[test]
    fn zero_mba_rates_draw_no_entropy() {
        // With both MBA rates at zero an MBA write draws exactly the one
        // generic reject chance every other write draws — so a stream of
        // MBA writes and a stream of prefetch writes under the same seed
        // fault at the same call indices.
        let drive = |msr: u32, value: u64| {
            let mut s = FaultySubstrate::new(machine(2), FaultConfig::uniform(11, 0.3));
            let outcomes: Vec<bool> = (0..32).map(|_| s.write_msr(0, msr, value).is_ok()).collect();
            (outcomes, s.injected().msr_rejections)
        };
        assert_eq!(drive(MSR_MBA_THROTTLE, 40), drive(MSR_MISC_FEATURE_CONTROL, 0));
    }

    #[test]
    fn pmu_faults_are_per_read_and_detectable() {
        let mut s = FaultySubstrate::new(machine(2), FaultConfig::uniform(9, 1.0));
        s.run(50_000);
        let a = s.pmu_all();
        let b = s.pmu_all();
        // With overflow at rate 1.0 every read corrupts some core, and two
        // corrupted reads of an unchanged machine disagree — which is
        // exactly the signal the controller's stable-read loop keys on.
        assert_ne!(a, b);
        assert!(s.injected().pmu_overflows >= 2);
    }
}
