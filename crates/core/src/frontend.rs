//! CMM front-end: Table I metrics and the Fig. 5 `Agg`-set detector.
//!
//! All inputs are [`PmuDelta`]s measured over one sampling interval with
//! every prefetcher enabled (the paper's first interval is always all-on so
//! cores whose prefetchers were throttled in the previous epoch can be
//! re-evaluated).

use cmm_sim::pmu::PmuDelta;

/// The derived per-core metrics of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// M-1 `L2-LLC-traffic`: demand + prefetch requests between L2 and LLC.
    pub l2_llc_traffic: u64,
    /// M-2 `L2 pref miss frac`: prefetch fraction of the L2→LLC traffic.
    pub l2_pf_miss_frac: f64,
    /// M-3 `L2 PTR`: L2 prefetch requests arriving at LLC per cycle
    /// (the paper uses per-second; per-cycle is the same ranking).
    pub l2_ptr: f64,
    /// M-4 `PGA` (pref gen ability): L2 prefetch / demand request ratio.
    pub pga: f64,
    /// M-5 `L2 PMR`: fraction of L2 prefetches missing L2.
    pub l2_pmr: f64,
    /// M-6 `L2 PPM`: prefetches issued per demand miss (the SPAC metric
    /// the paper argues is insufficient on Intel's hierarchy).
    pub l2_ppm: f64,
    /// M-7 `LLC PT`: approximate LLC→memory prefetch bandwidth in
    /// bytes/cycle.
    pub llc_pt: f64,
}

/// PGA saturation: when prefetching fully absorbs the demand stream
/// (demand requests stop reaching L2 because they merge with in-flight
/// prefetches), the raw prefetch/demand ratio diverges and would dominate
/// the detector's above-average rule. One saturated core would then mask
/// every other aggressor. Capping PGA keeps the rule meaningful.
pub const PGA_SATURATION: f64 = 50.0;

/// Computes the Table I metrics from one interval's counters.
pub fn metrics(d: &PmuDelta) -> Metrics {
    let cycles = d.cycles.max(1) as f64;
    let ratio = |num: u64, den: u64| -> f64 {
        if den == 0 {
            // No denominator events: an undefined ratio reads as "all
            // traffic is of the numerator kind" when the numerator is
            // non-zero, and 0 otherwise.
            if num == 0 {
                0.0
            } else {
                num as f64
            }
        } else {
            num as f64 / den as f64
        }
    };
    Metrics {
        l2_llc_traffic: d.l2_pf_miss + d.l2_dm_miss,
        l2_pf_miss_frac: ratio(d.l2_pf_miss, d.l2_pf_miss + d.l2_dm_miss),
        l2_ptr: d.l2_pf_miss as f64 / cycles,
        pga: ratio(d.l2_pf_req, d.l2_dm_req).min(PGA_SATURATION),
        l2_pmr: ratio(d.l2_pf_miss, d.l2_pf_req),
        l2_ppm: ratio(d.l2_pf_req, d.l2_dm_miss),
        llc_pt: d.llc_pf_to_mem as f64 * 64.0 / cycles,
    }
}

/// Detector thresholds (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Keep cores whose L2 PMR exceeds this (filters out cores whose
    /// prefetches mostly hit L2, i.e. high prefetch locality).
    pub pmr_threshold: f64,
    /// Keep cores whose L2 PTR exceeds this (absolute pressure floor).
    pub ptr_threshold: f64,
    /// Absolute PGA floor. A core above this is a candidate even when the
    /// all-core average is inflated by a stronger aggressor; a core below
    /// it is never a candidate (the adjacent-line prefetcher alone tops
    /// out at one prefetch per demand pair, so PGA ≲ 1 means the core
    /// cannot multiply its own traffic).
    pub pga_floor: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // PMR: the paper suggests 70%; under heavy contention an
        // aggressor's own junk starts hitting its L2 (floods overlap), so
        // 55% is the robust setting here — the high-locality cores this
        // stage exists to drop sit at PMR ≤ 0.25.
        // The PGA floor separates multiplying traffic (streams ≥ ~1.9)
        // from the ≤ ~1.0 adjacent-line chatter of pointer chases; the PTR
        // floor then drops aggressors whose absolute pressure is too small
        // to matter — kept low enough that an aggressor already *starved*
        // by contention (whose traffic rate has collapsed with its IPC)
        // still qualifies for help.
        DetectorConfig { pmr_threshold: 0.55, ptr_threshold: 0.003, pga_floor: 1.1 }
    }
}

/// The Fig. 5 cascade: returns the indices of the prefetch-aggressive
/// cores, ascending.
///
/// 1. **PGA ≥ floor** — the core's access pattern makes the L2 prefetchers
///    generate meaningfully more prefetch than demand traffic. The paper
///    uses "PGA above the all-core average"; we use an absolute floor
///    because the relative rule degenerates in two cases the simulator
///    exposes clearly: a single extreme aggressor inflates the average and
///    masks moderate aggressors, and in an aggressor-free mix the average
///    is so low that ordinary pointer chases sit above it. (On the paper's
///    hardware the same intent holds — their Fig. 5 cores split around
///    PGA ≈ 1.)
/// 2. **L2 PMR ≥ threshold** — those prefetches actually leave L2 (low
///    prefetch locality), so they pressure the LLC;
/// 3. **L2 PTR ≥ threshold** — the pressure is large enough to matter.
pub fn detect_agg(deltas: &[PmuDelta], cfg: &DetectorConfig) -> Vec<usize> {
    if deltas.is_empty() {
        return Vec::new();
    }
    let ms: Vec<Metrics> = deltas.iter().map(metrics).collect();
    ms.iter()
        .enumerate()
        .filter(|(_, m)| {
            m.pga >= cfg.pga_floor && m.l2_pmr >= cfg.pmr_threshold && m.l2_ptr >= cfg.ptr_threshold
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_sim::pmu::Pmu;

    fn delta(cycles: u64, pf_req: u64, pf_miss: u64, dm_req: u64, dm_miss: u64) -> PmuDelta {
        Pmu {
            cycles,
            l2_pf_req: pf_req,
            l2_pf_miss: pf_miss,
            l2_dm_req: dm_req,
            l2_dm_miss: dm_miss,
            ..Pmu::default()
        }
    }

    #[test]
    fn table1_formulas() {
        let d = delta(1000, 100, 80, 50, 20);
        let m = metrics(&d);
        assert_eq!(m.l2_llc_traffic, 100);
        assert!((m.l2_pf_miss_frac - 0.8).abs() < 1e-12);
        assert!((m.l2_ptr - 0.08).abs() < 1e-12);
        assert!((m.pga - 2.0).abs() < 1e-12);
        assert!((m.l2_pmr - 0.8).abs() < 1e-12);
        assert!((m.l2_ppm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn llc_pt_is_bytes_per_cycle() {
        let d = PmuDelta { cycles: 640, llc_pf_to_mem: 10, ..Pmu::default() };
        assert!((metrics(&d).llc_pt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_do_not_nan() {
        let m = metrics(&delta(1000, 0, 0, 0, 0));
        assert_eq!(m.pga, 0.0);
        assert_eq!(m.l2_pmr, 0.0);
        // Prefetch traffic with no demand at L2 must still read as high
        // PGA, saturated so one such core cannot dominate the average.
        let m2 = metrics(&delta(1000, 500, 400, 0, 0));
        assert_eq!(m2.pga, PGA_SATURATION);
    }

    #[test]
    fn detector_selects_streaming_core() {
        // Core 0: aggressive stream (high PGA, high PMR, high PTR).
        // Core 1: compute bound (no prefetches).
        // Core 2: L2-resident loop (prefetches hit L2: low PMR).
        let deltas = vec![
            delta(100_000, 5_000, 4_500, 1_000, 900),
            delta(100_000, 0, 0, 10, 2),
            delta(100_000, 4_000, 200, 3_000, 50),
        ];
        let agg = detect_agg(&deltas, &DetectorConfig::default());
        assert_eq!(agg, vec![0]);
    }

    #[test]
    fn low_traffic_core_filtered_by_ptr() {
        // High PGA and PMR but only a trickle of traffic.
        let deltas = vec![delta(1_000_000, 50, 45, 10, 8), delta(1_000_000, 0, 0, 1_000, 100)];
        let agg = detect_agg(&deltas, &DetectorConfig::default());
        assert!(agg.is_empty(), "a 45-miss trickle is not aggressive: {agg:?}");
    }

    #[test]
    fn empty_input_gives_empty_agg() {
        assert!(detect_agg(&[], &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn uniformly_aggressive_mix_detects_everyone() {
        // Identical aggressive cores: the paper's above-average rule would
        // find nobody; the absolute floor finds them all.
        let d = delta(100_000, 5_000, 4_500, 1_000, 900);
        let agg = detect_agg(&[d, d, d], &DetectorConfig::default());
        assert_eq!(agg, vec![0, 1, 2]);
    }

    #[test]
    fn pointer_chase_pga_below_floor_excluded() {
        // A chase: one adjacent-line prefetch per demand pair (PGA ≈ 0.96),
        // high PMR, meaningful PTR — must still not be aggressive.
        let chase = delta(100_000, 4_800, 4_700, 5_000, 4_900);
        let stream = delta(100_000, 9_000, 8_500, 1_000, 900);
        let agg = detect_agg(&[chase, stream], &DetectorConfig::default());
        assert_eq!(agg, vec![1]);
    }

    #[test]
    fn multiple_aggressive_cores_detected() {
        let deltas = vec![
            delta(100_000, 5_000, 4_500, 1_000, 900),
            delta(100_000, 6_000, 5_500, 1_200, 1_000),
            delta(100_000, 0, 0, 10, 2),
            delta(100_000, 0, 0, 10, 2),
        ];
        let agg = detect_agg(&deltas, &DetectorConfig::default());
        assert_eq!(agg, vec![0, 1]);
    }
}
