//! Bridge between the dependency-free `cmm-learn` crate and the
//! controller: PMU-delta → feature-vector mapping, the [`Learner`] a
//! [`crate::driver::Driver`] can carry, and the discretized action/state
//! space the RL-CBP bandit searches.
//!
//! `cmm-learn` knows nothing about the simulator; this module maps
//! [`PmuDelta`] onto its [`RawCounters`] and owns every policy decision
//! that needs simulator types (which cores an action touches, how a
//! detection discretizes into a bandit state).

use crate::backend::Detection;
use cmm_learn::bandit::{Bandit, BanditConfig};
use cmm_learn::bucket;
use cmm_learn::features::{self, RawCounters, N_FEATURES};
use cmm_learn::model::Model;
use cmm_sim::pmu::PmuDelta;

/// Maps one core's PMU interval delta onto the crate-neutral counter
/// struct `cmm-learn` extracts features from.
pub fn raw_counters(d: &PmuDelta) -> RawCounters {
    RawCounters {
        cycles: d.cycles,
        instructions: d.instructions,
        l1d_accesses: d.l1d_accesses,
        l1d_misses: d.l1d_misses,
        l2_requests: d.l2_dm_req + d.l2_pf_req,
        l2_misses: d.l2_dm_miss + d.l2_pf_miss,
        l2_pf_requests: d.l2_pf_req,
        l3_load_misses: d.l3_load_miss,
        stalls_l2_pending: d.stalls_l2_pending,
        pf_used: d.pf_used,
        pf_wasted: d.pf_wasted,
        mem_bytes: d.mem_total_bytes(),
    }
}

/// One core's feature vector (`cmm_learn::FEATURE_NAMES` order).
pub fn core_features(d: &PmuDelta) -> [f64; N_FEATURES] {
    features::features(&raw_counters(d))
}

/// The epoch's machine-mean feature vector — what the journal records
/// under the `/6` `features` key.
pub fn mean_features(deltas: &[PmuDelta]) -> Vec<f64> {
    let vectors: Vec<[f64; N_FEATURES]> = deltas.iter().map(core_features).collect();
    features::mean(&vectors).to_vec()
}

/// The prefetcher MSR 0x1A4 images the learned controllers choose among:
/// all engines on, the two L2 engines off, all engines off — the same
/// three levels PT-fine trials.
pub const PF_CHOICES: [u64; 3] = [0x0, 0x3, 0xF];

/// MBA delay levels the RL action space covers (mirrors
/// [`crate::backend::cbp::MBA_LEVELS`]).
const MBA_CHOICES: [u64; 3] = [0, 40, 90];

/// Execution-epoch stretch factors: 1 = re-plan every epoch, 2 = hold the
/// applied action for one extra execution epoch (the learned epoch-length
/// knob).
const STRETCH_CHOICES: [u64; 2] = [1, 2];

/// One decoded RL-CBP action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlAction {
    /// MSR 0x1A4 image for the unfriendly aggressors (friendly and neutral
    /// cores always keep their prefetchers on, as in CMM).
    pub pf: u64,
    /// `true` applies the CMM-a partition plan; `false` leaves the cache
    /// flat.
    pub cat_cmm: bool,
    /// MBA delay level for the whole `Agg` set (0 = unthrottled).
    pub mba: u64,
    /// Number of execution epochs the action stays in force.
    pub stretch: u64,
}

/// Size of the discretized action space:
/// prefetch (3) × CAT plan (2) × MBA level (3) × stretch (2).
pub const N_ACTIONS: usize = PF_CHOICES.len() * 2 * MBA_CHOICES.len() * STRETCH_CHOICES.len();

/// Size of the discretized state space: `Agg`-count (3) × prefetch
/// accuracy (3) × bandwidth pressure (3).
pub const N_STATES: usize = 27;

/// Decodes a bandit action index (`0..N_ACTIONS`) into its knob settings.
pub fn decode_action(a: usize) -> RlAction {
    assert!(a < N_ACTIONS);
    let stretch = STRETCH_CHOICES[a % 2];
    let a = a / 2;
    let mba = MBA_CHOICES[a % 3];
    let a = a / 3;
    let cat_cmm = a % 2 == 1;
    let pf = PF_CHOICES[a / 2];
    RlAction { pf, cat_cmm, mba, stretch }
}

/// Inverse of [`decode_action`] for the seeded prior.
fn encode_action(act: RlAction) -> usize {
    let pf_i = PF_CHOICES.iter().position(|&p| p == act.pf).unwrap();
    let mba_i = MBA_CHOICES.iter().position(|&m| m == act.mba).unwrap();
    let stretch_i = STRETCH_CHOICES.iter().position(|&s| s == act.stretch).unwrap();
    ((pf_i * 2 + act.cat_cmm as usize) * 3 + mba_i) * 2 + stretch_i
}

/// The CMM-like prior the bandit starts from in every state: unfriendly
/// prefetchers fully off, CMM-a partition, no bandwidth throttle,
/// re-planned every epoch — the configuration CMM-a itself converges to on
/// an aggressive mix, so greedy exploitation starts at the incumbent
/// mechanism rather than uniform ignorance.
pub fn cmm_like_action() -> usize {
    encode_action(RlAction { pf: 0xF, cat_cmm: true, mba: 0, stretch: 1 })
}

/// The journal's `action` label for a decoded RL action.
pub fn action_label(act: &RlAction) -> String {
    format!(
        "pf={:#x},cat={},mba={},stretch={}",
        act.pf,
        if act.cat_cmm { "cmm" } else { "flat" },
        act.mba,
        act.stretch
    )
}

/// Discretizes a detection into the bandit's state index.
///
/// Three bucketed axes: how many aggressors, how accurate their
/// prefetchers are (ground-truth accuracy over the interval), and how much
/// memory bandwidth the machine is moving — the coordinates along which
/// the best (prefetch × CAT × MBA) configuration actually varies.
pub fn state_of(det: &Detection) -> usize {
    let agg_b = bucket(det.agg.len() as f64, &[1.0, 3.0]);
    let vectors: Vec<[f64; N_FEATURES]> = det.interval1.iter().map(core_features).collect();
    let mean = features::mean(&vectors);
    let acc_b = bucket(mean[5], &[0.4, 0.7]);
    let bw_b = bucket(mean[7], &[0.02, 0.1]);
    agg_b * 9 + acc_b * 3 + bw_b
}

/// The online RL policy: one seeded bandit per CAT domain, grown lazily so
/// single- and multi-socket machines share the code path.
#[derive(Debug, Clone)]
pub struct RlPolicy {
    seed: u64,
    epsilon: f64,
    bandits: Vec<Bandit>,
}

impl RlPolicy {
    /// `epsilon` is the initial exploration probability; 0 makes the
    /// policy purely greedy (drawing no entropy — the determinism tests'
    /// configuration).
    pub fn new(seed: u64, epsilon: f64) -> Self {
        RlPolicy { seed, epsilon, bandits: Vec::new() }
    }

    /// The domain's bandit, created on first use. Each domain gets an
    /// independent entropy stream (`seed` ⊕ domain via splitmix) and the
    /// CMM-like optimistic prior in every state.
    pub fn bandit_mut(&mut self, domain: usize) -> &mut Bandit {
        while self.bandits.len() <= domain {
            let mut s = self.seed.wrapping_add(self.bandits.len() as u64);
            let seed = cmm_learn::splitmix64(&mut s);
            let mut b = Bandit::new(BanditConfig {
                seed,
                states: N_STATES,
                actions: N_ACTIONS,
                epsilon: self.epsilon,
                epsilon_decay: 0.85,
                alpha: 0.5,
            });
            let prior = cmm_like_action();
            for state in 0..N_STATES {
                b.seed_action(state, prior, 0.02);
            }
            self.bandits.push(b);
        }
        &mut self.bandits[domain]
    }
}

/// A learned controller a [`crate::driver::Driver`] can carry
/// ([`crate::driver::Driver::with_learner`]).
#[derive(Debug, Clone)]
pub enum Learner {
    /// `Mechanism::MlSel`: the offline-trained phase classifier plus its
    /// confidence floor. An epoch whose *least* confident per-core
    /// prediction falls below the floor degrades to the CMM-a search.
    Ml {
        /// The `cmm-model/1` classifier (classes = MSR 0x1A4 images).
        model: Model,
        /// Minimum per-core posterior probability to trust the classifier.
        floor: f64,
    },
    /// `Mechanism::RlCbp`: the online bandit policy.
    Rl(RlPolicy),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_counter_mapping_aggregates_l2_streams() {
        let d = PmuDelta {
            cycles: 100,
            instructions: 150,
            l2_dm_req: 10,
            l2_pf_req: 30,
            l2_dm_miss: 5,
            l2_pf_miss: 15,
            mem_demand_bytes: 64,
            mem_prefetch_bytes: 128,
            mem_writeback_bytes: 64,
            ..PmuDelta::default()
        };
        let r = raw_counters(&d);
        assert_eq!(r.l2_requests, 40);
        assert_eq!(r.l2_misses, 20);
        assert_eq!(r.l2_pf_requests, 30);
        assert_eq!(r.mem_bytes, 256);
        assert!((core_features(&d)[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn action_codec_round_trips() {
        for a in 0..N_ACTIONS {
            let act = decode_action(a);
            assert_eq!(encode_action(act), a, "{act:?}");
            assert!(PF_CHOICES.contains(&act.pf));
            assert!(MBA_CHOICES.contains(&act.mba));
            assert!(STRETCH_CHOICES.contains(&act.stretch));
        }
        assert_eq!(N_ACTIONS, 36);
    }

    #[test]
    fn cmm_prior_decodes_to_the_cmm_configuration() {
        let act = decode_action(cmm_like_action());
        assert_eq!(act, RlAction { pf: 0xF, cat_cmm: true, mba: 0, stretch: 1 });
        assert_eq!(action_label(&act), "pf=0xf,cat=cmm,mba=0,stretch=1");
    }

    #[test]
    fn state_space_is_covered() {
        let mut det = Detection {
            interval1: vec![PmuDelta::default()],
            agg: vec![],
            friendly: vec![],
            unfriendly: vec![],
            profiling_cycles: 0,
        };
        assert_eq!(state_of(&det), 0);
        det.agg = vec![0, 1, 2, 3];
        det.interval1 = vec![PmuDelta {
            cycles: 100,
            pf_used: 90,
            pf_wasted: 10,
            mem_demand_bytes: 100 * 64,
            ..PmuDelta::default()
        }];
        assert_eq!(state_of(&det), 2 * 9 + 2 * 3 + 2);
        assert!(state_of(&det) < N_STATES);
    }

    #[test]
    fn zero_epsilon_policy_always_starts_at_the_cmm_prior() {
        let mut a = RlPolicy::new(1, 0.0);
        let mut b = RlPolicy::new(2, 0.0);
        for state in 0..N_STATES {
            assert_eq!(a.bandit_mut(0).select(state), cmm_like_action());
            assert_eq!(b.bandit_mut(0).select(state), cmm_like_action());
        }
    }

    #[test]
    fn domains_get_independent_bandits() {
        let mut p = RlPolicy::new(7, 0.5);
        p.bandit_mut(0).select(0);
        p.bandit_mut(0).observe(1.0);
        assert_eq!(p.bandit_mut(1).count(0, cmm_like_action()), 0);
        assert_eq!(p.bandits.len(), 2);
    }
}
