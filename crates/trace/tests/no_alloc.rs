//! Verifies the acceptance criterion that the binary reader allocates
//! nothing per access on the replay hot path: all heap allocation happens
//! in `TraceReader::new` (the 64 KiB block buffer), after which draining
//! any number of ops performs zero allocations.
//!
//! Uses a counting wrapper around the system allocator; the whole file is
//! a single `#[test]` so no parallel test can perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

use cmm_trace::{Op, Trace, TraceReader};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn reader_hot_path_does_not_allocate() {
    // A trace larger than the 64 KiB block buffer, so draining it forces
    // multiple buffer refills — refills must also be allocation-free.
    let mut t = Trace::new();
    for i in 0..200_000u64 {
        match i % 3 {
            0 => t.push(Op::Load { addr: i * 64, pc: 0x400 + (i % 7) }),
            1 => t.push(Op::Store { addr: i * 128, pc: 0x500 }),
            _ => t.push(Op::Compute { cycles: (i % 50) as u32 + 1 }),
        }
    }
    let bin = t.to_binary();
    assert!(bin.len() > 128 * 1024, "trace must span multiple buffer refills");

    let mut reader = TraceReader::new(Cursor::new(&bin[..])).unwrap();
    // Pull one op first so any lazy setup has happened.
    let first = reader.next().unwrap().expect("trace is non-empty");
    assert_eq!(first, Op::Load { addr: 0, pc: 0x400 });

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut decoded = 1u64;
    let mut line_sum = 0u64;
    while let Some(op) = reader.next().unwrap() {
        decoded += 1;
        if let Op::Load { addr, .. } | Op::Store { addr, .. } = op {
            line_sum = line_sum.wrapping_add(addr >> 6);
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(decoded, 200_000);
    assert_ne!(line_sum, 0);
    assert_eq!(
        after - before,
        0,
        "replay hot path allocated {} times over {} ops",
        after - before,
        decoded - 1
    );
}
