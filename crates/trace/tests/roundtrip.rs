//! Round-trip and corruption-rejection properties of the trace formats.
//!
//! The binary reader applies the same all-or-nothing discipline the
//! checkpoint salvager applies per-record: any prefix truncation or
//! single-byte corruption of a `cmm-trace/1` file must be rejected, never
//! silently decoded into a different op stream.

use cmm_trace::binary::HEADER_LEN;
use cmm_trace::{Op, Trace, TraceError, TraceWorkload, Workload};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..10_000).prop_map(|cycles| Op::Compute { cycles }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, pc)| Op::Load { addr, pc }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, pc)| Op::Store { addr, pc }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_op(), 1..200).prop_map(Trace::from_ops)
}

fn small_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_op(), 1..48).prop_map(Trace::from_ops)
}

proptest! {
    /// text → parse is the identity on every representable trace.
    #[test]
    fn text_roundtrip_is_identity(t in arb_trace()) {
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        prop_assert_eq!(t, parsed);
    }

    /// binary → decode is the identity, including extreme addr/pc deltas.
    #[test]
    fn binary_roundtrip_is_identity(t in arb_trace()) {
        let decoded = Trace::from_binary(&t.to_binary()).unwrap();
        prop_assert_eq!(t, decoded);
    }

    /// A text→binary→replay chain emits exactly the recorded ops: the two
    /// interchange formats and the looping replayer agree byte-for-byte.
    #[test]
    fn formats_and_replay_agree(t in arb_trace()) {
        let via_text = Trace::from_text(&t.to_text()).unwrap();
        let via_binary = Trace::from_binary(&via_text.to_binary()).unwrap();
        let mut w = TraceWorkload::new("prop", via_binary);
        for lap in 0..2 {
            for (i, &op) in t.ops().iter().enumerate() {
                let got = w.next();
                prop_assert_eq!(got, op, "lap {} op {}", lap, i);
            }
        }
    }

}

proptest! {
    // Exhaustive per-byte corruption sweeps: fewer, smaller cases — each
    // case already decodes the file once per byte position.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every strict prefix of a binary trace is rejected as truncated
    /// (header prefixes may also be rejected as BadMagic-before-Truncated
    /// only when the magic itself is cut — both are hard errors).
    #[test]
    fn every_truncation_is_rejected(t in small_trace()) {
        let bin = t.to_binary();
        for cut in 0..bin.len() {
            let r = Trace::from_binary(&bin[..cut]);
            prop_assert!(r.is_err(), "prefix of {} bytes accepted", cut);
            if cut >= HEADER_LEN {
                prop_assert!(
                    matches!(r, Err(TraceError::Truncated)),
                    "payload cut at {} gave {:?}", cut, r
                );
            }
        }
    }

    /// Every single-byte flip anywhere in the file is detected.
    #[test]
    fn every_byte_flip_is_rejected(t in small_trace(), bit in 0u8..8) {
        let bin = t.to_binary();
        for i in 0..bin.len() {
            let mut corrupt = bin.clone();
            corrupt[i] ^= 1 << bit;
            let r = Trace::from_binary(&corrupt);
            prop_assert!(r.is_err(), "flip of byte {} bit {} accepted", i, bit);
        }
    }
}

#[test]
fn header_corruption_reports_specific_errors() {
    let bin = Trace::from_ops(vec![Op::Compute { cycles: 5 }]).to_binary();

    let mut bad_magic = bin.clone();
    bad_magic[1] = b'Z';
    assert!(matches!(Trace::from_binary(&bad_magic), Err(TraceError::BadMagic)));

    let mut bad_version = bin.clone();
    bad_version[4] = 2;
    assert!(matches!(Trace::from_binary(&bad_version), Err(TraceError::BadVersion(2))));

    let mut bad_checksum = bin.clone();
    bad_checksum[16] ^= 0xff;
    assert!(matches!(Trace::from_binary(&bad_checksum), Err(TraceError::BadChecksum { .. })));

    let mut overcount = bin.clone();
    overcount[8] = 2; // claims 2 ops, payload holds 1
    assert!(matches!(Trace::from_binary(&overcount), Err(TraceError::Truncated)));

    assert!(matches!(Trace::from_binary(&[]), Err(TraceError::Truncated)));
    assert!(matches!(Trace::from_binary(b"JUNKJUNK"), Err(TraceError::BadMagic)));
}
