//! Buffered streaming decoder for `cmm-trace/1` files.
//!
//! The replay hot path allocates nothing per op: the only heap allocation
//! is the fixed 64 KiB block buffer made in [`TraceReader::new`]. Each
//! [`next`](TraceReader::next) call reads tag and varint bytes out of that
//! buffer, refilling it with block reads when drained, and folds every
//! consumed payload byte into a running FNV-1a so the checksum is verified
//! exactly once, when the declared op count has been decoded.

use std::io::Read;

use crate::binary::{self, Fnv1a64, Header, HEADER_LEN, TAG_COMPUTE, TAG_LOAD, TAG_STORE};
use crate::{Op, TraceError};

const BUF_LEN: usize = 64 * 1024;

/// Streaming reader over any byte source containing a binary trace.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    buf: Box<[u8]>,
    /// Valid bytes in `buf` are `pos..len`.
    pos: usize,
    len: usize,
    header: Header,
    decoded: u64,
    hash: Fnv1a64,
    prev_addr: u64,
    prev_pc: u64,
    /// Set once the checksum has been verified (or an error was returned),
    /// so `next` is a fused iterator.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the 24-byte header, then prepares for streaming
    /// decode. Fails fast on bad magic, unknown version, or a source too
    /// short to hold a header.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut header_bytes = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            let n = src.read(&mut header_bytes[filled..])?;
            if n == 0 {
                return Err(match binary::parse_header(&header_bytes[..filled]) {
                    Err(e) => e,
                    Ok(_) => TraceError::Truncated,
                });
            }
            filled += n;
        }
        let header = binary::parse_header(&header_bytes)?;
        Ok(TraceReader {
            src,
            buf: vec![0u8; BUF_LEN].into_boxed_slice(),
            pos: 0,
            len: 0,
            header,
            decoded: 0,
            hash: Fnv1a64::default(),
            prev_addr: 0,
            prev_pc: 0,
            done: false,
        })
    }

    /// The number of ops the header declares.
    pub fn op_count(&self) -> u64 {
        self.header.op_count
    }

    /// Pulls one payload byte, refilling the block buffer as needed.
    /// Returns `Truncated` if the source ends mid-payload.
    fn next_byte(&mut self) -> Result<u8, TraceError> {
        if self.pos == self.len {
            self.len = self.src.read(&mut self.buf)?;
            self.pos = 0;
            if self.len == 0 {
                return Err(TraceError::Truncated);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        self.hash.update(std::slice::from_ref(&b));
        Ok(b)
    }

    fn read_varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.next_byte()?;
            if shift == 63 && b > 1 {
                return Err(TraceError::BadVarint);
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::BadVarint);
            }
        }
    }

    /// Decodes the next op, or `Ok(None)` once the declared count has been
    /// read and the checksum verified. After any error (or the clean end)
    /// the reader is fused and keeps returning `Ok(None)`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Op>, TraceError> {
        if self.done {
            return Ok(None);
        }
        if self.decoded == self.header.op_count {
            self.done = true;
            let actual = self.hash.finish();
            if actual != self.header.checksum {
                return Err(TraceError::BadChecksum { expected: self.header.checksum, actual });
            }
            return Ok(None);
        }
        let result = self.decode_one();
        if result.is_err() {
            self.done = true;
        }
        result.map(Some)
    }

    fn decode_one(&mut self) -> Result<Op, TraceError> {
        let tag = self.next_byte()?;
        let op = match tag {
            TAG_COMPUTE => {
                let cycles = self.read_varint()?;
                if cycles > u32::MAX as u64 {
                    return Err(TraceError::BadVarint);
                }
                Op::Compute { cycles: cycles as u32 }
            }
            TAG_LOAD | TAG_STORE => {
                let addr =
                    self.prev_addr.wrapping_add(binary::unzigzag(self.read_varint()?) as u64);
                let pc = self.prev_pc.wrapping_add(binary::unzigzag(self.read_varint()?) as u64);
                self.prev_addr = addr;
                self.prev_pc = pc;
                if tag == TAG_LOAD {
                    Op::Load { addr, pc }
                } else {
                    Op::Store { addr, pc }
                }
            }
            other => return Err(TraceError::BadTag(other)),
        };
        self.decoded += 1;
        Ok(op)
    }

    /// Drains the remaining ops into a vector (checksum still enforced).
    pub fn collect_ops(mut self) -> Result<Vec<Op>, TraceError> {
        let mut ops = Vec::with_capacity(self.header.op_count.min(1 << 20) as usize);
        while let Some(op) = self.next()? {
            ops.push(op);
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::to_binary;
    use std::io::Cursor;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Compute { cycles: 10 },
            Op::Load { addr: 0x1000, pc: 0x400 },
            Op::Store { addr: 0x1040, pc: 0x404 },
            Op::Compute { cycles: 1 },
            Op::Load { addr: 0x1080, pc: 0x400 },
        ]
    }

    #[test]
    fn decodes_what_to_binary_encodes() {
        let ops = sample_ops();
        let reader = TraceReader::new(Cursor::new(to_binary(&ops))).unwrap();
        assert_eq!(reader.op_count(), ops.len() as u64);
        assert_eq!(reader.collect_ops().unwrap(), ops);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bin = to_binary(&sample_ops());
        for cut in HEADER_LEN..bin.len() {
            let r =
                TraceReader::new(Cursor::new(bin[..cut].to_vec())).and_then(|r| r.collect_ops());
            assert!(matches!(r, Err(TraceError::Truncated)), "cut at {cut} gave {r:?}");
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum_or_decode() {
        let bin = to_binary(&sample_ops());
        for i in HEADER_LEN..bin.len() {
            let mut corrupt = bin.clone();
            corrupt[i] ^= 0x01;
            let r = TraceReader::new(Cursor::new(corrupt)).and_then(|r| r.collect_ops());
            assert!(r.is_err(), "flip at {i} not detected");
        }
    }

    #[test]
    fn reader_is_fused_after_end() {
        let mut r = TraceReader::new(Cursor::new(to_binary(&sample_ops()))).unwrap();
        while r.next().unwrap().is_some() {}
        assert!(r.next().unwrap().is_none());
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn empty_trace_decodes_to_nothing() {
        let r = TraceReader::new(Cursor::new(to_binary(&[]))).unwrap();
        assert!(r.collect_ops().unwrap().is_empty());
    }
}
