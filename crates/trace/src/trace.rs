//! In-memory traces, the shared text parser, recording, and looping replay.

use std::sync::Arc;

use crate::binary;
use crate::stats::{stats, TraceStats};
use crate::{Op, TraceError, Workload};

/// A recorded operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// A trace over an existing op sequence.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Trace { ops }
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Summary statistics of the recorded stream (one O(n) scan).
    pub fn stats(&self) -> TraceStats {
        stats(&self.ops)
    }

    /// Serialises to the text form: one op per line,
    /// `C <cycles>` / `L <addr> <pc>` / `S <addr> <pc>` (hex addresses).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 16);
        for op in &self.ops {
            match *op {
                Op::Compute { cycles } => out.push_str(&format!("C {cycles}\n")),
                Op::Load { addr, pc } => out.push_str(&format!("L {addr:x} {pc:x}\n")),
                Op::Store { addr, pc } => out.push_str(&format!("S {addr:x} {pc:x}\n")),
            }
        }
        out
    }

    /// Parses the text form produced by [`Trace::to_text`]. Blank lines and
    /// `#` comments are ignored. This is the workspace's only trace text
    /// parser; `cmm_sim::trace` re-exports it.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = || TraceError::Parse { line: lineno + 1 };
            let mut parts = line.split_whitespace();
            let kind = parts.next().ok_or_else(err)?;
            let op = match kind {
                "C" => {
                    let cycles = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                    Op::Compute { cycles }
                }
                "L" | "S" => {
                    let addr = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(err)?;
                    let pc = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(err)?;
                    if kind == "L" {
                        Op::Load { addr, pc }
                    } else {
                        Op::Store { addr, pc }
                    }
                }
                _ => return Err(err()),
            };
            if parts.next().is_some() {
                return Err(err());
            }
            ops.push(op);
        }
        Ok(Trace { ops })
    }

    /// Encodes as a `cmm-trace/1` binary file image.
    pub fn to_binary(&self) -> Vec<u8> {
        binary::to_binary(&self.ops)
    }

    /// Decodes a `cmm-trace/1` binary file image (header, checksum, and
    /// truncation all enforced).
    pub fn from_binary(bytes: &[u8]) -> Result<Trace, TraceError> {
        let reader = crate::TraceReader::new(bytes)?;
        Ok(Trace { ops: reader.collect_ops()? })
    }

    /// Decodes either format, sniffing by magic rather than extension.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if binary::is_binary(bytes) {
            Trace::from_binary(bytes)
        } else {
            Trace::from_text(&String::from_utf8_lossy(bytes))
        }
    }
}

/// Wraps a workload, recording every operation it emits.
pub struct Recorder<W> {
    inner: W,
    trace: Trace,
    limit: usize,
}

impl<W: Workload> Recorder<W> {
    /// Records up to `limit` operations (the stream is infinite).
    pub fn new(inner: W, limit: usize) -> Self {
        Recorder { inner, trace: Trace::new(), limit }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Stops recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<W: Workload> Workload for Recorder<W> {
    fn next(&mut self) -> Op {
        let op = self.inner.next();
        if self.trace.len() < self.limit {
            self.trace.push(op);
        }
        op
    }

    fn mlp(&self) -> u32 {
        self.inner.mlp()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Replays a [`Trace`] in an endless loop (restart-on-finish, as the
/// paper's methodology restarts completed benchmarks).
///
/// The trace is held behind an [`Arc`] so one loaded file can drive many
/// replayers (baseline and managed runs, multiple window placements)
/// without cloning the op vector.
#[derive(Clone)]
pub struct TraceWorkload {
    name: String,
    trace: Arc<Trace>,
    pos: usize,
    mlp: u32,
    footprint_bytes: u64,
    base: u64,
    mask: u64,
}

impl TraceWorkload {
    /// Builds a replayer whose `mlp()` and footprint are derived from the
    /// recorded stream (see [`crate::stats`]), so trace-driven cores
    /// classify in the M-1..M-7 cascade without hand-set constants.
    ///
    /// # Panics
    /// If the trace is empty.
    pub fn new(name: impl Into<String>, trace: impl Into<Arc<Trace>>) -> Self {
        let trace = trace.into();
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let s = trace.stats();
        TraceWorkload {
            name: name.into(),
            trace,
            pos: 0,
            mlp: s.est_mlp,
            footprint_bytes: s.footprint_bytes(),
            base: 0,
            mask: u64::MAX,
        }
    }

    /// Builds a replayer with an explicit MLP override, for callers that
    /// know the recorded program's true parallelism.
    ///
    /// # Panics
    /// If the trace is empty.
    pub fn with_mlp(name: impl Into<String>, trace: impl Into<Arc<Trace>>, mlp: u32) -> Self {
        let mut w = TraceWorkload::new(name, trace);
        w.mlp = mlp;
        w
    }

    /// Rebase replayed addresses into a private window: every memory op's
    /// address becomes `base | (addr & mask)`. Used for multiprogrammed
    /// replay so per-core traces recorded at overlapping addresses do not
    /// alias in the shared cache. PCs are not rebased.
    pub fn with_window(mut self, base: u64, mask: u64) -> Self {
        self.base = base;
        self.mask = mask;
        self
    }

    /// Bytes of distinct cache lines the recording touches.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }
}

impl Workload for TraceWorkload {
    fn next(&mut self) -> Op {
        let op = self.trace.ops[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        match op {
            Op::Compute { .. } => op,
            Op::Load { addr, pc } => Op::Load { addr: self.base | (addr & self.mask), pc },
            Op::Store { addr, pc } => Op::Store { addr: self.base | (addr & self.mask), pc },
        }
    }

    fn fill(&mut self, out: &mut Vec<Op>, n: usize) {
        // Copy whole slices of the looped recording, rebasing in place:
        // no per-op virtual dispatch and no per-op modulo.
        out.reserve(n);
        let (base, mask) = (self.base, self.mask);
        let mut left = n;
        while left > 0 {
            let chunk = left.min(self.trace.len() - self.pos);
            for &op in &self.trace.ops[self.pos..self.pos + chunk] {
                out.push(match op {
                    Op::Compute { .. } => op,
                    Op::Load { addr, pc } => Op::Load { addr: base | (addr & mask), pc },
                    Op::Store { addr, pc } => Op::Store { addr: base | (addr & mask), pc },
                });
            }
            self.pos = (self.pos + chunk) % self.trace.len();
            left -= chunk;
        }
    }

    fn mlp(&self) -> u32 {
        self.mlp
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Idle;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Op::Load { addr: 0x1000, pc: 0x400 });
        t.push(Op::Compute { cycles: 3 });
        t.push(Op::Store { addr: 0x2040, pc: 0x404 });
        t
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let decoded = Trace::from_binary(&t.to_binary()).unwrap();
        assert_eq!(t, decoded);
        let sniffed = Trace::from_bytes(&t.to_binary()).unwrap();
        assert_eq!(t, sniffed);
        let sniffed_text = Trace::from_bytes(t.to_text().as_bytes()).unwrap();
        assert_eq!(t, sniffed_text);
    }

    #[test]
    fn parser_accepts_comments_and_blanks() {
        let t = Trace::from_text("# header\n\nL 10 4\nC 2\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0], Op::Load { addr: 0x10, pc: 0x4 });
    }

    #[test]
    fn parser_rejects_garbage_with_line_numbers() {
        assert_eq!(Trace::from_text("X 1 2").unwrap_err().line(), Some(1));
        assert_eq!(Trace::from_text("L 10 4\nL zz 4").unwrap_err().line(), Some(2));
        assert_eq!(Trace::from_text("C").unwrap_err().line(), Some(1));
        assert_eq!(Trace::from_text("L 10 4 extra").unwrap_err().line(), Some(1));
    }

    #[test]
    fn recorder_captures_up_to_limit() {
        let mut r = Recorder::new(Idle, 5);
        for _ in 0..10 {
            r.next();
        }
        assert_eq!(r.trace().len(), 5);
        assert_eq!(r.name(), "idle");
    }

    #[test]
    fn replay_loops_and_resets() {
        let mut w = TraceWorkload::with_mlp("replay", sample_trace(), 4);
        let first: Vec<Op> = (0..3).map(|_| w.next()).collect();
        let second: Vec<Op> = (0..3).map(|_| w.next()).collect();
        assert_eq!(first, second, "replay must loop");
        w.next();
        w.reset();
        assert_eq!(w.next(), first[0]);
        assert_eq!(w.mlp(), 4);
    }

    #[test]
    fn derived_mlp_tracks_stream_shape() {
        let mut streaming = Trace::new();
        for i in 0..4096u64 {
            streaming.push(Op::Load { addr: i * 64, pc: 0x400 });
        }
        let w = TraceWorkload::new("stream", streaming);
        assert!(w.mlp() >= 6, "streaming trace mlp {}", w.mlp());
        assert_eq!(w.footprint_bytes(), 4096 * 64);

        let mut chase = Trace::new();
        let mut addr = 1u64;
        for _ in 0..2048 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            chase.push(Op::Load { addr: addr & 0xfff_ffff_ffc0, pc: 0x400 });
            chase.push(Op::Compute { cycles: 4 });
        }
        let w = TraceWorkload::new("chase", chase);
        assert!(w.mlp() <= 2, "chase trace mlp {}", w.mlp());
    }

    #[test]
    fn window_rebases_memory_ops_only() {
        let mut t = Trace::new();
        t.push(Op::Load { addr: 0x1_0000_1000, pc: 0x400 });
        t.push(Op::Compute { cycles: 2 });
        let mask = (1u64 << 16) - 1;
        let mut w = TraceWorkload::new("win", t).with_window(0x7000_0000, mask);
        assert_eq!(w.next(), Op::Load { addr: 0x7000_1000, pc: 0x400 });
        assert_eq!(w.next(), Op::Compute { cycles: 2 });
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        TraceWorkload::new("x", Trace::new());
    }
}
