//! Trace capture, interchange, and looping replay.
//!
//! This crate is the bottom of the workspace dependency stack: it owns the
//! [`Op`]/[`Workload`] vocabulary that `cmm-sim` re-exports, plus everything
//! needed to move recorded access streams between processes:
//!
//! * a line-oriented **text form** (`C <cycles>` / `L <addr> <pc>` /
//!   `S <addr> <pc>`, ChampSim-style) parsed by [`Trace::from_text`] — the
//!   single parser in the workspace,
//! * a compact **binary form**, `cmm-trace/1`: a 24-byte header (magic,
//!   version, op count, FNV-1a checksum) followed by tag bytes and
//!   varint/delta-encoded operands (see [`binary`]),
//! * a buffered, zero-allocation-per-op streaming [`TraceReader`],
//! * a looping [`TraceWorkload`] whose `mlp()` and footprint are *derived
//!   from the recorded stream* (see [`stats`]), so trace-driven cores
//!   classify correctly in the M-1..M-7 cascade, and
//! * a [`Recorder`] that taps any live workload so synthetic mixes can be
//!   snapshotted into portable trace files.

pub mod binary;
mod error;
pub mod reader;
pub mod stats;
mod trace;
mod workload;

pub use error::TraceError;
pub use reader::TraceReader;
pub use stats::{stats, TraceStats};
pub use trace::{Recorder, Trace, TraceWorkload};
pub use workload::{Idle, Op, Workload};
