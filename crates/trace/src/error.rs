//! Error type shared by the text parser and the binary codec.

use std::fmt;

/// Everything that can go wrong reading a trace, in either format.
#[derive(Debug)]
pub enum TraceError {
    /// A malformed line in the text form (1-based line number).
    Parse { line: usize },
    /// An underlying I/O failure while streaming.
    Io(std::io::Error),
    /// The file does not start with the `CMMT` magic.
    BadMagic,
    /// The header's version field is not one this build understands.
    BadVersion(u32),
    /// The stream ended before the header's op count was satisfied —
    /// the torn-tail analogue of a partial JSONL record, except a trace
    /// cell is all-or-nothing so the whole file is rejected.
    Truncated,
    /// An op tag byte outside the defined set.
    BadTag(u8),
    /// A varint ran past its maximum width.
    BadVarint,
    /// The payload's FNV-1a checksum does not match the header.
    BadChecksum { expected: u64, actual: u64 },
}

impl TraceError {
    /// The 1-based line number for text-parse errors, if applicable.
    pub fn line(&self) -> Option<usize> {
        match self {
            TraceError::Parse { line } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line } => write!(f, "trace parse error at line {line}"),
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::BadMagic => write!(f, "not a cmm trace: bad magic"),
            TraceError::BadVersion(v) => write!(f, "unsupported cmm-trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated before declared op count"),
            TraceError::BadTag(t) => write!(f, "invalid op tag byte 0x{t:02x}"),
            TraceError::BadVarint => write!(f, "varint overruns maximum width"),
            TraceError::BadChecksum { expected, actual } => {
                write!(f, "trace checksum mismatch: header {expected:016x}, payload {actual:016x}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error_with_source() {
        let e: Box<dyn std::error::Error> = Box::new(TraceError::Parse { line: 3 });
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_none());
        let io = TraceError::Io(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn line_accessor_only_for_parse_errors() {
        assert_eq!(TraceError::Parse { line: 7 }.line(), Some(7));
        assert_eq!(TraceError::BadMagic.line(), None);
    }
}
