//! Stream-derived summary statistics for recorded traces.
//!
//! A raw address trace carries no dependence information, so the *true*
//! memory-level parallelism of the recorded program is unrecoverable. What
//! replay needs is weaker: cores running streaming/strided recordings must
//! present a wide demand window (so the M-1..M-7 cascade classifies them
//! as prefetch-friendly aggressors) while pointer-chase-like recordings
//! must present a narrow one. [`stats`] estimates that from two signals
//! that survive recording: stride regularity and memory-op burst length.

use std::collections::HashSet;

use crate::Op;

const LINE_SHIFT: u32 = 6;
const NUM_TRACKERS: usize = 16;
/// Two lines within this many lines of a tracker retrain it instead of
/// missing — tolerates interleaved streams jittering around each other.
const NEAR_LINES: u64 = 64;

/// Summary of a recorded op stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total ops in the recording.
    pub ops: u64,
    pub loads: u64,
    pub stores: u64,
    pub computes: u64,
    /// Total cycles across `Compute` ops.
    pub compute_cycles: u64,
    /// Distinct 64-byte cache lines touched.
    pub footprint_lines: u64,
    /// Fraction of memory ops that hit or retrained a stride tracker.
    pub stride_score: f64,
    /// Mean run length of consecutive memory ops (no intervening compute).
    pub mean_burst: f64,
    /// Estimated overlappable accesses, clamped to 1..=8 — suitable for
    /// [`Workload::mlp`](crate::Workload::mlp).
    pub est_mlp: u32,
}

impl TraceStats {
    /// Footprint in bytes (lines × 64).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines << LINE_SHIFT
    }
}

struct Tracker {
    last_line: u64,
    delta: i64,
    valid: bool,
}

/// Scans `ops` once and derives the summary. O(n) time, O(footprint)
/// space (the line set); the stride table is fixed-size.
pub fn stats(ops: &[Op]) -> TraceStats {
    let mut s = TraceStats {
        ops: ops.len() as u64,
        loads: 0,
        stores: 0,
        computes: 0,
        compute_cycles: 0,
        footprint_lines: 0,
        stride_score: 0.0,
        mean_burst: 0.0,
        est_mlp: 1,
    };
    let mut lines: HashSet<u64> = HashSet::new();
    let mut trackers: Vec<Tracker> =
        (0..NUM_TRACKERS).map(|_| Tracker { last_line: 0, delta: 1, valid: false }).collect();
    let mut victim = 0usize;
    let mut stride_points = 0.0f64;
    let mut mem_ops = 0u64;
    let mut bursts = 0u64;
    let mut burst_len = 0u64;
    let mut burst_total = 0u64;

    for op in ops {
        let addr = match *op {
            Op::Compute { cycles } => {
                s.computes += 1;
                s.compute_cycles += cycles as u64;
                if burst_len > 0 {
                    bursts += 1;
                    burst_total += burst_len;
                    burst_len = 0;
                }
                continue;
            }
            Op::Load { addr, .. } => {
                s.loads += 1;
                addr
            }
            Op::Store { addr, .. } => {
                s.stores += 1;
                addr
            }
        };
        mem_ops += 1;
        burst_len += 1;
        let line = addr >> LINE_SHIFT;
        lines.insert(line);

        // Stride table: exact next-line-by-delta is a full hit; a nearby
        // line retrains the tracker's delta at half credit; otherwise the
        // access claims a tracker round-robin.
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in trackers.iter().enumerate() {
            if !t.valid {
                continue;
            }
            if line == t.last_line.wrapping_add(t.delta as u64) {
                best = Some((i, 1.0));
                break;
            }
            if line.abs_diff(t.last_line) <= NEAR_LINES && best.is_none() {
                best = Some((i, 0.5));
            }
        }
        match best {
            Some((i, score)) => {
                let t = &mut trackers[i];
                if score < 1.0 {
                    t.delta = line.wrapping_sub(t.last_line) as i64;
                }
                t.last_line = line;
                stride_points += score;
            }
            None => {
                trackers[victim] = Tracker { last_line: line, delta: 1, valid: true };
                victim = (victim + 1) % NUM_TRACKERS;
            }
        }
    }
    if burst_len > 0 {
        bursts += 1;
        burst_total += burst_len;
    }

    s.footprint_lines = lines.len() as u64;
    if mem_ops > 0 {
        s.stride_score = stride_points / mem_ops as f64;
    }
    if bursts > 0 {
        s.mean_burst = burst_total as f64 / bursts as f64;
    }
    let burst_score = ((s.mean_burst - 1.0) / 7.0).clamp(0.0, 1.0);
    let score = s.stride_score.max(burst_score);
    s.est_mlp = ((1.0 + 7.0 * score).round() as u32).clamp(1, 8);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_is_neutral() {
        let s = stats(&[]);
        assert_eq!(s.ops, 0);
        assert_eq!(s.footprint_lines, 0);
        assert_eq!(s.est_mlp, 1);
    }

    #[test]
    fn sequential_stream_estimates_high_mlp() {
        let ops: Vec<Op> = (0..4096u64).map(|i| Op::Load { addr: i * 64, pc: 0x400 }).collect();
        let s = stats(&ops);
        assert!(s.stride_score > 0.9, "stride score {}", s.stride_score);
        assert!(s.est_mlp >= 6, "est_mlp {}", s.est_mlp);
        assert_eq!(s.footprint_lines, 4096);
    }

    #[test]
    fn pointer_chase_estimates_low_mlp() {
        // Large pseudo-random jumps with a compute bubble between each
        // access: no stride locality, burst length 1.
        let mut addr = 0x1234u64;
        let mut ops = Vec::new();
        for _ in 0..2048 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ops.push(Op::Load { addr: addr & 0xfff_ffff_ffc0, pc: 0x400 });
            ops.push(Op::Compute { cycles: 4 });
        }
        let s = stats(&ops);
        assert!(s.est_mlp <= 2, "est_mlp {} (stride {})", s.est_mlp, s.stride_score);
    }

    #[test]
    fn footprint_counts_distinct_lines_only() {
        let ops = vec![
            Op::Load { addr: 0, pc: 0 },
            Op::Load { addr: 63, pc: 0 },
            Op::Store { addr: 64, pc: 0 },
            Op::Load { addr: 0, pc: 0 },
        ];
        let s = stats(&ops);
        assert_eq!(s.footprint_lines, 2);
        assert_eq!(s.footprint_bytes(), 128);
        assert_eq!(s.loads, 3);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn burst_length_alone_can_raise_the_estimate() {
        // Random addresses (no stride) but issued in long back-to-back
        // bursts — overlappable in a demand window, so MLP should rise.
        let mut addr = 0x9999u64;
        let mut ops = Vec::new();
        for _ in 0..256 {
            for _ in 0..8 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(99);
                ops.push(Op::Load { addr: addr & 0xfff_ffff_ffc0, pc: 0x400 });
            }
            ops.push(Op::Compute { cycles: 8 });
        }
        let s = stats(&ops);
        assert!(s.mean_burst > 7.0);
        assert!(s.est_mlp >= 6, "est_mlp {}", s.est_mlp);
    }
}
