//! The `cmm-trace/1` binary format.
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"CMMT"
//! 4       4     version (u32 LE) = 1
//! 8       8     op count (u64 LE)
//! 16      8     FNV-1a-64 checksum of the payload bytes (u64 LE)
//! 24      ...   payload: one record per op
//! ```
//!
//! Each payload record is a tag byte followed by its operands:
//!
//! * `0` Compute — LEB128 varint `cycles`
//! * `1` Load — zigzag varint Δaddr, zigzag varint Δpc
//! * `2` Store — zigzag varint Δaddr, zigzag varint Δpc
//!
//! Deltas are wrapping `i64` differences against the previous memory op's
//! address/PC (both start at 0 and persist across intervening `Compute`
//! records), so strided streams encode in 1–2 bytes per operand instead
//! of 8. The checksum covers the payload only, so header corruption and
//! payload corruption are reported distinctly.

use crate::{Op, TraceError};

/// File magic: the first four bytes of every binary trace.
pub const MAGIC: [u8; 4] = *b"CMMT";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Total header size in bytes.
pub const HEADER_LEN: usize = 24;

/// 64-bit FNV-1a over `bytes` — the same hash family the journal's config
/// digest uses, chosen for dependency-free determinism, not security.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming FNV-1a-64, for hashing a payload as it is consumed.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64 { state: 0xcbf2_9ce4_8422_2325 }
    }
}

impl Fnv1a64 {
    /// Folds more bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The hash of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Maps a signed delta onto an unsigned value with small magnitudes first.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint to `out`.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Op tag bytes.
pub const TAG_COMPUTE: u8 = 0;
pub const TAG_LOAD: u8 = 1;
pub const TAG_STORE: u8 = 2;

/// Encodes a full op slice as a `cmm-trace/1` file image.
pub fn to_binary(ops: &[Op]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ops.len() * 3);
    let mut prev_addr: u64 = 0;
    let mut prev_pc: u64 = 0;
    for op in ops {
        match *op {
            Op::Compute { cycles } => {
                payload.push(TAG_COMPUTE);
                push_varint(&mut payload, cycles as u64);
            }
            Op::Load { addr, pc } | Op::Store { addr, pc } => {
                payload.push(if matches!(op, Op::Load { .. }) { TAG_LOAD } else { TAG_STORE });
                push_varint(&mut payload, zigzag(addr.wrapping_sub(prev_addr) as i64));
                push_varint(&mut payload, zigzag(pc.wrapping_sub(prev_pc) as i64));
                prev_addr = addr;
                prev_pc = pc;
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// True when `bytes` starts with the binary-format magic — used to sniff
/// file format without trusting extensions.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Parsed header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub op_count: u64,
    pub checksum: u64,
}

/// Validates a 24-byte header image.
pub fn parse_header(bytes: &[u8]) -> Result<Header, TraceError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        return Err(TraceError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let op_count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    Ok(Header { op_count, checksum })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        let mut out = Vec::new();
        push_varint(&mut out, 0x7f);
        assert_eq!(out.len(), 1);
        out.clear();
        push_varint(&mut out, 0x80);
        assert_eq!(out.len(), 2);
        out.clear();
        push_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn header_rejections_are_distinguished() {
        let good = to_binary(&[Op::Compute { cycles: 1 }]);
        assert!(is_binary(&good));
        assert!(parse_header(&good).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(parse_header(&bad_magic), Err(TraceError::BadMagic)));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(parse_header(&bad_version), Err(TraceError::BadVersion(9))));

        assert!(matches!(parse_header(&good[..10]), Err(TraceError::Truncated)));
    }

    #[test]
    fn strided_stream_encodes_compactly() {
        let ops: Vec<Op> =
            (0..1000).map(|i| Op::Load { addr: 0x1000 + i * 64, pc: 0x400 }).collect();
        let bin = to_binary(&ops);
        // Tag + 2-byte Δaddr varint + 1-byte Δpc ≈ 4 bytes/op, far under
        // the 17 bytes a flat encoding would need.
        assert!(bin.len() < HEADER_LEN + ops.len() * 5, "encoding not compact: {}", bin.len());
    }
}
