//! The operation vocabulary shared by every workload in the workspace.
//!
//! One simulated instruction per [`Op`]: either a compute bubble of a fixed
//! number of cycles or a memory access carrying a byte address and the PC
//! of the instruction that issued it (the PC feeds stride detection in the
//! prefetcher model).

/// A single dynamic instruction as seen by a core's issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute for `cycles` cycles without touching memory.
    Compute { cycles: u32 },
    /// Load from byte address `addr`, issued by the instruction at `pc`.
    Load { addr: u64, pc: u64 },
    /// Store to byte address `addr`, issued by the instruction at `pc`.
    Store { addr: u64, pc: u64 },
}

/// An instruction stream a core can execute.
///
/// Implementations must be deterministic: two freshly-constructed (or
/// freshly [`reset`](Workload::reset)) instances with identical parameters
/// must emit identical streams, since the evaluation harness relies on
/// byte-identical replays across runs and job counts.
pub trait Workload {
    /// Produces the next instruction. Workloads are infinite streams;
    /// finite recordings loop.
    fn next(&mut self) -> Op;

    /// Appends the next `n` instructions of the stream to `out`. Exactly
    /// equivalent to `n` calls of [`next`](Workload::next); generators
    /// override this so the simulator's op ring refills with one virtual
    /// call per batch instead of one per instruction.
    fn fill(&mut self, out: &mut Vec<Op>, n: usize) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next());
        }
    }

    /// The workload's intrinsic memory-level parallelism: how many of its
    /// memory accesses are overlappable. Sized to the core's demand
    /// window; clamped by the machine config.
    fn mlp(&self) -> u32 {
        1
    }

    /// Rewinds the stream to its initial state.
    fn reset(&mut self);

    /// A short human-readable label for reports.
    fn name(&self) -> &str;

    /// Clones the workload *mid-stream* (current position included), for
    /// copy-on-write simulator snapshots. Returns `None` when the workload
    /// cannot be duplicated; such cores make the owning `System`
    /// unsnapshottable but simulate normally.
    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        None
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next(&mut self) -> Op {
        (**self).next()
    }

    fn fill(&mut self, out: &mut Vec<Op>, n: usize) {
        (**self).fill(out, n)
    }

    fn mlp(&self) -> u32 {
        (**self).mlp()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        (**self).try_clone_box()
    }
}

/// A workload that never touches memory: an endless compute bubble.
/// Useful as a placeholder core and in tests.
#[derive(Debug, Default, Clone)]
pub struct Idle;

impl Workload for Idle {
    fn next(&mut self) -> Op {
        Op::Compute { cycles: 64 }
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "idle"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(Idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_computes() {
        let mut w = Idle;
        for _ in 0..8 {
            assert!(matches!(w.next(), Op::Compute { cycles: 64 }));
        }
        assert_eq!(w.mlp(), 1);
        assert_eq!(w.name(), "idle");
    }

    #[test]
    fn boxed_workloads_forward() {
        let mut w: Box<dyn Workload> = Box::new(Idle);
        assert!(matches!(w.next(), Op::Compute { .. }));
        assert_eq!(w.mlp(), 1);
        assert_eq!(w.name(), "idle");
        w.reset();
    }
}
