//! Private-cache presence tracking for QBS victim selection and targeted
//! inclusive back-invalidation.
//!
//! Broadwell's inclusive LLC implements *Query Based Selection* (Jaleel et
//! al., MICRO'10: "Achieving Non-Inclusive Cache Performance with Inclusive
//! Caches"): before evicting an LLC victim, the LLC queries whether the
//! line is resident in any core's private caches and prefers victims that
//! are not. Without QBS, a pure-LRU inclusive LLC systematically destroys
//! L1/L2-resident working sets — their LLC copies are never re-touched
//! (all hits are absorbed privately), so they always look coldest exactly
//! when a streaming neighbour churns the cache.
//!
//! Instead of probing every core's L2 on each eviction, the simulator
//! keeps, per line, a bitmask of which private L2 caches hold it (L1
//! contents are a subset of L2 in this hierarchy). The mask serves two
//! consumers on the hot path:
//!
//! * [`Presence::resident`] — the QBS query, issued once per scanned LLC
//!   way during victim selection;
//! * [`Presence::holders`] — the set of cores an LLC victim must be
//!   back-invalidated from, so [`crate::system::System::run`] walks only
//!   the cores that actually hold a copy instead of broadcasting to all.
//!
//! Both queries sit inside the per-access simulation loop, so the map is a
//! purpose-built open-addressing table rather than `std::HashMap`: u64
//! keys, Fibonacci multiplicative hashing (no SipHash), linear probing,
//! and backward-shift deletion (no tombstones). The table only grows —
//! the working set of a run is bounded by the private-cache capacity, so
//! steady state performs no allocation at all.

/// Sentinel for an empty slot. Line numbers are `addr >> 6`, so `u64::MAX`
/// can never be a real key.
const EMPTY: u64 = u64::MAX;

/// Per-line bitmask of private L2 caches holding the line.
#[derive(Debug, Clone)]
pub struct Presence {
    /// Slot keys (line numbers), `EMPTY` when vacant.
    keys: Vec<u64>,
    /// Holder bitmasks parallel to `keys`; bit *i* = core *i*'s L2.
    masks: Vec<u64>,
    /// Occupied slot count.
    len: usize,
    /// `keys.len() - 1`; capacity is always a power of two.
    index_mask: usize,
}

impl Default for Presence {
    fn default() -> Self {
        Presence::new()
    }
}

impl Presence {
    /// Empty tracker. Starts at a capacity that covers a typical private
    /// cache working set without rehashing.
    pub fn new() -> Self {
        Self::with_capacity_pow2(1 << 12)
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Presence { keys: vec![EMPTY; cap], masks: vec![0; cap], len: 0, index_mask: cap - 1 }
    }

    /// Fibonacci multiplicative hash: multiply by 2^64/φ and keep the high
    /// bits, which mixes low-entropy line numbers well and costs one
    /// multiply — the whole point of not using the default SipHash.
    #[inline(always)]
    fn slot_of(&self, line: u64) -> usize {
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.index_mask
    }

    #[inline(always)]
    fn probe(&self, line: u64) -> Result<usize, usize> {
        let mut i = self.slot_of(line);
        loop {
            let k = self.keys[i];
            if k == line {
                return Ok(i);
            }
            if k == EMPTY {
                return Err(i);
            }
            i = (i + 1) & self.index_mask;
        }
    }

    /// Core `core`'s private L2 gained a copy of `line`.
    #[inline]
    pub fn inc(&mut self, line: u64, core: usize) {
        debug_assert!(core < 64, "holder mask is 64 bits wide");
        match self.probe(line) {
            Ok(i) => {
                debug_assert!(
                    self.masks[i] & (1 << core) == 0,
                    "core {core} already holds line {line}"
                );
                self.masks[i] |= 1 << core;
            }
            Err(i) => {
                self.keys[i] = line;
                self.masks[i] = 1 << core;
                self.len += 1;
                // Keep load factor below 1/2 so probe chains stay short.
                if self.len * 2 > self.keys.len() {
                    self.grow();
                }
            }
        }
    }

    /// Core `core`'s private L2 lost its copy of `line`.
    #[inline]
    pub fn dec(&mut self, line: u64, core: usize) {
        match self.probe(line) {
            Ok(i) => {
                debug_assert!(
                    self.masks[i] & (1 << core) != 0,
                    "core {core} does not hold line {line}"
                );
                self.masks[i] &= !(1 << core);
                if self.masks[i] == 0 {
                    self.remove_slot(i);
                }
            }
            Err(_) => debug_assert!(false, "presence underflow for line {line}"),
        }
    }

    /// True if any private cache holds `line` (the QBS query).
    #[inline(always)]
    pub fn resident(&self, line: u64) -> bool {
        self.probe(line).is_ok()
    }

    /// Bitmask of cores whose private caches hold `line` (bit *i* = core
    /// *i*). Drives targeted back-invalidation of LLC victims.
    #[inline(always)]
    pub fn holders(&self, line: u64) -> u64 {
        match self.probe(line) {
            Ok(i) => self.masks[i],
            Err(_) => 0,
        }
    }

    /// Number of tracked lines (diagnostics).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backward-shift deletion: re-seat the following probe-chain entries
    /// so lookups never need tombstones.
    fn remove_slot(&mut self, mut hole: usize) {
        self.keys[hole] = EMPTY;
        self.masks[hole] = 0;
        self.len -= 1;
        let mut i = (hole + 1) & self.index_mask;
        while self.keys[i] != EMPTY {
            let home = self.slot_of(self.keys[i]);
            // Shift back only entries whose home slot does not sit in the
            // (cyclic) interval (hole, i]; those can still be found.
            let in_interval =
                if hole <= i { hole < home && home <= i } else { home > hole || home <= i };
            if !in_interval {
                self.keys[hole] = self.keys[i];
                self.masks[hole] = self.masks[i];
                self.keys[i] = EMPTY;
                self.masks[i] = 0;
                hole = i;
            }
            i = (i + 1) & self.index_mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let mut bigger = Presence::with_capacity_pow2(self.keys.len() * 2);
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                match bigger.probe(k) {
                    Ok(_) => unreachable!("duplicate key while rehashing"),
                    Err(slot) => {
                        bigger.keys[slot] = k;
                        bigger.masks[slot] = self.masks[i];
                        bigger.len += 1;
                    }
                }
            }
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holder_mask_roundtrip() {
        let mut p = Presence::new();
        assert!(!p.resident(5));
        assert_eq!(p.holders(5), 0);
        p.inc(5, 0);
        assert!(p.resident(5));
        assert_eq!(p.holders(5), 0b01);
        p.inc(5, 3);
        assert_eq!(p.holders(5), 0b1001);
        p.dec(5, 0);
        assert!(p.resident(5), "still held by core 3");
        assert_eq!(p.holders(5), 0b1000);
        p.dec(5, 3);
        assert!(!p.resident(5));
        assert!(p.is_empty());
    }

    #[test]
    fn independent_lines() {
        let mut p = Presence::new();
        p.inc(1, 0);
        p.inc(2, 1);
        p.dec(1, 0);
        assert!(!p.resident(1));
        assert!(p.resident(2));
        assert_eq!(p.holders(2), 0b10);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn survives_growth() {
        let mut p = Presence::with_capacity_pow2(8);
        for line in 0..1000u64 {
            p.inc(line, (line % 4) as usize);
        }
        assert_eq!(p.len(), 1000);
        for line in 0..1000u64 {
            assert_eq!(p.holders(line), 1 << (line % 4), "line {line}");
        }
        for line in 0..1000u64 {
            p.dec(line, (line % 4) as usize);
        }
        assert!(p.is_empty());
    }

    #[test]
    fn colliding_lines_found_after_deletion() {
        // Force collisions in a tiny table and delete from the middle of a
        // probe chain; backward-shift must keep the rest findable.
        let mut p = Presence::with_capacity_pow2(8);
        // With a 3-bit index the chance of chains is high among any handful
        // of keys; use many and check exhaustively.
        let lines = [3u64, 11, 19, 27];
        for &l in &lines {
            p.inc(l, 0);
        }
        p.dec(11, 0);
        assert!(!p.resident(11));
        for &l in [3u64, 19, 27].iter() {
            assert!(p.resident(l), "line {l} lost after backward-shift deletion");
        }
    }

    #[test]
    fn same_core_reinsertion_after_eviction() {
        let mut p = Presence::new();
        p.inc(7, 2);
        p.dec(7, 2);
        p.inc(7, 2);
        assert_eq!(p.holders(7), 0b100);
    }
}
