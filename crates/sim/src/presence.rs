//! Private-cache presence tracking for QBS victim selection.
//!
//! Broadwell's inclusive LLC implements *Query Based Selection* (Jaleel et
//! al., MICRO'10: "Achieving Non-Inclusive Cache Performance with Inclusive
//! Caches"): before evicting an LLC victim, the LLC queries whether the
//! line is resident in any core's private caches and prefers victims that
//! are not. Without QBS, a pure-LRU inclusive LLC systematically destroys
//! L1/L2-resident working sets — their LLC copies are never re-touched
//! (all hits are absorbed privately), so they always look coldest exactly
//! when a streaming neighbour churns the cache.
//!
//! Instead of probing every core's L2 on each eviction, the simulator
//! maintains a refcount per line of how many private L2 caches hold it
//! (L1 contents are a subset of L2 in this hierarchy).

use std::collections::HashMap;

/// Refcounts of lines resident in private L2 caches.
#[derive(Debug, Default)]
pub struct Presence {
    counts: HashMap<u64, u32>,
}

impl Presence {
    /// Empty tracker.
    pub fn new() -> Self {
        Presence::default()
    }

    /// A private L2 gained a copy of `line`.
    pub fn inc(&mut self, line: u64) {
        *self.counts.entry(line).or_insert(0) += 1;
    }

    /// A private L2 lost its copy of `line`.
    pub fn dec(&mut self, line: u64) {
        match self.counts.get_mut(&line) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&line);
            }
            None => debug_assert!(false, "presence underflow for line {line}"),
        }
    }

    /// True if any private cache holds `line` (QBS query).
    pub fn resident(&self, line: u64) -> bool {
        self.counts.contains_key(&line)
    }

    /// Number of tracked lines (diagnostics).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcount_roundtrip() {
        let mut p = Presence::new();
        assert!(!p.resident(5));
        p.inc(5);
        assert!(p.resident(5));
        p.inc(5);
        p.dec(5);
        assert!(p.resident(5), "still held by one core");
        p.dec(5);
        assert!(!p.resident(5));
        assert!(p.is_empty());
    }

    #[test]
    fn independent_lines() {
        let mut p = Presence::new();
        p.inc(1);
        p.inc(2);
        p.dec(1);
        assert!(!p.resident(1));
        assert!(p.resident(2));
        assert_eq!(p.len(), 1);
    }
}
