//! The whole machine: N cores, a shared CAT-partitionable LLC, and the
//! memory controller, stepped in loosely-synchronised quanta.
//!
//! Cores advance their private clocks independently within one quantum
//! (default 1000 cycles) and re-synchronise at quantum boundaries, where
//! deferred inclusive back-invalidations are applied to the other cores'
//! private caches. This is the standard relaxed-synchronisation scheme of
//! fast multicore simulators; at 1000-cycle quanta the skew is far below
//! the epoch lengths the CMM controller operates on.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::core_model::Core;
use crate::memory::{CoreMemTraffic, MemoryController};
use crate::msr::{
    mba_level_valid, CatError, CatState, IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MBA_THROTTLE,
    MSR_MISC_FEATURE_CONTROL,
};
use crate::pmu::Pmu;
use crate::presence::Presence;
use crate::workload::Workload;

/// Errors from the WRMSR/RDMSR emulation surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// The MSR address is not emulated.
    UnknownMsr(u32),
    /// CAT programming fault (would be #GP(0) on hardware).
    Cat(CatError),
    /// Core index out of range.
    BadCore(usize),
    /// Transient WRMSR rejection (a spurious #GP a retry may clear). The
    /// base [`System`] never raises this; fault-injecting substrates do,
    /// and the controller's bounded-retry path depends on distinguishing
    /// it from the permanent errors above.
    Rejected(u32),
    /// An MBA delay value outside the programmable 0/10/…/90 set (would
    /// be #GP(0) on a reserved delay-register encoding).
    BadMbaLevel(u64),
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::UnknownMsr(a) => write!(f, "unknown MSR {a:#x}"),
            MsrError::Cat(e) => write!(f, "CAT error: {e}"),
            MsrError::BadCore(c) => write!(f, "core {c} out of range"),
            MsrError::Rejected(a) => write!(f, "WRMSR {a:#x} transiently rejected"),
            MsrError::BadMbaLevel(v) => {
                write!(f, "MBA throttle level {v} is not a multiple of 10 in 0..=90")
            }
        }
    }
}

impl std::error::Error for MsrError {}

impl From<CatError> for MsrError {
    fn from(e: CatError) -> Self {
        MsrError::Cat(e)
    }
}

/// One socket's shared state: its LLC, CAT domain, L2-presence tracker,
/// deferred back-invalidation queue, and (when the topology gives each
/// socket a private channel) its memory controller. CAT and presence are
/// indexed by socket-*local* core ids.
#[derive(Clone)]
struct SocketState {
    llc: Cache,
    cat: CatState,
    presence: Presence,
    inval: Vec<u64>,
    /// `Some` iff [`Topology::mem_per_socket`](crate::config::Topology);
    /// otherwise the machine-wide [`System::shared_mem`] serves this
    /// socket (with the cross-socket penalty for non-zero sockets).
    mem: Option<MemoryController>,
}

/// The simulated machine: `topology.sockets` instances of
/// [`SocketState`] over one socket-major array of cores.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    sockets: Vec<SocketState>,
    /// The machine-wide memory controller when the topology shares one
    /// channel group across sockets (always the case for single-socket).
    shared_mem: Option<MemoryController>,
    now: u64,
}

/// Inclusive back-invalidation of one socket's queued LLC victims,
/// targeted at the cores whose private caches actually hold a copy (the
/// presence holder mask) instead of broadcasting to every core. The
/// evicting core already dropped its own copy at fill time, so most
/// victims have an empty mask and cost one lookup. `cores` is the
/// socket's slice, indexed by socket-local id.
fn drain_invalidations(
    cores: &mut [Core],
    mem: &mut MemoryController,
    presence: &mut Presence,
    inval: &mut Vec<u64>,
) {
    for line in inval.drain(..) {
        let mut mask = presence.holders(line);
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            cores[i].back_invalidate(line, mem, presence);
        }
    }
}

impl System {
    /// Builds a machine running one workload per core.
    /// `workloads.len()` must equal `cfg.num_cores`.
    pub fn new(cfg: SystemConfig, workloads: Vec<Box<dyn Workload + Send>>) -> Self {
        cfg.validate();
        assert_eq!(
            workloads.len(),
            cfg.num_cores,
            "one workload per core ({} cores, {} workloads)",
            cfg.num_cores,
            workloads.len()
        );
        let topo = cfg.topology;
        let cores: Vec<Core> =
            workloads.into_iter().enumerate().map(|(i, w)| Core::new(i, &cfg, w)).collect();
        let sockets: Vec<SocketState> = (0..topo.sockets)
            .map(|_| SocketState {
                llc: Cache::new(cfg.llc),
                cat: CatState::new(cfg.num_clos, cfg.llc.ways, &topo),
                presence: Presence::new(),
                inval: Vec::new(),
                mem: topo.mem_per_socket.then(|| MemoryController::new(cfg.memory, &topo)),
            })
            .collect();
        let shared_mem = (!topo.mem_per_socket).then(|| MemoryController::new(cfg.memory, &topo));
        System { cfg, cores, sockets, shared_mem, now: 0 }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of sockets (CAT domains).
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// LLC associativity (CAT mask width) — identical on every socket.
    pub fn llc_ways(&self) -> u32 {
        self.cfg.llc.ways
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Global cycle count (quantum-granular).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The memory controller serving `socket`.
    fn mem_for(&self, socket: usize) -> &MemoryController {
        self.sockets[socket].mem.as_ref().or(self.shared_mem.as_ref()).expect("a controller")
    }

    /// Mutable access to the controller serving `socket`.
    fn mem_for_mut(&mut self, socket: usize) -> &mut MemoryController {
        self.sockets[socket].mem.as_mut().or(self.shared_mem.as_mut()).expect("a controller")
    }

    /// Advances the whole machine by `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let target = self.now + cycles;
        let cps = self.cfg.topology.cores_per_socket;
        while self.now < target {
            let qend = (self.now + self.cfg.quantum).min(target);
            {
                let System { cores, sockets, shared_mem, .. } = self;
                for (s, sock) in sockets.iter_mut().enumerate() {
                    let SocketState { llc, cat, presence, inval, mem } = sock;
                    let mem = mem.as_mut().or(shared_mem.as_mut()).expect("a controller");
                    for core in &mut cores[s * cps..(s + 1) * cps] {
                        core.run_until(qend, llc, cat, mem, presence, inval);
                    }
                }
            }
            self.apply_back_invalidations();
            self.now = qend;
        }
    }

    /// Drains every socket's deferred back-invalidation queue (see
    /// [`drain_invalidations`]); called at quantum boundaries.
    fn apply_back_invalidations(&mut self) {
        let cps = self.cfg.topology.cores_per_socket;
        let System { cores, sockets, shared_mem, .. } = self;
        for (s, sock) in sockets.iter_mut().enumerate() {
            if sock.inval.is_empty() {
                continue;
            }
            let SocketState { presence, inval, mem, .. } = sock;
            let mem = mem.as_mut().or(shared_mem.as_mut()).expect("a controller");
            drain_invalidations(&mut cores[s * cps..(s + 1) * cps], mem, presence, inval);
        }
    }

    /// Captures the machine's complete state — every core's caches,
    /// prefetcher training, MSHRs and clock, the LLC, CAT programming,
    /// memory-controller and presence state — as an immutable snapshot
    /// that [`SystemSnapshot::restore`] can later rehydrate any number of
    /// times.
    ///
    /// Returns `None` when any core's workload does not implement
    /// [`Workload::try_clone_box`] (externally-streamed workloads cannot
    /// be rewound). The built-in synthetic and trace workloads all can;
    /// trace recordings are shared behind an `Arc`, so a snapshot costs a
    /// few memcpys of tag arrays, not a copy of the trace.
    ///
    /// The intended use is warm-up sharing: simulate the (uncontrolled,
    /// mechanism-independent) cache warm-up once, snapshot, and restore
    /// per mechanism trial — instead of re-simulating the warm-up for
    /// every trial. A restored machine is byte-for-byte the machine that
    /// was snapshotted, so results are identical to the re-simulated path.
    pub fn snapshot(&self) -> Option<SystemSnapshot> {
        self.try_clone().map(|sys| SystemSnapshot { sys })
    }

    fn try_clone(&self) -> Option<System> {
        let mut cores = Vec::with_capacity(self.cores.len());
        for c in &self.cores {
            cores.push(c.try_clone()?);
        }
        Some(System {
            cfg: self.cfg.clone(),
            cores,
            sockets: self.sockets.clone(),
            shared_mem: self.shared_mem.clone(),
            now: self.now,
        })
    }

    // ----- cache-state introspection (tests, debugging) -----------------

    /// True if core `i`'s L1 holds `line` (testing/debug introspection).
    pub fn l1_contains(&self, core: usize, line: u64) -> bool {
        self.cores[core].l1.contains(line)
    }

    /// True if core `i`'s L2 holds `line` (testing/debug introspection).
    pub fn l2_contains(&self, core: usize, line: u64) -> bool {
        self.cores[core].l2.contains(line)
    }

    /// True if any socket's LLC holds `line` (testing/debug
    /// introspection). On single-socket machines this is the one LLC.
    pub fn llc_contains(&self, line: u64) -> bool {
        self.sockets.iter().any(|s| s.llc.contains(line))
    }

    /// Bitmask of socket-0 cores whose L2 the presence map records as
    /// holding `line` (testing/debug introspection); see
    /// [`System::presence_holders_in`] for other sockets.
    pub fn presence_holders(&self, line: u64) -> u64 {
        self.presence_holders_in(0, line)
    }

    /// Socket-local holder bitmask for `line` on `socket` — bit *i* is
    /// the core with global id `socket * cores_per_socket + i`.
    pub fn presence_holders_in(&self, socket: usize, line: u64) -> u64 {
        self.sockets[socket].presence.holders(line)
    }

    /// Reads core `i`'s PMU snapshot (valid as of the last quantum
    /// boundary).
    pub fn pmu(&self, core: usize) -> Pmu {
        self.cores[core].pmu
    }

    /// Snapshots all cores' PMUs at once (the controller reads these at
    /// epoch boundaries, like the paper's PMI handler).
    pub fn pmu_all(&self) -> Vec<Pmu> {
        self.cores.iter().map(|c| c.pmu).collect()
    }

    /// Per-core memory traffic counters (global core id; reads the
    /// controller serving that core's socket).
    pub fn traffic(&self, core: usize) -> CoreMemTraffic {
        self.mem_for(self.cfg.topology.socket_of(core)).traffic(core)
    }

    /// Total prefetch requests dropped across every memory controller.
    pub fn prefetches_dropped(&self) -> u64 {
        self.shared_mem
            .iter()
            .chain(self.sockets.iter().filter_map(|s| s.mem.as_ref()))
            .map(|m| m.prefetches_dropped)
            .sum()
    }

    /// Name of the benchmark on core `i`.
    pub fn workload_name(&self, core: usize) -> &str {
        self.cores[core].workload.name()
    }

    /// WRMSR emulation. Supported MSRs: `MSR_MISC_FEATURE_CONTROL`
    /// (per-core prefetcher disable bits), `IA32_PQR_ASSOC` (CLOS
    /// association; low bits = CLOS id) and `IA32_L3_QOS_MASK_BASE + n`
    /// (way mask of CLOS *n*). CAT MSRs are socket-scoped, exactly as on
    /// hardware: a PQR or mask write issued from `core` programs the CAT
    /// domain of *that core's socket* and no other.
    pub fn write_msr(&mut self, core: usize, msr: u32, value: u64) -> Result<(), MsrError> {
        if core >= self.cores.len() {
            return Err(MsrError::BadCore(core));
        }
        let topo = self.cfg.topology;
        let sock = topo.socket_of(core);
        match msr {
            MSR_MISC_FEATURE_CONTROL => {
                self.cores[core].battery.write_msr(value);
                Ok(())
            }
            MSR_MBA_THROTTLE => {
                if !mba_level_valid(value) {
                    return Err(MsrError::BadMbaLevel(value));
                }
                // The throttle is enforced by whichever controller serves
                // this core's socket; the per-core slot is global-id
                // indexed, so shared and per-socket layouts program alike.
                self.mem_for_mut(sock).set_mba_level(core, value);
                Ok(())
            }
            IA32_PQR_ASSOC => {
                self.sockets[sock].cat.set_assoc(topo.local_id(core), value as usize)?;
                Ok(())
            }
            m if m >= IA32_L3_QOS_MASK_BASE
                && m < IA32_L3_QOS_MASK_BASE + self.cfg.num_clos as u32 =>
            {
                self.sockets[sock].cat.set_mask((m - IA32_L3_QOS_MASK_BASE) as usize, value)?;
                Ok(())
            }
            other => Err(MsrError::UnknownMsr(other)),
        }
    }

    /// RDMSR emulation; see [`System::write_msr`] for the supported set
    /// and socket scoping.
    pub fn read_msr(&self, core: usize, msr: u32) -> Result<u64, MsrError> {
        if core >= self.cores.len() {
            return Err(MsrError::BadCore(core));
        }
        let topo = self.cfg.topology;
        let sock = topo.socket_of(core);
        match msr {
            MSR_MISC_FEATURE_CONTROL => Ok(self.cores[core].battery.read_msr()),
            MSR_MBA_THROTTLE => Ok(self.mem_for(sock).mba_level(core)),
            IA32_PQR_ASSOC => Ok(self.sockets[sock].cat.assoc(topo.local_id(core)) as u64),
            m if m >= IA32_L3_QOS_MASK_BASE
                && m < IA32_L3_QOS_MASK_BASE + self.cfg.num_clos as u32 =>
            {
                Ok(self.sockets[sock].cat.mask((m - IA32_L3_QOS_MASK_BASE) as usize)?)
            }
            other => Err(MsrError::UnknownMsr(other)),
        }
    }

    // ----- convenience wrappers used by the controller ------------------

    /// Enables (`true`) or disables (`false`) all four prefetchers of one
    /// core, the granularity the paper's mechanisms use.
    pub fn set_prefetching(&mut self, core: usize, enabled: bool) {
        self.cores[core].battery.write_msr(if enabled { 0x0 } else { 0xF });
    }

    /// True if any prefetcher of `core` is enabled.
    pub fn prefetching_enabled(&self, core: usize) -> bool {
        self.cores[core].battery.read_msr() != 0xF
    }

    /// Programs the way mask of a CLOS on **every** socket (machine-wide
    /// convenience; domain-scoped programming goes through
    /// [`System::write_msr`] with a core of the target socket).
    pub fn set_clos_mask(&mut self, clos: usize, mask: u64) -> Result<(), MsrError> {
        for sock in &mut self.sockets {
            sock.cat.set_mask(clos, mask)?;
        }
        Ok(())
    }

    /// Moves a core into a CLOS (of its own socket's CAT domain).
    pub fn assign_clos(&mut self, core: usize, clos: usize) -> Result<(), MsrError> {
        let topo = self.cfg.topology;
        self.sockets[topo.socket_of(core)].cat.set_assoc(topo.local_id(core), clos)?;
        Ok(())
    }

    /// Restores power-on CAT state on every socket (all cores share their
    /// socket's whole LLC).
    pub fn reset_cat(&mut self) {
        for sock in &mut self.sockets {
            sock.cat.reset();
        }
    }

    /// Restores power-on CAT state on one socket only, leaving the other
    /// domains' programming intact.
    pub fn reset_cat_domain(&mut self, socket: usize) {
        self.sockets[socket].cat.reset();
    }

    /// Current allocation mask in force for a core.
    pub fn effective_mask(&self, core: usize) -> u64 {
        let topo = self.cfg.topology;
        self.sockets[topo.socket_of(core)].cat.mask_for_core(topo.local_id(core))
    }

    /// Snapshot of the control state applied to every core — the
    /// CAT class and way mask in force plus the raw prefetcher MSR image.
    /// This is the "what did the controller actually program" half of the
    /// telemetry journal; the PMU snapshots ([`System::pmu_all`]) are the
    /// "what did the machine do" half.
    pub fn control_state(&self) -> Vec<CoreControl> {
        let topo = self.cfg.topology;
        (0..self.cores.len())
            .map(|c| {
                let cat = &self.sockets[topo.socket_of(c)].cat;
                let local = topo.local_id(c);
                CoreControl {
                    clos: cat.assoc(local),
                    way_mask: cat.mask_for_core(local),
                    msr_1a4: self.cores[c].battery.read_msr(),
                    mba_level: self.mem_for(topo.socket_of(c)).mba_level(c),
                }
            })
            .collect()
    }
}

/// A frozen copy of a [`System`]'s complete state (see
/// [`System::snapshot`]). Immutable; each [`SystemSnapshot::restore`]
/// produces an independent live machine resuming from the captured
/// instant.
pub struct SystemSnapshot {
    sys: System,
}

impl SystemSnapshot {
    /// Rehydrates a live machine from the snapshot. May be called any
    /// number of times; restored machines are independent of each other
    /// and of the snapshot.
    pub fn restore(&self) -> System {
        self.sys.try_clone().expect("snapshotted workloads are cloneable by construction")
    }

    /// Global cycle count at the captured instant.
    pub fn now(&self) -> u64 {
        self.sys.now()
    }
}

/// Applied per-core control state (see [`System::control_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreControl {
    /// CAT class of service the core is associated with.
    pub clos: usize,
    /// Effective LLC way mask (the mask of `clos`).
    pub way_mask: u64,
    /// Raw `MSR_MISC_FEATURE_CONTROL` image (bit set = engine disabled).
    pub msr_1a4: u64,
    /// MBA bandwidth-throttle level in force (percent, 0 = unthrottled).
    pub mba_level: u64,
}

impl CoreControl {
    /// True if any prefetch engine of the core is still enabled.
    pub fn prefetching(&self) -> bool {
        self.msr_1a4 != 0xF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Idle, Op};

    struct Seq {
        pos: u64,
        span: u64,
        mlp: u32,
    }
    impl Workload for Seq {
        fn next(&mut self) -> Op {
            let a = self.pos;
            self.pos = (self.pos + 8) % self.span;
            Op::Load { addr: a, pc: 0x400 }
        }
        fn mlp(&self) -> u32 {
            self.mlp
        }
        fn reset(&mut self) {
            self.pos = 0;
        }
        fn name(&self) -> &str {
            "seq"
        }
    }

    fn seq(span: u64) -> Box<dyn Workload + Send> {
        Box::new(Seq { pos: 0, span, mlp: 4 })
    }

    #[test]
    #[should_panic(expected = "one workload per core")]
    fn workload_count_must_match() {
        System::new(SystemConfig::tiny(2), vec![Box::new(Idle)]);
    }

    #[test]
    fn runs_all_cores_to_time() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), seq(1 << 20)]);
        sys.run(10_000);
        assert_eq!(sys.now(), 10_000);
        for i in 0..2 {
            assert!(sys.pmu(i).cycles >= 10_000);
            assert!(sys.pmu(i).instructions > 0);
        }
    }

    #[test]
    fn msr_prefetch_roundtrip() {
        let mut sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        sys.write_msr(0, MSR_MISC_FEATURE_CONTROL, 0xF).unwrap();
        assert_eq!(sys.read_msr(0, MSR_MISC_FEATURE_CONTROL).unwrap(), 0xF);
        assert!(!sys.prefetching_enabled(0));
        sys.set_prefetching(0, true);
        assert!(sys.prefetching_enabled(0));
    }

    #[test]
    fn msr_cat_roundtrip() {
        let mut sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        sys.write_msr(0, IA32_L3_QOS_MASK_BASE + 1, 0b11).unwrap();
        assert_eq!(sys.read_msr(0, IA32_L3_QOS_MASK_BASE + 1).unwrap(), 0b11);
        sys.write_msr(0, IA32_PQR_ASSOC, 1).unwrap();
        assert_eq!(sys.effective_mask(0), 0b11);
        sys.reset_cat();
        assert_eq!(sys.effective_mask(0), 0b1111); // tiny() LLC has 4 ways
    }

    #[test]
    fn msr_mba_roundtrip_and_validation() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), Box::new(Idle)]);
        assert_eq!(sys.read_msr(0, MSR_MBA_THROTTLE).unwrap(), 0);
        sys.write_msr(1, MSR_MBA_THROTTLE, 40).unwrap();
        assert_eq!(sys.read_msr(1, MSR_MBA_THROTTLE).unwrap(), 40);
        assert_eq!(sys.read_msr(0, MSR_MBA_THROTTLE).unwrap(), 0, "per-core scope");
        assert!(matches!(sys.write_msr(0, MSR_MBA_THROTTLE, 45), Err(MsrError::BadMbaLevel(45))));
        assert!(matches!(sys.write_msr(0, MSR_MBA_THROTTLE, 100), Err(MsrError::BadMbaLevel(100))));
        assert_eq!(sys.control_state()[1].mba_level, 40);
        assert_eq!(sys.control_state()[0].mba_level, 0);
    }

    #[test]
    fn mba_throttle_costs_a_stream_ipc() {
        let run = |level: u64| {
            let mut sys = System::new(SystemConfig::tiny(1), vec![seq(1 << 22)]);
            sys.write_msr(0, MSR_MBA_THROTTLE, level).unwrap();
            sys.run(200_000);
            (sys.pmu(0).ipc(), sys.traffic(0).total_bytes())
        };
        let (ipc_free, bytes_free) = run(0);
        let (ipc_throttled, bytes_throttled) = run(90);
        assert!(
            ipc_throttled < ipc_free,
            "90 % throttle must cost IPC: {ipc_throttled:.3} vs {ipc_free:.3}"
        );
        assert!(
            bytes_throttled < bytes_free,
            "90 % throttle must cut traffic: {bytes_throttled} vs {bytes_free}"
        );
    }

    #[test]
    fn unknown_msr_rejected() {
        let mut sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        assert!(matches!(sys.write_msr(0, 0xDEAD, 1), Err(MsrError::UnknownMsr(0xDEAD))));
        assert!(matches!(sys.read_msr(0, 0xDEAD), Err(MsrError::UnknownMsr(0xDEAD))));
        assert!(matches!(sys.write_msr(9, 0x1A4, 0), Err(MsrError::BadCore(9))));
    }

    #[test]
    fn invalid_cat_mask_surfaces_error() {
        let mut sys = System::new(SystemConfig::tiny(1), vec![Box::new(Idle)]);
        assert!(matches!(
            sys.write_msr(0, IA32_L3_QOS_MASK_BASE, 0b101),
            Err(MsrError::Cat(CatError::NonContiguousMask(0b101)))
        ));
    }

    #[test]
    fn contention_slows_down_a_stream() {
        // One stream alone vs. the same stream sharing memory with three
        // other streams: contention must cost IPC.
        let alone = {
            let mut cfg = SystemConfig::tiny(1);
            cfg.memory.bytes_per_cycle = 4.0;
            let mut sys = System::new(cfg, vec![seq(1 << 22)]);
            sys.run(200_000);
            sys.pmu(0).ipc()
        };
        let contended = {
            // Keep memory bandwidth tight so four streams saturate it.
            let mut cfg = SystemConfig::tiny(4);
            cfg.memory.bytes_per_cycle = 4.0;
            let mut sys = System::new(cfg, (0..4).map(|_| seq(1 << 22)).collect());
            sys.run(200_000);
            sys.pmu(0).ipc()
        };
        assert!(
            contended < alone,
            "contended IPC {contended:.3} must be below alone IPC {alone:.3}"
        );
    }

    #[test]
    fn cache_partitioning_protects_a_small_working_set() {
        // Core 0 loops over an LLC-resident set; core 1 streams and thrashes
        // the LLC. Giving core 1 a tiny partition must help core 0.
        let run = |partitioned: bool| {
            let cfg = SystemConfig::tiny(2);
            let resident = cfg.llc.size_bytes / 2;
            let mut sys = System::new(
                cfg,
                vec![
                    Box::new(Seq { pos: 0, span: resident, mlp: 1 }),
                    Box::new(Seq { pos: 0, span: 1 << 24, mlp: 4 }),
                ],
            );
            if partitioned {
                // CLOS1 = 1 way for the streamer; core 0 keeps everything.
                sys.set_clos_mask(1, 0b1).unwrap();
                sys.assign_clos(1, 1).unwrap();
            }
            sys.run(400_000);
            sys.pmu(0).ipc()
        };
        let unprotected = run(false);
        let protected = run(true);
        assert!(
            protected > unprotected,
            "partitioning must protect the resident core: {protected:.3} vs {unprotected:.3}"
        );
    }

    /// Loads `span` bytes starting at `base`, line by line, forever.
    struct SeqAt {
        base: u64,
        pos: u64,
        span: u64,
    }
    impl Workload for SeqAt {
        fn next(&mut self) -> Op {
            let a = self.base + self.pos;
            self.pos = (self.pos + 64) % self.span;
            Op::Load { addr: a, pc: 0x400 }
        }
        fn mlp(&self) -> u32 {
            4
        }
        fn reset(&mut self) {
            self.pos = 0;
        }
        fn name(&self) -> &str {
            "seq-at"
        }
    }

    fn seq_at(base: u64, span: u64) -> Box<dyn Workload + Send> {
        Box::new(SeqAt { base, pos: 0, span })
    }

    #[test]
    fn back_invalidation_hits_only_the_holding_core() {
        // Two cores with disjoint address ranges: every cached line has
        // exactly one private holder.
        let mut sys =
            System::new(SystemConfig::tiny(2), vec![seq_at(0, 1 << 13), seq_at(1 << 24, 1 << 13)]);
        sys.run(30_000);
        let victim = (0u64..(1 << 13) / 64)
            .find(|&l| sys.sockets[0].presence.holders(l) == 0b01 && sys.cores[0].l2.contains(l))
            .expect("core 0 must have cached part of its working set");
        assert!(
            !sys.cores[1].l1.contains(victim) && !sys.cores[1].l2.contains(victim),
            "disjoint ranges: core 1 must not hold core 0's line"
        );
        // Snapshot core 1's private cache contents over its own range.
        let base1 = (1u64 << 24) / 64;
        let core1_lines: Vec<u64> =
            (base1..base1 + (1 << 13) / 64).filter(|&l| sys.cores[1].l2.contains(l)).collect();
        assert!(!core1_lines.is_empty());

        // Apply an inclusive back-invalidation for the victim, as
        // System::run does for LLC victims at quantum boundaries.
        sys.sockets[0].inval.push(victim);
        sys.apply_back_invalidations();

        assert!(!sys.cores[0].l1.contains(victim), "victim must leave the holder's L1");
        assert!(!sys.cores[0].l2.contains(victim), "victim must leave the holder's L2");
        assert_eq!(sys.presence_holders(victim), 0, "presence must drop the holder bit");
        for &l in &core1_lines {
            assert!(
                sys.cores[1].l2.contains(l),
                "non-holder core 1 must be untouched (line {l:#x} evicted)"
            );
        }
    }

    #[test]
    fn back_invalidation_reaches_every_holder_of_a_shared_line() {
        // Both cores walk the same range, so lines end up in both L2s.
        let mut sys =
            System::new(SystemConfig::tiny(2), vec![seq_at(0, 1 << 13), seq_at(0, 1 << 13)]);
        sys.run(30_000);
        let shared = (0u64..(1 << 13) / 64)
            .find(|&l| sys.presence_holders(l) == 0b11)
            .expect("some line must be resident in both private caches");
        sys.sockets[0].inval.push(shared);
        sys.apply_back_invalidations();
        for c in 0..2 {
            assert!(!sys.cores[c].l1.contains(shared));
            assert!(!sys.cores[c].l2.contains(shared));
        }
        assert_eq!(sys.presence_holders(shared), 0);
    }

    #[test]
    fn presence_map_mirrors_private_l2_contents() {
        // After any run that caused real LLC evictions (core 1 streams far
        // more than the tiny LLC holds), the presence map must agree
        // exactly with the private L2s. That equivalence is what makes
        // holder-targeted back-invalidation semantically identical to a
        // broadcast: back-invalidating a non-holder is a no-op.
        //
        // Inclusion (L2 ⊆ LLC) is checked as near-total rather than exact:
        // a fill in flight in an MSHR when the LLC evicts its line lands
        // after the deferred invalidation already drained, a relaxed-sync
        // artifact this simulator shares with its broadcast predecessor.
        let mut sys =
            System::new(SystemConfig::tiny(2), vec![seq_at(0, 1 << 13), seq_at(0, 1 << 22)]);
        sys.run(200_000);
        let mut resident = 0u64;
        let mut inclusion_violations = 0u64;
        for l in 0u64..(1 << 22) / 64 {
            let mut mask = 0u64;
            for c in 0..2 {
                if sys.cores[c].l2.contains(l) {
                    mask |= 1 << c;
                }
                assert!(
                    !sys.cores[c].l1.contains(l) || sys.cores[c].l2.contains(l),
                    "L1 ⊆ L2 violated at line {l:#x} core {c}"
                );
            }
            assert_eq!(
                sys.presence_holders(l),
                mask,
                "presence map out of sync with L2 contents at line {l:#x}"
            );
            if mask != 0 {
                resident += 1;
                if !sys.llc_contains(l) {
                    inclusion_violations += 1;
                }
            }
        }
        assert!(resident > 0);
        assert!(
            inclusion_violations * 20 <= resident,
            "inclusion leaks must stay a rare in-flight-fill artifact: \
             {inclusion_violations} of {resident} resident lines"
        );
    }

    #[test]
    fn traffic_accounted_per_core() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![Box::new(Idle), seq(1 << 22)]);
        sys.run(100_000);
        assert_eq!(sys.traffic(0).total_bytes(), 0);
        assert!(sys.traffic(1).total_bytes() > 0);
    }

    #[test]
    fn pmu_all_matches_individual_reads() {
        let mut sys = System::new(SystemConfig::tiny(2), vec![seq(1 << 20), seq(1 << 20)]);
        sys.run(50_000);
        let all = sys.pmu_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], sys.pmu(0));
        assert_eq!(all[1], sys.pmu(1));
    }
}
