//! The interface between benchmark generators and the simulator.
//!
//! Workloads produce an infinite instruction stream: the simulator asks for
//! the next [`Op`] and executes it. The vocabulary itself lives in
//! `cmm-trace` (the bottom of the dependency stack) so trace files and the
//! simulator share one definition; this module re-exports it under the
//! historical `cmm_sim::workload` path. `cmm-workloads` provides the
//! synthetic SPEC-CPU2006-class generators; anything implementing
//! [`Workload`] runs.

pub use cmm_trace::{Idle, Op, Workload};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_computes() {
        let mut w = Idle;
        for _ in 0..10 {
            assert!(matches!(w.next(), Op::Compute { .. }));
        }
        assert_eq!(w.mlp(), 1);
        assert_eq!(w.name(), "idle");
    }
}
