//! The interface between benchmark generators and the simulator.
//!
//! Workloads produce an infinite instruction stream: the simulator asks for
//! the next [`Op`] and executes it. `cmm-workloads` provides the synthetic
//! SPEC-CPU2006-class generators; anything implementing [`Workload`] runs.

/// One architectural operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `cycles` back-to-back non-memory instructions (1 instruction/cycle).
    Compute {
        /// Number of instructions ≡ cycles consumed.
        cycles: u32,
    },
    /// A demand load from byte address `addr`, issued by the static load
    /// instruction at `pc` (the IP-stride prefetcher trains on `pc`).
    Load {
        /// Byte address.
        addr: u64,
        /// Program counter of the load.
        pc: u64,
    },
    /// A demand store (write-allocate; does not block the core).
    Store {
        /// Byte address.
        addr: u64,
        /// Program counter of the store.
        pc: u64,
    },
}

/// An infinite benchmark. Implementations must be deterministic given their
/// construction parameters (mixes are seeded), so baseline and managed runs
/// see identical instruction streams.
pub trait Workload {
    /// Produce the next operation.
    fn next(&mut self) -> Op;

    /// The memory-level parallelism the access pattern exposes: how many
    /// independent demand misses an out-of-order window could overlap.
    /// Pointer chasing ⇒ 1; array streaming ⇒ 4–8.
    fn mlp(&self) -> u32 {
        1
    }

    /// Restart from the beginning (the paper restarts benchmarks that
    /// finish before the 2.5-minute workload window).
    fn reset(&mut self);

    /// Human-readable benchmark name.
    fn name(&self) -> &str;
}

/// A workload that only computes — used for idle/filler cores and tests.
#[derive(Debug, Default, Clone)]
pub struct Idle;

impl Workload for Idle {
    fn next(&mut self) -> Op {
        Op::Compute { cycles: 64 }
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "idle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_computes() {
        let mut w = Idle;
        for _ in 0..10 {
            assert!(matches!(w.next(), Op::Compute { .. }));
        }
        assert_eq!(w.mlp(), 1);
        assert_eq!(w.name(), "idle");
    }
}
