//! L1 DCU IP-stride prefetcher (MSR 0x1A4 bit 3).
//!
//! Classic per-instruction-pointer stride detector: a small direct-mapped
//! table keyed by load PC records the last address and last stride for that
//! PC with a saturating confidence counter. Once confident, it prefetches
//! `degree` strides ahead of the current access.

use super::{PrefetchRequest, Prefetcher, PrefetcherKind};
use crate::addr::line_of;

const TABLE_SIZE: usize = 64;
const CONF_MAX: u8 = 3;
/// Confidence needed before issuing.
const CONF_THRESHOLD: u8 = 2;
/// How many strides ahead of the current access to cover.
const DEGREE: u64 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// See module docs.
#[derive(Debug, Clone)]
pub struct IpStride {
    table: Box<[Entry; TABLE_SIZE]>,
}

impl Default for IpStride {
    fn default() -> Self {
        IpStride { table: Box::new([Entry::default(); TABLE_SIZE]) }
    }
}

impl IpStride {
    #[inline]
    fn index(pc: u64) -> usize {
        // Loads are typically 4-byte-aligned instructions; fold upper bits in
        // so nearby PCs spread across the table.
        ((pc >> 2) ^ (pc >> 8)) as usize % TABLE_SIZE
    }
}

impl Prefetcher for IpStride {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::L1IpStride
    }

    fn on_access(&mut self, pc: u64, addr: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let e = &mut self.table[Self::index(pc)];
        if !e.valid || e.pc_tag != pc {
            *e = Entry { pc_tag: pc, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return;
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if new_stride == 0 {
            return; // re-access of the same address: no training signal
        }
        if new_stride == e.stride {
            e.confidence = (e.confidence + 1).min(CONF_MAX);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
            return;
        }
        if e.confidence < CONF_THRESHOLD {
            return;
        }
        let cur_line = line_of(addr);
        for d in 1..=DEGREE {
            let target = addr as i64 + e.stride * d as i64;
            if target < 0 {
                break;
            }
            let target_line = line_of(target as u64);
            // Small strides stay within the current line; skip those.
            if target_line != cur_line {
                out.push(PrefetchRequest { line: target_line, source: PrefetcherKind::L1IpStride });
            }
        }
    }

    fn reset(&mut self) {
        *self.table = [Entry::default(); TABLE_SIZE];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut IpStride, pc: u64, addrs: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            p.on_access(pc, a, false, &mut out);
        }
        out
    }

    #[test]
    fn constant_stride_detected_after_training() {
        let mut p = IpStride::default();
        // Stride of 256 bytes (4 lines): accesses at 0, 256, 512, 768 ...
        let out = drive(&mut p, 0x400100, &[0, 256, 512, 768]);
        assert!(!out.is_empty());
        // After the access at 768 the prefetcher should cover 1024 (line 16).
        assert!(out.iter().any(|r| r.line == line_of(768 + 256)));
    }

    #[test]
    fn sub_line_strides_do_not_spam_same_line() {
        let mut p = IpStride::default();
        let out = drive(&mut p, 0x400100, &[0, 8, 16, 24, 32]);
        // Stride 8 within line 0: every emitted target must be a different
        // line than the triggering access; with stride 8 and degree 2 the
        // targets stay in line 0 and must be suppressed.
        assert!(out.is_empty(), "got {out:?}");
    }

    #[test]
    fn irregular_strides_never_confident() {
        let mut p = IpStride::default();
        let out = drive(&mut p, 0x400100, &[0, 100, 377, 1234, 5000, 5001]);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = IpStride::default();
        let base = 64 * 1024;
        let addrs: Vec<u64> = (0..6).map(|i| base - i * 256).collect();
        let out = drive(&mut p, 0x400200, &addrs);
        assert!(!out.is_empty());
        // All targets must be below the last accessed address.
        let last = *addrs.last().unwrap();
        assert!(out.iter().all(|r| r.line < line_of(base)));
        assert!(out.iter().any(|r| r.line <= line_of(last)));
    }

    #[test]
    fn distinct_pcs_train_independently() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        // Interleave two streams with different PCs and strides.
        for i in 0..6u64 {
            p.on_access(0x400100, i * 128, false, &mut out);
            p.on_access(0x400104, 1 << 20 | (i * 320), false, &mut out);
        }
        let lines_a: Vec<u64> =
            out.iter().map(|r| r.line).filter(|&l| l < line_of(1 << 20)).collect();
        let lines_b: Vec<u64> =
            out.iter().map(|r| r.line).filter(|&l| l >= line_of(1 << 20)).collect();
        assert!(!lines_a.is_empty());
        assert!(!lines_b.is_empty());
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        for &a in &[0u64, 256, 512, 768] {
            p.on_access(0x10, a, false, &mut out);
        }
        let before = out.len();
        assert!(before > 0);
        // Change stride: one access with a different delta must not emit.
        p.on_access(0x10, 10_000, false, &mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn reset_clears_table() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        for &a in &[0u64, 256, 512, 768] {
            p.on_access(0x10, a, false, &mut out);
        }
        p.reset();
        out.clear();
        p.on_access(0x10, 1024, false, &mut out);
        assert!(out.is_empty());
    }
}
