//! The four hardware data prefetchers of an Intel server core.
//!
//! Per the Intel SDM (and Sec. II of the paper), each physical core has:
//!
//! | MSR 0x1A4 bit | Prefetcher | Level | Model |
//! |---|---|---|---|
//! | 0 | L2 hardware prefetcher ("streamer") | L2 | [`streamer::Streamer`] |
//! | 1 | L2 adjacent-cache-line prefetcher | L2 | [`adjacent::AdjacentLine`] |
//! | 2 | DCU prefetcher (next-line) | L1 | [`next_line::NextLine`] |
//! | 3 | DCU IP prefetcher (stride) | L1 | [`ip_stride::IpStride`] |
//!
//! A set bit **disables** the prefetcher, exactly as on hardware.
//! [`Battery`] bundles all four with their enable state and is owned by
//! each simulated core.

pub mod adjacent;
pub mod ip_stride;
pub mod next_line;
pub mod streamer;

pub use adjacent::AdjacentLine;
pub use ip_stride::IpStride;
pub use next_line::NextLine;
pub use streamer::Streamer;

/// Identifies which prefetcher generated a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// L2 streamer (MSR 0x1A4 bit 0).
    L2Streamer,
    /// L2 adjacent-line (bit 1).
    L2Adjacent,
    /// L1 DCU next-line (bit 2).
    L1NextLine,
    /// L1 DCU IP-stride (bit 3).
    L1IpStride,
}

impl PrefetcherKind {
    /// The disable-bit position of this prefetcher in MSR 0x1A4.
    pub fn msr_bit(self) -> u64 {
        match self {
            PrefetcherKind::L2Streamer => 0,
            PrefetcherKind::L2Adjacent => 1,
            PrefetcherKind::L1NextLine => 2,
            PrefetcherKind::L1IpStride => 3,
        }
    }

    /// True for the two prefetchers attached to the L2 cache.
    pub fn is_l2(self) -> bool {
        matches!(self, PrefetcherKind::L2Streamer | PrefetcherKind::L2Adjacent)
    }

    /// All four prefetchers.
    pub fn all() -> [PrefetcherKind; 4] {
        [
            PrefetcherKind::L2Streamer,
            PrefetcherKind::L2Adjacent,
            PrefetcherKind::L1NextLine,
            PrefetcherKind::L1IpStride,
        ]
    }
}

/// A line-granular prefetch candidate emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target line number.
    pub line: u64,
    /// Which engine asked for it.
    pub source: PrefetcherKind,
}

/// Common interface of the four engines.
pub trait Prefetcher {
    /// Which engine this is.
    fn kind(&self) -> PrefetcherKind;

    /// Observe one access at this engine's cache level and append any
    /// prefetch candidates to `out`. `hit` is the outcome at that level.
    fn on_access(&mut self, pc: u64, addr: u64, hit: bool, out: &mut Vec<PrefetchRequest>);

    /// Forget all training state (used when a prefetcher is re-enabled so a
    /// stale stream does not fire instantly).
    fn reset(&mut self);
}

/// The per-core battery of all four prefetchers plus the MSR 0x1A4 disable
/// bits that gate them.
#[derive(Clone)]
pub struct Battery {
    streamer: Streamer,
    adjacent: AdjacentLine,
    next_line: NextLine,
    ip_stride: IpStride,
    /// Raw MSR 0x1A4 value; bit set = prefetcher disabled.
    disable_bits: u64,
}

impl Battery {
    /// All prefetchers enabled (hardware power-on default).
    pub fn new() -> Self {
        Battery {
            streamer: Streamer::default(),
            adjacent: AdjacentLine::default(),
            next_line: NextLine::default(),
            ip_stride: IpStride::default(),
            disable_bits: 0,
        }
    }

    /// Writes the MSR 0x1A4 image. Only the low four bits are honoured.
    /// Re-enabling an engine resets its training state.
    pub fn write_msr(&mut self, value: u64) {
        let value = value & 0xF;
        let reenabled = self.disable_bits & !value;
        for kind in PrefetcherKind::all() {
            if reenabled & (1 << kind.msr_bit()) != 0 {
                match kind {
                    PrefetcherKind::L2Streamer => self.streamer.reset(),
                    PrefetcherKind::L2Adjacent => self.adjacent.reset(),
                    PrefetcherKind::L1NextLine => self.next_line.reset(),
                    PrefetcherKind::L1IpStride => self.ip_stride.reset(),
                }
            }
        }
        self.disable_bits = value;
    }

    /// Current MSR 0x1A4 image.
    pub fn read_msr(&self) -> u64 {
        self.disable_bits
    }

    /// True if the given engine is currently enabled.
    pub fn enabled(&self, kind: PrefetcherKind) -> bool {
        self.disable_bits & (1 << kind.msr_bit()) == 0
    }

    /// Feed one L1 demand access to the two L1 engines.
    pub fn l1_access(&mut self, pc: u64, addr: u64, hit: bool, out: &mut Vec<PrefetchRequest>) {
        if self.enabled(PrefetcherKind::L1IpStride) {
            self.ip_stride.on_access(pc, addr, hit, out);
        }
        if self.enabled(PrefetcherKind::L1NextLine) {
            self.next_line.on_access(pc, addr, hit, out);
        }
    }

    /// Feed one request arriving at L2 to the two L2 engines.
    pub fn l2_access(&mut self, pc: u64, addr: u64, hit: bool, out: &mut Vec<PrefetchRequest>) {
        if self.enabled(PrefetcherKind::L2Streamer) {
            self.streamer.on_access(pc, addr, hit, out);
        }
        if self.enabled(PrefetcherKind::L2Adjacent) {
            self.adjacent.on_access(pc, addr, hit, out);
        }
    }
}

impl Default for Battery {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CACHE_LINE_BYTES;

    #[test]
    fn msr_bits_match_intel_layout() {
        assert_eq!(PrefetcherKind::L2Streamer.msr_bit(), 0);
        assert_eq!(PrefetcherKind::L2Adjacent.msr_bit(), 1);
        assert_eq!(PrefetcherKind::L1NextLine.msr_bit(), 2);
        assert_eq!(PrefetcherKind::L1IpStride.msr_bit(), 3);
    }

    #[test]
    fn battery_defaults_all_enabled() {
        let b = Battery::new();
        for k in PrefetcherKind::all() {
            assert!(b.enabled(k));
        }
        assert_eq!(b.read_msr(), 0);
    }

    #[test]
    fn disable_bits_gate_emission() {
        let mut b = Battery::new();
        b.write_msr(0xF); // all off
        let mut out = Vec::new();
        // A long ascending stream would normally trigger everything.
        for i in 0..64u64 {
            let a = i * CACHE_LINE_BYTES;
            b.l1_access(0x400, a, false, &mut out);
            b.l2_access(0x400, a, false, &mut out);
        }
        assert!(out.is_empty(), "disabled battery must emit nothing");
    }

    #[test]
    fn enabled_battery_emits_on_stream() {
        let mut b = Battery::new();
        let mut out = Vec::new();
        for i in 0..64u64 {
            let a = i * CACHE_LINE_BYTES;
            b.l1_access(0x400, a, false, &mut out);
            b.l2_access(0x400, a, false, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().any(|r| r.source == PrefetcherKind::L2Streamer));
        assert!(out.iter().any(|r| r.source == PrefetcherKind::L2Adjacent));
    }

    #[test]
    fn write_msr_ignores_high_bits() {
        let mut b = Battery::new();
        b.write_msr(0xFFFF_FFF0);
        assert_eq!(b.read_msr(), 0);
    }

    #[test]
    fn selective_disable() {
        let mut b = Battery::new();
        b.write_msr(0b0011); // both L2 engines off, L1 on
        assert!(!b.enabled(PrefetcherKind::L2Streamer));
        assert!(!b.enabled(PrefetcherKind::L2Adjacent));
        assert!(b.enabled(PrefetcherKind::L1NextLine));
        assert!(b.enabled(PrefetcherKind::L1IpStride));

        let mut out = Vec::new();
        for i in 0..64u64 {
            b.l2_access(0, i * CACHE_LINE_BYTES, false, &mut out);
        }
        assert!(out.is_empty());
        for i in 0..64u64 {
            b.l1_access(0, i * CACHE_LINE_BYTES, false, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| !r.source.is_l2()));
    }
}
