//! L2 adjacent-cache-line prefetcher (MSR 0x1A4 bit 1).
//!
//! Fetches the other half of the 128-byte-aligned line pair on an L2 miss,
//! so any miss effectively behaves like a 128-byte fetch. Stateless apart
//! from a tiny last-issue filter that stops a miss burst to the same pair
//! from re-issuing.

use super::{PrefetchRequest, Prefetcher, PrefetcherKind};
use crate::addr::{line_of, pair_line};

/// See module docs.
#[derive(Debug, Default, Clone)]
pub struct AdjacentLine {
    last_pair: Option<u64>,
}

impl Prefetcher for AdjacentLine {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::L2Adjacent
    }

    fn on_access(&mut self, _pc: u64, addr: u64, hit: bool, out: &mut Vec<PrefetchRequest>) {
        if hit {
            return;
        }
        let line = line_of(addr);
        let pair = line / 2;
        if self.last_pair == Some(pair) {
            return;
        }
        self.last_pair = Some(pair);
        out.push(PrefetchRequest { line: pair_line(line), source: PrefetcherKind::L2Adjacent });
    }

    fn reset(&mut self) {
        self.last_pair = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CACHE_LINE_BYTES;

    #[test]
    fn miss_fetches_buddy_line() {
        let mut p = AdjacentLine::default();
        let mut out = Vec::new();
        p.on_access(0, 4 * CACHE_LINE_BYTES, false, &mut out);
        assert_eq!(out, vec![PrefetchRequest { line: 5, source: PrefetcherKind::L2Adjacent }]);
    }

    #[test]
    fn odd_line_fetches_even_buddy() {
        let mut p = AdjacentLine::default();
        let mut out = Vec::new();
        p.on_access(0, 7 * CACHE_LINE_BYTES, false, &mut out);
        assert_eq!(out[0].line, 6);
    }

    #[test]
    fn hits_do_not_trigger() {
        let mut p = AdjacentLine::default();
        let mut out = Vec::new();
        p.on_access(0, 4 * CACHE_LINE_BYTES, true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn same_pair_burst_issues_once() {
        let mut p = AdjacentLine::default();
        let mut out = Vec::new();
        p.on_access(0, 4 * CACHE_LINE_BYTES, false, &mut out);
        p.on_access(0, 5 * CACHE_LINE_BYTES, false, &mut out);
        assert_eq!(out.len(), 1);
        // A different pair issues again.
        p.on_access(0, 8 * CACHE_LINE_BYTES, false, &mut out);
        assert_eq!(out.len(), 2);
    }
}
