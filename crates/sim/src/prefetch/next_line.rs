//! L1 DCU next-line prefetcher (MSR 0x1A4 bit 2).
//!
//! The Intel "DCU prefetcher" detects ascending access to recently loaded
//! data and fetches the following cache line into L1. We model it as: on a
//! demand access to line `n`, if the *previous* demand access was to line
//! `n` or `n-1` (an ascending touch pattern), emit a prefetch for `n+1` —
//! once per target line.

use super::{PrefetchRequest, Prefetcher, PrefetcherKind};
use crate::addr::line_of;

/// See module docs.
#[derive(Debug, Default, Clone)]
pub struct NextLine {
    last_line: Option<u64>,
    last_issued: Option<u64>,
}

impl Prefetcher for NextLine {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::L1NextLine
    }

    fn on_access(&mut self, _pc: u64, addr: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let line = line_of(addr);
        let ascending = matches!(self.last_line, Some(prev) if line == prev || line == prev + 1);
        self.last_line = Some(line);
        if !ascending {
            return;
        }
        let target = line + 1;
        if self.last_issued == Some(target) {
            return;
        }
        self.last_issued = Some(target);
        out.push(PrefetchRequest { line: target, source: PrefetcherKind::L1NextLine });
    }

    fn reset(&mut self) {
        self.last_line = None;
        self.last_issued = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CACHE_LINE_BYTES;

    #[test]
    fn ascending_touches_trigger_next_line() {
        let mut p = NextLine::default();
        let mut out = Vec::new();
        p.on_access(0, 0, false, &mut out); // first touch: trains only
        assert!(out.is_empty());
        p.on_access(0, CACHE_LINE_BYTES, false, &mut out); // line 1, ascending
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn same_line_retouch_triggers_once() {
        let mut p = NextLine::default();
        let mut out = Vec::new();
        p.on_access(0, 0, false, &mut out);
        p.on_access(0, 8, false, &mut out); // still line 0 → ascending, issue line 1
        p.on_access(0, 16, false, &mut out); // line 1 already issued
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn random_jumps_do_not_trigger() {
        let mut p = NextLine::default();
        let mut out = Vec::new();
        p.on_access(0, 0, false, &mut out);
        p.on_access(0, 100 * CACHE_LINE_BYTES, false, &mut out);
        p.on_access(0, 5 * CACHE_LINE_BYTES, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reset_forgets_training() {
        let mut p = NextLine::default();
        let mut out = Vec::new();
        p.on_access(0, 0, false, &mut out);
        p.reset();
        p.on_access(0, CACHE_LINE_BYTES, false, &mut out);
        assert!(out.is_empty(), "first access after reset only trains");
    }
}
