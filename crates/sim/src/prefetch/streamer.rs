//! L2 streamer prefetcher (MSR 0x1A4 bit 0).
//!
//! The Intel "L2 hardware prefetcher" monitors request streams within a
//! 4 KiB page, detects a monotonic direction, and runs ahead of the stream
//! by an aggressiveness-dependent number of lines (up to 20 on real parts).
//! We model a 16-entry stream table with LRU replacement, a direction
//! confirmation threshold, and a degree that ramps with confidence — the
//! ramping is what makes a *confirmed* stream flood the LLC/memory with
//! prefetch traffic, which is precisely the interference the paper manages.

use super::{PrefetchRequest, Prefetcher, PrefetcherKind};
use crate::addr::{line_of, line_offset_in_page, page_of_line, LINES_PER_PAGE};

const TABLE_SIZE: usize = 16;
/// Monotonic steps needed to confirm a stream.
const CONFIRM: u8 = 2;
/// Maximum run-ahead distance in lines (Intel's streamer runs up to 20
/// lines ahead of the request stream).
const MAX_DEGREE: u64 = 16;

/// `pages` slot value marking an unallocated stream (no real 4 KiB page
/// number can reach it: pages are `line >> 6` of 64-bit byte addresses).
const NO_PAGE: u64 = u64::MAX;

/// Per-stream training state packed to four bytes; the whole table's
/// training state is one cache line.
#[derive(Debug, Clone, Copy, Default)]
struct StreamState {
    last_offset: u8,
    /// +1 ascending, -1 descending, 0 untrained.
    direction: i8,
    confidence: u8,
    /// Furthest in-page line offset already requested (exclusive cursor),
    /// so a stable stream does not re-issue the same lines. In `[-1, 63]`.
    cursor: i8,
}

/// See module docs.
///
/// The table is laid out as parallel arrays (structure-of-arrays): the
/// per-access page match scans one contiguous row of `u64` pages, the LRU
/// victim scan one row of stamps, and the 4-byte training records sit in a
/// single cache line — instead of striding through 48-byte entry structs.
#[derive(Debug, Clone)]
pub struct Streamer {
    pages: [u64; TABLE_SIZE],
    lru: [u64; TABLE_SIZE],
    state: [StreamState; TABLE_SIZE],
    tick: u64,
}

impl Default for Streamer {
    fn default() -> Self {
        Streamer {
            pages: [NO_PAGE; TABLE_SIZE],
            lru: [0; TABLE_SIZE],
            state: [StreamState::default(); TABLE_SIZE],
            tick: 0,
        }
    }
}

impl Streamer {
    /// Returns the table slot tracking `page`, allocating (and resetting)
    /// the least-recently-used slot when the page is untracked.
    fn find_or_allocate(&mut self, page: u64) -> usize {
        self.tick += 1;
        let mut victim = 0;
        let mut victim_lru = u64::MAX;
        for i in 0..TABLE_SIZE {
            if self.pages[i] == page {
                self.lru[i] = self.tick;
                return i;
            }
            if self.lru[i] < victim_lru {
                victim_lru = self.lru[i];
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.lru[victim] = self.tick;
        self.state[victim] = StreamState { cursor: -1, ..StreamState::default() };
        victim
    }

    /// Degree ramp: freshly confirmed streams fetch 2 ahead; each further
    /// confirmation doubles the distance up to [`MAX_DEGREE`].
    fn degree(confidence: u8) -> u64 {
        (2u64 << (confidence.saturating_sub(CONFIRM)).min(6)).min(MAX_DEGREE)
    }
}

impl Prefetcher for Streamer {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::L2Streamer
    }

    fn on_access(&mut self, _pc: u64, addr: u64, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let line = line_of(addr);
        let page = page_of_line(line);
        let offset = line_offset_in_page(line);
        let i = self.find_or_allocate(page);
        let e = &mut self.state[i];

        if e.direction == 0
            && e.confidence == 0
            && e.cursor == -1
            && e.last_offset == 0
            && offset != 0
        {
            // Fresh entry: record the first touch.
            e.last_offset = offset as u8;
            e.cursor = offset as i8;
            return;
        }

        let step = offset as i64 - e.last_offset as i64;
        e.last_offset = offset as u8;
        if step == 0 {
            return;
        }
        let dir: i8 = if step > 0 { 1 } else { -1 };
        if dir == e.direction {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.direction = dir;
            e.confidence = 1;
            e.cursor = offset as i8;
        }
        if e.confidence < CONFIRM {
            return;
        }

        let degree = Self::degree(e.confidence);
        let page_base = page * LINES_PER_PAGE;
        if dir > 0 {
            let start = (offset as i64 + 1).max(e.cursor as i64 + 1);
            let end = (offset + degree).min(LINES_PER_PAGE - 1) as i64;
            for o in start..=end {
                out.push(PrefetchRequest {
                    line: page_base + o as u64,
                    source: PrefetcherKind::L2Streamer,
                });
            }
            e.cursor = e.cursor.max(end as i8);
        } else {
            let start = (offset as i64 - 1).min(e.cursor as i64 - 1);
            let end = offset.saturating_sub(degree) as i64;
            for o in (end..=start).rev() {
                if o < 0 {
                    break;
                }
                out.push(PrefetchRequest {
                    line: page_base + o as u64,
                    source: PrefetcherKind::L2Streamer,
                });
            }
            e.cursor = e.cursor.min(end as i8);
        }
    }

    fn reset(&mut self) {
        self.pages = [NO_PAGE; TABLE_SIZE];
        self.lru = [0; TABLE_SIZE];
        self.state = [StreamState::default(); TABLE_SIZE];
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CACHE_LINE_BYTES;

    fn drive(s: &mut Streamer, lines: impl IntoIterator<Item = u64>) -> Vec<u64> {
        let mut out = Vec::new();
        for l in lines {
            s.on_access(0, l * CACHE_LINE_BYTES, false, &mut out);
        }
        out.iter().map(|r| r.line).collect()
    }

    #[test]
    fn ascending_stream_runs_ahead() {
        let mut s = Streamer::default();
        let issued = drive(&mut s, 0..8);
        assert!(!issued.is_empty());
        // Everything issued must be ahead of the last access (line 7).
        assert!(issued.iter().all(|&l| l > 2), "{issued:?}");
        // The run-ahead should be covering several lines beyond the stream head.
        assert!(*issued.iter().max().unwrap() >= 10);
    }

    #[test]
    fn no_duplicate_issues_for_stable_stream() {
        let mut s = Streamer::default();
        let issued = drive(&mut s, 0..32);
        let mut sorted = issued.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), issued.len(), "streamer re-issued lines: {issued:?}");
    }

    #[test]
    fn descending_stream_supported() {
        let mut s = Streamer::default();
        let issued = drive(&mut s, (32..56).rev());
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|&l| l < 56));
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut s = Streamer::default();
        // Stream right up to the end of page 0 (lines 0..64).
        let issued = drive(&mut s, 56..64);
        assert!(issued.iter().all(|&l| l < LINES_PER_PAGE), "{issued:?}");
    }

    #[test]
    fn random_accesses_within_page_do_not_confirm() {
        let mut s = Streamer::default();
        let issued = drive(&mut s, [5u64, 40, 3, 60, 11, 33, 2, 50]);
        // Direction flips on almost every access; nothing should confirm
        // beyond a stray line or two.
        assert!(issued.len() <= 2, "{issued:?}");
    }

    #[test]
    fn degree_ramps_with_confidence() {
        assert!(Streamer::degree(CONFIRM) < Streamer::degree(CONFIRM + 3));
        assert!(Streamer::degree(100) <= MAX_DEGREE);
    }

    #[test]
    fn multiple_concurrent_pages_tracked() {
        let mut s = Streamer::default();
        let mut out = Vec::new();
        // Interleave ascending streams in two distinct pages.
        for i in 0..8u64 {
            s.on_access(0, i * CACHE_LINE_BYTES, false, &mut out);
            s.on_access(0, (10 * LINES_PER_PAGE + i) * CACHE_LINE_BYTES, false, &mut out);
        }
        let pages: std::collections::HashSet<u64> =
            out.iter().map(|r| page_of_line(r.line)).collect();
        assert!(pages.contains(&0));
        assert!(pages.contains(&10));
    }

    #[test]
    fn reset_clears_streams() {
        let mut s = Streamer::default();
        drive(&mut s, 0..8);
        s.reset();
        let mut out = Vec::new();
        s.on_access(0, 8 * CACHE_LINE_BYTES, false, &mut out);
        assert!(out.is_empty());
    }
}
