//! Generic set-associative cache with LRU replacement and CAT-style
//! way-masked allocation.
//!
//! One [`Cache`] instance models any of L1D, L2 or the shared LLC; the
//! level-specific behaviour (who triggers which prefetcher, inclusive
//! back-invalidation) lives in [`crate::system`].
//!
//! ## CAT semantics
//!
//! Intel Cache Allocation Technology restricts only **allocation**: a core
//! whose class of service (CLOS) owns ways `{0,1}` may still *hit* on a
//! line that physically resides in way 7 — it just cannot victimise way 7
//! when it needs to insert. [`Cache::insert`] therefore takes an
//! `alloc_mask` limiting victim selection, while [`Cache::access`] searches
//! all ways unconditionally. This mirrors the hardware exactly and is what
//! makes *overlapping* partitions (used by the paper and by Dunn) work.

use crate::config::CacheGeometry;

const INVALID_TAG: u64 = u64::MAX;

const FLAG_PREFETCHED: u8 = 0b01;
const FLAG_DIRTY: u8 = 0b10;

/// Result of a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// True if the line was brought in by a prefetch and this is the first
    /// demand touch since (the prefetched bit is cleared by that touch).
    /// Used for ground-truth prefetch-accuracy accounting.
    pub first_use_of_prefetch: bool,
}

/// A line pushed out by [`Cache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line number of the victim.
    pub line: u64,
    /// The victim held modified data and must be written back.
    pub dirty: bool,
    /// The victim was prefetched and never demand-touched (wasted prefetch).
    pub unused_prefetch: bool,
}

/// Aggregate counters kept by each cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Demand hits that were the first touch of a prefetched line.
    pub prefetch_used: u64,
    /// Prefetched lines evicted without ever being demand-touched.
    pub prefetch_wasted: u64,
}

/// A set-associative, write-back, LRU cache.
#[derive(Clone)]
pub struct Cache {
    sets: u64,
    ways: usize,
    set_mask: u64,
    /// `sets * ways` tags (line numbers), row-major by set.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; larger = more recently used.
    stamps: Vec<u64>,
    /// Per-line flag bits parallel to `tags`.
    flags: Vec<u8>,
    tick: u64,
    /// Counters; public for tests and diagnostics.
    pub stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        geom.validate();
        let sets = geom.sets();
        let ways = geom.ways as usize;
        let n = (sets as usize) * ways;
        Cache {
            sets,
            ways,
            set_mask: sets - 1,
            tags: vec![INVALID_TAG; n],
            stamps: vec![0; n],
            flags: vec![0; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    #[inline(always)]
    fn set_base(&self, line: u64) -> usize {
        ((line & self.set_mask) as usize) * self.ways
    }

    #[inline(always)]
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.set_base(line);
        // One slice reborrow, one pass: the compiler hoists the bounds
        // check and vectorises the tag compare.
        let tags = &self.tags[base..base + self.ways];
        for (w, &t) in tags.iter().enumerate() {
            if t == line {
                return Some(base + w);
            }
        }
        None
    }

    /// True if the line is resident. Does not disturb LRU or statistics.
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Demand access. On a hit, updates LRU, clears the prefetched bit and
    /// reports whether this was the first use of a prefetched line.
    pub fn access(&mut self, line: u64) -> Option<HitInfo> {
        self.tick += 1;
        match self.find(line) {
            Some(idx) => {
                self.stamps[idx] = self.tick;
                let first_use = self.flags[idx] & FLAG_PREFETCHED != 0;
                if first_use {
                    self.flags[idx] &= !FLAG_PREFETCHED;
                    self.stats.prefetch_used += 1;
                }
                self.stats.hits += 1;
                Some(HitInfo { first_use_of_prefetch: first_use })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Prefetch probe: like [`Cache::access`] but does **not** clear the
    /// prefetched bit (a prefetcher re-touching its own line is not a use)
    /// and does not update LRU (Intel prefetch probes do not promote).
    pub fn probe_for_prefetch(&mut self, line: u64) -> bool {
        let hit = self.find(line).is_some();
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Marks a resident line dirty (no-op if absent).
    pub fn mark_dirty(&mut self, line: u64) {
        if let Some(idx) = self.find(line) {
            self.flags[idx] |= FLAG_DIRTY;
        }
    }

    /// Removes a line (inclusive back-invalidation). Returns the removed
    /// line's state if it was resident, so callers can write back dirty
    /// data.
    pub fn invalidate_line(&mut self, line: u64) -> Option<Eviction> {
        if let Some(idx) = self.find(line) {
            let unused_prefetch = self.flags[idx] & FLAG_PREFETCHED != 0;
            if unused_prefetch {
                self.stats.prefetch_wasted += 1;
            }
            let dirty = self.flags[idx] & FLAG_DIRTY != 0;
            self.tags[idx] = INVALID_TAG;
            self.flags[idx] = 0;
            self.stamps[idx] = 0;
            Some(Eviction { line, dirty, unused_prefetch })
        } else {
            None
        }
    }

    /// Inserts `line`, selecting the victim only among ways set in
    /// `alloc_mask` (CAT). If the line is already resident this refreshes
    /// LRU instead (fill races are benign). Returns the eviction, if any.
    ///
    /// `alloc_mask` must intersect `[0, ways)`; callers pass
    /// `u64::MAX` when partitioning is off.
    pub fn insert(&mut self, line: u64, prefetched: bool, alloc_mask: u64) -> Option<Eviction> {
        self.insert_qbs(line, prefetched, alloc_mask, &|_| false)
    }

    /// [`Cache::insert`] with Query-Based Selection: ways whose line is
    /// `protected` (resident in some private cache, per the inclusive-LLC
    /// QBS of Broadwell) are victimised only if every usable way is
    /// protected.
    pub fn insert_qbs(
        &mut self,
        line: u64,
        prefetched: bool,
        alloc_mask: u64,
        protected: &dyn Fn(u64) -> bool,
    ) -> Option<Eviction> {
        self.tick += 1;
        let base = self.set_base(line);
        let usable = alloc_mask & Self::low_ways_mask(self.ways);
        debug_assert!(usable != 0, "allocation mask selects no way");

        // Single packed pass over the set: detect a hit on `line`, note the
        // first usable invalid way, and track the LRU (min-stamp) usable
        // way all in one sweep over the contiguous tag/stamp rows, instead
        // of a `find` pass followed by a victim-selection pass.
        let mut invalid_way: Option<usize> = None;
        let mut lru_way = usize::MAX;
        let mut lru_stamp = u64::MAX;
        let tags = &self.tags[base..base + self.ways];
        let stamps = &self.stamps[base..base + self.ways];
        for (w, &t) in tags.iter().enumerate() {
            if t == line {
                // Already present (e.g. demand fill racing a prefetch
                // fill): refresh recency; never *set* the prefetched bit on
                // a line that a demand already claimed.
                let idx = base + w;
                self.stamps[idx] = self.tick;
                if !prefetched {
                    self.flags[idx] &= !FLAG_PREFETCHED;
                }
                return None;
            }
            if usable & (1 << w) != 0 {
                if t == INVALID_TAG && invalid_way.is_none() {
                    invalid_way = Some(w);
                }
                let s = stamps[w];
                if s < lru_stamp {
                    lru_stamp = s;
                    lru_way = w;
                }
            }
        }

        // Prefer an invalid way inside the mask, else the LRU way among
        // unprotected lines, else (all usable ways protected) the plain LRU
        // way. Candidates are probed in LRU order so `protected` — a
        // presence-table lookup — runs once for the common case of an
        // unprotected LRU victim rather than once per way.
        let idx = if let Some(w) = invalid_way {
            base + w
        } else {
            assert!(lru_way != usize::MAX, "allocation mask selects no way");
            if !protected(self.tags[base + lru_way]) {
                base + lru_way
            } else {
                // Rare: the LRU victim is held by a private cache. Probe the
                // remaining candidates in LRU order; if every usable way is
                // protected, fall back to the plain LRU way.
                let mut tried: u64 = 1 << lru_way;
                let victim = loop {
                    let mut best: Option<usize> = None;
                    let mut best_stamp = u64::MAX;
                    for w in 0..self.ways {
                        if usable & (1 << w) == 0 || tried & (1 << w) != 0 {
                            continue;
                        }
                        let s = self.stamps[base + w];
                        if s < best_stamp {
                            best_stamp = s;
                            best = Some(w);
                        }
                    }
                    match best {
                        None => break lru_way,
                        Some(w) if !protected(self.tags[base + w]) => break w,
                        Some(w) => tried |= 1 << w,
                    }
                };
                base + victim
            }
        };

        let evicted = if self.tags[idx] != INVALID_TAG {
            let unused_prefetch = self.flags[idx] & FLAG_PREFETCHED != 0;
            if unused_prefetch {
                self.stats.prefetch_wasted += 1;
            }
            self.stats.evictions += 1;
            Some(Eviction {
                line: self.tags[idx],
                dirty: self.flags[idx] & FLAG_DIRTY != 0,
                unused_prefetch,
            })
        } else {
            None
        };

        self.tags[idx] = line;
        self.stamps[idx] = self.tick;
        self.flags[idx] = if prefetched { FLAG_PREFETCHED } else { 0 };
        self.stats.insertions += 1;
        evicted
    }

    /// Bitmask selecting all `ways` low way bits.
    #[inline]
    pub fn low_ways_mask(ways: usize) -> u64 {
        if ways >= 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    /// Empties the cache, keeping statistics.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.flags.fill(0);
        self.stamps.fill(0);
    }

    /// How many lines of the given set are currently valid. Test helper.
    pub fn set_occupancy(&self, set: u64) -> usize {
        let base = (set as usize) * self.ways;
        self.tags[base..base + self.ways].iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 4 ways.
        Cache::new(CacheGeometry { size_bytes: 4 * 4 * 64, ways: 4, hit_latency: 1 })
    }

    /// Lines 0,4,8,... all map to set 0 of a 4-set cache.
    fn set0_line(i: u64) -> u64 {
        i * 4
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.access(10).is_none());
        c.insert(10, false, u64::MAX);
        assert!(c.access(10).is_some());
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        for i in 0..4 {
            c.insert(set0_line(i), false, u64::MAX);
        }
        // Touch lines 1..3 so line 0 is LRU.
        for i in 1..4 {
            assert!(c.access(set0_line(i)).is_some());
        }
        let ev = c.insert(set0_line(9), false, u64::MAX).expect("set full");
        assert_eq!(ev.line, set0_line(0));
    }

    #[test]
    fn masked_insert_only_victimises_masked_ways() {
        let mut c = small();
        // Fill all 4 ways of set 0.
        for i in 0..4 {
            c.insert(set0_line(i), false, u64::MAX);
        }
        // Insert 100 new lines restricted to way 0: the three lines that
        // landed in ways 1..3 must survive.
        let survivors: Vec<u64> = (1..4).map(set0_line).collect();
        for i in 10..110 {
            c.insert(set0_line(i), false, 0b0001);
        }
        let mut present = 0;
        for &l in &survivors {
            if c.contains(l) {
                present += 1;
            }
        }
        assert!(present >= 2, "masked inserts must not evict unmasked ways (kept {present}/3)");
        // At least the most recent masked insert is resident.
        assert!(c.contains(set0_line(109)));
    }

    #[test]
    fn hits_allowed_outside_alloc_mask() {
        let mut c = small();
        c.insert(set0_line(0), false, 0b1000); // way 3
                                               // A core restricted to way 0 still hits.
        assert!(c.access(set0_line(0)).is_some());
    }

    #[test]
    fn prefetched_bit_first_use_accounting() {
        let mut c = small();
        c.insert(7, true, u64::MAX);
        let h1 = c.access(7).unwrap();
        assert!(h1.first_use_of_prefetch);
        let h2 = c.access(7).unwrap();
        assert!(!h2.first_use_of_prefetch);
        assert_eq!(c.stats.prefetch_used, 1);
    }

    #[test]
    fn unused_prefetch_counted_on_eviction() {
        let mut c = small();
        c.insert(set0_line(0), true, 0b0001);
        c.insert(set0_line(1), false, 0b0001);
        assert_eq!(c.stats.prefetch_wasted, 1);
    }

    #[test]
    fn demand_fill_overrides_prefetch_bit_on_race() {
        let mut c = small();
        c.insert(9, true, u64::MAX);
        c.insert(9, false, u64::MAX); // demand fill of same line
        let h = c.access(9).unwrap();
        assert!(!h.first_use_of_prefetch);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.insert(set0_line(0), false, 0b0001);
        c.mark_dirty(set0_line(0));
        let ev = c.insert(set0_line(1), false, 0b0001).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.insert(42, false, u64::MAX);
        assert!(c.invalidate_line(42).is_some());
        assert!(!c.contains(42));
        assert!(c.invalidate_line(42).is_none());
    }

    #[test]
    fn invalidate_reports_dirty_state() {
        let mut c = small();
        c.insert(42, false, u64::MAX);
        c.mark_dirty(42);
        let ev = c.invalidate_line(42).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line, 42);
    }

    #[test]
    fn prefetch_probe_does_not_consume_first_use() {
        let mut c = small();
        c.insert(5, true, u64::MAX);
        assert!(c.probe_for_prefetch(5));
        let h = c.access(5).unwrap();
        assert!(h.first_use_of_prefetch, "probe must not clear the prefetched bit");
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = small();
        assert_eq!(c.set_occupancy(0), 0);
        c.insert(set0_line(0), false, u64::MAX);
        c.insert(set0_line(1), false, u64::MAX);
        assert_eq!(c.set_occupancy(0), 2);
        c.flush();
        assert_eq!(c.set_occupancy(0), 0);
    }
}
