//! MSR-level interface: prefetcher control and Cache Allocation Technology.
//!
//! The paper's kernel module programs three architectural interfaces; this
//! module emulates their *semantics* (not the ring-0 ABI):
//!
//! * `MSR_MISC_FEATURE_CONTROL` (`0x1A4`) — per-core prefetcher disable
//!   bits (handled by [`crate::prefetch::Battery`]; the address constants
//!   live here).
//! * `IA32_PQR_ASSOC` (`0xC8F`) — associates a logical CPU with a class of
//!   service (CLOS).
//! * `IA32_L3_QOS_MASK_n` (`0xC90 + n`) — the capacity bitmask (way mask)
//!   of CLOS *n*, with Intel's validity rules: non-zero, **contiguous**,
//!   and within the LLC's way count. Masks of different CLOS may overlap —
//!   the paper's mechanisms depend on overlapping partitions.

/// MSR address of the per-core prefetcher disable bits.
pub const MSR_MISC_FEATURE_CONTROL: u32 = 0x1A4;

/// MSR address of the CLOS association register.
pub const IA32_PQR_ASSOC: u32 = 0xC8F;

/// Base MSR address of the CAT way masks; CLOS *n* lives at base + *n*.
pub const IA32_L3_QOS_MASK_BASE: u32 = 0xC90;

/// MSR address of the per-core memory-bandwidth throttle (modelled after
/// Intel MBA's `IA32_L2_QoS_Ext_BW_Thrtl_n` delay registers). The value is
/// the throttle percentage: `0` (unthrottled, the power-on state) through
/// `90` (≈10 % of peak request rate), in steps of 10 — the granularity
/// real MBA parts expose.
pub const MSR_MBA_THROTTLE: u32 = 0xD50;

/// True if `value` is a programmable MBA delay level (0..=90, step 10).
/// Invalid values raise [`crate::system::MsrError::BadMbaLevel`], the
/// moral equivalent of the #GP(0) a real part raises on a reserved
/// delay-register encoding.
pub fn mba_level_valid(value: u64) -> bool {
    value <= 90 && value.is_multiple_of(10)
}

/// Errors raised by invalid CAT programming, mirroring the #GP(0) a real
/// part raises on an invalid WRMSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatError {
    /// The CLOS id is out of range.
    BadClos(usize),
    /// The way mask is zero.
    EmptyMask,
    /// The way mask has non-contiguous set bits.
    NonContiguousMask(u64),
    /// The way mask selects ways beyond the LLC associativity.
    MaskTooWide(u64),
    /// The core id is out of range.
    BadCore(usize),
}

impl std::fmt::Display for CatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatError::BadClos(c) => write!(f, "CLOS {c} out of range"),
            CatError::EmptyMask => write!(f, "CAT mask must be non-zero"),
            CatError::NonContiguousMask(m) => {
                write!(f, "CAT mask {m:#x} has non-contiguous bits")
            }
            CatError::MaskTooWide(m) => write!(f, "CAT mask {m:#x} exceeds LLC ways"),
            CatError::BadCore(c) => write!(f, "core {c} out of range"),
        }
    }
}

impl std::error::Error for CatError {}

/// True if the set bits of `mask` form one contiguous run.
pub fn mask_is_contiguous(mask: u64) -> bool {
    if mask == 0 {
        return false;
    }
    let shifted = mask >> mask.trailing_zeros();
    (shifted & shifted.wrapping_add(1)) == 0
}

/// Builds a contiguous mask of `n` ways starting at bit `lo`.
pub fn contiguous_mask(lo: u32, n: u32) -> u64 {
    assert!(n > 0 && lo + n <= 64);
    (((1u128 << n) - 1) << lo) as u64
}

/// Cache Allocation Technology state: CLOS way-masks plus the per-core CLOS
/// association.
#[derive(Debug, Clone)]
pub struct CatState {
    llc_ways: u32,
    masks: Vec<u64>,
    assoc: Vec<usize>,
}

impl CatState {
    /// Power-on state for **one socket's** CAT domain: every CLOS owns all
    /// ways, every core is in CLOS 0. Core indices into this state are
    /// socket-*local* (`0..topo.cores_per_socket`); taking the
    /// [`Topology`](crate::config::Topology) instead of a bare core count
    /// makes a socket/core-count swap a type error at the call site.
    pub fn new(num_clos: usize, llc_ways: u32, topo: &crate::config::Topology) -> Self {
        let full = crate::cache::Cache::low_ways_mask(llc_ways as usize);
        CatState { llc_ways, masks: vec![full; num_clos], assoc: vec![0; topo.cores_per_socket] }
    }

    /// Number of classes of service.
    pub fn num_clos(&self) -> usize {
        self.masks.len()
    }

    /// Programs the way mask of `clos` (WRMSR `IA32_L3_QOS_MASK_clos`).
    pub fn set_mask(&mut self, clos: usize, mask: u64) -> Result<(), CatError> {
        if clos >= self.masks.len() {
            return Err(CatError::BadClos(clos));
        }
        if mask == 0 {
            return Err(CatError::EmptyMask);
        }
        if !mask_is_contiguous(mask) {
            return Err(CatError::NonContiguousMask(mask));
        }
        if mask & !crate::cache::Cache::low_ways_mask(self.llc_ways as usize) != 0 {
            return Err(CatError::MaskTooWide(mask));
        }
        self.masks[clos] = mask;
        Ok(())
    }

    /// Reads the way mask of `clos`.
    pub fn mask(&self, clos: usize) -> Result<u64, CatError> {
        self.masks.get(clos).copied().ok_or(CatError::BadClos(clos))
    }

    /// Associates `core` with `clos` (WRMSR `IA32_PQR_ASSOC`).
    pub fn set_assoc(&mut self, core: usize, clos: usize) -> Result<(), CatError> {
        if core >= self.assoc.len() {
            return Err(CatError::BadCore(core));
        }
        if clos >= self.masks.len() {
            return Err(CatError::BadClos(clos));
        }
        self.assoc[core] = clos;
        Ok(())
    }

    /// The CLOS `core` currently belongs to.
    pub fn assoc(&self, core: usize) -> usize {
        self.assoc[core]
    }

    /// The allocation mask in force for `core`'s LLC insertions.
    pub fn mask_for_core(&self, core: usize) -> u64 {
        self.masks[self.assoc[core]]
    }

    /// Resets to the power-on state (all CLOS full-mask, all cores CLOS 0).
    pub fn reset(&mut self) {
        let full = crate::cache::Cache::low_ways_mask(self.llc_ways as usize);
        self.masks.fill(full);
        self.assoc.fill(0);
    }
}

/// Marker trait bundle documenting the MSR surface [`crate::System`]
/// exposes; see `System::write_msr` / `System::read_msr`.
pub struct Msr;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguity_checker() {
        assert!(mask_is_contiguous(0b1));
        assert!(mask_is_contiguous(0b1110));
        assert!(mask_is_contiguous(u64::MAX));
        assert!(!mask_is_contiguous(0));
        assert!(!mask_is_contiguous(0b101));
        assert!(!mask_is_contiguous(0b1100_0011));
    }

    #[test]
    fn contiguous_mask_builder() {
        assert_eq!(contiguous_mask(0, 2), 0b11);
        assert_eq!(contiguous_mask(3, 4), 0b111_1000);
        assert_eq!(contiguous_mask(0, 64), u64::MAX);
    }

    #[test]
    fn power_on_state_is_full_and_clos0() {
        let cat = CatState::new(4, 20, &crate::config::Topology::single(8));
        assert_eq!(cat.mask_for_core(7), (1 << 20) - 1);
        assert_eq!(cat.assoc(3), 0);
    }

    #[test]
    fn invalid_masks_rejected() {
        let mut cat = CatState::new(4, 20, &crate::config::Topology::single(8));
        assert_eq!(cat.set_mask(0, 0), Err(CatError::EmptyMask));
        assert_eq!(cat.set_mask(0, 0b101), Err(CatError::NonContiguousMask(0b101)));
        assert_eq!(cat.set_mask(0, 1 << 20), Err(CatError::MaskTooWide(1 << 20)));
        assert_eq!(cat.set_mask(9, 1), Err(CatError::BadClos(9)));
    }

    #[test]
    fn overlapping_masks_allowed() {
        let mut cat = CatState::new(4, 20, &crate::config::Topology::single(8));
        cat.set_mask(0, contiguous_mask(0, 20)).unwrap();
        cat.set_mask(1, contiguous_mask(0, 3)).unwrap();
        cat.set_assoc(5, 1).unwrap();
        assert_eq!(cat.mask_for_core(5), 0b111);
        assert_eq!(cat.mask_for_core(0), (1 << 20) - 1);
    }

    #[test]
    fn assoc_validation() {
        let mut cat = CatState::new(4, 20, &crate::config::Topology::single(8));
        assert_eq!(cat.set_assoc(8, 0), Err(CatError::BadCore(8)));
        assert_eq!(cat.set_assoc(0, 4), Err(CatError::BadClos(4)));
    }

    #[test]
    fn reset_restores_power_on() {
        let mut cat = CatState::new(4, 20, &crate::config::Topology::single(8));
        cat.set_mask(1, 0b11).unwrap();
        cat.set_assoc(2, 1).unwrap();
        cat.reset();
        assert_eq!(cat.mask_for_core(2), (1 << 20) - 1);
        assert_eq!(cat.assoc(2), 0);
    }

    #[test]
    fn mba_levels_are_deciles_up_to_ninety() {
        for ok in [0, 10, 50, 90] {
            assert!(mba_level_valid(ok), "{ok}");
        }
        for bad in [5, 15, 91, 100, u64::MAX] {
            assert!(!mba_level_valid(bad), "{bad}");
        }
    }

    #[test]
    fn errors_display() {
        let e = CatError::NonContiguousMask(0b101);
        assert!(e.to_string().contains("non-contiguous"));
    }
}
