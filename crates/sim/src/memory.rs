//! Bandwidth-limited memory controller with a banked row-buffer model.
//!
//! A single-server queueing model of the DRAM channel group: every 64-byte
//! transfer occupies the channel, so queueing delay emerges naturally once
//! aggregate traffic approaches peak bandwidth — the memory-bandwidth
//! contention at the heart of the paper's motivation (Fig. 1).
//!
//! Channel occupancy depends on row-buffer locality: a request to the row
//! most recently opened in its bank costs `64 / bytes_per_cycle` cycles
//! (peak bandwidth), while a row miss costs
//! [`MemoryConfig::row_miss_service`] cycles. Sequential streams keep
//! their rows open and run at peak; random traffic — including the useless
//! line floods of a confused streamer prefetcher — pays the random-access
//! efficiency cliff of real DDR4. This is what makes prefetch-unfriendly
//! applications measurably *slower* with prefetching on, as the paper's
//! "Rand Access" micro-benchmark is.
//!
//! Prefetch requests are dropped once the queue is deeper than
//! [`MemoryConfig::prefetch_drop_depth`], mirroring how real controllers
//! deprioritise speculative traffic under load.

use crate::config::MemoryConfig;

/// Per-core traffic accounting (used for Fig. 1 / Fig. 14 bandwidth plots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemTraffic {
    /// Bytes moved for demand fills.
    pub demand_bytes: u64,
    /// Bytes moved for prefetch fills.
    pub prefetch_bytes: u64,
    /// Bytes moved for dirty writebacks.
    pub writeback_bytes: u64,
}

impl CoreMemTraffic {
    /// All bytes this core moved through the memory controller.
    pub fn total_bytes(&self) -> u64 {
        self.demand_bytes + self.prefetch_bytes + self.writeback_bytes
    }
}

/// Fixed-point scale for sub-cycle channel occupancy.
const SCALE: u64 = 1024;
const LINE_BYTES: u64 = 64;
/// DRAM row size in bytes (2 KiB row buffers, as on DDR4 x8 parts).
const ROW_BYTES: u64 = 2048;

/// The shared memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemoryConfig,
    /// Cycle (scaled by `SCALE`) at which the channel next becomes free.
    next_free_scaled: u64,
    /// Channel occupancy of a row hit, in `SCALE`ths of a cycle.
    hit_service_scaled: u64,
    /// Channel occupancy of a row miss, in `SCALE`ths of a cycle.
    miss_service_scaled: u64,
    /// Open row per bank.
    open_rows: Vec<u64>,
    bank_mask: u64,
    /// Per-core traffic counters.
    traffic: Vec<CoreMemTraffic>,
    /// Per-core MBA throttle level (percent, 0/10/…/90), programmed via
    /// `MSR_MBA_THROTTLE`. Indexed by global core id like `traffic`.
    mba_level: Vec<u64>,
    /// Per-core earliest next admission (scaled cycles) under the MBA
    /// rate limiter. Only consulted/advanced while the core's level is
    /// non-zero, so all-zero programming leaves the channel model — and
    /// every existing byte surface — untouched.
    mba_next_ok_scaled: Vec<u64>,
    /// Requests the MBA limiter held back past their issue cycle
    /// (diagnostics; the PMU-visible effect is the added fill latency).
    pub mba_deferrals: u64,
    /// Total prefetch requests dropped due to queue pressure.
    pub prefetches_dropped: u64,
    /// Row-buffer hits and misses (diagnostics).
    pub row_hits: u64,
    /// See [`MemoryController::row_hits`].
    pub row_misses: u64,
}

impl MemoryController {
    /// Creates a controller serving the machine described by `topo`.
    ///
    /// Traffic is always accounted by *global* core id
    /// ([`Topology::total_cores`](crate::config::Topology::total_cores)
    /// slots), whether the instance is the machine-wide shared channel or
    /// one socket's private channel — per-socket instances simply leave
    /// remote cores' counters at zero. Taking the topology instead of a
    /// bare core count makes a socket/core-count swap a type error.
    pub fn new(cfg: MemoryConfig, topo: &crate::config::Topology) -> Self {
        let num_cores = topo.total_cores();
        assert!(cfg.bytes_per_cycle > 0.0);
        assert!(cfg.banks.is_power_of_two(), "bank count must be a power of two");
        let hit_service_scaled =
            (((LINE_BYTES as f64 / cfg.bytes_per_cycle) * SCALE as f64) as u64).max(1);
        let miss_service_scaled = (cfg.row_miss_service * SCALE).max(hit_service_scaled);
        MemoryController {
            next_free_scaled: 0,
            hit_service_scaled,
            miss_service_scaled,
            open_rows: vec![u64::MAX; cfg.banks],
            bank_mask: cfg.banks as u64 - 1,
            traffic: vec![CoreMemTraffic::default(); num_cores],
            mba_level: vec![0; num_cores],
            mba_next_ok_scaled: vec![0; num_cores],
            mba_deferrals: 0,
            prefetches_dropped: 0,
            row_hits: 0,
            row_misses: 0,
            cfg,
        }
    }

    /// Current queue depth in requests, as seen at cycle `now`
    /// (approximated with the row-hit service time).
    pub fn queue_depth(&self, now: u64) -> usize {
        let now_scaled = now * SCALE;
        if self.next_free_scaled <= now_scaled {
            0
        } else {
            ((self.next_free_scaled - now_scaled) / self.miss_service_scaled.max(1)) as usize
        }
    }

    /// MBA admission gate: the earliest (scaled) cycle at which a request
    /// from `core` issued at `now` may *complete* under the rate limiter.
    /// At level 0 this is `now` itself and **no state is touched** — the
    /// unthrottled path is bit-identical to the pre-MBA controller. At
    /// level *t* the limiter enforces a minimum inter-request spacing of
    /// `hit_service / (1 - t/100)` — i.e. the core's admissible request
    /// rate is `(100 - t) %` of the peak row-hit rate, matching Intel
    /// MBA's "delay value ≈ bandwidth share" calibration.
    ///
    /// The gate delays only the *requester's* completion, never the
    /// channel booking: the physical transfer still runs at the channel's
    /// earliest convenience, so a throttled core cannot head-of-line-block
    /// its siblings with future reservations. Its sustained request rate
    /// drops all the same — each in-flight slot is held `spacing` cycles,
    /// so with finite MLP the core's issue rate converges to the
    /// programmed share, and the bandwidth it stops consuming is freed for
    /// the other cores through ordinary queueing.
    fn mba_gate_scaled(&mut self, now: u64, core: usize) -> u64 {
        let level = self.mba_level[core];
        let now_scaled = now * SCALE;
        if level == 0 {
            return now_scaled;
        }
        let spacing = self.hit_service_scaled * 100 / (100 - level);
        let earliest = now_scaled.max(self.mba_next_ok_scaled[core]);
        if earliest > now_scaled {
            self.mba_deferrals += 1;
        }
        self.mba_next_ok_scaled[core] = earliest + spacing;
        earliest
    }

    fn occupy_channel(&mut self, now_scaled: u64, line: u64) -> u64 {
        let row = (line * LINE_BYTES) / ROW_BYTES;
        let bank = (row & self.bank_mask) as usize;
        let service = if self.open_rows[bank] == row {
            self.row_hits += 1;
            self.hit_service_scaled
        } else {
            self.row_misses += 1;
            self.open_rows[bank] = row;
            self.miss_service_scaled
        };
        let start = self.next_free_scaled.max(now_scaled);
        self.next_free_scaled = start + service;
        start
    }

    /// Issues a demand line fill at cycle `now` for `core`.
    /// Returns the completion cycle.
    pub fn demand_fill(&mut self, now: u64, core: usize, line: u64) -> u64 {
        let earliest = self.mba_gate_scaled(now, core);
        let start = self.occupy_channel(now * SCALE, line).max(earliest);
        self.traffic[core].demand_bytes += LINE_BYTES;
        start / SCALE + self.cfg.base_latency
    }

    /// Issues a prefetch line fill at cycle `now` for `core`.
    /// Returns `None` (dropped) when the queue is saturated.
    pub fn prefetch_fill(&mut self, now: u64, core: usize, line: u64) -> Option<u64> {
        if self.queue_depth(now) >= self.cfg.prefetch_drop_depth {
            self.prefetches_dropped += 1;
            return None;
        }
        let earliest = self.mba_gate_scaled(now, core);
        let start = self.occupy_channel(now * SCALE, line).max(earliest);
        self.traffic[core].prefetch_bytes += LINE_BYTES;
        Some(start / SCALE + self.cfg.base_latency)
    }

    /// Issues a dirty writeback at cycle `now` for `core`. Writebacks
    /// consume bandwidth but nothing waits for them; they still spend one
    /// of the core's MBA admission slots — throttling meters the core's
    /// whole uncore request stream, as Intel MBA does at the L2 edge.
    pub fn writeback(&mut self, now: u64, core: usize, line: u64) {
        // Writebacks spend one of the core's admission slots (advancing
        // the limiter clock) but nothing waits for their completion.
        let _ = self.mba_gate_scaled(now, core);
        self.occupy_channel(now * SCALE, line);
        self.traffic[core].writeback_bytes += LINE_BYTES;
    }

    /// Programs `core`'s MBA throttle level (percent; validated at the
    /// MSR layer). Level 0 restores the unthrottled fast path and clears
    /// the core's admission clock so a later re-throttle starts fresh.
    pub fn set_mba_level(&mut self, core: usize, level: u64) {
        self.mba_level[core] = level;
        if level == 0 {
            self.mba_next_ok_scaled[core] = 0;
        }
    }

    /// The MBA throttle level in force for `core`.
    pub fn mba_level(&self, core: usize) -> u64 {
        self.mba_level[core]
    }

    /// Traffic counters for one core.
    pub fn traffic(&self, core: usize) -> CoreMemTraffic {
        self.traffic[core]
    }

    /// Sum of all cores' traffic.
    pub fn total_traffic(&self) -> CoreMemTraffic {
        let mut t = CoreMemTraffic::default();
        for c in &self.traffic {
            t.demand_bytes += c.demand_bytes;
            t.prefetch_bytes += c.prefetch_bytes;
            t.writeback_bytes += c.writeback_bytes;
        }
        t
    }

    /// Resets traffic counters (PMU-style snapshotting is done by deltas in
    /// the caller; this is for whole-run resets).
    pub fn reset_traffic(&mut self) {
        self.traffic.fill(CoreMemTraffic::default());
        self.prefetches_dropped = 0;
        self.mba_deferrals = 0;
        self.row_hits = 0;
        self.row_misses = 0;
    }

    /// The configured unloaded latency.
    pub fn base_latency(&self) -> u64 {
        self.cfg.base_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bpc: f64, drop: usize) -> MemoryConfig {
        MemoryConfig {
            base_latency: 100,
            bytes_per_cycle: bpc,
            row_miss_service: 8,
            banks: 8,
            prefetch_drop_depth: drop,
        }
    }

    fn ctl(bpc: f64, drop: usize) -> MemoryController {
        MemoryController::new(cfg(bpc, drop), &crate::config::Topology::single(2))
    }

    /// Lines in distinct rows of the same bank (row = 32 lines apart ×
    /// banks).
    fn conflict_line(i: u64) -> u64 {
        i * 32 * 8
    }

    #[test]
    fn unloaded_latency_is_base() {
        let mut m = ctl(32.0, 64);
        assert_eq!(m.demand_fill(1000, 0, 0), 1000 + 100);
    }

    #[test]
    fn sequential_lines_hit_the_open_row() {
        let mut m = ctl(32.0, 64);
        for i in 0..31 {
            m.demand_fill(i, 0, i);
        }
        // First access opens the row; the next 31 lines of the 2 KiB row hit.
        assert_eq!(m.row_misses, 1);
        assert_eq!(m.row_hits, 30);
    }

    #[test]
    fn random_rows_always_miss() {
        let mut m = ctl(32.0, 64);
        for i in 0..16 {
            m.demand_fill(i, 0, conflict_line(i));
        }
        assert_eq!(m.row_hits, 0);
        assert_eq!(m.row_misses, 16);
    }

    #[test]
    fn row_misses_occupy_channel_longer() {
        // Back-to-back row misses in one bank: each occupies 8 cycles.
        let mut m = ctl(32.0, 1024);
        let c1 = m.demand_fill(0, 0, conflict_line(0));
        let c2 = m.demand_fill(0, 0, conflict_line(1));
        let c3 = m.demand_fill(0, 0, conflict_line(2));
        assert_eq!(c1, 100);
        assert_eq!(c2, 108);
        assert_eq!(c3, 116);
        // Row hits are cheaper: 64 B at 32 B/cycle = 2 cycles.
        let c4 = m.demand_fill(0, 0, conflict_line(2) + 1);
        assert_eq!(c4, 124);
    }

    #[test]
    fn interleaved_streams_use_separate_banks() {
        let mut m = ctl(32.0, 64);
        // Two streams whose current rows sit in different banks: each
        // keeps its own row open. (Streams exactly 1 MiB apart would share
        // a bank phase — rows are interleaved row-number-mod-banks — so
        // offset the second stream by one row.)
        let base1 = 0u64;
        let base2 = (1 << 20) + 2048;
        for i in 0..32 {
            m.demand_fill(i, 0, base1 / 64 + i);
            m.demand_fill(i, 1, base2 / 64 + i);
        }
        assert!(m.row_hits > m.row_misses, "hits {} misses {}", m.row_hits, m.row_misses);
    }

    #[test]
    fn channel_drains_when_idle() {
        let mut m = ctl(1.0, 1024);
        m.demand_fill(0, 0, 0);
        assert_eq!(m.demand_fill(10_000, 0, 1), 10_000 + 100);
    }

    #[test]
    fn queue_depth_reflects_backlog() {
        let mut m = ctl(1.0, 1024);
        for i in 0..10 {
            m.demand_fill(0, 0, conflict_line(i));
        }
        assert!(m.queue_depth(0) >= 7);
        assert_eq!(m.queue_depth(100_000), 0);
    }

    #[test]
    fn prefetches_dropped_when_saturated() {
        let mut m = ctl(1.0, 2);
        for i in 0..10 {
            m.demand_fill(0, 0, conflict_line(i));
        }
        assert!(m.prefetch_fill(0, 0, 999).is_none());
        assert_eq!(m.prefetches_dropped, 1);
        assert!(m.prefetch_fill(100_000, 0, 999).is_some());
    }

    #[test]
    fn traffic_attributed_per_core() {
        let mut m = ctl(32.0, 64);
        m.demand_fill(0, 0, 0);
        m.prefetch_fill(0, 1, 1);
        m.writeback(0, 1, 2);
        assert_eq!(m.traffic(0).demand_bytes, 64);
        assert_eq!(m.traffic(1).prefetch_bytes, 64);
        assert_eq!(m.traffic(1).writeback_bytes, 64);
        assert_eq!(m.total_traffic().total_bytes(), 192);
    }

    #[test]
    fn reset_clears_counters() {
        let mut m = ctl(32.0, 64);
        m.demand_fill(0, 0, 0);
        m.reset_traffic();
        assert_eq!(m.total_traffic().total_bytes(), 0);
        assert_eq!(m.row_misses, 0);
    }

    #[test]
    fn mba_level_zero_is_the_identity() {
        // The same request sequence through a throttled-then-unthrottled
        // controller and a never-touched one must complete identically:
        // level 0 may not leave residue in the channel model.
        let mut a = ctl(32.0, 64);
        let mut b = ctl(32.0, 64);
        b.set_mba_level(0, 90);
        b.set_mba_level(0, 0);
        for i in 0..32 {
            assert_eq!(a.demand_fill(i, 0, i), b.demand_fill(i, 0, i));
        }
        assert_eq!(a.mba_deferrals, 0);
        assert_eq!(b.mba_deferrals, 0);
    }

    #[test]
    fn mba_throttle_defers_back_to_back_fills() {
        let mut m = ctl(32.0, 64);
        m.set_mba_level(0, 80);
        // hit_service = 2 cycles; at 80 % throttle the spacing is 10.
        let c1 = m.demand_fill(0, 0, 0);
        let c2 = m.demand_fill(0, 0, 1);
        assert_eq!(c1, 100);
        assert_eq!(c2, 110, "second fill must wait out the MBA spacing");
        assert_eq!(m.mba_deferrals, 1);
    }

    #[test]
    fn mba_completion_latency_is_monotone_in_level() {
        let mut last = 0;
        for level in [0u64, 10, 40, 80, 90] {
            let mut m = ctl(32.0, 64);
            m.set_mba_level(0, level);
            let mut done = 0;
            for i in 0..64 {
                done = m.demand_fill(0, 0, i);
            }
            assert!(done >= last, "completion at level {level} ({done}) regressed below {last}");
            last = done;
        }
    }

    #[test]
    fn mba_throttles_only_the_programmed_core() {
        let mut m = ctl(32.0, 64);
        m.set_mba_level(1, 90);
        // Core 0 (unthrottled) at a quiet controller still sees base
        // latency even while core 1 is being metered.
        m.demand_fill(0, 1, conflict_line(0));
        assert_eq!(m.demand_fill(1000, 0, 0), 1000 + 100);
        assert_eq!(m.mba_level(0), 0);
        assert_eq!(m.mba_level(1), 90);
    }

    #[test]
    fn deferred_booking_does_not_head_of_line_block_siblings() {
        // Core 1's throttled fill completes far in the future, but the
        // limiter only stalls the requester — it never reserves channel
        // time ahead, so core 0's fill must complete exactly as on an
        // un-throttled controller.
        let mut gated = ctl(32.0, 64);
        gated.set_mba_level(1, 90);
        let mut free = ctl(32.0, 64);
        for m in [&mut gated, &mut free] {
            m.demand_fill(0, 1, conflict_line(0));
            m.demand_fill(8, 1, conflict_line(1)); // gated: deferred to ~20
        }
        assert_eq!(gated.mba_deferrals, 1);
        let g = gated.demand_fill(9, 0, conflict_line(2));
        let f = free.demand_fill(9, 0, conflict_line(2));
        assert!(g <= f, "backfilled fill ({g}) must not trail the free channel ({f})");
    }

    #[test]
    fn reset_traffic_keeps_mba_programming() {
        let mut m = ctl(32.0, 64);
        m.set_mba_level(0, 40);
        m.demand_fill(0, 0, 0);
        m.demand_fill(0, 0, 1);
        assert!(m.mba_deferrals > 0);
        m.reset_traffic();
        assert_eq!(m.mba_deferrals, 0, "deferral counter is a traffic counter");
        assert_eq!(m.mba_level(0), 40, "throttle programming is control state");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bank_count_validated() {
        let mut c = cfg(32.0, 64);
        c.banks = 3;
        MemoryController::new(c, &crate::config::Topology::single(1));
    }
}
