//! Bandwidth-limited memory controller with a banked row-buffer model.
//!
//! A single-server queueing model of the DRAM channel group: every 64-byte
//! transfer occupies the channel, so queueing delay emerges naturally once
//! aggregate traffic approaches peak bandwidth — the memory-bandwidth
//! contention at the heart of the paper's motivation (Fig. 1).
//!
//! Channel occupancy depends on row-buffer locality: a request to the row
//! most recently opened in its bank costs `64 / bytes_per_cycle` cycles
//! (peak bandwidth), while a row miss costs
//! [`MemoryConfig::row_miss_service`] cycles. Sequential streams keep
//! their rows open and run at peak; random traffic — including the useless
//! line floods of a confused streamer prefetcher — pays the random-access
//! efficiency cliff of real DDR4. This is what makes prefetch-unfriendly
//! applications measurably *slower* with prefetching on, as the paper's
//! "Rand Access" micro-benchmark is.
//!
//! Prefetch requests are dropped once the queue is deeper than
//! [`MemoryConfig::prefetch_drop_depth`], mirroring how real controllers
//! deprioritise speculative traffic under load.

use crate::config::MemoryConfig;

/// Per-core traffic accounting (used for Fig. 1 / Fig. 14 bandwidth plots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemTraffic {
    /// Bytes moved for demand fills.
    pub demand_bytes: u64,
    /// Bytes moved for prefetch fills.
    pub prefetch_bytes: u64,
    /// Bytes moved for dirty writebacks.
    pub writeback_bytes: u64,
}

impl CoreMemTraffic {
    /// All bytes this core moved through the memory controller.
    pub fn total_bytes(&self) -> u64 {
        self.demand_bytes + self.prefetch_bytes + self.writeback_bytes
    }
}

/// Fixed-point scale for sub-cycle channel occupancy.
const SCALE: u64 = 1024;
const LINE_BYTES: u64 = 64;
/// DRAM row size in bytes (2 KiB row buffers, as on DDR4 x8 parts).
const ROW_BYTES: u64 = 2048;

/// The shared memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemoryConfig,
    /// Cycle (scaled by `SCALE`) at which the channel next becomes free.
    next_free_scaled: u64,
    /// Channel occupancy of a row hit, in `SCALE`ths of a cycle.
    hit_service_scaled: u64,
    /// Channel occupancy of a row miss, in `SCALE`ths of a cycle.
    miss_service_scaled: u64,
    /// Open row per bank.
    open_rows: Vec<u64>,
    bank_mask: u64,
    /// Per-core traffic counters.
    traffic: Vec<CoreMemTraffic>,
    /// Total prefetch requests dropped due to queue pressure.
    pub prefetches_dropped: u64,
    /// Row-buffer hits and misses (diagnostics).
    pub row_hits: u64,
    /// See [`MemoryController::row_hits`].
    pub row_misses: u64,
}

impl MemoryController {
    /// Creates a controller serving the machine described by `topo`.
    ///
    /// Traffic is always accounted by *global* core id
    /// ([`Topology::total_cores`](crate::config::Topology::total_cores)
    /// slots), whether the instance is the machine-wide shared channel or
    /// one socket's private channel — per-socket instances simply leave
    /// remote cores' counters at zero. Taking the topology instead of a
    /// bare core count makes a socket/core-count swap a type error.
    pub fn new(cfg: MemoryConfig, topo: &crate::config::Topology) -> Self {
        let num_cores = topo.total_cores();
        assert!(cfg.bytes_per_cycle > 0.0);
        assert!(cfg.banks.is_power_of_two(), "bank count must be a power of two");
        let hit_service_scaled =
            (((LINE_BYTES as f64 / cfg.bytes_per_cycle) * SCALE as f64) as u64).max(1);
        let miss_service_scaled = (cfg.row_miss_service * SCALE).max(hit_service_scaled);
        MemoryController {
            next_free_scaled: 0,
            hit_service_scaled,
            miss_service_scaled,
            open_rows: vec![u64::MAX; cfg.banks],
            bank_mask: cfg.banks as u64 - 1,
            traffic: vec![CoreMemTraffic::default(); num_cores],
            prefetches_dropped: 0,
            row_hits: 0,
            row_misses: 0,
            cfg,
        }
    }

    /// Current queue depth in requests, as seen at cycle `now`
    /// (approximated with the row-hit service time).
    pub fn queue_depth(&self, now: u64) -> usize {
        let now_scaled = now * SCALE;
        if self.next_free_scaled <= now_scaled {
            0
        } else {
            ((self.next_free_scaled - now_scaled) / self.miss_service_scaled.max(1)) as usize
        }
    }

    fn occupy_channel(&mut self, now: u64, line: u64) -> u64 {
        let row = (line * LINE_BYTES) / ROW_BYTES;
        let bank = (row & self.bank_mask) as usize;
        let service = if self.open_rows[bank] == row {
            self.row_hits += 1;
            self.hit_service_scaled
        } else {
            self.row_misses += 1;
            self.open_rows[bank] = row;
            self.miss_service_scaled
        };
        let start = self.next_free_scaled.max(now * SCALE);
        self.next_free_scaled = start + service;
        start
    }

    /// Issues a demand line fill at cycle `now` for `core`.
    /// Returns the completion cycle.
    pub fn demand_fill(&mut self, now: u64, core: usize, line: u64) -> u64 {
        let start = self.occupy_channel(now, line);
        self.traffic[core].demand_bytes += LINE_BYTES;
        start / SCALE + self.cfg.base_latency
    }

    /// Issues a prefetch line fill at cycle `now` for `core`.
    /// Returns `None` (dropped) when the queue is saturated.
    pub fn prefetch_fill(&mut self, now: u64, core: usize, line: u64) -> Option<u64> {
        if self.queue_depth(now) >= self.cfg.prefetch_drop_depth {
            self.prefetches_dropped += 1;
            return None;
        }
        let start = self.occupy_channel(now, line);
        self.traffic[core].prefetch_bytes += LINE_BYTES;
        Some(start / SCALE + self.cfg.base_latency)
    }

    /// Issues a dirty writeback at cycle `now` for `core`. Writebacks
    /// consume bandwidth but nothing waits for them.
    pub fn writeback(&mut self, now: u64, core: usize, line: u64) {
        self.occupy_channel(now, line);
        self.traffic[core].writeback_bytes += LINE_BYTES;
    }

    /// Traffic counters for one core.
    pub fn traffic(&self, core: usize) -> CoreMemTraffic {
        self.traffic[core]
    }

    /// Sum of all cores' traffic.
    pub fn total_traffic(&self) -> CoreMemTraffic {
        let mut t = CoreMemTraffic::default();
        for c in &self.traffic {
            t.demand_bytes += c.demand_bytes;
            t.prefetch_bytes += c.prefetch_bytes;
            t.writeback_bytes += c.writeback_bytes;
        }
        t
    }

    /// Resets traffic counters (PMU-style snapshotting is done by deltas in
    /// the caller; this is for whole-run resets).
    pub fn reset_traffic(&mut self) {
        self.traffic.fill(CoreMemTraffic::default());
        self.prefetches_dropped = 0;
        self.row_hits = 0;
        self.row_misses = 0;
    }

    /// The configured unloaded latency.
    pub fn base_latency(&self) -> u64 {
        self.cfg.base_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bpc: f64, drop: usize) -> MemoryConfig {
        MemoryConfig {
            base_latency: 100,
            bytes_per_cycle: bpc,
            row_miss_service: 8,
            banks: 8,
            prefetch_drop_depth: drop,
        }
    }

    fn ctl(bpc: f64, drop: usize) -> MemoryController {
        MemoryController::new(cfg(bpc, drop), &crate::config::Topology::single(2))
    }

    /// Lines in distinct rows of the same bank (row = 32 lines apart ×
    /// banks).
    fn conflict_line(i: u64) -> u64 {
        i * 32 * 8
    }

    #[test]
    fn unloaded_latency_is_base() {
        let mut m = ctl(32.0, 64);
        assert_eq!(m.demand_fill(1000, 0, 0), 1000 + 100);
    }

    #[test]
    fn sequential_lines_hit_the_open_row() {
        let mut m = ctl(32.0, 64);
        for i in 0..31 {
            m.demand_fill(i, 0, i);
        }
        // First access opens the row; the next 31 lines of the 2 KiB row hit.
        assert_eq!(m.row_misses, 1);
        assert_eq!(m.row_hits, 30);
    }

    #[test]
    fn random_rows_always_miss() {
        let mut m = ctl(32.0, 64);
        for i in 0..16 {
            m.demand_fill(i, 0, conflict_line(i));
        }
        assert_eq!(m.row_hits, 0);
        assert_eq!(m.row_misses, 16);
    }

    #[test]
    fn row_misses_occupy_channel_longer() {
        // Back-to-back row misses in one bank: each occupies 8 cycles.
        let mut m = ctl(32.0, 1024);
        let c1 = m.demand_fill(0, 0, conflict_line(0));
        let c2 = m.demand_fill(0, 0, conflict_line(1));
        let c3 = m.demand_fill(0, 0, conflict_line(2));
        assert_eq!(c1, 100);
        assert_eq!(c2, 108);
        assert_eq!(c3, 116);
        // Row hits are cheaper: 64 B at 32 B/cycle = 2 cycles.
        let c4 = m.demand_fill(0, 0, conflict_line(2) + 1);
        assert_eq!(c4, 124);
    }

    #[test]
    fn interleaved_streams_use_separate_banks() {
        let mut m = ctl(32.0, 64);
        // Two streams whose current rows sit in different banks: each
        // keeps its own row open. (Streams exactly 1 MiB apart would share
        // a bank phase — rows are interleaved row-number-mod-banks — so
        // offset the second stream by one row.)
        let base1 = 0u64;
        let base2 = (1 << 20) + 2048;
        for i in 0..32 {
            m.demand_fill(i, 0, base1 / 64 + i);
            m.demand_fill(i, 1, base2 / 64 + i);
        }
        assert!(m.row_hits > m.row_misses, "hits {} misses {}", m.row_hits, m.row_misses);
    }

    #[test]
    fn channel_drains_when_idle() {
        let mut m = ctl(1.0, 1024);
        m.demand_fill(0, 0, 0);
        assert_eq!(m.demand_fill(10_000, 0, 1), 10_000 + 100);
    }

    #[test]
    fn queue_depth_reflects_backlog() {
        let mut m = ctl(1.0, 1024);
        for i in 0..10 {
            m.demand_fill(0, 0, conflict_line(i));
        }
        assert!(m.queue_depth(0) >= 7);
        assert_eq!(m.queue_depth(100_000), 0);
    }

    #[test]
    fn prefetches_dropped_when_saturated() {
        let mut m = ctl(1.0, 2);
        for i in 0..10 {
            m.demand_fill(0, 0, conflict_line(i));
        }
        assert!(m.prefetch_fill(0, 0, 999).is_none());
        assert_eq!(m.prefetches_dropped, 1);
        assert!(m.prefetch_fill(100_000, 0, 999).is_some());
    }

    #[test]
    fn traffic_attributed_per_core() {
        let mut m = ctl(32.0, 64);
        m.demand_fill(0, 0, 0);
        m.prefetch_fill(0, 1, 1);
        m.writeback(0, 1, 2);
        assert_eq!(m.traffic(0).demand_bytes, 64);
        assert_eq!(m.traffic(1).prefetch_bytes, 64);
        assert_eq!(m.traffic(1).writeback_bytes, 64);
        assert_eq!(m.total_traffic().total_bytes(), 192);
    }

    #[test]
    fn reset_clears_counters() {
        let mut m = ctl(32.0, 64);
        m.demand_fill(0, 0, 0);
        m.reset_traffic();
        assert_eq!(m.total_traffic().total_bytes(), 0);
        assert_eq!(m.row_misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bank_count_validated() {
        let mut c = cfg(32.0, 64);
        c.banks = 3;
        MemoryController::new(c, &crate::config::Topology::single(1));
    }
}
