//! # cmm-sim — a multicore cache/prefetcher/memory simulator with PMU, MSR and CAT emulation
//!
//! This crate is the *machine substrate* for the CMM reproduction
//! (Sun, Shen, Veidenbaum, *Combining Prefetch Control and Cache
//! Partitioning to Improve Multicore Performance*, IPDPS 2019).
//!
//! The paper's controller runs on a real Intel Broadwell-EP Xeon and only
//! interacts with the machine through three narrow interfaces:
//!
//! 1. **PMU counters** (read): `L2_PF_REQ`, `L2_PF_MISS`, `L2_DM_REQ`,
//!    `L2_DM_MISS`, `L3_LOAD_MISS`, `CYCLE_ACTIVITY.STALLS_L2_PENDING`,
//!    cycles and instructions — see [`pmu`].
//! 2. **Prefetcher enable bits** (write): MSR `0x1A4`
//!    (`MSR_MISC_FEATURE_CONTROL`) — see [`msr`].
//! 3. **Cache Allocation Technology** (write): `IA32_L3_QOS_MASK_n` and
//!    `IA32_PQR_ASSOC` way-mask partitioning of the shared LLC — see
//!    [`msr`] and [`cache`].
//!
//! `cmm-sim` provides a machine exposing exactly those interfaces:
//!
//! * per-core private L1D and L2 set-associative caches and a shared,
//!   inclusive, way-partitionable LLC ([`cache`]);
//! * the four per-core hardware data prefetchers of an Intel server core —
//!   L1 next-line (DCU), L1 IP-stride, L2 streamer, L2 adjacent-line
//!   ([`prefetch`]);
//! * a bandwidth-limited memory controller with utilisation-dependent
//!   queueing ([`memory`]);
//! * a simple out-of-order-approximating core model with bounded
//!   memory-level parallelism ([`core_model`]);
//! * the glue that steps all of it in loosely synchronised quanta
//!   ([`system`]).
//!
//! The simulator is *cycle-approximate*, not cycle-accurate: it is built so
//! that the **relative** behaviour the paper's mechanisms depend on —
//! prefetch-generated LLC/memory pressure, way-sensitivity of working sets,
//! inclusive-LLC back-invalidation, bandwidth contention — is faithfully
//! present, while absolute IPC numbers are not calibrated to any silicon.
//!
//! ## Quick example
//!
//! ```
//! use cmm_sim::prelude::*;
//!
//! /// A workload that streams sequentially through 1 MiB.
//! struct Stream { pos: u64 }
//! impl Workload for Stream {
//!     fn next(&mut self) -> Op {
//!         self.pos = (self.pos + 8) % (1 << 20);
//!         Op::Load { addr: self.pos, pc: 0x400000 }
//!     }
//!     fn mlp(&self) -> u32 { 4 }
//!     fn reset(&mut self) { self.pos = 0; }
//!     fn name(&self) -> &str { "stream" }
//! }
//!
//! let cfg = SystemConfig::scaled(2);
//! let mut sys = System::new(cfg, vec![Box::new(Stream { pos: 0 }), Box::new(Stream { pos: 0 })]);
//! sys.run(100_000);
//! let pmu = sys.pmu(0);
//! assert!(pmu.instructions > 0);
//! ```

pub mod addr;
pub mod cache;
pub mod config;
pub mod core_model;
pub mod memory;
pub mod msr;
pub mod pmu;
pub mod prefetch;
pub mod presence;
pub mod system;
pub mod trace;
pub mod workload;

/// Convenient glob-import of the types most users need.
pub mod prelude {
    pub use crate::addr::{line_of, CACHE_LINE_BYTES, LINE_SHIFT};
    pub use crate::config::{CacheGeometry, CoreConfig, MemoryConfig, SystemConfig};
    pub use crate::msr::{Msr, IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MISC_FEATURE_CONTROL};
    pub use crate::pmu::{Pmu, PmuDelta};
    pub use crate::prefetch::PrefetcherKind;
    pub use crate::system::{CoreControl, System};
    pub use crate::workload::{Op, Workload};
}

pub use config::SystemConfig;
pub use system::{System, SystemSnapshot};
pub use workload::{Op, Workload};
