//! Address-trace recording and replay.
//!
//! Downstream users of a simulator substrate usually want to (a) capture
//! the access stream a synthetic generator produced and (b) replay a trace
//! captured elsewhere (e.g. converted from a `pin`/DynamoRIO tool) through
//! the machine. [`Recorder`] wraps any [`Workload`] and logs its
//! operations; [`TraceWorkload`] replays a recorded [`Trace`] in a loop
//! (matching the evaluation's restart-on-finish methodology). Traces have
//! a line-oriented text form for interchange.

use crate::workload::{Op, Workload};

/// A recorded operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Serialises to the text form: one op per line,
    /// `C <cycles>` / `L <addr> <pc>` / `S <addr> <pc>` (hex addresses).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 16);
        for op in &self.ops {
            match *op {
                Op::Compute { cycles } => out.push_str(&format!("C {cycles}\n")),
                Op::Load { addr, pc } => out.push_str(&format!("L {addr:x} {pc:x}\n")),
                Op::Store { addr, pc } => out.push_str(&format!("S {addr:x} {pc:x}\n")),
            }
        }
        out
    }

    /// Parses the text form produced by [`Trace::to_text`]. Blank lines and
    /// `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<Trace, TraceParseError> {
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().ok_or(TraceParseError { line: lineno + 1 })?;
            let op = match kind {
                "C" => {
                    let cycles = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(TraceParseError { line: lineno + 1 })?;
                    Op::Compute { cycles }
                }
                "L" | "S" => {
                    let addr = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or(TraceParseError { line: lineno + 1 })?;
                    let pc = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or(TraceParseError { line: lineno + 1 })?;
                    if kind == "L" {
                        Op::Load { addr, pc }
                    } else {
                        Op::Store { addr, pc }
                    }
                }
                _ => return Err(TraceParseError { line: lineno + 1 }),
            };
            if parts.next().is_some() {
                return Err(TraceParseError { line: lineno + 1 });
            }
            ops.push(op);
        }
        Ok(Trace { ops })
    }
}

/// Parse failure with the 1-based offending line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace at line {}", self.line)
    }
}

impl std::error::Error for TraceParseError {}

/// Wraps a workload, recording every operation it emits.
pub struct Recorder<W> {
    inner: W,
    trace: Trace,
    limit: usize,
}

impl<W: Workload> Recorder<W> {
    /// Records up to `limit` operations (the stream is infinite).
    pub fn new(inner: W, limit: usize) -> Self {
        Recorder { inner, trace: Trace::new(), limit }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Stops recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<W: Workload> Workload for Recorder<W> {
    fn next(&mut self) -> Op {
        let op = self.inner.next();
        if self.trace.len() < self.limit {
            self.trace.push(op);
        }
        op
    }

    fn mlp(&self) -> u32 {
        self.inner.mlp()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Replays a [`Trace`] in an endless loop (restart-on-finish, as the
/// paper's methodology restarts completed benchmarks).
pub struct TraceWorkload {
    name: String,
    trace: Trace,
    pos: usize,
    mlp: u32,
}

impl TraceWorkload {
    /// Builds a replayer. `mlp` declares the trace's exploitable
    /// memory-level parallelism (a recorded trace cannot carry it).
    ///
    /// # Panics
    /// If the trace is empty.
    pub fn new(name: impl Into<String>, trace: Trace, mlp: u32) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceWorkload { name: name.into(), trace, pos: 0, mlp }
    }
}

impl Workload for TraceWorkload {
    fn next(&mut self) -> Op {
        let op = self.trace.ops[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        op
    }

    fn mlp(&self) -> u32 {
        self.mlp
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Idle;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Op::Load { addr: 0x1000, pc: 0x400 });
        t.push(Op::Compute { cycles: 3 });
        t.push(Op::Store { addr: 0x2040, pc: 0x404 });
        t
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn parser_accepts_comments_and_blanks() {
        let t = Trace::from_text("# header\n\nL 10 4\nC 2\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0], Op::Load { addr: 0x10, pc: 0x4 });
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(Trace::from_text("X 1 2").unwrap_err().line, 1);
        assert_eq!(Trace::from_text("L 10 4\nL zz 4").unwrap_err().line, 2);
        assert_eq!(Trace::from_text("C").unwrap_err().line, 1);
        assert_eq!(Trace::from_text("L 10 4 extra").unwrap_err().line, 1);
    }

    #[test]
    fn recorder_captures_up_to_limit() {
        let mut r = Recorder::new(Idle, 5);
        for _ in 0..10 {
            r.next();
        }
        assert_eq!(r.trace().len(), 5);
        assert_eq!(r.name(), "idle");
    }

    #[test]
    fn replay_loops_and_resets() {
        let mut w = TraceWorkload::new("replay", sample_trace(), 4);
        let first: Vec<Op> = (0..3).map(|_| w.next()).collect();
        let second: Vec<Op> = (0..3).map(|_| w.next()).collect();
        assert_eq!(first, second, "replay must loop");
        w.next();
        w.reset();
        assert_eq!(w.next(), first[0]);
        assert_eq!(w.mlp(), 4);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        TraceWorkload::new("x", Trace::new(), 1);
    }

    #[test]
    fn recorded_synthetic_replays_identically_through_the_machine() {
        use crate::config::SystemConfig;
        use crate::system::System;

        // Record a short window of an idle-ish workload, then verify the
        // machine sees identical PMU behaviour from the replay.
        struct Seq(u64);
        impl Workload for Seq {
            fn next(&mut self) -> Op {
                self.0 += 8;
                Op::Load { addr: self.0 % (1 << 16), pc: 0x400 }
            }
            fn mlp(&self) -> u32 {
                4
            }
            fn reset(&mut self) {
                self.0 = 0;
            }
            fn name(&self) -> &str {
                "seq"
            }
        }

        let mut rec = Recorder::new(Seq(0), 100_000);
        let mut direct = Vec::new();
        for _ in 0..50_000 {
            direct.push(rec.next());
        }
        let trace = rec.into_trace();

        let run = |w: Box<dyn Workload + Send>| {
            let mut sys = System::new(SystemConfig::tiny(1), vec![w]);
            sys.run(30_000);
            sys.pmu(0)
        };
        let a = run(Box::new(Seq(0)));
        let b = run(Box::new(TraceWorkload::new("seq-replay", trace, 4)));
        assert_eq!(a.l1d_accesses, b.l1d_accesses);
        assert_eq!(a.l2_dm_req, b.l2_dm_req);
        assert_eq!(a.instructions, b.instructions);
    }
}
