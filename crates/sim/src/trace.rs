//! Address-trace recording and replay (re-exported from `cmm-trace`).
//!
//! [`Recorder`] wraps any [`Workload`] and logs its operations;
//! [`TraceWorkload`] replays a recorded [`Trace`] in a loop (matching the
//! evaluation's restart-on-finish methodology). Traces have a
//! line-oriented text form and a compact `cmm-trace/1` binary form; the
//! single parser/codec implementation lives in the `cmm-trace` crate —
//! this module keeps the historical `cmm_sim::trace` paths working.

pub use cmm_trace::{Recorder, Trace, TraceError, TraceReader, TraceWorkload};

/// Historical name for the parse-failure error. Since the shared parser
/// moved to `cmm-trace`, parse failures are one variant of the richer
/// [`TraceError`]; use [`TraceError::line`] to recover the offending line.
pub use cmm_trace::TraceError as TraceParseError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Op, Workload};

    /// The compatibility surface downstream code relied on: parser with
    /// line numbers, `std::error::Error`, recording, looping replay.
    #[test]
    fn reexports_preserve_parser_contract() {
        let t = Trace::from_text("# header\n\nL 10 4\nC 2\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0], Op::Load { addr: 0x10, pc: 0x4 });
        let err: TraceParseError = Trace::from_text("L 10 4\nL zz 4").unwrap_err();
        assert_eq!(err.line(), Some(2));
        let _dyn_err: &dyn std::error::Error = &err;
    }

    #[test]
    fn recorded_synthetic_replays_identically_through_the_machine() {
        use crate::config::SystemConfig;
        use crate::system::System;

        // Record a short window of a strided workload, then verify the
        // machine sees identical PMU behaviour from the replay.
        struct Seq(u64);
        impl Workload for Seq {
            fn next(&mut self) -> Op {
                self.0 += 8;
                Op::Load { addr: self.0 % (1 << 16), pc: 0x400 }
            }
            fn mlp(&self) -> u32 {
                4
            }
            fn reset(&mut self) {
                self.0 = 0;
            }
            fn name(&self) -> &str {
                "seq"
            }
        }

        let mut rec = Recorder::new(Seq(0), 100_000);
        let mut direct = Vec::new();
        for _ in 0..50_000 {
            direct.push(rec.next());
        }
        let trace = rec.into_trace();

        let run = |w: Box<dyn Workload + Send>| {
            let mut sys = System::new(SystemConfig::tiny(1), vec![w]);
            sys.run(30_000);
            sys.pmu(0)
        };
        let a = run(Box::new(Seq(0)));
        let b = run(Box::new(TraceWorkload::with_mlp("seq-replay", trace, 4)));
        assert_eq!(a.l1d_accesses, b.l1d_accesses);
        assert_eq!(a.l2_dm_req, b.l2_dm_req);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn binary_form_replays_like_the_text_form() {
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.push(Op::Load { addr: 0x1000 + i * 64, pc: 0x400 });
            t.push(Op::Compute { cycles: 2 });
        }
        let via_bin = Trace::from_binary(&t.to_binary()).unwrap();
        let via_text = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(via_bin, via_text);
    }
}
