//! Per-core execution model.
//!
//! Each [`Core`] owns its private L1D and L2, its prefetcher [`Battery`],
//! an MSHR file of in-flight prefetch fills, and a bounded
//! *memory-level-parallelism window* that approximates an out-of-order
//! core: demand-load misses enter the window and the core only stalls when
//! the window is full, so a pattern exposing MLP *k* overlaps up to *k*
//! misses (pointer chasing gets *k = 1* and eats full latency, streams get
//! *k ≈ 4–8*).
//!
//! Demand fills install lines immediately (their cost is charged through
//! the window); prefetch fills are tracked in the MSHR and install at their
//! completion time, so prefetch *timeliness* is modelled: a demand touching
//! an in-flight prefetch pays only the remaining latency (a "late
//! prefetch").
//!
//! Stall attribution follows Intel's `CYCLE_ACTIVITY.STALLS_L2_PENDING`:
//! stall cycles are classified by whether the blocking miss was pending
//! *beyond* L2 (LLC or memory).

use std::collections::VecDeque;

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::memory::MemoryController;
use crate::msr::CatState;
use crate::pmu::Pmu;
use crate::prefetch::{Battery, PrefetchRequest, PrefetcherKind};
use crate::presence::Presence;
use crate::workload::{Op, Workload};

/// Metadata of an in-flight prefetch fill. The target line numbers live in
/// a parallel `Vec<u64>` (`Core::mshr_lines`) so the per-access merge and
/// duplicate scans sweep a contiguous `u64` slice instead of striding
/// through these records.
#[derive(Debug, Clone, Copy)]
struct PendingFill {
    complete: u64,
    /// Install into L1 as well as L2 (true for L1-prefetcher fills).
    to_l1: bool,
    /// Install into the LLC as well (true when the data comes from memory).
    to_llc: bool,
    /// Still speculative: install with the prefetched bit set. Cleared if a
    /// demand merges with this fill while in flight.
    prefetched: bool,
    /// Data sourced beyond L2 (LLC or memory) — used for stall attribution.
    beyond_l2: bool,
    /// A store merged with this fill while in flight: mark the line dirty
    /// once it lands in L1 (otherwise its writeback would be lost).
    dirty: bool,
}

/// How many ops the core pulls from its workload per ring refill. Two
/// tiny-config quanta's worth, so idle cores refill at most every other
/// quantum.
const OP_BATCH: usize = 64;

/// One simulated physical core.
pub struct Core {
    /// Global core id (its memory-controller traffic port).
    pub id: usize,
    /// Socket-local index (`id % cores_per_socket`): the key into the
    /// owning socket's CAT state and presence tracker.
    pub slot: usize,
    /// Fixed extra cycles on every memory fill (demand or prefetch) this
    /// core sources from a *remote* controller — zero on single-socket and
    /// per-socket-controller topologies.
    mem_penalty: u64,
    /// Private L1 data cache.
    pub l1: Cache,
    /// Private unified L2.
    pub l2: Cache,
    /// The four hardware prefetchers.
    pub battery: Battery,
    /// Local cycle clock.
    pub time: u64,
    /// Performance counters.
    pub pmu: Pmu,
    /// The running benchmark.
    pub workload: Box<dyn Workload + Send>,
    /// Ring of upcoming ops pulled from `workload` one batch at a time.
    ops_buf: Vec<Op>,
    ops_pos: usize,
    /// Lines of in-flight prefetch fills (SoA: scans touch only this).
    mshr_lines: Vec<u64>,
    /// Fill metadata parallel to `mshr_lines`.
    mshr: Vec<PendingFill>,
    /// Earliest `complete` among MSHR entries (`u64::MAX` when empty), so
    /// the per-access drain is one comparison in the common case.
    mshr_min_complete: u64,
    mshr_capacity: usize,
    /// (completion, beyond_l2, line) of in-flight demand loads. One entry
    /// per line: further loads to a line already in the window coalesce
    /// into the existing entry, as in a real MSHR.
    window: VecDeque<(u64, bool, u64)>,
    window_capacity: usize,
    /// Scratch buffer for prefetcher output.
    pf_buf: Vec<PrefetchRequest>,
    l2_hit_latency: u64,
    llc_hit_latency: u64,
    /// Demand merges with in-flight prefetches (ground-truth "used").
    merged_prefetches: u64,
    /// Query-Based Selection enabled for LLC victim choice.
    qbs: bool,
}

impl Core {
    /// Builds a core with cold caches running `workload`.
    pub fn new(id: usize, cfg: &SystemConfig, workload: Box<dyn Workload + Send>) -> Self {
        let window_capacity = workload.mlp().clamp(1, cfg.core.max_mlp) as usize;
        let topo = cfg.topology;
        // The shared controller sits on socket 0; cores elsewhere pay the
        // cross-socket penalty on every fill. Per-socket controllers are
        // always local.
        let mem_penalty = if !topo.mem_per_socket && topo.socket_of(id) != 0 {
            topo.cross_socket_penalty
        } else {
            0
        };
        Core {
            id,
            slot: topo.local_id(id),
            mem_penalty,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            battery: Battery::new(),
            time: 0,
            pmu: Pmu::default(),
            workload,
            ops_buf: Vec::with_capacity(OP_BATCH),
            ops_pos: 0,
            mshr_lines: Vec::with_capacity(cfg.core.mshr_entries),
            mshr: Vec::with_capacity(cfg.core.mshr_entries),
            mshr_min_complete: u64::MAX,
            mshr_capacity: cfg.core.mshr_entries,
            window: VecDeque::with_capacity(window_capacity),
            window_capacity,
            pf_buf: Vec::with_capacity(16),
            l2_hit_latency: cfg.l2.hit_latency,
            llc_hit_latency: cfg.llc.hit_latency,
            merged_prefetches: 0,
            qbs: cfg.qbs,
        }
    }

    /// Deep-copies the core's entire microarchitectural state — caches,
    /// prefetcher training, MSHRs, op ring, PMU image, local clock.
    /// Returns `None` when the workload does not support
    /// [`Workload::try_clone_box`]; cloneable workloads share their cold
    /// state (e.g. a trace recording behind an `Arc`), so the copy costs a
    /// few memcpys of tag arrays rather than a re-simulation.
    pub fn try_clone(&self) -> Option<Core> {
        let workload = self.workload.try_clone_box()?;
        Some(Core {
            id: self.id,
            slot: self.slot,
            mem_penalty: self.mem_penalty,
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            battery: self.battery.clone(),
            time: self.time,
            pmu: self.pmu,
            workload,
            ops_buf: self.ops_buf.clone(),
            ops_pos: self.ops_pos,
            mshr_lines: self.mshr_lines.clone(),
            mshr: self.mshr.clone(),
            mshr_min_complete: self.mshr_min_complete,
            mshr_capacity: self.mshr_capacity,
            window: self.window.clone(),
            window_capacity: self.window_capacity,
            pf_buf: self.pf_buf.clone(),
            l2_hit_latency: self.l2_hit_latency,
            llc_hit_latency: self.llc_hit_latency,
            merged_prefetches: self.merged_prefetches,
            qbs: self.qbs,
        })
    }

    /// Executes operations until the local clock reaches `qend`.
    /// `inval` collects LLC victim lines for cross-core back-invalidation.
    pub fn run_until(
        &mut self,
        qend: u64,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) {
        while self.time < qend {
            match self.next_op() {
                Op::Compute { cycles } => {
                    let c = cycles.max(1) as u64;
                    self.time += c;
                    self.pmu.instructions += c;
                    // Coalesce buffered compute runs. Each pop happens only
                    // while `time < qend`, mirroring the loop condition, so
                    // this is cycle-exact with the one-op-per-iteration
                    // path — including where the quantum boundary lands.
                    while self.time < qend {
                        match self.ops_buf.get(self.ops_pos) {
                            Some(&Op::Compute { cycles }) => {
                                self.ops_pos += 1;
                                let c = cycles.max(1) as u64;
                                self.time += c;
                                self.pmu.instructions += c;
                            }
                            _ => break,
                        }
                    }
                }
                Op::Load { addr, pc } => {
                    self.demand_access(addr, pc, true, llc, cat, mem, presence, inval);
                    self.time += 1;
                    self.pmu.instructions += 1;
                }
                Op::Store { addr, pc } => {
                    self.demand_access(addr, pc, false, llc, cat, mem, presence, inval);
                    self.time += 1;
                    self.pmu.instructions += 1;
                }
            }
        }
        self.sync_pmu();
    }

    /// Pops the next op from the ring, refilling a batch from the workload
    /// when the ring runs dry. Refilling ahead of consumption is safe:
    /// workloads are pure deterministic streams, so the op sequence is
    /// independent of *when* it is generated.
    #[inline]
    fn next_op(&mut self) -> Op {
        if self.ops_pos == self.ops_buf.len() {
            self.ops_buf.clear();
            self.ops_pos = 0;
            self.workload.fill(&mut self.ops_buf, OP_BATCH);
            debug_assert!(!self.ops_buf.is_empty(), "workload streams are infinite");
        }
        let op = self.ops_buf[self.ops_pos];
        self.ops_pos += 1;
        op
    }

    /// Publishes clock and ground-truth prefetch counters into the PMU
    /// image. Called at quantum boundaries.
    pub fn sync_pmu(&mut self) {
        self.pmu.cycles = self.time;
        self.pmu.pf_used =
            self.l1.stats.prefetch_used + self.l2.stats.prefetch_used + self.merged_prefetches;
        self.pmu.pf_wasted = self.l2.stats.prefetch_wasted;
    }

    /// Applies an inclusive back-invalidation for an LLC victim.
    /// Dirty private copies are written back to memory.
    pub fn back_invalidate(
        &mut self,
        line: u64,
        mem: &mut MemoryController,
        presence: &mut Presence,
    ) {
        let mut dirty = false;
        if let Some(ev) = self.l1.invalidate_line(line) {
            dirty |= ev.dirty;
        }
        if let Some(ev) = self.l2.invalidate_line(line) {
            presence.dec(line, self.slot);
            dirty |= ev.dirty;
        }
        if dirty {
            mem.writeback(self.time, self.id, line);
            self.pmu.mem_writeback_bytes += 64;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn demand_access(
        &mut self,
        addr: u64,
        pc: u64,
        is_load: bool,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) {
        self.drain_mshr(llc, cat, mem, presence, inval);

        let line = crate::addr::line_of(addr);
        self.pmu.l1d_accesses += 1;

        self.pf_buf.clear();
        let l1_hit = self.l1.access(line).is_some();
        self.battery.l1_access(pc, addr, l1_hit, &mut self.pf_buf);

        if l1_hit {
            if !is_load {
                self.l1.mark_dirty(line);
            }
            self.issue_prefetches(llc, cat, mem, presence, inval);
            return;
        }
        self.pmu.l1d_misses += 1;

        // Merge with an in-flight prefetch: pay only the remaining latency.
        let (completion, beyond_l2) =
            if let Some(j) = self.mshr_lines.iter().position(|&l| l == line) {
                let p = &mut self.mshr[j];
                if p.prefetched {
                    p.prefetched = false;
                    self.merged_prefetches += 1;
                }
                p.to_l1 = true;
                if !is_load {
                    p.dirty = true;
                }
                (p.complete, p.beyond_l2)
            } else {
                self.fetch_for_demand(line, addr, pc, is_load, llc, cat, mem, presence, inval)
            };

        if !is_load {
            self.l1.mark_dirty(line);
        }

        // Demand window: admit this miss, stalling if the window is full.
        // Stores participate too — the store buffer drains through the
        // same MSHRs, so a store-miss stream is bounded by the same MLP
        // (this is what makes store-dominated streams like 470.lbm memory
        // bound). Repeated accesses to a line already in flight coalesce
        // into its existing entry (MSHR behaviour) instead of occupying
        // slots.
        while let Some(&(c, _, _)) = self.window.front() {
            if c <= self.time {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if !self.window.iter().any(|&(_, _, l)| l == line) {
            if self.window.len() == self.window_capacity {
                let (c, blocked_beyond_l2, _) = self.window.pop_front().expect("window non-empty");
                if c > self.time {
                    let dt = c - self.time;
                    self.time = c;
                    self.pmu.stall_cycles += dt;
                    if blocked_beyond_l2 {
                        self.pmu.stalls_l2_pending += dt;
                    }
                }
            }
            self.window.push_back((completion, beyond_l2, line));
        }

        self.issue_prefetches(llc, cat, mem, presence, inval);
    }

    /// Demand miss beyond L1: walk L2 → LLC → memory, install immediately,
    /// return (completion time, sourced-beyond-L2).
    #[allow(clippy::too_many_arguments)]
    fn fetch_for_demand(
        &mut self,
        line: u64,
        addr: u64,
        pc: u64,
        is_load: bool,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) -> (u64, bool) {
        self.pmu.l2_dm_req += 1;
        let l2_hit = self.l2.access(line).is_some();
        self.battery.l2_access(pc, addr, l2_hit, &mut self.pf_buf);

        if l2_hit {
            self.fill_l1(line, false);
            return (self.time + self.l2_hit_latency, false);
        }
        self.pmu.l2_dm_miss += 1;

        if llc.access(line).is_some() {
            self.fill_l2(line, false, llc, presence);
            self.fill_l1(line, false);
            return (self.time + self.llc_hit_latency, true);
        }
        if is_load {
            self.pmu.l3_load_miss += 1;
        }

        let completion = mem.demand_fill(self.time, self.id, line) + self.mem_penalty;
        self.pmu.mem_demand_bytes += 64;
        self.fill_llc(line, false, llc, cat, mem, presence, inval);
        self.fill_l2(line, false, llc, presence);
        self.fill_l1(line, false);
        (completion, true)
    }

    /// Issues the prefetch candidates accumulated in `pf_buf`. L1 prefetch
    /// requests that miss L1 travel to L2 and — as on hardware — train the
    /// L2 prefetchers there, which may append further candidates; the loop
    /// keeps draining until the buffer is exhausted.
    #[allow(clippy::too_many_arguments)]
    fn issue_prefetches(
        &mut self,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        _presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) {
        let mut buf = std::mem::take(&mut self.pf_buf);
        let mut i = 0;
        while i < buf.len() {
            let req = buf[i];
            i += 1;
            match req.source {
                PrefetcherKind::L1NextLine | PrefetcherKind::L1IpStride => {
                    self.issue_l1_prefetch(req.line, &mut buf, llc, cat, mem, inval)
                }
                PrefetcherKind::L2Streamer | PrefetcherKind::L2Adjacent => {
                    self.issue_l2_prefetch(req.line, llc, cat, mem, inval)
                }
            }
        }
        buf.clear();
        self.pf_buf = buf;
    }

    #[inline]
    fn mshr_has(&self, line: u64) -> bool {
        self.mshr_lines.contains(&line)
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_l1_prefetch(
        &mut self,
        line: u64,
        buf: &mut Vec<PrefetchRequest>,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        _inval: &mut Vec<u64>,
    ) {
        self.pmu.l1_pf_req += 1;
        if self.l1.contains(line) || self.mshr_has(line) || self.mshr.len() >= self.mshr_capacity {
            return;
        }
        // L1 prefetch requests check L2 on their way out (they are not
        // demand requests, so they do not count in l2_dm_req) and, like any
        // request arriving at L2, they train the L2 prefetchers.
        let l2_hit = self.l2.probe_for_prefetch(line);
        self.battery.l2_access(0, crate::addr::addr_of_line(line), l2_hit, buf);
        if l2_hit {
            self.push_fill(
                line,
                PendingFill {
                    complete: self.time + self.l2_hit_latency,
                    to_l1: true,
                    to_llc: false,
                    prefetched: true,
                    beyond_l2: false,
                    dirty: false,
                },
            );
            return;
        }
        if llc.probe_for_prefetch(line) {
            self.push_fill(
                line,
                PendingFill {
                    complete: self.time + self.llc_hit_latency,
                    to_l1: true,
                    to_llc: false,
                    prefetched: true,
                    beyond_l2: true,
                    dirty: false,
                },
            );
            return;
        }
        if let Some(complete) = mem.prefetch_fill(self.time, self.id, line) {
            self.pmu.mem_prefetch_bytes += 64;
            self.push_fill(
                line,
                PendingFill {
                    complete: complete + self.mem_penalty,
                    to_l1: true,
                    to_llc: true,
                    prefetched: true,
                    beyond_l2: true,
                    dirty: false,
                },
            );
        }
        let _ = cat; // CAT applies at fill time (drain_mshr).
    }

    fn issue_l2_prefetch(
        &mut self,
        line: u64,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        _inval: &mut Vec<u64>,
    ) {
        self.pmu.l2_pf_req += 1;
        if self.l2.contains(line) || self.mshr_has(line) || self.mshr.len() >= self.mshr_capacity {
            return;
        }
        // The request leaves L2 towards the LLC: this is the paper's
        // `L2 pref miss` event.
        self.pmu.l2_pf_miss += 1;
        if llc.probe_for_prefetch(line) {
            self.push_fill(
                line,
                PendingFill {
                    complete: self.time + self.llc_hit_latency,
                    to_l1: false,
                    to_llc: false,
                    prefetched: true,
                    beyond_l2: true,
                    dirty: false,
                },
            );
            return;
        }
        self.pmu.llc_pf_to_mem += 1;
        if let Some(complete) = mem.prefetch_fill(self.time, self.id, line) {
            self.pmu.mem_prefetch_bytes += 64;
            self.push_fill(
                line,
                PendingFill {
                    complete: complete + self.mem_penalty,
                    to_l1: false,
                    to_llc: true,
                    prefetched: true,
                    beyond_l2: true,
                    dirty: false,
                },
            );
        }
        let _ = cat;
    }

    fn push_fill(&mut self, line: u64, fill: PendingFill) {
        debug_assert!(self.mshr.len() < self.mshr_capacity);
        self.mshr_min_complete = self.mshr_min_complete.min(fill.complete);
        self.mshr_lines.push(line);
        self.mshr.push(fill);
    }

    /// Applies all fills whose data has arrived. The cached
    /// `mshr_min_complete` makes the common no-fill-ready case a single
    /// comparison; the walk below preserves the historical apply order
    /// (ascending scan with swap-remove) so fill side effects — LRU
    /// updates, evictions, back-invalidations — land byte-identically.
    #[inline]
    fn drain_mshr(
        &mut self,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) {
        if self.mshr_min_complete > self.time {
            return;
        }
        let now = self.time;
        let mut min_left = u64::MAX;
        let mut j = 0;
        while j < self.mshr.len() {
            if self.mshr[j].complete <= now {
                let line = self.mshr_lines.swap_remove(j);
                let fill = self.mshr.swap_remove(j);
                if fill.to_llc {
                    self.fill_llc(line, fill.prefetched, llc, cat, mem, presence, inval);
                }
                self.fill_l2(line, fill.prefetched, llc, presence);
                if fill.to_l1 {
                    self.fill_l1(line, fill.prefetched);
                    if fill.dirty {
                        self.l1.mark_dirty(line);
                    }
                }
            } else {
                min_left = min_left.min(self.mshr[j].complete);
                j += 1;
            }
        }
        self.mshr_min_complete = min_left;
    }

    fn fill_l1(&mut self, line: u64, prefetched: bool) {
        if let Some(ev) = self.l1.insert(line, prefetched, u64::MAX) {
            if ev.dirty {
                // Inclusive hierarchy: the line is still in L2; propagate.
                self.l2.mark_dirty(ev.line);
            }
        }
    }

    fn fill_l2(&mut self, line: u64, prefetched: bool, llc: &mut Cache, presence: &mut Presence) {
        if self.l2.contains(line) {
            self.l2.insert(line, prefetched, u64::MAX);
            return;
        }
        presence.inc(line, self.slot);
        if let Some(ev) = self.l2.insert(line, prefetched, u64::MAX) {
            presence.dec(ev.line, self.slot);
            // L1 must not outlive L2 if we keep the hierarchy inclusive.
            self.l1.invalidate_line(ev.line);
            if ev.dirty {
                llc.mark_dirty(ev.line);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_llc(
        &mut self,
        line: u64,
        prefetched: bool,
        llc: &mut Cache,
        cat: &CatState,
        mem: &mut MemoryController,
        presence: &mut Presence,
        inval: &mut Vec<u64>,
    ) {
        let mask = cat.mask_for_core(self.slot);
        // Query-Based Selection: avoid victimising lines resident in any
        // core's private caches (Broadwell's inclusion-victim mitigation).
        let ev = if self.qbs {
            llc.insert_qbs(line, prefetched, mask, &|l| presence.resident(l))
        } else {
            llc.insert(line, prefetched, mask)
        };
        if let Some(ev) = ev {
            if ev.dirty {
                mem.writeback(self.time, self.id, ev.line);
                self.pmu.mem_writeback_bytes += 64;
            }
            // Inclusive LLC: victims must leave every private cache.
            // Our own copies go now; other cores' at the quantum boundary.
            self.l1.invalidate_line(ev.line);
            if self.l2.invalidate_line(ev.line).is_some() {
                presence.dec(ev.line, self.slot);
            }
            inval.push(ev.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, Topology};
    use crate::workload::Idle;

    fn rig() -> (Core, Cache, CatState, MemoryController, Presence, Vec<u64>) {
        let cfg = SystemConfig::tiny(1);
        let core = Core::new(0, &cfg, Box::new(Idle));
        let llc = Cache::new(cfg.llc);
        let cat = CatState::new(cfg.num_clos, cfg.llc.ways, &Topology::single(1));
        let mem = MemoryController::new(cfg.memory, &Topology::single(1));
        (core, llc, cat, mem, Presence::new(), Vec::new())
    }

    #[test]
    fn compute_only_runs_at_ipc_one() {
        let (mut core, mut llc, cat, mut mem, mut presence, mut inval) = rig();
        core.run_until(10_000, &mut llc, &cat, &mut mem, &mut presence, &mut inval);
        assert!(core.time >= 10_000);
        assert!((core.pmu.ipc() - 1.0).abs() < 0.01);
        assert_eq!(core.pmu.l1d_accesses, 0);
    }

    /// Sequential loads, one per 8 bytes.
    struct Seq {
        pos: u64,
        span: u64,
    }
    impl Workload for Seq {
        fn next(&mut self) -> Op {
            let a = self.pos;
            self.pos = (self.pos + 8) % self.span;
            Op::Load { addr: a, pc: 0x400 }
        }
        fn mlp(&self) -> u32 {
            4
        }
        fn reset(&mut self) {
            self.pos = 0;
        }
        fn name(&self) -> &str {
            "seq"
        }
    }

    #[test]
    fn streaming_load_counts_misses_and_fills() {
        let cfg = SystemConfig::tiny(1);
        let mut core = Core::new(0, &cfg, Box::new(Seq { pos: 0, span: 1 << 20 }));
        let mut llc = Cache::new(cfg.llc);
        let cat = CatState::new(cfg.num_clos, cfg.llc.ways, &Topology::single(1));
        let mut mem = MemoryController::new(cfg.memory, &Topology::single(1));
        let mut presence = Presence::new();
        let mut inval = Vec::new();
        core.run_until(50_000, &mut llc, &cat, &mut mem, &mut presence, &mut inval);
        assert!(core.pmu.l1d_accesses > 0);
        assert!(core.pmu.l1d_misses > 0);
        assert!(core.pmu.l2_dm_req > 0);
        // A sequential stream must trigger L2 prefetch requests.
        assert!(core.pmu.l2_pf_req > 0, "{:?}", core.pmu);
        assert!(core.pmu.mem_demand_bytes + core.pmu.mem_prefetch_bytes > 0);
    }

    #[test]
    fn prefetching_improves_streaming_ipc() {
        let cfg = SystemConfig::tiny(1);
        let run = |msr: u64| {
            let mut core = Core::new(0, &cfg, Box::new(Seq { pos: 0, span: 1 << 22 }));
            core.battery.write_msr(msr);
            let mut llc = Cache::new(cfg.llc);
            let cat = CatState::new(cfg.num_clos, cfg.llc.ways, &Topology::single(1));
            let mut mem = MemoryController::new(cfg.memory, &Topology::single(1));
            let mut presence = Presence::new();
            let mut inval = Vec::new();
            core.run_until(300_000, &mut llc, &cat, &mut mem, &mut presence, &mut inval);
            core.pmu.ipc()
        };
        let ipc_on = run(0x0);
        let ipc_off = run(0xF);
        assert!(
            ipc_on > ipc_off * 1.3,
            "prefetch-on IPC {ipc_on:.3} should clearly beat off {ipc_off:.3}"
        );
    }

    #[test]
    fn stalls_attributed_beyond_l2() {
        let cfg = SystemConfig::tiny(1);
        let mut core = Core::new(0, &cfg, Box::new(Seq { pos: 0, span: 1 << 22 }));
        core.battery.write_msr(0xF); // no prefetch: every line from memory
        let mut llc = Cache::new(cfg.llc);
        let cat = CatState::new(cfg.num_clos, cfg.llc.ways, &Topology::single(1));
        let mut mem = MemoryController::new(cfg.memory, &Topology::single(1));
        let mut presence = Presence::new();
        let mut inval = Vec::new();
        core.run_until(100_000, &mut llc, &cat, &mut mem, &mut presence, &mut inval);
        assert!(core.pmu.stalls_l2_pending > 0);
        assert!(core.pmu.stalls_l2_pending <= core.pmu.stall_cycles);
    }

    #[test]
    fn store_streams_stall_like_load_streams() {
        struct StoreStream {
            pos: u64,
        }
        impl Workload for StoreStream {
            fn next(&mut self) -> Op {
                self.pos += 64;
                Op::Store { addr: self.pos, pc: 0x500 }
            }
            fn reset(&mut self) {
                self.pos = 0;
            }
            fn name(&self) -> &str {
                "stores"
            }
        }
        let cfg = SystemConfig::tiny(1);
        let mut core = Core::new(0, &cfg, Box::new(StoreStream { pos: 0 }));
        core.battery.write_msr(0xF);
        let mut llc = Cache::new(cfg.llc);
        let cat = CatState::new(cfg.num_clos, cfg.llc.ways, &Topology::single(1));
        let mut mem = MemoryController::new(cfg.memory, &Topology::single(1));
        let mut presence = Presence::new();
        let mut inval = Vec::new();
        core.run_until(20_000, &mut llc, &cat, &mut mem, &mut presence, &mut inval);
        // The store buffer drains through the MLP window: a write-allocate
        // miss stream must stall once the window fills.
        assert!(core.pmu.stall_cycles > 0);
        assert!(core.pmu.mem_demand_bytes > 0);
    }

    #[test]
    fn back_invalidate_writes_back_dirty_lines() {
        let (mut core, mut llc, cat, mut mem, mut presence, mut inval) = rig();
        // Install a line and dirty it in L1 via a store.
        core.demand_access(
            0x1000,
            0x400,
            false,
            &mut llc,
            &cat,
            &mut mem,
            &mut presence,
            &mut inval,
        );
        let before = core.pmu.mem_writeback_bytes;
        core.back_invalidate(crate::addr::line_of(0x1000), &mut mem, &mut presence);
        assert_eq!(core.pmu.mem_writeback_bytes, before + 64);
        assert!(!core.l1.contains(crate::addr::line_of(0x1000)));
        assert!(!core.l2.contains(crate::addr::line_of(0x1000)));
    }
}
