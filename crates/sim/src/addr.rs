//! Byte-address ↔ cache-line arithmetic.
//!
//! Everything in the memory hierarchy operates on 64-byte cache lines, the
//! line size of every Intel server part since Nehalem. Addresses are plain
//! `u64` byte addresses; *line numbers* are byte addresses shifted right by
//! [`LINE_SHIFT`].

/// Cache line size in bytes (fixed at 64, as on all Intel server parts).
pub const CACHE_LINE_BYTES: u64 = 64;

/// `log2(CACHE_LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 6;

/// Size of a small page in bytes; the L2 streamer never crosses this.
pub const PAGE_BYTES: u64 = 4096;

/// Lines per 4 KiB page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / CACHE_LINE_BYTES;

/// Line number containing byte address `addr`.
#[inline(always)]
pub fn line_of(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// First byte address of line number `line`.
#[inline(always)]
pub fn addr_of_line(line: u64) -> u64 {
    line << LINE_SHIFT
}

/// 4 KiB page number containing line number `line`.
#[inline(always)]
pub fn page_of_line(line: u64) -> u64 {
    line / LINES_PER_PAGE
}

/// Offset of `line` within its 4 KiB page, in lines (0..64).
#[inline(always)]
pub fn line_offset_in_page(line: u64) -> u64 {
    line % LINES_PER_PAGE
}

/// The "buddy" line completing the 128-byte aligned pair that contains
/// `line` — the line the Intel *adjacent-line* prefetcher fetches.
#[inline(always)]
pub fn pair_line(line: u64) -> u64 {
    line ^ 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic_roundtrips() {
        for addr in [0u64, 1, 63, 64, 65, 4095, 4096, 1 << 30] {
            let line = line_of(addr);
            assert!(addr_of_line(line) <= addr);
            assert!(addr < addr_of_line(line) + CACHE_LINE_BYTES);
        }
    }

    #[test]
    fn adjacent_pair_is_involutive_and_128b_aligned() {
        for line in [0u64, 1, 2, 3, 100, 101, 1 << 20] {
            assert_eq!(pair_line(pair_line(line)), line);
            // The pair {line, pair_line(line)} spans exactly one 128-byte block.
            assert_eq!(line / 2, pair_line(line) / 2);
        }
    }

    #[test]
    fn page_geometry() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(page_of_line(line_of(4096)), 1);
        assert_eq!(line_offset_in_page(line_of(4096 + 128)), 2);
    }

    #[test]
    fn consecutive_addresses_in_same_line() {
        assert_eq!(line_of(128), line_of(191));
        assert_ne!(line_of(128), line_of(192));
    }
}
