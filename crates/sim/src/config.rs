//! Machine geometry and timing configuration.
//!
//! Two presets are provided:
//!
//! * [`SystemConfig::paper`] — the Intel Xeon E5-2620 v4 of the paper:
//!   8 cores, 32 KiB/8-way L1D, 256 KiB/8-way L2, 20 MiB/20-way shared LLC,
//!   DDR4-2400 with 68.3 GB/s peak (≈32 bytes/cycle at the 2.1 GHz base
//!   clock).
//! * [`SystemConfig::scaled`] — the same topology with the LLC scaled down
//!   to 2.5 MiB (still 20 ways, so CAT masks behave identically) for fast
//!   simulation; workload footprints in `cmm-workloads` scale with it.

use crate::addr::CACHE_LINE_BYTES;

/// Physical layout of the machine: N sockets × M cores.
///
/// Each socket owns one LLC, one CAT domain (its own CLOS mask/assoc
/// register file) and — with [`Topology::mem_per_socket`] — one memory
/// controller. Core ids are global and socket-major: core `i` lives on
/// socket `i / cores_per_socket` with socket-local id
/// `i % cores_per_socket`. The single-socket default reproduces the
/// paper's one-socket machine exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of sockets (CAT domains).
    pub sockets: usize,
    /// Cores per socket (≤ 64: per-socket presence maps are u64 bitmasks).
    pub cores_per_socket: usize,
    /// `true`: one NUMA-local memory controller per socket (no
    /// cross-socket traffic). `false`: a single shared controller homed on
    /// socket 0.
    pub mem_per_socket: bool,
    /// Extra cycles added to every demand/prefetch fill issued by a core
    /// whose socket is not the shared controller's home (socket 0).
    /// Ignored when `mem_per_socket` is set — all traffic is local then.
    pub cross_socket_penalty: u64,
}

/// Default remote-access penalty (cycles) for shared-controller
/// topologies parsed with an `@shared` suffix, roughly the extra QPI/UPI
/// hop cost on a two-socket Xeon.
pub const DEFAULT_CROSS_SOCKET_PENALTY: u64 = 100;

impl Topology {
    /// One socket holding all `num_cores` cores — the classic layout every
    /// pre-topology configuration maps to.
    pub fn single(num_cores: usize) -> Self {
        Topology {
            sockets: 1,
            cores_per_socket: num_cores,
            mem_per_socket: false,
            cross_socket_penalty: 0,
        }
    }

    /// `sockets × cores_per_socket` with per-socket (NUMA-local) memory
    /// controllers — the realistic multi-socket default.
    pub fn grid(sockets: usize, cores_per_socket: usize) -> Self {
        Topology { sockets, cores_per_socket, mem_per_socket: sockets > 1, cross_socket_penalty: 0 }
    }

    /// Total cores across all sockets.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket of a global core id.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// Socket-local id of a global core id.
    pub fn local_id(&self, core: usize) -> usize {
        core % self.cores_per_socket
    }

    /// First global core id on `socket`.
    pub fn base_of(&self, socket: usize) -> usize {
        socket * self.cores_per_socket
    }

    /// True for one-socket layouts — the compatibility surface: journal
    /// schema, config digests and CLI output stay byte-identical to the
    /// pre-topology code for these.
    pub fn is_single(&self) -> bool {
        self.sockets == 1
    }

    /// Canonical `SxM` label (`"2x16"`).
    pub fn label(&self) -> String {
        format!("{}x{}", self.sockets, self.cores_per_socket)
    }

    /// Panics on an unbuildable layout.
    pub fn validate(&self) {
        assert!(self.sockets > 0, "topology needs at least one socket");
        assert!(self.cores_per_socket > 0, "topology needs at least one core per socket");
        assert!(
            self.cores_per_socket <= 64,
            "per-socket presence maps are u64 bitmasks: cores_per_socket must be <= 64"
        );
        assert!(self.total_cores() <= 1024, "more than 1024 cores is not supported");
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    /// Parses `"SxM"` (per-socket memory controllers) or `"SxM@shared"` /
    /// `"SxM@<cycles>"` (one shared controller; remote sockets pay the
    /// given — or default — cross-socket penalty per fill).
    fn from_str(s: &str) -> Result<Self, String> {
        let (grid, mem) = match s.split_once('@') {
            None => (s, None),
            Some((g, m)) => (g, Some(m)),
        };
        let (sk, cp) =
            grid.split_once('x').ok_or_else(|| format!("topology '{s}' is not of the form SxM"))?;
        let sockets: usize =
            sk.parse().map_err(|_| format!("topology '{s}': bad socket count '{sk}'"))?;
        let cores_per_socket: usize =
            cp.parse().map_err(|_| format!("topology '{s}': bad cores/socket '{cp}'"))?;
        let mut topo = Topology::grid(sockets, cores_per_socket);
        match mem {
            None => {}
            Some("shared") => {
                topo.mem_per_socket = false;
                topo.cross_socket_penalty = DEFAULT_CROSS_SOCKET_PENALTY;
            }
            Some(p) => {
                topo.mem_per_socket = false;
                topo.cross_socket_penalty =
                    p.parse().map_err(|_| format!("topology '{s}': bad penalty '{p}' (cycles)"))?;
            }
        }
        if topo.sockets == 0 || topo.cores_per_socket == 0 {
            return Err(format!("topology '{s}' has an empty dimension"));
        }
        if topo.cores_per_socket > 64 {
            return Err(format!("topology '{s}': cores/socket is capped at 64"));
        }
        Ok(topo)
    }
}

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes. Must be `ways * sets * 64` with `sets` a
    /// power of two.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Load-to-use latency of a hit in this cache, in core cycles.
    pub hit_latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES / self.ways as u64
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES
    }

    /// Panics if the geometry is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.ways > 0, "cache must have at least one way");
        assert_eq!(
            self.size_bytes % (CACHE_LINE_BYTES * self.ways as u64),
            0,
            "capacity must be a whole number of sets"
        );
        let sets = self.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
    }
}

/// Core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum demand misses a core can keep in flight before it stalls.
    /// This is the *machine* limit; a workload's exploitable MLP
    /// ([`crate::workload::Workload::mlp`]) may be lower.
    pub max_mlp: u32,
    /// Capacity of the per-core MSHR file tracking in-flight fills
    /// (demand + prefetch).
    pub mshr_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { max_mlp: 10, mshr_entries: 32 }
    }
}

/// Memory-controller timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Unloaded round-trip latency of a memory access, in core cycles.
    pub base_latency: u64,
    /// Peak sustainable bandwidth in bytes per core cycle, shared by all
    /// cores, achieved by row-hit traffic. 68.3 GB/s at 2.1 GHz ≈
    /// 32.5 B/cycle.
    pub bytes_per_cycle: f64,
    /// Channel occupancy of a row-buffer *miss*, in cycles per 64-byte
    /// line. Random-access traffic lands on closed rows and sustains only
    /// `64/row_miss_service` bytes/cycle — the DDR4 random-access
    /// efficiency cliff that makes useless prefetch floods expensive.
    pub row_miss_service: u64,
    /// Number of interleaved DRAM banks (power of two); concurrent streams
    /// in different banks keep their rows open independently.
    pub banks: usize,
    /// Outstanding-prefetch cap: prefetch requests are dropped (as real
    /// memory controllers drop or deprioritise them) once the queue is this
    /// many requests deep. Demand requests always queue.
    pub prefetch_drop_depth: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            base_latency: 180,
            bytes_per_cycle: 32.0,
            // A row miss occupies the (aggregated 4-channel) controller
            // for 4 cycles per line: random traffic sustains ~16 B/cycle,
            // roughly DDR4-2400's measured random-access efficiency.
            row_miss_service: 4,
            banks: 16,
            // High enough that speculative traffic is only shed when the
            // controller is severely backlogged: Broadwell-era controllers
            // let prefetch floods through, which is precisely the
            // interference the paper manages in software.
            prefetch_drop_depth: 512,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of physical cores (the paper uses 8, hyperthreading off).
    /// Always equals `topology.total_cores()` — change it through
    /// [`SystemConfig::set_num_cores`] so the two stay consistent.
    pub num_cores: usize,
    /// Socket layout. Single-socket by default; [`SystemConfig::l1`],
    /// `l2` are per-core and [`SystemConfig::llc`] is **per socket**.
    pub topology: Topology,
    pub l1: CacheGeometry,
    pub l2: CacheGeometry,
    /// The shared, inclusive, CAT-partitionable LLC (one per socket).
    pub llc: CacheGeometry,
    pub core: CoreConfig,
    pub memory: MemoryConfig,
    /// Length of one loosely-synchronised simulation quantum, in cycles.
    pub quantum: u64,
    /// Number of CAT classes of service per socket (Broadwell-EP
    /// exposes 16).
    pub num_clos: usize,
    /// Query-Based Selection in the inclusive LLC (Broadwell's
    /// inclusion-victim mitigation). Disable only for ablation studies.
    pub qbs: bool,
}

/// Hand-rolled so single-socket configurations render exactly like the
/// pre-topology derive did: the rendering feeds the FNV-1a config digest
/// in journal manifests and resume checkpoints, so the `topology` field
/// may only appear when it actually changes the machine (multi-socket).
impl std::fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("SystemConfig");
        d.field("num_cores", &self.num_cores);
        if !self.topology.is_single() {
            d.field("topology", &self.topology);
        }
        d.field("l1", &self.l1)
            .field("l2", &self.l2)
            .field("llc", &self.llc)
            .field("core", &self.core)
            .field("memory", &self.memory)
            .field("quantum", &self.quantum)
            .field("num_clos", &self.num_clos)
            .field("qbs", &self.qbs)
            .finish()
    }
}

impl SystemConfig {
    /// Paper-faithful geometry: the Intel Xeon E5-2620 v4.
    pub fn paper() -> Self {
        SystemConfig {
            num_cores: 8,
            topology: Topology::single(8),
            l1: CacheGeometry { size_bytes: 32 << 10, ways: 8, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 256 << 10, ways: 8, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 20 * (1 << 20), ways: 20, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 1000,
            num_clos: 16,
            qbs: true,
        }
    }

    /// Scaled geometry for fast simulation: identical topology and way
    /// counts, LLC shrunk to 2.5 MiB (20 ways × 2048 sets).
    ///
    /// `num_cores` is configurable so unit tests can run tiny systems.
    pub fn scaled(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            topology: Topology::single(num_cores),
            l1: CacheGeometry { size_bytes: 32 << 10, ways: 8, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 256 << 10, ways: 8, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 2560 << 10, ways: 20, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 1000,
            num_clos: 16,
            qbs: true,
        }
    }

    /// A deliberately tiny machine for unit tests: 2-way 4 KiB L1,
    /// 8 KiB L2, 4-way 32 KiB LLC.
    pub fn tiny(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            topology: Topology::single(num_cores),
            l1: CacheGeometry { size_bytes: 4 << 10, ways: 2, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 8 << 10, ways: 4, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 32 << 10, ways: 4, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 200,
            num_clos: 4,
            qbs: true,
        }
    }

    /// Changes the core count, keeping the topology consistent: a layout
    /// already totalling `n` cores is preserved, anything else collapses
    /// to the single-socket default (the behaviour every pre-topology
    /// `cfg.num_cores = n` assignment had).
    pub fn set_num_cores(&mut self, n: usize) {
        if self.topology.total_cores() != n {
            self.topology = Topology::single(n);
        }
        self.num_cores = n;
    }

    /// Installs a topology, updating `num_cores` to match.
    pub fn set_topology(&mut self, topo: Topology) {
        self.topology = topo;
        self.num_cores = topo.total_cores();
    }

    /// Panics if any component geometry is inconsistent.
    pub fn validate(&self) {
        assert!(self.num_cores > 0);
        self.topology.validate();
        assert_eq!(
            self.topology.total_cores(),
            self.num_cores,
            "topology ({}) and num_cores disagree — use set_num_cores/set_topology",
            self.topology
        );
        assert!(self.num_clos >= 1 && self.num_clos <= 64);
        assert!(self.quantum > 0);
        self.l1.validate();
        self.l2.validate();
        self.llc.validate();
        assert!(self.llc.ways <= 64, "CAT masks are u64 way bitmaps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_e5_2620_v4() {
        let cfg = SystemConfig::paper();
        cfg.validate();
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc.ways, 20);
        assert_eq!(cfg.llc.sets(), 16384);
        assert_eq!(cfg.llc.size_bytes, 20 * 1024 * 1024);
    }

    #[test]
    fn scaled_keeps_llc_way_count() {
        let cfg = SystemConfig::scaled(8);
        cfg.validate();
        assert_eq!(cfg.llc.ways, SystemConfig::paper().llc.ways);
        assert_eq!(cfg.llc.sets(), 2048);
    }

    #[test]
    fn tiny_is_valid() {
        SystemConfig::tiny(2).validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        CacheGeometry { size_bytes: 3 * 64 * 8, ways: 8, hit_latency: 1 }.validate();
    }

    #[test]
    fn topology_addressing_is_socket_major() {
        let t = Topology::grid(4, 32);
        t.validate();
        assert_eq!(t.total_cores(), 128);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(31), 0);
        assert_eq!(t.socket_of(32), 1);
        assert_eq!(t.local_id(32), 0);
        assert_eq!(t.socket_of(127), 3);
        assert_eq!(t.local_id(127), 31);
        assert_eq!(t.base_of(2), 64);
        assert!(t.mem_per_socket, "multi-socket grids default to NUMA-local controllers");
    }

    #[test]
    fn topology_parses_and_round_trips() {
        let t: Topology = "2x16".parse().unwrap();
        assert_eq!(t, Topology::grid(2, 16));
        assert_eq!(t.to_string(), "2x16");
        let s: Topology = "2x16@shared".parse().unwrap();
        assert!(!s.mem_per_socket);
        assert_eq!(s.cross_socket_penalty, DEFAULT_CROSS_SOCKET_PENALTY);
        let p: Topology = "2x4@250".parse().unwrap();
        assert_eq!(p.cross_socket_penalty, 250);
        let one: Topology = "1x8".parse().unwrap();
        assert!(one.is_single());
        assert_eq!(one, Topology::single(8));
        for bad in ["", "8", "x8", "2x", "0x4", "4x0", "2x65", "axb", "2x16@fast"] {
            assert!(bad.parse::<Topology>().is_err(), "'{bad}' must not parse");
        }
    }

    #[test]
    fn single_socket_debug_matches_pre_topology_rendering() {
        // The Debug rendering feeds journal/checkpoint config digests:
        // default layouts must not mention the topology field at all.
        let dbg = format!("{:?}", SystemConfig::scaled(8));
        assert!(!dbg.contains("topology"), "{dbg}");
        assert!(dbg.starts_with("SystemConfig { num_cores: 8, l1: CacheGeometry"), "{dbg}");
        let mut multi = SystemConfig::scaled(8);
        multi.set_topology(Topology::grid(2, 16));
        let dbg = format!("{multi:?}");
        assert!(dbg.contains("topology: Topology { sockets: 2, cores_per_socket: 16"), "{dbg}");
    }

    #[test]
    fn set_num_cores_keeps_matching_topology() {
        let mut cfg = SystemConfig::scaled(8);
        cfg.set_topology(Topology::grid(2, 16));
        cfg.set_num_cores(32); // matches 2x16: layout preserved
        assert_eq!(cfg.topology, Topology::grid(2, 16));
        cfg.set_num_cores(8); // mismatch: collapses to single-socket
        assert_eq!(cfg.topology, Topology::single(8));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn inconsistent_topology_fails_validation() {
        let mut cfg = SystemConfig::scaled(8);
        cfg.topology = Topology::grid(2, 16);
        cfg.validate();
    }
}
