//! Machine geometry and timing configuration.
//!
//! Two presets are provided:
//!
//! * [`SystemConfig::paper`] — the Intel Xeon E5-2620 v4 of the paper:
//!   8 cores, 32 KiB/8-way L1D, 256 KiB/8-way L2, 20 MiB/20-way shared LLC,
//!   DDR4-2400 with 68.3 GB/s peak (≈32 bytes/cycle at the 2.1 GHz base
//!   clock).
//! * [`SystemConfig::scaled`] — the same topology with the LLC scaled down
//!   to 2.5 MiB (still 20 ways, so CAT masks behave identically) for fast
//!   simulation; workload footprints in `cmm-workloads` scale with it.

use crate::addr::CACHE_LINE_BYTES;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes. Must be `ways * sets * 64` with `sets` a
    /// power of two.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Load-to-use latency of a hit in this cache, in core cycles.
    pub hit_latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES / self.ways as u64
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES
    }

    /// Panics if the geometry is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.ways > 0, "cache must have at least one way");
        assert_eq!(
            self.size_bytes % (CACHE_LINE_BYTES * self.ways as u64),
            0,
            "capacity must be a whole number of sets"
        );
        let sets = self.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
    }
}

/// Core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum demand misses a core can keep in flight before it stalls.
    /// This is the *machine* limit; a workload's exploitable MLP
    /// ([`crate::workload::Workload::mlp`]) may be lower.
    pub max_mlp: u32,
    /// Capacity of the per-core MSHR file tracking in-flight fills
    /// (demand + prefetch).
    pub mshr_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { max_mlp: 10, mshr_entries: 32 }
    }
}

/// Memory-controller timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Unloaded round-trip latency of a memory access, in core cycles.
    pub base_latency: u64,
    /// Peak sustainable bandwidth in bytes per core cycle, shared by all
    /// cores, achieved by row-hit traffic. 68.3 GB/s at 2.1 GHz ≈
    /// 32.5 B/cycle.
    pub bytes_per_cycle: f64,
    /// Channel occupancy of a row-buffer *miss*, in cycles per 64-byte
    /// line. Random-access traffic lands on closed rows and sustains only
    /// `64/row_miss_service` bytes/cycle — the DDR4 random-access
    /// efficiency cliff that makes useless prefetch floods expensive.
    pub row_miss_service: u64,
    /// Number of interleaved DRAM banks (power of two); concurrent streams
    /// in different banks keep their rows open independently.
    pub banks: usize,
    /// Outstanding-prefetch cap: prefetch requests are dropped (as real
    /// memory controllers drop or deprioritise them) once the queue is this
    /// many requests deep. Demand requests always queue.
    pub prefetch_drop_depth: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            base_latency: 180,
            bytes_per_cycle: 32.0,
            // A row miss occupies the (aggregated 4-channel) controller
            // for 4 cycles per line: random traffic sustains ~16 B/cycle,
            // roughly DDR4-2400's measured random-access efficiency.
            row_miss_service: 4,
            banks: 16,
            // High enough that speculative traffic is only shed when the
            // controller is severely backlogged: Broadwell-era controllers
            // let prefetch floods through, which is precisely the
            // interference the paper manages in software.
            prefetch_drop_depth: 512,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of physical cores (the paper uses 8, hyperthreading off).
    pub num_cores: usize,
    pub l1: CacheGeometry,
    pub l2: CacheGeometry,
    /// The shared, inclusive, CAT-partitionable LLC.
    pub llc: CacheGeometry,
    pub core: CoreConfig,
    pub memory: MemoryConfig,
    /// Length of one loosely-synchronised simulation quantum, in cycles.
    pub quantum: u64,
    /// Number of CAT classes of service (Broadwell-EP exposes 16).
    pub num_clos: usize,
    /// Query-Based Selection in the inclusive LLC (Broadwell's
    /// inclusion-victim mitigation). Disable only for ablation studies.
    pub qbs: bool,
}

impl SystemConfig {
    /// Paper-faithful geometry: the Intel Xeon E5-2620 v4.
    pub fn paper() -> Self {
        SystemConfig {
            num_cores: 8,
            l1: CacheGeometry { size_bytes: 32 << 10, ways: 8, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 256 << 10, ways: 8, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 20 * (1 << 20), ways: 20, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 1000,
            num_clos: 16,
            qbs: true,
        }
    }

    /// Scaled geometry for fast simulation: identical topology and way
    /// counts, LLC shrunk to 2.5 MiB (20 ways × 2048 sets).
    ///
    /// `num_cores` is configurable so unit tests can run tiny systems.
    pub fn scaled(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            l1: CacheGeometry { size_bytes: 32 << 10, ways: 8, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 256 << 10, ways: 8, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 2560 << 10, ways: 20, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 1000,
            num_clos: 16,
            qbs: true,
        }
    }

    /// A deliberately tiny machine for unit tests: 2-way 4 KiB L1,
    /// 8 KiB L2, 4-way 32 KiB LLC.
    pub fn tiny(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            l1: CacheGeometry { size_bytes: 4 << 10, ways: 2, hit_latency: 4 },
            l2: CacheGeometry { size_bytes: 8 << 10, ways: 4, hit_latency: 12 },
            llc: CacheGeometry { size_bytes: 32 << 10, ways: 4, hit_latency: 40 },
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            quantum: 200,
            num_clos: 4,
            qbs: true,
        }
    }

    /// Panics if any component geometry is inconsistent.
    pub fn validate(&self) {
        assert!(self.num_cores > 0);
        assert!(self.num_clos >= 1 && self.num_clos <= 64);
        assert!(self.quantum > 0);
        self.l1.validate();
        self.l2.validate();
        self.llc.validate();
        assert!(self.llc.ways <= 64, "CAT masks are u64 way bitmaps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_e5_2620_v4() {
        let cfg = SystemConfig::paper();
        cfg.validate();
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc.ways, 20);
        assert_eq!(cfg.llc.sets(), 16384);
        assert_eq!(cfg.llc.size_bytes, 20 * 1024 * 1024);
    }

    #[test]
    fn scaled_keeps_llc_way_count() {
        let cfg = SystemConfig::scaled(8);
        cfg.validate();
        assert_eq!(cfg.llc.ways, SystemConfig::paper().llc.ways);
        assert_eq!(cfg.llc.sets(), 2048);
    }

    #[test]
    fn tiny_is_valid() {
        SystemConfig::tiny(2).validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        CacheGeometry { size_bytes: 3 * 64 * 8, ways: 8, hit_latency: 1 }.validate();
    }
}
