//! End-to-end hierarchy invariants on randomised workloads: PMU counter
//! consistency, CAT semantics under the full machine, and conservation
//! relations between levels.

use cmm_sim::config::SystemConfig;
use cmm_sim::msr::contiguous_mask;
use cmm_sim::workload::{Op, Workload};
use cmm_sim::System;
use proptest::prelude::*;

/// A deterministic pseudo-random workload parameterised by seed.
struct RandomWalk {
    state: u64,
    span_lines: u64,
    burst: u32,
    left: u32,
    line: u64,
    compute: u32,
    phase: bool,
}

impl RandomWalk {
    fn new(seed: u64, span_lines: u64, burst: u32, compute: u32) -> Self {
        RandomWalk { state: seed | 1, span_lines, burst, left: 0, line: 0, compute, phase: false }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }
}

impl Workload for RandomWalk {
    fn next(&mut self) -> Op {
        if self.phase && self.compute > 0 {
            self.phase = false;
            return Op::Compute { cycles: self.compute };
        }
        self.phase = true;
        if self.left == 0 {
            self.line = self.next_u64() % self.span_lines;
            self.left = self.burst;
        }
        self.left -= 1;
        let addr = self.line * 64;
        self.line = (self.line + 1) % self.span_lines;
        if self.next_u64().is_multiple_of(5) {
            Op::Store { addr, pc: 0x500 }
        } else {
            Op::Load { addr, pc: 0x400 + (self.next_u64() % 4) * 4 }
        }
    }

    fn mlp(&self) -> u32 {
        4
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "random-walk"
    }
}

fn machine(seed: u64, cores: usize) -> System {
    let cfg = SystemConfig::tiny(cores);
    let ws = (0..cores)
        .map(|i| {
            Box::new(RandomWalk::new(
                seed.wrapping_mul(31).wrapping_add(i as u64),
                1 << 12,
                (seed % 4) as u32 + 1,
                (seed % 7) as u32,
            )) as Box<dyn Workload + Send>
        })
        .collect();
    System::new(cfg, ws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PMU counters obey their structural relations for any workload.
    #[test]
    fn pmu_counters_consistent(seed in 0u64..1000, cores in 1usize..4) {
        let mut sys = machine(seed, cores);
        sys.run(60_000);
        for c in 0..cores {
            let p = sys.pmu(c);
            prop_assert!(p.l1d_misses <= p.l1d_accesses);
            prop_assert!(p.l2_dm_miss <= p.l2_dm_req);
            prop_assert!(p.l2_pf_miss <= p.l2_pf_req);
            prop_assert!(p.llc_pf_to_mem <= p.l2_pf_miss + p.l1_pf_req);
            prop_assert!(p.stalls_l2_pending <= p.stall_cycles);
            prop_assert!(p.stall_cycles <= p.cycles);
            prop_assert!(p.instructions > 0);
            // A demand line can only arrive at L2 after missing L1.
            prop_assert!(p.l2_dm_req <= p.l1d_misses);
        }
    }

    /// Memory traffic attributed to cores equals the controller's total.
    #[test]
    fn traffic_conservation(seed in 0u64..1000) {
        let mut sys = machine(seed, 2);
        sys.run(50_000);
        for c in 0..2 {
            let pmu = sys.pmu(c);
            let t = sys.traffic(c);
            prop_assert_eq!(pmu.mem_demand_bytes, t.demand_bytes);
            prop_assert_eq!(pmu.mem_prefetch_bytes, t.prefetch_bytes);
            prop_assert_eq!(pmu.mem_writeback_bytes, t.writeback_bytes);
        }
    }

    /// Changing one core's CAT mask never perturbs a different machine's
    /// determinism, and the restricted core keeps making progress.
    #[test]
    fn cat_restriction_is_safe(seed in 0u64..1000, width in 1u32..4) {
        let mut sys = machine(seed, 2);
        sys.set_clos_mask(1, contiguous_mask(0, width)).unwrap();
        sys.assign_clos(0, 1).unwrap();
        sys.run(50_000);
        prop_assert!(sys.pmu(0).instructions > 0);
        prop_assert!(sys.pmu(1).instructions > 0);
        prop_assert_eq!(sys.effective_mask(0), contiguous_mask(0, width));
    }

    /// Prefetcher disable bits eliminate all prefetch-side PMU activity.
    #[test]
    fn disabled_prefetchers_stay_silent(seed in 0u64..1000) {
        let mut sys = machine(seed, 2);
        sys.set_prefetching(0, false);
        sys.run(50_000);
        let p = sys.pmu(0);
        prop_assert_eq!(p.l2_pf_req, 0);
        prop_assert_eq!(p.l1_pf_req, 0);
        prop_assert_eq!(p.mem_prefetch_bytes, 0);
        // The other core still prefetches.
        prop_assert!(sys.pmu(1).l2_pf_req + sys.pmu(1).l1_pf_req > 0);
    }

    /// Runs decompose: run(a); run(b) ≡ run(a+b) for the PMU state.
    #[test]
    fn run_is_compositional(seed in 0u64..500, split in 1u64..40) {
        let mut one = machine(seed, 2);
        one.run(50_000);
        let mut two = machine(seed, 2);
        two.run(split * 1000);
        two.run(50_000 - split * 1000);
        prop_assert_eq!(one.pmu_all(), two.pmu_all());
    }
}
