//! Multi-socket topology invariants on a tiny 2x2 machine: the
//! cross-socket penalty of shared-controller layouts, per-socket CAT
//! isolation, snapshot/restore equality, and a 1xN-vs-Nx1 equivalence
//! property for non-interacting workloads.

use cmm_sim::config::{SystemConfig, Topology};
use cmm_sim::msr::{IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC};
use cmm_sim::workload::{Idle, Op, Workload};
use cmm_sim::System;
use proptest::prelude::*;

/// A dependent-chain pointer chase: one outstanding load at a time, each
/// to a fresh line far beyond any cache, so every access is a memory fill
/// of constant service time.
#[derive(Clone)]
struct Chase {
    line: u64,
    base: u64,
}

impl Workload for Chase {
    fn next(&mut self) -> Op {
        self.line = self.line.wrapping_add(97); // odd stride, defeats reuse
        Op::Load { addr: self.base + (self.line % (1 << 30)) * 64, pc: 0x400 }
    }
    fn mlp(&self) -> u32 {
        1
    }
    fn reset(&mut self) {
        self.line = 0;
    }
    fn name(&self) -> &str {
        "chase"
    }
    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// A cache-resident sequential loop: `lines` contiguous lines at `base`,
/// touched round-robin. Small enough footprints never reach memory after
/// the first pass.
#[derive(Clone)]
struct Loop {
    base: u64,
    lines: u64,
    pos: u64,
    compute: u32,
    phase: bool,
}

impl Workload for Loop {
    fn next(&mut self) -> Op {
        if self.phase && self.compute > 0 {
            self.phase = false;
            return Op::Compute { cycles: self.compute };
        }
        self.phase = true;
        let a = self.base + self.pos * 64;
        self.pos = (self.pos + 1) % self.lines;
        Op::Load { addr: a, pc: 0x400 }
    }
    fn mlp(&self) -> u32 {
        2
    }
    fn reset(&mut self) {
        self.pos = 0;
    }
    fn name(&self) -> &str {
        "loop"
    }
    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// 2 sockets × 1 core over one shared controller homed on socket 0, with
/// only core 1 (the *remote* socket) running a chase; `extra_latency` is
/// added to the memory controller's unloaded round trip. Returns the
/// remote core's whole-run PMU.
fn remote_chase_pmu(penalty: u64, extra_latency: u64, window: u64) -> cmm_sim::pmu::Pmu {
    let mut topo = Topology::grid(2, 1);
    topo.mem_per_socket = false;
    topo.cross_socket_penalty = penalty;
    let mut cfg = SystemConfig::tiny(2);
    cfg.set_topology(topo);
    cfg.memory.base_latency += extra_latency;
    let wl: Vec<Box<dyn Workload + Send>> =
        vec![Box::new(Idle), Box::new(Chase { line: 0, base: 1 << 36 })];
    let mut sys = System::new(cfg, wl);
    sys.run(window);
    sys.pmu(1)
}

#[test]
fn remote_access_penalty_applied_exactly_once_per_fill() {
    const WINDOW: u64 = 200_000;
    // A remote core paying penalty P is indistinguishable from one whose
    // memory is simply P cycles further away: the penalty lands on every
    // fill exactly once (demand and prefetch alike), never twice and
    // never on a subset. A double-applied penalty would match the +2P
    // machine instead.
    for p in [100u64, 250] {
        let penalized = remote_chase_pmu(p, 0, WINDOW);
        assert_eq!(penalized, remote_chase_pmu(0, p, WINDOW), "penalty {p} == +{p} latency");
        assert_ne!(penalized, remote_chase_pmu(0, 2 * p, WINDOW), "not applied twice");
    }
    // And with no penalty, the remote core matches the plain machine.
    assert_eq!(remote_chase_pmu(0, 0, WINDOW), remote_chase_pmu(0, 0, WINDOW));
    assert!(remote_chase_pmu(0, 0, WINDOW).instructions > 0, "the chase actually ran");
}

#[test]
fn clos_masks_are_isolated_per_socket() {
    let mut cfg = SystemConfig::tiny(4);
    cfg.set_topology(Topology::grid(2, 2));
    let mut sys = System::new(cfg, (0..4).map(|_| Box::new(Idle) as _).collect());
    // Program CLOS 1 differently on each socket, through a core of that
    // socket, then put one core per socket into CLOS 1.
    sys.write_msr(0, IA32_L3_QOS_MASK_BASE + 1, 0b0011).unwrap();
    sys.write_msr(2, IA32_L3_QOS_MASK_BASE + 1, 0b1100).unwrap();
    sys.write_msr(1, IA32_PQR_ASSOC, 1).unwrap();
    sys.write_msr(3, IA32_PQR_ASSOC, 1).unwrap();
    assert_eq!(sys.effective_mask(1), 0b0011, "socket 0's CLOS 1");
    assert_eq!(sys.effective_mask(3), 0b1100, "socket 1's CLOS 1");
    // Cores left in CLOS 0 keep the full default mask on both sockets.
    assert_eq!(sys.effective_mask(0), 0b1111);
    assert_eq!(sys.effective_mask(2), 0b1111);
    // Resetting one CAT domain must not disturb the other socket.
    sys.reset_cat_domain(0);
    assert_eq!(sys.effective_mask(1), 0b1111, "socket 0 back to default");
    assert_eq!(sys.effective_mask(3), 0b1100, "socket 1 untouched");
}

#[test]
fn snapshot_restore_is_exact_on_a_2x2_machine() {
    let mut cfg = SystemConfig::tiny(4);
    let mut topo = Topology::grid(2, 2);
    topo.mem_per_socket = false;
    topo.cross_socket_penalty = 50;
    cfg.set_topology(topo);
    let build = |i: usize| -> Box<dyn Workload + Send> {
        Box::new(Chase { line: i as u64 * 13, base: (i as u64 + 1) << 36 })
    };
    let mut sys = System::new(cfg, (0..4).map(build).collect());
    sys.write_msr(3, IA32_L3_QOS_MASK_BASE + 1, 0b0011).unwrap();
    sys.write_msr(3, IA32_PQR_ASSOC, 1).unwrap();
    sys.run(20_000);
    let snap = sys.snapshot().expect("chase workloads are cloneable");
    sys.run(20_000);
    let mut twin = snap.restore();
    twin.run(20_000);
    assert_eq!(sys.now(), twin.now());
    assert_eq!(sys.pmu_all(), twin.pmu_all(), "restored run must replay exactly");
    for core in 0..4 {
        assert_eq!(sys.effective_mask(core), twin.effective_mask(core));
    }
}

/// Machines where cores cannot interact must make the socket grouping
/// unobservable: N cache-resident loops with disjoint, set-disjoint
/// footprints behave identically on one N-core socket and on N one-core
/// sockets sharing a penalty-free controller.
fn pmu_after(
    sockets: usize,
    cores_per_socket: usize,
    seeds: &[u64],
    window: u64,
) -> Vec<cmm_sim::pmu::Pmu> {
    let n = sockets * cores_per_socket;
    let mut topo = Topology::grid(sockets, cores_per_socket);
    topo.mem_per_socket = false;
    topo.cross_socket_penalty = 0;
    let mut cfg = SystemConfig::tiny(n);
    cfg.set_topology(topo);
    // tiny() LLC: 32 KiB, 4-way, 64 B lines -> 128 sets. Each core loops
    // over 16 lines in its own quarter of the set index space (and its own
    // 64 GiB window), so the shared-LLC and private-LLC layouts see the
    // same hits and misses.
    let wl: Vec<Box<dyn Workload + Send>> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            Box::new(Loop {
                base: ((i as u64 + 1) << 36) + (i as u64 % 4) * 32 * 64,
                lines: 8 + seed % 8,
                pos: 0,
                compute: (seed % 5) as u32,
                phase: false,
            }) as _
        })
        .collect();
    let mut sys = System::new(cfg, wl);
    for c in 0..n {
        sys.set_prefetching(c, false);
    }
    sys.run(window);
    sys.pmu_all()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn flat_and_sharded_topologies_agree_without_interaction(
        n in 2usize..=4,
        seeds in proptest::collection::vec(0u64..1000, 4),
        window in 5_000u64..20_000,
    ) {
        let flat = pmu_after(1, n, &seeds[..n], window);
        let sharded = pmu_after(n, 1, &seeds[..n], window);
        prop_assert_eq!(flat, sharded);
    }
}
