//! MBA bandwidth-throttle invariants: level 0 is the identity, higher
//! delay levels monotonically reduce memory traffic, the throttle and the
//! cross-socket fill penalty compose without double-counting, and
//! snapshot/restore carries the MBA state exactly.

use cmm_sim::config::{SystemConfig, Topology};
use cmm_sim::msr::MSR_MBA_THROTTLE;
use cmm_sim::workload::{Idle, Op, Workload};
use cmm_sim::System;

/// A streaming scan with deep MLP: every load is a fresh line far beyond
/// any cache, eight misses in flight, so throughput is limited by channel
/// bandwidth (not latency) — the regime where MBA throttling bites.
#[derive(Clone)]
struct Chase {
    line: u64,
    base: u64,
}

impl Workload for Chase {
    fn next(&mut self) -> Op {
        self.line = self.line.wrapping_add(97);
        Op::Load { addr: self.base + (self.line % (1 << 30)) * 64, pc: 0x400 }
    }
    fn mlp(&self) -> u32 {
        8
    }
    fn reset(&mut self) {
        self.line = 0;
    }
    fn name(&self) -> &str {
        "chase"
    }
    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

fn chase_machine(cores: usize) -> System {
    let wl: Vec<Box<dyn Workload + Send>> = (0..cores)
        .map(|i| Box::new(Chase { line: i as u64 * 13, base: (i as u64 + 1) << 36 }) as _)
        .collect();
    System::new(SystemConfig::tiny(cores), wl)
}

#[test]
fn level_zero_is_byte_identical_to_an_untouched_machine() {
    // Explicitly programming the power-on level 0 on every core must not
    // perturb a single counter: the throttle gate's fast path leaves the
    // machine's schedule untouched, so pre-MBA behaviour is preserved
    // exactly whenever the knob is left (or set) at 0.
    let mut plain = chase_machine(2);
    let mut zeroed = chase_machine(2);
    for c in 0..2 {
        zeroed.write_msr(c, MSR_MBA_THROTTLE, 0).unwrap();
    }
    plain.run(100_000);
    zeroed.run(100_000);
    assert_eq!(plain.pmu_all(), zeroed.pmu_all());
    assert_eq!(plain.now(), zeroed.now());
    assert!(plain.pmu(0).mem_demand_bytes > 0, "the chase actually hit memory");
}

#[test]
fn higher_delay_levels_monotonically_reduce_bandwidth() {
    // Sweep the whole valid level range on a bandwidth-bound core: bytes
    // moved from memory must be non-increasing in the delay level, and the
    // heaviest throttle must show a real reduction against unthrottled.
    let window = 200_000;
    let mut bytes = Vec::new();
    for level in (0..=90).step_by(10) {
        let mut sys = chase_machine(1);
        sys.write_msr(0, MSR_MBA_THROTTLE, level).unwrap();
        sys.run(window);
        bytes.push(sys.pmu(0).mem_total_bytes());
    }
    for w in bytes.windows(2) {
        assert!(w[1] <= w[0], "bandwidth rose under a higher delay level: {bytes:?}");
    }
    assert!(
        *bytes.last().unwrap() < bytes[0] / 2,
        "level 90 must cut a bandwidth-bound core's traffic hard: {bytes:?}"
    );
}

#[test]
fn throttle_only_slows_the_throttled_core() {
    // Two identical chases on separate address windows: throttling core 1
    // must not steal throughput from core 0 (it can only free bandwidth
    // up, never reduce the sibling).
    let window = 200_000;
    let mut free = chase_machine(2);
    free.run(window);
    let mut gated = chase_machine(2);
    gated.write_msr(1, MSR_MBA_THROTTLE, 90).unwrap();
    gated.run(window);
    assert!(
        gated.pmu(1).instructions < free.pmu(1).instructions,
        "the throttled core must slow down"
    );
    assert!(
        gated.pmu(0).instructions >= free.pmu(0).instructions,
        "the unthrottled sibling must not get slower: free c0={} c1={} gated c0={} c1={}",
        free.pmu(0).instructions,
        free.pmu(1).instructions,
        gated.pmu(0).instructions,
        gated.pmu(1).instructions,
    );
}

/// 2 sockets × 1 core over one shared controller homed on socket 0, the
/// remote core running a chase under `level`; `extra_latency` pads the
/// controller's unloaded round trip. Returns the remote core's PMU.
fn remote_throttled_pmu(
    penalty: u64,
    extra_latency: u64,
    level: u64,
    window: u64,
) -> cmm_sim::pmu::Pmu {
    let mut topo = Topology::grid(2, 1);
    topo.mem_per_socket = false;
    topo.cross_socket_penalty = penalty;
    let mut cfg = SystemConfig::tiny(2);
    cfg.set_topology(topo);
    cfg.memory.base_latency += extra_latency;
    let wl: Vec<Box<dyn Workload + Send>> =
        vec![Box::new(Idle), Box::new(Chase { line: 0, base: 1 << 36 })];
    let mut sys = System::new(cfg, wl);
    sys.write_msr(1, MSR_MBA_THROTTLE, level).unwrap();
    sys.run(window);
    sys.pmu(1)
}

#[test]
fn throttle_and_cross_socket_penalty_compose_exactly_once() {
    const WINDOW: u64 = 200_000;
    // Under any MBA level, a remote core paying penalty P must remain
    // indistinguishable from one whose memory is P cycles further away:
    // the penalty still lands exactly once per fill, and the throttle
    // gate never double-applies it (a gated fill re-entering the
    // controller must not pay the penalty again).
    for level in [0u64, 40, 90] {
        for p in [100u64, 250] {
            let penalized = remote_throttled_pmu(p, 0, level, WINDOW);
            assert_eq!(
                penalized,
                remote_throttled_pmu(0, p, level, WINDOW),
                "level {level}: penalty {p} == +{p} latency"
            );
            assert_ne!(
                penalized,
                remote_throttled_pmu(0, 2 * p, level, WINDOW),
                "level {level}: penalty {p} applied twice"
            );
        }
    }
}

#[test]
fn snapshot_restore_carries_mba_state_exactly() {
    let mut sys = chase_machine(2);
    sys.write_msr(0, MSR_MBA_THROTTLE, 40).unwrap();
    sys.write_msr(1, MSR_MBA_THROTTLE, 90).unwrap();
    sys.run(50_000);
    let snap = sys.snapshot().expect("chase workloads are cloneable");
    sys.run(50_000);
    let mut twin = snap.restore();
    // The restored machine must read back the programmed levels...
    assert_eq!(twin.read_msr(0, MSR_MBA_THROTTLE).unwrap(), 40);
    assert_eq!(twin.read_msr(1, MSR_MBA_THROTTLE).unwrap(), 90);
    // ...and replay the original's gated schedule cycle-exactly,
    // including mid-window limiter state (deferral clocks).
    twin.run(50_000);
    assert_eq!(sys.now(), twin.now());
    assert_eq!(sys.pmu_all(), twin.pmu_all(), "restored run must replay exactly");
}
