//! Event-core semantics tests: the batched op ring, compute-run
//! coalescing, and snapshot/restore must be observationally identical to
//! the one-op-at-a-time cycle-stepped loop they replaced.
//!
//! Three layers of defence:
//!
//! * a **reference-model property test**: for arbitrary compute-cycle
//!   streams, the core's clock and instruction count after every quantum
//!   must match a transliteration of the pre-batching loop — in
//!   particular, coalescing must stop popping at exactly the same op, so
//!   the skipped-to cycle never overshoots a quantum boundary by more
//!   than the op that crossed it;
//! * a **golden fixture** over a stall-heavy + idle + pointer-chase mix:
//!   the full PMU images after a fixed run are pinned, so any semantic
//!   drift in the hot loop shows up as a failed digest, not a silent
//!   perf-figure shift;
//! * **snapshot/restore equivalence**: a machine restored from a snapshot
//!   must continue byte-for-byte like the machine that was snapshotted.

use cmm_sim::config::SystemConfig;
use cmm_sim::pmu::Pmu;
use cmm_sim::{Op, System, Workload};
use proptest::prelude::*;

/// Replays a scripted op list forever (looping), cloneable for snapshots.
#[derive(Clone)]
struct Scripted {
    ops: Vec<Op>,
    pos: usize,
    mlp: u32,
}

impl Scripted {
    fn new(ops: Vec<Op>, mlp: u32) -> Self {
        assert!(!ops.is_empty());
        Scripted { ops, pos: 0, mlp }
    }
}

impl Workload for Scripted {
    fn next(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
    fn mlp(&self) -> u32 {
        self.mlp
    }
    fn reset(&mut self) {
        self.pos = 0;
    }
    fn name(&self) -> &str {
        "scripted"
    }
    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// The pre-batching consumption loop, transliterated: one op per
/// iteration, `while time < qend`, compute advances the clock by
/// `cycles.max(1)`. Returns (time, instructions) after simulating
/// `quanta` quanta of length `quantum` over a compute-only stream.
fn reference_compute_consumption(ops: &[u32], quantum: u64, quanta: u64) -> (u64, u64) {
    let mut time = 0u64;
    let mut instructions = 0u64;
    let mut pos = 0usize;
    for q in 1..=quanta {
        let qend = q * quantum;
        while time < qend {
            let c = u64::from(ops[pos].max(1));
            pos = (pos + 1) % ops.len();
            time += c;
            instructions += c;
        }
    }
    (time, instructions)
}

proptest! {
    /// Compute-run coalescing must consume exactly the ops the reference
    /// loop consumes — no quantum-boundary overshoot beyond the single op
    /// that crosses it, for any stream of op lengths and any quantum.
    #[test]
    fn coalesced_compute_matches_cycle_stepped_reference(
        ops in proptest::collection::vec(0u32..2_000, 1..40),
        quantum in 50u64..2_000,
        quanta in 1u64..40,
    ) {
        let mut cfg = SystemConfig::tiny(1);
        cfg.quantum = quantum;
        let wl = Scripted::new(
            ops.iter().map(|&c| Op::Compute { cycles: c }).collect(),
            1,
        );
        let mut sys = System::new(cfg, vec![Box::new(wl)]);
        sys.run(quantum * quanta);
        let (ref_time, ref_instr) = reference_compute_consumption(&ops, quantum, quanta);
        let pmu = sys.pmu(0);
        prop_assert_eq!(pmu.cycles, ref_time, "local clock diverged from the reference loop");
        prop_assert_eq!(pmu.instructions, ref_instr, "op consumption diverged");
        // The overshoot bound the coalescing loop must preserve: the clock
        // passes the final quantum boundary by less than one op.
        let max_op = u64::from(ops.iter().copied().max().unwrap().max(1));
        prop_assert!(pmu.cycles >= quantum * quanta);
        prop_assert!(pmu.cycles < quantum * quanta + max_op);
    }
}

/// A stall-heavy, idle-core-mixed machine for the fixture and the
/// snapshot tests: core 0 points-chases (load-to-use dependent misses,
/// MLP 1 — stall dominated), core 1 streams with stores, core 2 is pure
/// compute (never touches memory), core 3 alternates compute bursts with
/// random loads.
fn stall_mix_system() -> System {
    let line = 64u64;
    let chase: Vec<Op> =
        (0..512u64).map(|i| Op::Load { addr: (i * 7919 % 4096) * line, pc: 0x100 }).collect();
    let stream: Vec<Op> = (0..256u64)
        .flat_map(|i| {
            [Op::Store { addr: (1 << 22) + i * line, pc: 0x200 }, Op::Compute { cycles: 2 }]
        })
        .collect();
    let compute = vec![Op::Compute { cycles: 17 }, Op::Compute { cycles: 3 }];
    let bursty: Vec<Op> = (0..128u64)
        .flat_map(|i| {
            [
                Op::Compute { cycles: 40 },
                Op::Load { addr: (2 << 22) + (i * 6151 % 8192) * line, pc: 0x300 },
            ]
        })
        .collect();
    System::new(
        SystemConfig::tiny(4),
        vec![
            Box::new(Scripted::new(chase, 1)),
            Box::new(Scripted::new(stream, 4)),
            Box::new(Scripted::new(compute, 1)),
            Box::new(Scripted::new(bursty, 2)),
        ],
    )
}

/// FNV-1a over every counter of a PMU image, in field order.
fn pmu_digest(pmus: &[Pmu]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in pmus {
        for v in [
            p.cycles,
            p.instructions,
            p.stall_cycles,
            p.stalls_l2_pending,
            p.l1d_accesses,
            p.l1d_misses,
            p.l2_dm_req,
            p.l2_dm_miss,
            p.l2_pf_req,
            p.l2_pf_miss,
            p.l3_load_miss,
            p.l1_pf_req,
            p.llc_pf_to_mem,
            p.pf_used,
            p.pf_wasted,
            p.mem_demand_bytes,
            p.mem_prefetch_bytes,
            p.mem_writeback_bytes,
        ] {
            mix(v);
        }
    }
    h
}

/// Golden digest of the stall-mix machine after 300 k cycles, captured
/// from the cycle-stepped core (pre-batching semantics, verified
/// byte-identical through the full `repro` golden-diff when the event
/// core landed). If this fails, the hot loop's observable behaviour
/// changed — that is a correctness bug, not a fixture to refresh, unless
/// the change is a deliberate, documented semantics change.
const STALL_MIX_DIGEST_300K: u64 = 0x382f_1b5e_7188_90b2;

#[test]
fn stall_heavy_idle_mix_matches_golden_fixture() {
    let mut sys = stall_mix_system();
    sys.run(300_000);
    let got = pmu_digest(&sys.pmu_all());
    assert_eq!(
        got, STALL_MIX_DIGEST_300K,
        "stall-mix PMU digest drifted from the cycle-stepped golden fixture (got {got:#018x})",
    );
}

#[test]
fn quantum_size_does_not_change_op_consumption_totals() {
    // The batched ring refills ahead of consumption; refill timing must
    // not leak into semantics. Two machines differing only in quantum
    // size agree wherever their quantum boundaries coincide.
    let run = |quantum: u64| {
        let mut cfg = SystemConfig::tiny(1);
        cfg.quantum = quantum;
        let wl = Scripted::new(vec![Op::Compute { cycles: 13 }, Op::Compute { cycles: 1 }], 1);
        let mut sys = System::new(cfg, vec![Box::new(wl)]);
        sys.run(60_000);
        (sys.pmu(0).cycles, sys.pmu(0).instructions)
    };
    // 60k is a common multiple: identical boundary sets ⇒ identical runs.
    assert_eq!(run(200), run(200));
    let (c_small, i_small) = run(100);
    let (c_big, i_big) = run(300);
    // Boundaries at multiples of 300 are shared; totals agree there.
    assert_eq!(c_small, c_big);
    assert_eq!(i_small, i_big);
}

#[test]
fn snapshot_restore_resumes_byte_identically() {
    let mut live = stall_mix_system();
    live.run(120_000);
    let snap = live.snapshot().expect("scripted workloads are cloneable");

    // Restored machines resume exactly where the live machine was...
    let mut a = snap.restore();
    assert_eq!(a.now(), live.now());
    assert_eq!(a.pmu_all(), live.pmu_all());

    // ...and continue byte-for-byte like it, as does a second restore.
    live.run(90_000);
    a.run(90_000);
    assert_eq!(a.pmu_all(), live.pmu_all(), "restored run diverged from the live machine");
    for c in 0..4 {
        assert_eq!(a.traffic(c), live.traffic(c));
    }

    let mut b = snap.restore();
    b.run(90_000);
    assert_eq!(b.pmu_all(), a.pmu_all(), "two restores of one snapshot diverged");
}

#[test]
fn snapshot_captures_control_state() {
    let mut sys = stall_mix_system();
    sys.set_prefetching(2, false);
    sys.set_clos_mask(1, 0b11).unwrap();
    sys.assign_clos(0, 1).unwrap();
    sys.run(50_000);
    let snap = sys.snapshot().expect("cloneable");
    let restored = snap.restore();
    assert_eq!(restored.control_state(), sys.control_state());
    assert!(!restored.prefetching_enabled(2));
    assert_eq!(restored.effective_mask(0), 0b11);
}

#[test]
fn snapshot_is_none_for_uncloneable_workloads() {
    struct Opaque;
    impl Workload for Opaque {
        fn next(&mut self) -> Op {
            Op::Compute { cycles: 1 }
        }
        fn mlp(&self) -> u32 {
            1
        }
        fn reset(&mut self) {}
        fn name(&self) -> &str {
            "opaque"
        }
        // No try_clone_box: the default declines.
    }
    let sys = System::new(SystemConfig::tiny(1), vec![Box::new(Opaque)]);
    assert!(sys.snapshot().is_none(), "uncloneable workloads must refuse to snapshot");
}
