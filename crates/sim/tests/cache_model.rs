//! Property tests: the set-associative cache against a naive reference
//! model, plus structural invariants under arbitrary operation sequences.

use cmm_sim::cache::Cache;
use cmm_sim::config::CacheGeometry;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Naive fully-explicit LRU reference: per set, a recency queue of lines.
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per-set recency order, most-recent last.
    q: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        RefCache { sets, ways, q: (0..sets).map(|_| VecDeque::new()).collect() }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets) as usize
    }

    fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.q[s].iter().position(|&l| l == line) {
            let l = self.q[s].remove(pos).unwrap();
            self.q[s].push_back(l);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, line: u64) -> Option<u64> {
        let s = self.set_of(line);
        if let Some(pos) = self.q[s].iter().position(|&l| l == line) {
            let l = self.q[s].remove(pos).unwrap();
            self.q[s].push_back(l);
            return None;
        }
        let evicted = if self.q[s].len() == self.ways { self.q[s].pop_front() } else { None };
        self.q[s].push_back(line);
        evicted
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Insert(u64),
    Invalidate(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..256).prop_map(Op::Access),
            (0u64..256).prop_map(Op::Insert),
            (0u64..256).prop_map(Op::Invalidate),
        ],
        1..400,
    )
}

proptest! {
    /// With the full allocation mask and no QBS protection the cache must
    /// behave exactly like textbook per-set LRU.
    #[test]
    fn matches_reference_lru(ops in arb_ops()) {
        // 8 sets × 4 ways.
        let geom = CacheGeometry { size_bytes: 8 * 4 * 64, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(geom);
        let mut reference = RefCache::new(8, 4);
        for op in ops {
            match op {
                Op::Access(l) => {
                    prop_assert_eq!(cache.access(l).is_some(), reference.access(l), "access {}", l);
                }
                Op::Insert(l) => {
                    let ev = cache.insert(l, false, u64::MAX).map(|e| e.line);
                    let ev_ref = reference.insert(l);
                    prop_assert_eq!(ev, ev_ref, "insert {}", l);
                }
                Op::Invalidate(l) => {
                    let s = reference.set_of(l);
                    let present = reference.q[s].iter().position(|&x| x == l);
                    if let Some(pos) = present {
                        reference.q[s].remove(pos);
                    }
                    prop_assert_eq!(cache.invalidate_line(l).is_some(), present.is_some());
                }
            }
        }
        // Final contents agree.
        for l in 0u64..256 {
            let s = reference.set_of(l);
            prop_assert_eq!(cache.contains(l), reference.q[s].contains(&l), "line {}", l);
        }
    }

    /// Lines inserted under a restricted mask never push out more lines
    /// than the mask has ways, and hits remain possible on every resident
    /// line regardless of mask.
    #[test]
    fn masked_inserts_bounded_by_mask_width(
        lines in proptest::collection::vec(0u64..64, 1..100),
        mask_width in 1u32..4,
    ) {
        let geom = CacheGeometry { size_bytes: 8 * 4 * 64, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(geom);
        let mask = (1u64 << mask_width) - 1;
        for &l in &lines {
            cache.insert(l, false, mask);
        }
        // Per set, at most mask_width of the inserted lines can survive.
        for set in 0..8u64 {
            let resident = (0..64u64)
                .filter(|l| l % 8 == set && cache.contains(*l))
                .count();
            prop_assert!(resident <= mask_width as usize, "set {set}: {resident} lines");
        }
    }

    /// QBS: protected lines survive any volume of unprotected churn as
    /// long as one unprotected victim exists.
    #[test]
    fn qbs_protects_resident_lines(churn in proptest::collection::vec(0u64..512, 10..200)) {
        let geom = CacheGeometry { size_bytes: 8 * 4 * 64, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(geom);
        // Two protected lines per set would still leave 2 ways of churn room.
        let protected = |l: u64| l < 16; // lines 0..16: two per set
        for l in 0..16u64 {
            cache.insert(l, false, u64::MAX);
        }
        for &l in &churn {
            cache.insert_qbs(l + 16, false, u64::MAX, &protected);
        }
        for l in 0..16u64 {
            prop_assert!(cache.contains(l), "protected line {l} was evicted");
        }
    }

    /// Statistics stay consistent: hits + misses == accesses issued.
    #[test]
    fn stats_accounting(ops in proptest::collection::vec(0u64..128, 1..300)) {
        let geom = CacheGeometry { size_bytes: 4 * 4 * 64, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(geom);
        for (i, &l) in ops.iter().enumerate() {
            if i % 3 == 0 {
                cache.insert(l, false, u64::MAX);
            } else {
                cache.access(l);
            }
        }
        let accesses = ops.iter().enumerate().filter(|(i, _)| i % 3 != 0).count() as u64;
        prop_assert_eq!(cache.stats.hits + cache.stats.misses, accesses);
        prop_assert!(cache.stats.evictions <= cache.stats.insertions);
    }
}
