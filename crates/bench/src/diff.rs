//! `repro journal-diff` — structural comparison of two run journals.
//!
//! A `cmm-journal/*` file is a pure function of (workload, seed,
//! configuration), so two journals of the same run must agree on every
//! *decision*: which cores each epoch put in the Agg set, which trial won,
//! and which way masks / throttle MSRs were applied afterwards. This
//! module reduces each journal to that per-run decision sequence and
//! reports the first divergence per run — a far more useful answer than
//! `cmp`'s byte offset when a refactor changes controller behaviour.
//!
//! Cosmetic fields (metric values, IPCs, fault timestamps) are ignored:
//! the diff asks "did the controller *decide* differently?", not "did the
//! floats format identically?".

use crate::json::{self, Json};

/// The decision content of one profiling epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// 1-based epoch index within the run.
    pub epoch: u64,
    /// Detected Agg set, as journaled.
    pub agg: Vec<u64>,
    /// Winning trial index, if a search ran.
    pub winner: Option<u64>,
    /// Per-core applied CAT way masks.
    pub way_mask: Vec<u64>,
    /// Per-core applied prefetch-throttle MSR images.
    pub msr_1a4: Vec<u64>,
    /// Per-core applied MBA delay levels (`/4` journals; empty when the
    /// epoch left every core unthrottled — the key is elided then).
    pub mba: Vec<u64>,
    /// Fallback mechanism the epoch degraded to, if any (`/2` journals).
    pub degraded: Option<String>,
}

/// One journal reduced to its decision sequences.
#[derive(Debug, Clone)]
pub struct Decisions {
    /// Manifest `schema` line (`cmm-journal/1`..`/4`). A `/4` journal
    /// records a third resource (MBA levels) that earlier schemas cannot
    /// express, so callers refuse cross-schema diffs the same way they
    /// refuse cross-topology ones.
    pub schema: String,
    /// Manifest `config_digest` (used for a mismatch *note*, not a
    /// divergence: comparing different configs is legitimate).
    pub config_digest: String,
    /// Manifest `topology` (`/3` journals). Comparing journals from
    /// different machine shapes is meaningless — per-domain decision
    /// sequences don't line up — so callers refuse the diff outright.
    pub topology: Option<String>,
    /// Per-run decision sequences, in first-appearance order. Multi-socket
    /// epochs key as `"<run> [d<domain>]"`, one sequence per CAT domain.
    pub runs: Vec<(String, Vec<Decision>)>,
}

fn u64s(v: Option<&Json>) -> Vec<u64> {
    v.and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default()
}

/// Parses a journal into its [`Decisions`]. Accepts any `cmm-journal/*`
/// schema — the decision fields exist in `/1` and `/2` alike (`degraded`
/// is simply absent-as-`None` on `/1`). A final line torn by a crash
/// mid-write is dropped (torn-tail salvage) rather than failing the file.
pub fn parse_decisions(text: &str) -> Result<Decisions, String> {
    let salvage = crate::atomic::salvage_jsonl(text);
    let mut lines = salvage.lines.iter();
    let manifest =
        json::parse(lines.next().ok_or_else(|| "empty journal (no manifest)".to_string())?)
            .map_err(|e| format!("manifest: {e}"))?;
    let schema = manifest.get("schema").and_then(Json::as_str).unwrap_or("").to_string();
    if !schema.starts_with("cmm-journal/") {
        return Err(format!("not a cmm journal (schema '{schema}')"));
    }
    let config_digest =
        manifest.get("config_digest").and_then(Json::as_str).unwrap_or("").to_string();
    let topology = manifest.get("topology").and_then(Json::as_str).map(str::to_string);

    let mut runs: Vec<(String, Vec<Decision>)> = Vec::new();
    for (i, line) in lines.enumerate() {
        let rec = json::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        if rec.get("kind").and_then(Json::as_str) != Some("epoch") {
            continue;
        }
        let mut run = rec.get("run").and_then(Json::as_str).unwrap_or("?").to_string();
        if let Some(d) = rec.get("domain").and_then(Json::as_u64) {
            run.push_str(&format!(" [d{d}]"));
        }
        let applied = rec.get("applied");
        let d = Decision {
            epoch: rec.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            agg: u64s(rec.get("agg")),
            winner: rec.get("winner").and_then(Json::as_u64),
            way_mask: u64s(applied.and_then(|a| a.get("way_mask"))),
            msr_1a4: u64s(applied.and_then(|a| a.get("msr_1a4"))),
            mba: u64s(applied.and_then(|a| a.get("mba"))),
            degraded: rec.get("degraded").and_then(Json::as_str).map(str::to_string),
        };
        match runs.iter_mut().find(|(name, _)| *name == run) {
            Some((_, seq)) => seq.push(d),
            None => runs.push((run, vec![d])),
        }
    }
    Ok(Decisions { schema, config_digest, topology, runs })
}

/// Outcome of comparing two journals' decision sequences.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Context that does not count as divergence (config-digest mismatch).
    pub notes: Vec<String>,
    /// Human-readable divergences; empty means the decisions are
    /// identical.
    pub divergences: Vec<String>,
}

impl DiffReport {
    /// True when no decision diverged.
    pub fn identical(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Renders the report for the terminal.
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.identical() {
            out.push_str(&format!("journal-diff: decisions identical ({a_name} vs {b_name})\n"));
        } else {
            for d in &self.divergences {
                out.push_str(&format!("diverged: {d}\n"));
            }
            out.push_str(&format!(
                "journal-diff: {} divergence(s) ({a_name} vs {b_name})\n",
                self.divergences.len()
            ));
        }
        out
    }
}

fn describe(d: &Decision) -> String {
    format!(
        "agg={:?} winner={:?} way_mask={:?} msr_1a4={:?} mba={:?} degraded={:?}",
        d.agg, d.winner, d.way_mask, d.msr_1a4, d.mba, d.degraded
    )
}

/// Compares two decision sets run by run, reporting runs missing from one
/// side, epoch-count mismatches, and the first differing epoch per run.
pub fn diff(a: &Decisions, b: &Decisions) -> DiffReport {
    let mut rep = DiffReport::default();
    if a.config_digest != b.config_digest {
        rep.notes.push(format!(
            "config digests differ ({} vs {}); comparing decisions anyway",
            a.config_digest, b.config_digest
        ));
    }
    for (run, seq_a) in &a.runs {
        let Some((_, seq_b)) = b.runs.iter().find(|(name, _)| name == run) else {
            rep.divergences.push(format!("run '{run}' missing from second journal"));
            continue;
        };
        if let Some((da, db)) = seq_a.iter().zip(seq_b).find(|(da, db)| da != db) {
            rep.divergences.push(format!(
                "run '{run}' epoch {}: {} != {}",
                da.epoch,
                describe(da),
                describe(db)
            ));
            continue;
        }
        if seq_a.len() != seq_b.len() {
            rep.divergences.push(format!("run '{run}': {} epochs vs {}", seq_a.len(), seq_b.len()));
        }
    }
    for (run, _) in &b.runs {
        if !a.runs.iter().any(|(name, _)| name == run) {
            rep.divergences.push(format!("run '{run}' missing from first journal"));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "{\"schema\":\"cmm-journal/2\",\"kind\":\"manifest\",\
        \"target\":\"table1\",\"quick\":true,\"seed\":42,\"git_sha\":\"x\",\
        \"host\":{\"os\":\"linux\",\"arch\":\"x86_64\",\"cpus\":8},\
        \"config_digest\":\"fnv1a:1\"}";

    fn epoch_line(run: &str, epoch: u64, winner: &str, mask: u64) -> String {
        format!(
            "{{\"kind\":\"epoch\",\"run\":\"{run}\",\"mechanism\":\"CMM-a\",\
             \"epoch\":{epoch},\"cycle\":100,\"cores\":[],\"agg\":[0,2],\
             \"friendly\":[0],\"unfriendly\":[2],\"trials\":[],\
             \"winner\":{winner},\"exec_hm_ipc\":null,\"exec_ipc_delta\":null,\
             \"faults\":[],\"degraded\":null,\
             \"applied\":{{\"clos\":[0],\"way_mask\":[{mask}],\"msr_1a4\":[0],\
             \"prefetch\":[true]}}}}"
        )
    }

    fn journal(lines: &[String]) -> String {
        let mut s = String::from(MANIFEST);
        for l in lines {
            s.push('\n');
            s.push_str(l);
        }
        s.push('\n');
        s
    }

    #[test]
    fn identical_journals_have_no_divergence() {
        let j = journal(&[epoch_line("A: CMM-a", 1, "0", 3), epoch_line("A: CMM-a", 2, "1", 7)]);
        let a = parse_decisions(&j).unwrap();
        let b = parse_decisions(&j).unwrap();
        let rep = diff(&a, &b);
        assert!(rep.identical(), "{:?}", rep.divergences);
        assert!(rep.notes.is_empty());
        assert!(rep.render("a", "b").contains("identical"));
    }

    #[test]
    fn changed_decision_is_first_divergence() {
        let a = parse_decisions(&journal(&[
            epoch_line("A: CMM-a", 1, "0", 3),
            epoch_line("A: CMM-a", 2, "1", 7),
        ]))
        .unwrap();
        let b = parse_decisions(&journal(&[
            epoch_line("A: CMM-a", 1, "0", 3),
            epoch_line("A: CMM-a", 2, "null", 7),
        ]))
        .unwrap();
        let rep = diff(&a, &b);
        assert_eq!(rep.divergences.len(), 1);
        assert!(rep.divergences[0].contains("epoch 2"), "{}", rep.divergences[0]);
    }

    #[test]
    fn missing_runs_and_length_mismatch_diverge() {
        let a = parse_decisions(&journal(&[
            epoch_line("A: CMM-a", 1, "0", 3),
            epoch_line("A: CMM-a", 2, "0", 3),
            epoch_line("B: PT", 1, "0", 3),
        ]))
        .unwrap();
        let b = parse_decisions(&journal(&[
            epoch_line("A: CMM-a", 1, "0", 3),
            epoch_line("C: Dunn", 1, "0", 3),
        ]))
        .unwrap();
        let rep = diff(&a, &b);
        let text = rep.render("x", "y");
        assert!(text.contains("'A: CMM-a': 2 epochs vs 1"), "{text}");
        assert!(text.contains("'B: PT' missing from second"), "{text}");
        assert!(text.contains("'C: Dunn' missing from first"), "{text}");
    }

    #[test]
    fn config_digest_mismatch_is_a_note_not_a_divergence() {
        let a = parse_decisions(&journal(&[epoch_line("A: CMM-a", 1, "0", 3)])).unwrap();
        let mut b = a.clone();
        b.config_digest = "fnv1a:2".into();
        let rep = diff(&a, &b);
        assert!(rep.identical());
        assert_eq!(rep.notes.len(), 1);
    }

    #[test]
    fn torn_tail_is_salvaged_before_diffing() {
        let full = journal(&[epoch_line("A: CMM-a", 1, "0", 3), epoch_line("A: CMM-a", 2, "1", 7)]);
        let torn = &full[..full.len() - 20];
        let a = parse_decisions(torn).expect("torn tail salvages");
        assert_eq!(a.runs[0].1.len(), 1, "the torn epoch is dropped");
        let b = parse_decisions(&full).unwrap();
        let rep = diff(&a, &b);
        assert!(rep.render("torn", "full").contains("1 epochs vs 2"));
    }

    #[test]
    fn multi_socket_domains_key_separately_and_topology_parses() {
        let m3 = MANIFEST
            .replace("cmm-journal/2", "cmm-journal/3")
            .replace("\"seed\":42", "\"seed\":42,\"topology\":\"2x2\"");
        let line = |d: u64| {
            epoch_line("A: CMM-a", 1, "0", 3).replace(
                "\"mechanism\":\"CMM-a\"",
                &format!("\"mechanism\":\"CMM-a\",\"domain\":{d}"),
            )
        };
        let j = format!("{m3}\n{}\n{}\n", line(0), line(1));
        let d = parse_decisions(&j).unwrap();
        assert_eq!(d.topology.as_deref(), Some("2x2"));
        let names: Vec<&str> = d.runs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A: CMM-a [d0]", "A: CMM-a [d1]"]);
        // Single-socket journals stay topology-less (the refusal gate in
        // `repro journal-diff` keys off this being `None`).
        let plain = parse_decisions(&journal(&[epoch_line("A: CMM-a", 1, "0", 3)])).unwrap();
        assert_eq!(plain.topology, None);
    }

    #[test]
    fn schema_is_captured_and_applied_mba_counts_as_a_decision() {
        let plain = parse_decisions(&journal(&[epoch_line("A: CMM-a", 1, "0", 3)])).unwrap();
        assert_eq!(plain.schema, "cmm-journal/2");
        let m4 = MANIFEST.replace("cmm-journal/2", "cmm-journal/4");
        let throttled = epoch_line("A: CBP", 1, "0", 3)
            .replace("\"prefetch\":[true]", "\"prefetch\":[true],\"mba\":[40]");
        let a = parse_decisions(&format!("{m4}\n{throttled}\n")).unwrap();
        assert_eq!(a.schema, "cmm-journal/4");
        assert_eq!(a.runs[0].1[0].mba, vec![40]);
        // Same epoch without the throttle: a real divergence, not cosmetic.
        let b = parse_decisions(&format!("{m4}\n{}\n", epoch_line("A: CBP", 1, "0", 3))).unwrap();
        let rep = diff(&a, &b);
        assert_eq!(rep.divergences.len(), 1);
        assert!(rep.divergences[0].contains("mba=[40]"), "{}", rep.divergences[0]);
    }

    #[test]
    fn rejects_non_journal_input() {
        assert!(parse_decisions("").is_err());
        assert!(parse_decisions("{\"schema\":\"other/1\"}").is_err());
        assert!(parse_decisions("not json").is_err());
        // A /1 journal (no degraded/faults keys) still parses.
        let v1 = MANIFEST.replace("cmm-journal/2", "cmm-journal/1");
        let line = epoch_line("A: PT", 1, "0", 3)
            .replace(",\"faults\":[],\"degraded\":null", "")
            .replace(",\"exec_hm_ipc\":null,\"exec_ipc_delta\":null", "");
        let d = parse_decisions(&format!("{v1}\n{line}\n")).unwrap();
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].1[0].degraded, None);
    }
}
