//! `repro faults` — fault-injection resilience sweep.
//!
//! Runs one prefetch-aggressive mix under CMM-a while a
//! [`cmm_core::fault::FaultySubstrate`] injects MSR write rejections, CLOS
//! exhaustion and PMU corruption at increasing rates, and checks that
//! harmonic-mean IPC *degrades smoothly* instead of cliffing: a controller
//! that panics, wedges on a rejected WRMSR, or trusts a garbage PMU
//! snapshot shows up here as a collapse relative to the fault-free run.
//!
//! The sweep is deterministic — fault schedules come from a seeded
//! splitmix64 stream — so the journal cells it emits are byte-identical
//! across `--jobs`, and CI runs it twice to prove exactly that.

use crate::runner::{parallel_map, Progress};
use cmm_core::experiment::{run_mix_with_faults, ExperimentConfig};
use cmm_core::fault::FaultConfig;
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::EpochRecord;
use cmm_workloads::build_mixes;

/// Fault rates swept, fault-free first (the normalisation baseline).
pub const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.25];

/// Minimum allowed hm_ipc relative to the fault-free run at any swept
/// rate. Transient rejections are retried and corrupt samples discarded,
/// so even the heaviest rate must keep a large fraction of the fault-free
/// throughput — a cliff below this is a degradation bug, not noise.
pub const SMOOTHNESS_FLOOR: f64 = 0.5;

/// One swept rate's outcome.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Injected per-operation fault rate.
    pub rate: f64,
    /// Harmonic-mean IPC over the measurement window.
    pub hm_ipc: f64,
    /// Total substrate faults the controller observed and journaled.
    pub faults: u64,
    /// Profiling epochs that retreated to a fallback mechanism.
    pub degraded_epochs: u64,
    /// The run's controller telemetry (journal cell payload).
    pub epochs: Vec<EpochRecord>,
}

/// Runs the sweep. `fault_seed` seeds the fault schedule (workload
/// construction stays on `seed`, so the same mix runs at every rate).
pub fn sweep(
    quick: bool,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    log: &Progress,
) -> Vec<FaultCell> {
    let mix = build_mixes(seed, 1).remove(1); // a PrefAgg mix
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    parallel_map(&RATES, jobs, |_, &rate| {
        log.cell(&format!("faults: rate {rate:.2}"), || {
            let r = run_mix_with_faults(
                &mix,
                Mechanism::CmmA,
                &cfg,
                &FaultConfig::uniform(fault_seed, rate),
            );
            FaultCell {
                rate,
                hm_ipc: cmm_metrics::hm_ipc(&r.ipcs),
                faults: r.epochs.iter().map(|e| e.faults.len() as u64).sum(),
                degraded_epochs: r.epochs.iter().filter(|e| e.degraded.is_some()).count() as u64,
                epochs: r.epochs,
            }
        })
    })
}

/// Table rows (rate, hm_ipc, relative-to-fault-free, faults, degraded
/// epochs) and the smoothness verdict per rate.
pub fn rows(cells: &[FaultCell]) -> Vec<Vec<String>> {
    let base = cells.first().map(|c| c.hm_ipc).unwrap_or(0.0).max(1e-12);
    cells
        .iter()
        .map(|c| {
            let rel = c.hm_ipc / base;
            vec![
                format!("{:.2}", c.rate),
                format!("{:.3}", c.hm_ipc),
                format!("{rel:.3}"),
                c.faults.to_string(),
                c.degraded_epochs.to_string(),
                if rel >= SMOOTHNESS_FLOOR { "ok".into() } else { "CLIFF".into() },
            ]
        })
        .collect()
}

/// True when every swept rate kept at least [`SMOOTHNESS_FLOOR`] of the
/// fault-free hm_ipc.
pub fn passes(cells: &[FaultCell]) -> bool {
    let base = cells.first().map(|c| c.hm_ipc).unwrap_or(0.0);
    base > 0.0 && cells.iter().all(|c| c.hm_ipc / base >= SMOOTHNESS_FLOOR)
}

/// Journal cells for the sweep, one per rate, in sweep order.
pub fn journal_cells(cells: Vec<FaultCell>) -> Vec<(String, Vec<EpochRecord>)> {
    cells.into_iter().map(|c| (format!("faults rate={:.2}: CMM-a", c.rate), c.epochs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rate: f64, hm: f64) -> FaultCell {
        FaultCell { rate, hm_ipc: hm, faults: 0, degraded_epochs: 0, epochs: vec![] }
    }

    #[test]
    fn smooth_degradation_passes_and_cliff_fails() {
        let smooth = vec![cell(0.0, 1.0), cell(0.1, 0.8), cell(0.25, 0.6)];
        assert!(passes(&smooth));
        let cliff = vec![cell(0.0, 1.0), cell(0.1, 0.2)];
        assert!(!passes(&cliff));
        assert!(!passes(&[cell(0.0, 0.0)]), "dead baseline must not pass");
    }

    #[test]
    fn rows_are_normalised_to_the_fault_free_run() {
        let rows = rows(&[cell(0.0, 2.0), cell(0.1, 1.0)]);
        assert_eq!(rows[0][2], "1.000");
        assert_eq!(rows[1][2], "0.500");
        assert_eq!(rows[1][5], "ok");
        let bad = super::rows(&[cell(0.0, 2.0), cell(0.25, 0.5)]);
        assert_eq!(bad[1][5], "CLIFF");
    }

    #[test]
    fn journal_labels_are_stable() {
        let cells = vec![cell(0.0, 1.0), cell(0.05, 0.9)];
        let labels: Vec<String> = journal_cells(cells).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["faults rate=0.00: CMM-a", "faults rate=0.05: CMM-a"]);
    }
}
