//! `repro faults` — fault-injection resilience sweep.
//!
//! Runs one prefetch-aggressive mix under CMM-a while a
//! [`cmm_core::fault::FaultySubstrate`] injects MSR write rejections, CLOS
//! exhaustion and PMU corruption at increasing rates, and checks that
//! harmonic-mean IPC *degrades smoothly* instead of cliffing: a controller
//! that panics, wedges on a rejected WRMSR, or trusts a garbage PMU
//! snapshot shows up here as a collapse relative to the fault-free run.
//!
//! A second leg ([`sweep_mba_resumable`]) runs the same mix under CBP
//! while only the MBA throttle register misbehaves (transient rejections
//! plus stuck writes): CBP must shed its third resource and keep the
//! CMM-a plan — the CBP → CMM-a rung of the degradation chain — rather
//! than cliffing or wedging on the dead register.
//!
//! The sweep is deterministic — fault schedules come from a seeded
//! splitmix64 stream — so the journal cells it emits are byte-identical
//! across `--jobs`, and CI runs it twice to prove exactly that.

use crate::checkpoint::{self, Checkpoint};
use crate::json::Json;
use crate::runner::{run_cells, CellFailure, Progress};
use cmm_core::experiment::{run_mix_with_faults, ExperimentConfig};
use cmm_core::fault::FaultConfig;
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::EpochRecord;
use cmm_workloads::build_mixes;

/// Fault rates swept, fault-free first (the normalisation baseline).
pub const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.25];

/// Minimum allowed hm_ipc relative to the fault-free run at any swept
/// rate. Transient rejections are retried and corrupt samples discarded,
/// so even the heaviest rate must keep a large fraction of the fault-free
/// throughput — a cliff below this is a degradation bug, not noise.
pub const SMOOTHNESS_FLOOR: f64 = 0.5;

/// One swept rate's outcome.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Injected per-operation fault rate.
    pub rate: f64,
    /// Harmonic-mean IPC over the measurement window.
    pub hm_ipc: f64,
    /// Total substrate faults the controller observed and journaled.
    pub faults: u64,
    /// Profiling epochs that retreated to a fallback mechanism.
    pub degraded_epochs: u64,
    /// The run's controller telemetry (journal cell payload).
    pub epochs: Vec<EpochRecord>,
}

/// Lossless JSON float (shortest round-trip); non-finite degrades to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Encodes a [`FaultCell`] as a `cmm-ckpt/1` payload (lossless floats).
pub fn encode_cell(c: &FaultCell) -> String {
    let mut s = format!(
        "{{\"rate\":{},\"hm_ipc\":{},\"faults\":{},\"degraded_epochs\":{},\"epochs\":[",
        num(c.rate),
        num(c.hm_ipc),
        c.faults,
        c.degraded_epochs
    );
    for (i, e) in c.epochs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.to_json_line(""));
    }
    s.push_str("]}");
    s
}

/// Decodes a [`FaultCell`] checkpoint payload.
pub fn decode_cell(j: &Json) -> Result<FaultCell, String> {
    Ok(FaultCell {
        rate: j.get("rate").and_then(Json::as_f64).ok_or("fault cell missing 'rate'")?,
        hm_ipc: j.get("hm_ipc").and_then(Json::as_f64).ok_or("fault cell missing 'hm_ipc'")?,
        faults: j.get("faults").and_then(Json::as_u64).ok_or("fault cell missing 'faults'")?,
        degraded_epochs: j
            .get("degraded_epochs")
            .and_then(Json::as_u64)
            .ok_or("fault cell missing 'degraded_epochs'")?,
        epochs: j
            .get("epochs")
            .and_then(Json::as_array)
            .ok_or("fault cell missing 'epochs'")?
            .iter()
            .map(checkpoint::decode_epoch)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Runs the sweep panic-isolated and (optionally) checkpointed.
/// `fault_seed` seeds the fault schedule (workload construction stays on
/// `seed`, so the same mix runs at every rate). Cell keys match the
/// journal run labels (`"faults rate=0.05: CMM-a"`); a failing rate
/// surfaces in the `Err` list only after every sibling rate completed.
pub fn sweep_resumable(
    quick: bool,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    attempts: u32,
    log: &Progress,
    ckpt: Option<&Checkpoint>,
) -> Result<Vec<FaultCell>, Vec<CellFailure>> {
    let mix = build_mixes(seed, 1).remove(1); // a PrefAgg mix
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let run = run_cells(
        &RATES,
        jobs,
        attempts,
        |_, &rate| format!("faults rate={rate:.2}: CMM-a"),
        |k| {
            let payload = ckpt?.cached(k)?;
            match decode_cell(&payload) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!(
                        "[repro] checkpoint entry '{k}' is undecodable ({e}); re-running cell"
                    );
                    None
                }
            }
        },
        |k, c: &FaultCell| {
            if let Some(ck) = ckpt {
                ck.record(k, &encode_cell(c));
            }
        },
        |_, &rate| {
            log.cell(&format!("faults: rate {rate:.2}"), || {
                let r = run_mix_with_faults(
                    &mix,
                    Mechanism::CmmA,
                    &cfg,
                    &FaultConfig::uniform(fault_seed, rate),
                );
                FaultCell {
                    rate,
                    hm_ipc: cmm_metrics::hm_ipc(&r.ipcs),
                    faults: r.epochs.iter().map(|e| e.faults.len() as u64).sum(),
                    degraded_epochs: r.epochs.iter().filter(|e| e.degraded.is_some()).count()
                        as u64,
                    epochs: r.epochs,
                }
            })
        },
    );
    if run.resumed > 0 {
        log.note(&format!("resume: spliced {} cached cell(s) from the checkpoint", run.resumed));
    }
    run.into_results()
}

/// The MBA-fault leg: the same mix under CBP with faults confined to the
/// MBA throttle register ([`FaultConfig::mba_only`]). Cell keys and
/// journal labels use the `faults mba rate=…: CBP` prefix so the two legs
/// never collide in a shared checkpoint. At rate 1.0 the register is gone
/// and every epoch degrades CBP → CMM-a; the smoothness gate then asserts
/// losing the third resource costs bounded throughput.
pub fn sweep_mba_resumable(
    quick: bool,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    attempts: u32,
    log: &Progress,
    ckpt: Option<&Checkpoint>,
) -> Result<Vec<FaultCell>, Vec<CellFailure>> {
    let mix = build_mixes(seed, 1).remove(1); // the same PrefAgg mix
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let run = run_cells(
        &RATES,
        jobs,
        attempts,
        |_, &rate| format!("faults mba rate={rate:.2}: CBP"),
        |k| {
            let payload = ckpt?.cached(k)?;
            match decode_cell(&payload) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!(
                        "[repro] checkpoint entry '{k}' is undecodable ({e}); re-running cell"
                    );
                    None
                }
            }
        },
        |k, c: &FaultCell| {
            if let Some(ck) = ckpt {
                ck.record(k, &encode_cell(c));
            }
        },
        |_, &rate| {
            log.cell(&format!("faults mba: rate {rate:.2}"), || {
                let r = run_mix_with_faults(
                    &mix,
                    Mechanism::Cbp,
                    &cfg,
                    &FaultConfig::mba_only(fault_seed, rate),
                );
                FaultCell {
                    rate,
                    hm_ipc: cmm_metrics::hm_ipc(&r.ipcs),
                    faults: r.epochs.iter().map(|e| e.faults.len() as u64).sum(),
                    degraded_epochs: r.epochs.iter().filter(|e| e.degraded.is_some()).count()
                        as u64,
                    epochs: r.epochs,
                }
            })
        },
    );
    if run.resumed > 0 {
        log.note(&format!("resume: spliced {} cached cell(s) from the checkpoint", run.resumed));
    }
    run.into_results()
}

/// [`sweep_resumable`] without checkpointing, panicking on cell failure —
/// the convenience entry point for tests.
pub fn sweep(
    quick: bool,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    log: &Progress,
) -> Vec<FaultCell> {
    sweep_resumable(quick, seed, fault_seed, jobs, 1, log, None).unwrap_or_else(|failures| {
        panic!("{} fault-sweep cell(s) failed", failures.len());
    })
}

/// Table rows (rate, hm_ipc, relative-to-fault-free, faults, degraded
/// epochs) and the smoothness verdict per rate.
pub fn rows(cells: &[FaultCell]) -> Vec<Vec<String>> {
    let base = cells.first().map(|c| c.hm_ipc).unwrap_or(0.0).max(1e-12);
    cells
        .iter()
        .map(|c| {
            let rel = c.hm_ipc / base;
            vec![
                format!("{:.2}", c.rate),
                format!("{:.3}", c.hm_ipc),
                format!("{rel:.3}"),
                c.faults.to_string(),
                c.degraded_epochs.to_string(),
                if rel >= SMOOTHNESS_FLOOR { "ok".into() } else { "CLIFF".into() },
            ]
        })
        .collect()
}

/// True when every swept rate kept at least [`SMOOTHNESS_FLOOR`] of the
/// fault-free hm_ipc.
pub fn passes(cells: &[FaultCell]) -> bool {
    let base = cells.first().map(|c| c.hm_ipc).unwrap_or(0.0);
    base > 0.0 && cells.iter().all(|c| c.hm_ipc / base >= SMOOTHNESS_FLOOR)
}

/// Journal cells for the sweep, one per rate, in sweep order.
pub fn journal_cells(cells: Vec<FaultCell>) -> Vec<(String, Vec<EpochRecord>)> {
    cells.into_iter().map(|c| (format!("faults rate={:.2}: CMM-a", c.rate), c.epochs)).collect()
}

/// Journal cells for the MBA-fault leg, matching its cell keys.
pub fn mba_journal_cells(cells: Vec<FaultCell>) -> Vec<(String, Vec<EpochRecord>)> {
    cells.into_iter().map(|c| (format!("faults mba rate={:.2}: CBP", c.rate), c.epochs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rate: f64, hm: f64) -> FaultCell {
        FaultCell { rate, hm_ipc: hm, faults: 0, degraded_epochs: 0, epochs: vec![] }
    }

    #[test]
    fn smooth_degradation_passes_and_cliff_fails() {
        let smooth = vec![cell(0.0, 1.0), cell(0.1, 0.8), cell(0.25, 0.6)];
        assert!(passes(&smooth));
        let cliff = vec![cell(0.0, 1.0), cell(0.1, 0.2)];
        assert!(!passes(&cliff));
        assert!(!passes(&[cell(0.0, 0.0)]), "dead baseline must not pass");
    }

    #[test]
    fn rows_are_normalised_to_the_fault_free_run() {
        let rows = rows(&[cell(0.0, 2.0), cell(0.1, 1.0)]);
        assert_eq!(rows[0][2], "1.000");
        assert_eq!(rows[1][2], "0.500");
        assert_eq!(rows[1][5], "ok");
        let bad = super::rows(&[cell(0.0, 2.0), cell(0.25, 0.5)]);
        assert_eq!(bad[1][5], "CLIFF");
    }

    #[test]
    fn cell_codec_round_trips_losslessly() {
        let c = FaultCell {
            rate: 0.05,
            hm_ipc: 1.0872273441234567,
            faults: 17,
            degraded_epochs: 3,
            epochs: vec![],
        };
        let j = crate::json::parse(&encode_cell(&c)).expect("valid payload");
        let back = decode_cell(&j).unwrap();
        assert_eq!(back.rate, c.rate);
        assert_eq!(back.hm_ipc, c.hm_ipc, "hm_ipc must be bit-identical");
        assert_eq!((back.faults, back.degraded_epochs), (17, 3));
        assert!(back.epochs.is_empty());
    }

    #[test]
    fn journal_labels_are_stable() {
        let cells = vec![cell(0.0, 1.0), cell(0.05, 0.9)];
        let labels: Vec<String> = journal_cells(cells).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["faults rate=0.00: CMM-a", "faults rate=0.05: CMM-a"]);
        let cells = vec![cell(0.0, 1.0), cell(0.25, 0.9)];
        let labels: Vec<String> = mba_journal_cells(cells).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["faults mba rate=0.00: CBP", "faults mba rate=0.25: CBP"]);
    }

    #[test]
    fn mba_leg_degrades_cbp_instead_of_cliffing() {
        let log = Progress::new(false);
        let cells = sweep_mba_resumable(true, 42, 7, 1, 1, &log, None).unwrap();
        assert_eq!(cells.len(), RATES.len());
        assert!(passes(&cells), "MBA faults must degrade smoothly, not cliff");
        // With the register fully gone, every CBP epoch must take the
        // CBP -> CMM-a rung of the degradation chain — losing the third
        // resource is bounded, not a wedge or collapse.
        let r = cmm_core::experiment::run_mix_with_faults(
            &build_mixes(42, 1).remove(1),
            Mechanism::Cbp,
            &ExperimentConfig::quick(),
            &FaultConfig::mba_only(7, 1.0),
        );
        assert!(!r.epochs.is_empty());
        assert!(
            r.epochs.iter().all(|e| e.degraded == Some("CMM-a")),
            "a dead MBA register must degrade every CBP epoch to CMM-a"
        );
    }
}
