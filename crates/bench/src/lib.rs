//! # cmm-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation from the
//! simulator (see DESIGN.md §4 for the experiment index):
//!
//! * [`characterize`] — single-benchmark characterisation: Fig. 1
//!   (memory bandwidth ± prefetching), Fig. 2 (IPC speedup from
//!   prefetching), Fig. 3 (IPC vs LLC ways), Table I / Fig. 5 (detector
//!   metrics).
//! * [`figures`] — the multiprogrammed evaluation: Figs. 7–15 over the
//!   four 10-workload categories.
//! * [`report`] — small fixed-width table printer shared by the `repro`
//!   binary.
//!
//! * [`ablate`] — sensitivity studies of the 1.5× partition rule, the
//!   epoch:sampling ratio and the substrate's QBS policy.
//! * [`faults`] — the fault-injection resilience sweep behind
//!   `repro faults` (hm_ipc vs injected substrate fault rate).
//! * [`governor`] — the safety-governor dominance sweep behind
//!   `repro governor` (bare vs governed CBP under injected faults).
//! * [`journal`] — assembles the `cmm-journal/2` JSONL run journal from
//!   the controller's per-epoch telemetry, and summarizes it back.
//! * [`tracecmd`] — the `repro trace record/convert/stat` subcommands over
//!   `cmm-trace/1` trace files (recorded mixes feed `--trace-dir` runs).
//! * [`diff`] — `journal-diff`: structural comparison of two journals'
//!   per-epoch decision sequences.
//! * [`compare`] — the `bench-compare` perf regression gate over
//!   `BENCH_sim.json` logs.
//! * [`json`] — minimal JSON reader for the harness's own artifacts (the
//!   build environment has no serde).
//!
//! The harness itself is fault tolerant (DESIGN.md §"Crash safety"):
//!
//! * [`runner`] — panic-isolated cell execution with a bounded retry
//!   budget; a panicking cell never aborts its siblings.
//! * [`atomic`] — crash-safe artifact IO (write-temp-then-rename for whole
//!   documents, fsync-per-record JSONL appends, torn-tail salvage).
//! * [`checkpoint`] — the `cmm-ckpt/1` resume sidecar behind
//!   `repro … --resume`: completed cells are spliced from cache so a
//!   resumed run's output is byte-identical to an uninterrupted one.
//! * [`chaos`] — seeded panic/kill injection for `repro soak` and CI.
//! * [`soak`] — the kill-and-resume chaos gate (`repro soak`).
//!
//! The `repro` binary exposes one subcommand per table/figure plus the CI
//! entry points: `repro fig7`, `repro table1`, `repro faults`,
//! `repro all --quick`, `repro soak`,
//! `repro bench-compare base.json cur.json`,
//! `repro journal-summary …`, `repro journal-diff a.jsonl b.jsonl`

pub mod ablate;
pub mod atomic;
pub mod chaos;
pub mod characterize;
pub mod checkpoint;
pub mod compare;
pub mod diff;
pub mod export;
pub mod faults;
pub mod figures;
pub mod governor;
pub mod journal;
pub mod json;
pub mod learn;
pub mod perf;
pub mod report;
pub mod runner;
pub mod soak;
pub mod tracecmd;
