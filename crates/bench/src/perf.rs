//! Machine-readable harness performance log (`BENCH_sim.json`).
//!
//! The `repro` binary wraps every table/figure target in
//! [`BenchLog::measure`] and writes one JSON document at exit, so each
//! future change to the simulator or harness has a perf trajectory to
//! defend: wall-clock per target, evaluation cells per second, and
//! simulated core-cycles per second.
//!
//! The JSON is hand-rolled (the build environment has no serde); the
//! schema is intentionally flat:
//!
//! ```json
//! {
//!   "schema": "cmm-bench-sim/1",
//!   "jobs": 4,
//!   "quick": false,
//!   "total_wall_s": 123.4,
//!   "targets": [
//!     {
//!       "name": "fig7",
//!       "wall_s": 41.2,
//!       "cells": 88,
//!       "sim_cycles": 9856000000,
//!       "cells_per_s": 2.14,
//!       "sim_cycles_per_s": 239223300.9
//!     }
//!   ]
//! }
//! ```
//!
//! `cells` counts independent simulation runs (one `System` each);
//! `sim_cycles` counts simulated core-cycles (machine cycles × cores,
//! including warm-up), so `sim_cycles_per_s` is comparable across targets
//! with different machine widths.

use std::path::Path;
use std::time::Instant;

/// Timing and volume of one completed repro target.
#[derive(Debug, Clone)]
pub struct TargetStats {
    /// Target name as passed on the CLI (`"table1"`, `"fig7"`, …).
    pub name: String,
    /// Wall-clock seconds spent producing the target.
    pub wall_s: f64,
    /// Independent simulation runs executed.
    pub cells: u64,
    /// Simulated core-cycles across those runs (including warm-up).
    pub sim_cycles: u64,
}

/// Collects [`TargetStats`] across one `repro` invocation.
#[derive(Debug)]
pub struct BenchLog {
    start: Instant,
    jobs: usize,
    quick: bool,
    targets: Vec<TargetStats>,
}

impl BenchLog {
    /// An empty log annotated with the run's parallelism and size mode.
    pub fn new(jobs: usize, quick: bool) -> Self {
        BenchLog { start: Instant::now(), jobs, quick, targets: Vec::new() }
    }

    /// Runs `work` and records it as target `name` with the given work
    /// volume. Returns `work`'s result.
    pub fn measure<R>(
        &mut self,
        name: &str,
        cells: u64,
        sim_cycles: u64,
        work: impl FnOnce() -> R,
    ) -> R {
        let t0 = Instant::now();
        let r = work();
        self.targets.push(TargetStats {
            name: name.to_string(),
            wall_s: t0.elapsed().as_secs_f64(),
            cells,
            sim_cycles,
        });
        r
    }

    /// Renders the log as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"cmm-bench-sim/1\",\n");
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!(
            "  \"total_wall_s\": {},\n",
            json_f64(self.start.elapsed().as_secs_f64())
        ));
        s.push_str("  \"targets\": [");
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", escape(&t.name)));
            s.push_str(&format!("      \"wall_s\": {},\n", json_f64(t.wall_s)));
            s.push_str(&format!("      \"cells\": {},\n", t.cells));
            s.push_str(&format!("      \"sim_cycles\": {},\n", t.sim_cycles));
            let wall = t.wall_s.max(1e-9);
            s.push_str(&format!("      \"cells_per_s\": {},\n", json_f64(t.cells as f64 / wall)));
            s.push_str(&format!(
                "      \"sim_cycles_per_s\": {}\n",
                json_f64(t.sim_cycles as f64 / wall)
            ));
            s.push_str("    }");
        }
        if !self.targets.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Writes the JSON to `path` atomically (temp-then-rename): a crash
    /// mid-write leaves the previous complete log, never a torn one.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        crate::atomic::write_atomic(path, self.to_json().as_bytes())
    }
}

/// JSON-safe float formatting: finite values print with enough digits to
/// round-trip; anything non-finite degrades to 0 (JSON has no NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_measured_targets() {
        let mut log = BenchLog::new(4, true);
        let out = log.measure("table1", 14, 70_000_000, || 99u32);
        assert_eq!(out, 99);
        let j = log.to_json();
        assert!(j.contains("\"schema\": \"cmm-bench-sim/1\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"quick\": true"));
        assert!(j.contains("\"name\": \"table1\""));
        assert!(j.contains("\"cells\": 14"));
        assert!(j.contains("\"sim_cycles\": 70000000"));
        assert!(j.contains("\"cells_per_s\""));
    }

    #[test]
    fn empty_log_is_valid_shape() {
        let log = BenchLog::new(1, false);
        let j = log.to_json();
        assert!(j.contains("\"targets\": []"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn non_finite_floats_degrade() {
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert!(json_f64(1.5).starts_with("1.5"));
    }

    #[test]
    fn log_round_trips_through_the_json_reader() {
        // The written document must stay readable by crate::json — the
        // same path `repro bench-compare` takes.
        let mut log = BenchLog::new(2, true);
        log.measure("fig\"odd\"", 7, 1_000_000, || ());
        let doc = crate::json::parse(&log.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(crate::json::Json::as_str), Some("cmm-bench-sim/1"));
        assert_eq!(doc.get("jobs").and_then(crate::json::Json::as_u64), Some(2));
        let targets = doc.get("targets").and_then(crate::json::Json::as_array).unwrap();
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].get("name").and_then(crate::json::Json::as_str), Some("fig\"odd\""));
        assert_eq!(targets[0].get("cells").and_then(crate::json::Json::as_u64), Some(7));
        assert!(targets[0].get("wall_s").and_then(crate::json::Json::as_f64).unwrap() >= 0.0);
    }
}
