//! `repro bench-compare` — the perf regression gate.
//!
//! Diffs two `BENCH_sim.json` perf logs (see [`crate::perf`]) target by
//! target, in the spirit of rustc-perf's baseline comparisons: wall-clock
//! ratios with a configurable relative noise threshold, a human-readable
//! delta table, and a machine-checkable verdict ([`any_regression`]) the
//! CI gate turns into an exit code.
//!
//! Semantics:
//!
//! * a target regresses when `current_wall / baseline_wall` is strictly
//!   greater than `1 + noise` — a ratio *exactly at* the threshold passes;
//! * a target present in the baseline but missing from the current log is
//!   a regression (silently dropping coverage must trip the gate);
//! * a target only present in the current log is informational (`new`);
//! * the noise threshold is relative: `--noise 0.1` tolerates +10 %,
//!   `--noise 1.0` only fails on a >2× slowdown (the CI hard gate on
//!   shared runners).

use crate::json::{parse, Json};
use std::path::Path;

/// Expected perf-log schema identifier.
pub const BENCH_SCHEMA: &str = "cmm-bench-sim/1";

/// Default relative noise threshold (±10 %).
pub const DEFAULT_NOISE: f64 = 0.10;

/// Advisory noise threshold for per-target `sim_cycles_per_s` deltas.
/// Throughput drops beyond this are called out in the delta table but do
/// not trip [`any_regression`] — wall-clock is the binding gate; the hard
/// throughput floor lives in the CI `smoke_perf` step.
pub const SCPS_NOISE: f64 = 0.10;

/// One target's numbers from a perf log.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTarget {
    /// Target name (`"table1"`, `"fig7"`, …).
    pub name: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Evaluation cells per second (throughput; informational).
    pub cells_per_s: f64,
    /// Simulated core-cycles per second (simulator hot-loop throughput;
    /// gated advisorily, see [`SCPS_NOISE`]).
    pub sim_cycles_per_s: f64,
}

/// A parsed `BENCH_sim.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Whether the run used `--quick` durations.
    pub quick: bool,
    /// Per-target stats, in document order.
    pub targets: Vec<BenchTarget>,
}

/// Parses a perf-log document, validating the schema identifier.
pub fn parse_doc(text: &str) -> Result<BenchDoc, String> {
    let root = parse(text)?;
    let schema = root.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BENCH_SCHEMA {
        return Err(format!("unsupported schema '{schema}' (want {BENCH_SCHEMA})"));
    }
    let quick = root.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let mut targets = Vec::new();
    for t in root.get("targets").and_then(Json::as_array).unwrap_or(&[]) {
        let name = t
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "target without a name".to_string())?
            .to_string();
        let wall_s = t
            .get("wall_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("target {name} without wall_s"))?;
        let cells_per_s = t.get("cells_per_s").and_then(Json::as_f64).unwrap_or(0.0);
        let sim_cycles_per_s = t.get("sim_cycles_per_s").and_then(Json::as_f64).unwrap_or(0.0);
        targets.push(BenchTarget { name, wall_s, cells_per_s, sim_cycles_per_s });
    }
    Ok(BenchDoc { quick, targets })
}

/// Loads and parses a perf log from disk.
pub fn load_doc(path: &Path) -> Result<BenchDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_doc(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Verdict for one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise threshold.
    Within,
    /// Faster than the baseline by more than the noise threshold.
    Improved,
    /// Slower than the baseline by more than the noise threshold.
    Regressed,
    /// In the baseline but not in the current log — counts as a
    /// regression (coverage loss).
    Missing,
    /// Only in the current log — informational.
    New,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Within => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Target name.
    pub name: String,
    /// Baseline wall-clock, when the target exists there.
    pub base_wall: Option<f64>,
    /// Current wall-clock, when the target exists there.
    pub cur_wall: Option<f64>,
    /// `cur/base` wall-clock ratio, when both sides exist and the
    /// baseline is positive.
    pub ratio: Option<f64>,
    /// The verdict under the configured noise threshold.
    pub verdict: Verdict,
    /// `cur/base` simulated-cycles-per-second ratio, when both sides
    /// report one.
    pub scps_ratio: Option<f64>,
    /// Advisory verdict on the throughput ratio under [`SCPS_NOISE`];
    /// never feeds [`any_regression`].
    pub scps_verdict: Option<Verdict>,
}

/// Compares `cur` against `base` under a relative `noise` threshold.
/// Rows come back in baseline order, then new targets in current order.
pub fn compare(base: &BenchDoc, cur: &BenchDoc, noise: f64) -> Vec<Delta> {
    assert!(noise >= 0.0, "noise threshold must be non-negative");
    let mut deltas = Vec::new();
    for b in &base.targets {
        let row = match cur.targets.iter().find(|c| c.name == b.name) {
            None => Delta {
                name: b.name.clone(),
                base_wall: Some(b.wall_s),
                cur_wall: None,
                ratio: None,
                verdict: Verdict::Missing,
                scps_ratio: None,
                scps_verdict: None,
            },
            Some(c) if b.wall_s > 0.0 => {
                let ratio = c.wall_s / b.wall_s;
                let verdict = if ratio > 1.0 + noise {
                    Verdict::Regressed
                } else if ratio < 1.0 - noise {
                    Verdict::Improved
                } else {
                    Verdict::Within
                };
                let (scps_ratio, scps_verdict) = scps_delta(b, c);
                Delta {
                    name: b.name.clone(),
                    base_wall: Some(b.wall_s),
                    cur_wall: Some(c.wall_s),
                    ratio: Some(ratio),
                    verdict,
                    scps_ratio,
                    scps_verdict,
                }
            }
            // Degenerate baseline (0s wall): nothing meaningful to gate on.
            Some(c) => Delta {
                name: b.name.clone(),
                base_wall: Some(b.wall_s),
                cur_wall: Some(c.wall_s),
                ratio: None,
                verdict: Verdict::Within,
                scps_ratio: None,
                scps_verdict: None,
            },
        };
        deltas.push(row);
    }
    for c in &cur.targets {
        if !base.targets.iter().any(|b| b.name == c.name) {
            deltas.push(Delta {
                name: c.name.clone(),
                base_wall: None,
                cur_wall: Some(c.wall_s),
                ratio: None,
                verdict: Verdict::New,
                scps_ratio: None,
                scps_verdict: None,
            });
        }
    }
    deltas
}

/// Simulator-throughput delta of one matched target pair: the
/// `cur/base` `sim_cycles_per_s` ratio and its advisory verdict under
/// [`SCPS_NOISE`]. Absent when either side predates the field (logs
/// written before throughput tracking report 0).
fn scps_delta(b: &BenchTarget, c: &BenchTarget) -> (Option<f64>, Option<Verdict>) {
    if b.sim_cycles_per_s <= 0.0 || c.sim_cycles_per_s <= 0.0 {
        return (None, None);
    }
    let ratio = c.sim_cycles_per_s / b.sim_cycles_per_s;
    // Throughput: higher is better, so the verdict thresholds invert
    // relative to wall-clock.
    let verdict = if ratio < 1.0 - SCPS_NOISE {
        Verdict::Regressed
    } else if ratio > 1.0 + SCPS_NOISE {
        Verdict::Improved
    } else {
        Verdict::Within
    };
    (Some(ratio), Some(verdict))
}

/// True when any row fails the gate (regressed or missing).
pub fn any_regression(deltas: &[Delta]) -> bool {
    deltas.iter().any(|d| matches!(d.verdict, Verdict::Regressed | Verdict::Missing))
}

/// Targets in `doc` whose `sim_cycles_per_s` sits below `floor` — the
/// hard throughput gate behind `bench-compare --scps-floor` and the CI
/// `smoke_perf` step. Unlike the relative advisory ([`SCPS_NOISE`]), the
/// floor is absolute and conservative, so it survives noisy runners while
/// still catching order-of-magnitude hot-loop regressions.
///
/// A target reporting no throughput at all (0, i.e. a log written before
/// the field existed) also fails: the gate is only ever pointed at fresh
/// logs, so a missing field means the instrumentation itself regressed.
pub fn below_scps_floor(doc: &BenchDoc, floor: f64) -> Vec<(String, f64)> {
    doc.targets
        .iter()
        .filter(|t| t.sim_cycles_per_s < floor)
        .map(|t| (t.name.clone(), t.sim_cycles_per_s))
        .collect()
}

/// Renders the human-readable delta table.
pub fn render(deltas: &[Delta], noise: f64) -> String {
    let fmt_s = |v: Option<f64>| v.map(|s| format!("{s:.3}s")).unwrap_or_else(|| "-".into());
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                fmt_s(d.base_wall),
                fmt_s(d.cur_wall),
                d.ratio
                    .map(|r| format!("{:+.1}%", (r - 1.0) * 100.0))
                    .unwrap_or_else(|| "-".into()),
                d.verdict.label().to_string(),
                d.scps_ratio
                    .map(|r| format!("{:+.1}%", (r - 1.0) * 100.0))
                    .unwrap_or_else(|| "-".into()),
                d.scps_verdict.map(|v| v.label().to_string()).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    crate::report::table(
        &format!(
            "bench-compare — wall-clock vs baseline (noise ±{:.0}%; sim-cyc/s advisory ±{:.0}%)",
            noise * 100.0,
            SCPS_NOISE * 100.0
        ),
        &["target", "baseline", "current", "delta", "verdict", "sim-cyc/s", "advisory"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(targets: &[(&str, f64)]) -> BenchDoc {
        BenchDoc {
            quick: true,
            targets: targets
                .iter()
                .map(|&(name, wall_s)| BenchTarget {
                    name: name.into(),
                    wall_s,
                    cells_per_s: 1.0 / wall_s.max(1e-9),
                    sim_cycles_per_s: 1e6 / wall_s.max(1e-9),
                })
                .collect(),
        }
    }

    #[test]
    fn identical_docs_have_no_regression() {
        let d = doc(&[("table1", 10.0), ("fig7", 40.0)]);
        let deltas = compare(&d, &d, DEFAULT_NOISE);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|x| x.verdict == Verdict::Within));
        assert!(!any_regression(&deltas));
    }

    #[test]
    fn exactly_at_threshold_passes() {
        // ratio == 1 + noise must NOT regress (strictly-greater rule).
        let base = doc(&[("t", 10.0)]);
        let cur = doc(&[("t", 11.0)]);
        let deltas = compare(&base, &cur, 0.10);
        assert_eq!(deltas[0].verdict, Verdict::Within, "{deltas:?}");
        // One ulp above the threshold regresses.
        let cur2 = doc(&[("t", 11.000001)]);
        assert_eq!(compare(&base, &cur2, 0.10)[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn throughput_drop_is_advisory_only() {
        let base = doc(&[("t", 10.0)]);
        let mut cur = doc(&[("t", 10.0)]);
        cur.targets[0].sim_cycles_per_s = base.targets[0].sim_cycles_per_s * 0.5;
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[0].verdict, Verdict::Within);
        assert_eq!(deltas[0].scps_verdict, Some(Verdict::Regressed));
        assert!(!any_regression(&deltas), "throughput advisory must not trip the gate");
    }

    #[test]
    fn throughput_gain_reported_as_improved() {
        let base = doc(&[("t", 10.0)]);
        let mut cur = doc(&[("t", 10.0)]);
        cur.targets[0].sim_cycles_per_s = base.targets[0].sim_cycles_per_s * 3.0;
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[0].scps_verdict, Some(Verdict::Improved));
        assert!((deltas[0].scps_ratio.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn missing_throughput_field_degrades_gracefully() {
        // Perf logs written before throughput tracking parse as 0.
        let base = doc(&[("t", 10.0)]);
        let mut cur = doc(&[("t", 10.0)]);
        cur.targets[0].sim_cycles_per_s = 0.0;
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[0].scps_verdict, None);
        assert_eq!(deltas[0].scps_ratio, None);
        assert!(!any_regression(&deltas));
    }

    #[test]
    fn scps_floor_flags_slow_and_unreported_targets() {
        let d = doc(&[("t", 10.0), ("u", 1.0)]); // 1e5 and 1e6 cyc/s
        assert!(below_scps_floor(&d, 1e4).is_empty());
        let below = below_scps_floor(&d, 5e5);
        assert_eq!(below, vec![("t".to_string(), 1e5)]);
        // A fresh log that stopped reporting throughput fails the floor.
        let mut stale = doc(&[("t", 10.0)]);
        stale.targets[0].sim_cycles_per_s = 0.0;
        assert_eq!(below_scps_floor(&stale, 5e5).len(), 1);
    }

    #[test]
    fn two_x_slowdown_fails_even_the_hard_gate() {
        let base = doc(&[("t", 10.0)]);
        let cur = doc(&[("t", 20.1)]);
        let deltas = compare(&base, &cur, 1.0);
        assert!(any_regression(&deltas));
        // 1.9x passes the hard gate (noise 1.0 ⇒ fail only >2x)…
        let cur_ok = doc(&[("t", 19.0)]);
        assert!(!any_regression(&compare(&base, &cur_ok, 1.0)));
        // …but not the default gate.
        assert!(any_regression(&compare(&base, &cur_ok, DEFAULT_NOISE)));
    }

    #[test]
    fn missing_target_is_a_regression() {
        let base = doc(&[("t", 10.0), ("u", 5.0)]);
        let cur = doc(&[("t", 10.0)]);
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[1].verdict, Verdict::Missing);
        assert!(any_regression(&deltas));
    }

    #[test]
    fn new_target_is_informational() {
        let base = doc(&[("t", 10.0)]);
        let cur = doc(&[("t", 10.0), ("v", 3.0)]);
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[1].verdict, Verdict::New);
        assert!(!any_regression(&deltas));
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let base = doc(&[("t", 10.0)]);
        let cur = doc(&[("t", 5.0)]);
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[0].verdict, Verdict::Improved);
        assert!(!any_regression(&deltas));
    }

    #[test]
    fn zero_wall_baseline_does_not_panic_or_fail() {
        let base = doc(&[("t", 0.0)]);
        let cur = doc(&[("t", 1.0)]);
        let deltas = compare(&base, &cur, DEFAULT_NOISE);
        assert_eq!(deltas[0].verdict, Verdict::Within);
        assert_eq!(deltas[0].ratio, None);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(parse_doc(r#"{"schema":"other/9","targets":[]}"#).is_err());
    }

    #[test]
    fn round_trips_the_perf_writer_schema() {
        // The document BenchLog writes must be readable by the gate.
        let mut log = crate::perf::BenchLog::new(2, true);
        log.measure("table1", 14, 70_000_000, || ());
        log.measure("fig5", 1, 2_720_000, || ());
        let doc = parse_doc(&log.to_json()).expect("perf log must parse");
        assert!(doc.quick);
        assert_eq!(doc.targets.len(), 2);
        assert_eq!(doc.targets[0].name, "table1");
        assert!(doc.targets[0].wall_s >= 0.0);
        assert!(doc.targets[0].cells_per_s > 0.0);
        // And comparing a log against itself is clean.
        assert!(!any_regression(&compare(&doc, &doc, 0.0)));
    }

    #[test]
    fn render_mentions_every_target_and_verdict() {
        let base = doc(&[("t", 10.0), ("gone", 1.0)]);
        let cur = doc(&[("t", 30.0), ("fresh", 2.0)]);
        let out = render(&compare(&base, &cur, DEFAULT_NOISE), DEFAULT_NOISE);
        for needle in ["t", "gone", "fresh", "REGRESSED", "MISSING", "new", "+200.0%"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }
}
