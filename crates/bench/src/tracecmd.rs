//! The `repro trace` subcommand family: record / convert / stat.
//!
//! * `repro trace record <dir> [mix-name]` — snapshots every core of a
//!   synthetic mix (default `PrefAgg-00`) through [`cmm_trace::Recorder`]
//!   into one `cmm-trace/1` binary file per core, ready for `--trace-dir`.
//! * `repro trace convert <in> <out>` — transcodes text ↔ binary; the
//!   input format is sniffed by magic, the output format follows the
//!   output extension (`.trc`/`.bin` → binary, anything else → text).
//! * `repro trace stat <file>...` — op counts, footprint, and the derived
//!   MLP estimate for any trace file.

use std::path::Path;

use cmm_sim::config::SystemConfig;
use cmm_trace::{Recorder, Trace, Workload};
use cmm_workloads::build_mixes;

use crate::atomic::write_atomic;
use crate::report;

const USAGE: &str = "usage: repro trace record <dir> [mix-name] [--ops N] [--seed S]\n       \
     repro trace convert <in> <out>\n       \
     repro trace stat <file>...";

/// Entry point for `repro trace …`. Returns the process exit code:
/// 0 on success, 2 on usage or IO/format errors.
pub fn run(operands: &[String], seed: u64, ops: usize) -> i32 {
    match operands.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "record" => record(rest, seed, ops),
            "convert" => convert(rest),
            "stat" => stat(rest),
            other => {
                eprintln!("trace: unknown subcommand {other}\n{USAGE}");
                2
            }
        },
        None => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// One stat-table row for a named trace.
fn stat_row(name: &str, t: &Trace) -> Vec<String> {
    let s = t.stats();
    vec![
        name.to_string(),
        format!("{}", s.ops),
        format!("{}", s.loads),
        format!("{}", s.stores),
        format!("{}", s.computes),
        format!("{} KiB", s.footprint_bytes() / 1024),
        format!("{:.2}", s.stride_score),
        format!("{:.1}", s.mean_burst),
        format!("{}", s.est_mlp),
    ]
}

const STAT_HEADERS: [&str; 9] =
    ["trace", "ops", "loads", "stores", "computes", "footprint", "stride", "burst", "est MLP"];

fn record(rest: &[String], seed: u64, ops: usize) -> i32 {
    let (dir, mix_name) = match rest {
        [d] => (Path::new(d), "PrefAgg-00"),
        [d, m] => (Path::new(d), m.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let mixes = build_mixes(seed, 10);
    let Some(mix) = mixes.iter().find(|m| m.name == mix_name) else {
        let names: Vec<&str> = mixes.iter().map(|m| m.name.as_str()).collect();
        eprintln!("trace record: no mix named {mix_name:?}; have: {}", names.join(", "));
        return 2;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace record: create {}: {e}", dir.display());
        return 2;
    }
    let llc = SystemConfig::scaled(mix.num_cores()).llc.size_bytes;
    let mut rows = Vec::new();
    for (i, w) in mix.instantiate(llc).into_iter().enumerate() {
        let slot_name = mix.slots[i].name().to_string();
        let mut rec = Recorder::new(w, ops);
        for _ in 0..ops {
            rec.next();
        }
        let trace = rec.into_trace();
        let file = dir.join(format!("{i:02}-{slot_name}.trc"));
        if let Err(e) = write_atomic(&file, &trace.to_binary()) {
            eprintln!("trace record: write {}: {e}", file.display());
            return 2;
        }
        rows.push(stat_row(&format!("{i:02}-{slot_name}"), &trace));
    }
    print!(
        "{}",
        report::table(
            &format!(
                "Recorded {} ({} ops/core, seed {seed}) into {}",
                mix.name,
                ops,
                dir.display()
            ),
            &STAT_HEADERS,
            &rows,
        )
    );
    0
}

fn load(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    Trace::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn convert(rest: &[String]) -> i32 {
    let [input, output] = match rest {
        [i, o] => [i, o],
        _ => {
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let trace = match load(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace convert: {e}");
            return 2;
        }
    };
    let out_path = Path::new(output);
    let binary_out =
        out_path.extension().and_then(|x| x.to_str()).is_some_and(|x| x == "trc" || x == "bin");
    let bytes = if binary_out { trace.to_binary() } else { trace.to_text().into_bytes() };
    if let Err(e) = write_atomic(out_path, &bytes) {
        eprintln!("trace convert: write {output}: {e}");
        return 2;
    }
    eprintln!(
        "[repro] converted {input} -> {output} ({} ops, {})",
        trace.len(),
        if binary_out { "binary" } else { "text" }
    );
    0
}

fn stat(rest: &[String]) -> i32 {
    if rest.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    }
    let mut rows = Vec::new();
    for path in rest {
        match load(path) {
            Ok(t) => {
                let name =
                    Path::new(path).file_name().and_then(|n| n.to_str()).unwrap_or(path.as_str());
                rows.push(stat_row(name, &t));
            }
            Err(e) => {
                eprintln!("trace stat: {e}");
                return 2;
            }
        }
    }
    print!("{}", report::table("Trace statistics", &STAT_HEADERS, &rows));
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cmm_tracecmd_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_writes_one_valid_trace_per_core() {
        let dir = tmp_dir("record");
        let out = dir.join("traces");
        let code = run(&["record".into(), out.display().to_string(), "PrefAgg-00".into()], 42, 500);
        assert_eq!(code, 0);
        let set = cmm_workloads::TraceSet::load_dir(&out).unwrap();
        assert_eq!(set.files.len(), 8);
        assert!(set.files.iter().all(|f| f.trace.len() == 500));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_is_deterministic_for_a_seed() {
        let dir = tmp_dir("det");
        let (a, b) = (dir.join("a"), dir.join("b"));
        for out in [&a, &b] {
            assert_eq!(run(&["record".into(), out.display().to_string()], 7, 200), 0);
        }
        let (sa, sb) = (
            cmm_workloads::TraceSet::load_dir(&a).unwrap(),
            cmm_workloads::TraceSet::load_dir(&b).unwrap(),
        );
        assert_eq!(sa.digest(), sb.digest(), "same seed must record identical traces");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_roundtrips_between_formats() {
        let dir = tmp_dir("convert");
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.push(cmm_trace::Op::Load { addr: i * 64, pc: 0x400 });
        }
        let bin_a = dir.join("a.trc");
        std::fs::write(&bin_a, t.to_binary()).unwrap();
        let txt = dir.join("a.txt");
        let bin_b = dir.join("b.trc");
        assert_eq!(
            run(&["convert".into(), bin_a.display().to_string(), txt.display().to_string()], 0, 0),
            0
        );
        assert_eq!(
            run(&["convert".into(), txt.display().to_string(), bin_b.display().to_string()], 0, 0),
            0
        );
        assert_eq!(
            std::fs::read(&bin_a).unwrap(),
            std::fs::read(&bin_b).unwrap(),
            "binary -> text -> binary must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_usage_and_bad_files_exit_2() {
        assert_eq!(run(&[], 0, 0), 2);
        assert_eq!(run(&["bogus".into()], 0, 0), 2);
        assert_eq!(run(&["stat".into(), "/nonexistent/x.trc".into()], 0, 0), 2);
        assert_eq!(run(&["record".into()], 0, 0), 2);
        let dir = tmp_dir("badmix");
        assert_eq!(
            run(&["record".into(), dir.display().to_string(), "NoSuchMix-99".into()], 0, 10),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
