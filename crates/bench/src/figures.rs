//! The multiprogrammed evaluation: Figs. 7–15.
//!
//! [`evaluate`] runs every workload mix under the baseline and a chosen
//! set of mechanisms once, measuring run-alone IPCs on the side; each
//! `fig*` function then extracts one figure's series from the shared
//! [`Evaluation`], so `repro all` pays for each simulation exactly once.

use std::collections::HashMap;

use cmm_core::experiment::{
    run_alone_ipc, run_mix_pooled, ExperimentConfig, MixResult, WarmupPool,
};
use cmm_core::policy::Mechanism;
use cmm_metrics as met;
use cmm_workloads::{build_mixes, Category, Mix, Slot};

use crate::checkpoint::{self, Checkpoint};
use crate::runner::{run_cells, CellFailure, Progress, DEFAULT_ATTEMPTS};

/// Evaluation-wide settings.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Per-run settings (machine, controller, durations).
    pub exp: ExperimentConfig,
    /// Workloads per category (paper: 10).
    pub mixes_per_category: usize,
    /// Mix-construction seed.
    pub seed: u64,
    /// Worker threads for the (mix × mechanism) matrix; `1` = serial.
    /// Output is bit-identical regardless of the value.
    pub jobs: usize,
    /// Per-cell attempt budget for panic isolation (`1` = no retries).
    /// Like `jobs`, never part of the config digest: retrying cannot
    /// change a deterministic cell's result.
    pub attempts: u32,
    /// When set, these mixes replace the synthetic `build_mixes` grid —
    /// the `--trace-dir` path. The trace-set digest (not the mixes) must
    /// then be folded into the checkpoint config digest by the caller.
    pub trace_mixes: Option<Vec<Mix>>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            exp: ExperimentConfig::default(),
            mixes_per_category: 10,
            seed: 42,
            jobs: 1,
            attempts: DEFAULT_ATTEMPTS,
            trace_mixes: None,
        }
    }
}

impl EvalConfig {
    /// Reduced size/duration for tests and `--quick`.
    pub fn quick() -> Self {
        EvalConfig {
            exp: ExperimentConfig::quick(),
            mixes_per_category: 2,
            ..EvalConfig::default()
        }
    }
}

/// All measurements for one workload mix.
#[derive(Debug, Clone)]
pub struct WorkloadEval {
    /// The mix that ran.
    pub mix: Mix,
    /// Run-alone IPC per core (for HS).
    pub alone: Vec<f64>,
    /// Baseline result.
    pub baseline: MixResult,
    /// Result per managed mechanism.
    pub managed: HashMap<Mechanism, MixResult>,
}

impl WorkloadEval {
    /// Harmonic speedup of a result against the run-alone IPCs.
    pub fn hs(&self, r: &MixResult) -> f64 {
        met::harmonic_speedup(&self.alone, &r.ipcs)
    }

    /// HS of `mech` normalized to the baseline's HS (the paper's Fig. 7/9/
    /// 11/13 y-axis).
    pub fn norm_hs(&self, mech: Mechanism) -> f64 {
        self.hs(&self.managed[&mech]) / self.hs(&self.baseline)
    }

    /// WS of `mech` normalized by the core count (1.0 = baseline parity).
    pub fn norm_ws(&self, mech: Mechanism) -> f64 {
        met::weighted_speedup(&self.managed[&mech].ipcs, &self.baseline.ipcs)
            / self.mix.num_cores() as f64
    }

    /// Lowest per-application normalized IPC (Figs. 8/10/12).
    pub fn worst_case(&self, mech: Mechanism) -> f64 {
        met::worst_case_speedup(&self.managed[&mech].ipcs, &self.baseline.ipcs)
    }

    /// Memory traffic normalized to baseline (Fig. 14).
    pub fn norm_bw(&self, mech: Mechanism) -> f64 {
        self.managed[&mech].mem_bytes as f64 / self.baseline.mem_bytes.max(1) as f64
    }

    /// Summed `STALLS_L2_PENDING` normalized to baseline (Fig. 15).
    pub fn norm_stalls(&self, mech: Mechanism) -> f64 {
        self.managed[&mech].stalls_l2 as f64 / self.baseline.stalls_l2.max(1) as f64
    }
}

/// The full evaluation state shared by all figures.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// One entry per workload, in the paper's plotting order.
    pub workloads: Vec<WorkloadEval>,
    /// Which mechanisms were run.
    pub mechanisms: Vec<Mechanism>,
}

impl Evaluation {
    /// Mean of `f` over the workloads of one category (the grey bars in
    /// the paper's figures).
    pub fn category_mean(&self, cat: Category, f: impl Fn(&WorkloadEval) -> f64) -> f64 {
        let vals: Vec<f64> =
            self.workloads.iter().filter(|w| w.mix.category == cat).map(f).collect();
        met::mean(&vals)
    }
}

/// Answers a cell from the resume sidecar, treating an undecodable cached
/// payload as a miss (with a warning) rather than poisoning the run.
fn splice<R>(
    ckpt: Option<&Checkpoint>,
    key: &str,
    decode: impl Fn(&crate::json::Json) -> Result<R, String>,
) -> Option<R> {
    let payload = ckpt?.cached(key)?;
    match decode(&payload) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("[repro] checkpoint entry '{key}' is undecodable ({e}); re-running cell");
            None
        }
    }
}

/// Runs the evaluation: every mix under the baseline plus `mechanisms`.
/// `progress` (if true) prints one timestamped line per completed cell to
/// stderr.
///
/// The (mix × mechanism) matrix fans out across `cfg.jobs` threads; every
/// cell owns its `System`, and results are reassembled in mix-then-
/// mechanism order, so the returned `Evaluation` — and any table printed
/// from it — is bit-identical to a serial (`jobs = 1`) run.
///
/// Every cell runs panic-isolated under `cfg.attempts`; cells that exhaust
/// the budget surface in the `Err` list after **all** sibling cells have
/// completed (and, with a checkpoint, been persisted), so a partial sweep
/// is never lost. With `ckpt`, completed cells are spliced from the
/// `cmm-ckpt/1` sidecar and fresh results appended to it; the lossless
/// codecs make a resumed `Evaluation` bit-identical to a fresh one.
pub fn evaluate_resumable(
    mechanisms: &[Mechanism],
    cfg: &EvalConfig,
    progress: bool,
    ckpt: Option<&Checkpoint>,
) -> Result<Evaluation, Vec<CellFailure>> {
    let mut mixes = match &cfg.trace_mixes {
        Some(m) => m.clone(),
        None => build_mixes(cfg.seed, cfg.mixes_per_category),
    };
    // Multi-socket machines run the same mixes tiled round-robin across
    // every socket (the alone-IPC stage is untouched: duplicated slots
    // share one alone run). Single-socket configs are left alone so
    // historical runs stay byte-identical.
    let topo = cfg.exp.sys.topology;
    if !topo.is_single() {
        mixes = mixes.into_iter().map(|m| m.tiled(topo.total_cores())).collect();
    }
    let log = Progress::new(progress);

    // Stage 1: run-alone IPCs of the distinct slots (each is one
    // independent single-core simulation — the serial code memoised them
    // lazily; here the deduplicated set fans out up front).
    let mut distinct: Vec<&Slot> = Vec::new();
    for mix in &mixes {
        for s in &mix.slots {
            if !distinct.iter().any(|d| d.name() == s.name()) {
                distinct.push(s);
            }
        }
    }
    let alone_run = run_cells(
        &distinct,
        cfg.jobs,
        cfg.attempts,
        |_, s| format!("alone: {}", s.name()),
        |k| splice(ckpt, k, checkpoint::decode_alone),
        |k, v: &f64| {
            if let Some(ck) = ckpt {
                ck.record(k, &checkpoint::encode_alone(*v));
            }
        },
        |_, s| log.cell(&format!("alone: {}", s.name()), || run_alone_ipc(s, &cfg.exp)),
    );
    let alone_resumed = alone_run.resumed;
    let alone_vals = alone_run.into_results()?;
    let alone_cache: HashMap<&str, f64> =
        distinct.iter().zip(&alone_vals).map(|(s, &v)| (s.name(), v)).collect();

    // Stage 2: the (mix × mechanism) matrix, mix-major so the reassembly
    // below is simple index arithmetic.
    let mut cells: Vec<(usize, Mechanism)> =
        Vec::with_capacity(mixes.len() * (1 + mechanisms.len()));
    for mi in 0..mixes.len() {
        cells.push((mi, Mechanism::Baseline));
        for &m in mechanisms {
            cells.push((mi, m));
        }
    }
    // One warm-up pool for the whole matrix: warm-up is uncontrolled, so
    // the baseline and every mechanism trial of a mix restore from one
    // shared snapshot instead of each re-simulating the warm-up.
    let pool = WarmupPool::new();
    let matrix_run = run_cells(
        &cells,
        cfg.jobs,
        cfg.attempts,
        |_, &(mi, m)| format!("{}: {}", mixes[mi].name, m.label()),
        |k| splice(ckpt, k, checkpoint::decode_mix_result),
        |k, r: &MixResult| {
            if let Some(ck) = ckpt {
                ck.record(k, &checkpoint::encode_mix_result(r));
            }
        },
        |_, &(mi, m)| {
            let mix = &mixes[mi];
            log.cell(&format!("{}: {}", mix.name, m.label()), || {
                run_mix_pooled(&pool, mix, m, &cfg.exp)
            })
        },
    );
    if matrix_run.resumed + alone_resumed > 0 {
        log.note(&format!(
            "resume: spliced {} cached cell(s) from the checkpoint",
            matrix_run.resumed + alone_resumed
        ));
    }
    let mut results = matrix_run.into_results()?;

    // Reassemble in mix order: baseline first, then `mechanisms` order —
    // exactly what the serial loop produced.
    let stride = 1 + mechanisms.len();
    let mut workloads = Vec::with_capacity(mixes.len());
    for (mi, mix) in mixes.iter().enumerate().rev() {
        let mut chunk = results.split_off(mi * stride);
        let baseline = chunk.remove(0);
        let managed: HashMap<Mechanism, MixResult> =
            mechanisms.iter().copied().zip(chunk).collect();
        let alone: Vec<f64> = mix.slots.iter().map(|s| alone_cache[s.name()]).collect();
        workloads.push(WorkloadEval { mix: mix.clone(), alone, baseline, managed });
    }
    workloads.reverse();
    Ok(Evaluation { workloads, mechanisms: mechanisms.to_vec() })
}

/// [`evaluate_resumable`] without checkpointing, panicking if any cell
/// exhausts its attempt budget — the convenience entry point for tests and
/// callers that have no failure-report path.
pub fn evaluate(mechanisms: &[Mechanism], cfg: &EvalConfig, progress: bool) -> Evaluation {
    evaluate_resumable(mechanisms, cfg, progress, None).unwrap_or_else(|failures| {
        let keys: Vec<&str> = failures.iter().map(|f| f.key.as_str()).collect();
        panic!("{} evaluation cell(s) failed: {}", failures.len(), keys.join(", "));
    })
}

/// A generic per-workload, per-mechanism series with category means —
/// the shape every Fig. 7–15 table shares.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure identifier, e.g. `"Fig. 7 (HS)"`.
    pub title: String,
    /// Mechanism labels, one per column.
    pub columns: Vec<String>,
    /// `(workload name, values per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// `(category label, mean per column)`.
    pub category_means: Vec<(String, Vec<f64>)>,
}

/// The categories present in an evaluation, in first-appearance order.
/// Synthetic evaluations yield the paper's four categories in plotting
/// order; trace-driven evaluations yield `[Category::Trace]`.
fn categories_of(eval: &Evaluation) -> Vec<Category> {
    let mut cats = Vec::new();
    for w in &eval.workloads {
        if !cats.contains(&w.mix.category) {
            cats.push(w.mix.category);
        }
    }
    cats
}

/// Builds a series by applying `f(workload, mechanism)` over the grid.
pub fn series(
    eval: &Evaluation,
    title: &str,
    mechanisms: &[Mechanism],
    f: impl Fn(&WorkloadEval, Mechanism) -> f64,
) -> FigureSeries {
    let rows = eval
        .workloads
        .iter()
        .map(|w| (w.mix.name.clone(), mechanisms.iter().map(|&m| f(w, m)).collect()))
        .collect();
    let category_means = categories_of(eval)
        .into_iter()
        .map(|c| {
            (
                c.label().to_string(),
                mechanisms.iter().map(|&m| eval.category_mean(c, |w| f(w, m))).collect(),
            )
        })
        .collect();
    FigureSeries {
        title: title.to_string(),
        columns: mechanisms.iter().map(|m| m.label().to_string()).collect(),
        rows,
        category_means,
    }
}

/// Fig. 7: PT's normalized HS and WS.
pub fn fig7(eval: &Evaluation) -> (FigureSeries, FigureSeries) {
    let m = [Mechanism::Pt];
    (
        series(eval, "Fig. 7 — PT: HS normalized to baseline", &m, |w, m| w.norm_hs(m)),
        series(eval, "Fig. 7 — PT: WS normalized to baseline", &m, |w, m| w.norm_ws(m)),
    )
}

/// Fig. 8: PT's lowest per-application normalized IPC per workload.
pub fn fig8(eval: &Evaluation) -> FigureSeries {
    series(eval, "Fig. 8 — PT: lowest normalized IPC", &[Mechanism::Pt], |w, m| w.worst_case(m))
}

const CP_MECHS: [Mechanism; 3] = [Mechanism::Dunn, Mechanism::PrefCp, Mechanism::PrefCp2];

/// Fig. 9: CP mechanisms' normalized HS and WS.
pub fn fig9(eval: &Evaluation) -> (FigureSeries, FigureSeries) {
    (
        series(eval, "Fig. 9 — CP: HS normalized to baseline", &CP_MECHS, |w, m| w.norm_hs(m)),
        series(eval, "Fig. 9 — CP: WS normalized to baseline", &CP_MECHS, |w, m| w.norm_ws(m)),
    )
}

/// Fig. 10: CP mechanisms' worst-case speedups.
pub fn fig10(eval: &Evaluation) -> FigureSeries {
    series(eval, "Fig. 10 — CP: lowest normalized IPC", &CP_MECHS, |w, m| w.worst_case(m))
}

const CMM_MECHS: [Mechanism; 3] = [Mechanism::CmmA, Mechanism::CmmB, Mechanism::CmmC];

/// Fig. 11: CMM-a/b/c normalized HS and WS.
pub fn fig11(eval: &Evaluation) -> (FigureSeries, FigureSeries) {
    (
        series(eval, "Fig. 11 — CMM: HS normalized to baseline", &CMM_MECHS, |w, m| w.norm_hs(m)),
        series(eval, "Fig. 11 — CMM: WS normalized to baseline", &CMM_MECHS, |w, m| w.norm_ws(m)),
    )
}

/// Fig. 12: CMM-a/b/c worst-case speedups.
pub fn fig12(eval: &Evaluation) -> FigureSeries {
    series(eval, "Fig. 12 — CMM: lowest normalized IPC", &CMM_MECHS, |w, m| w.worst_case(m))
}

/// Fig. 13: all seven mechanisms' normalized HS.
pub fn fig13(eval: &Evaluation) -> FigureSeries {
    series(
        eval,
        "Fig. 13 — all mechanisms: HS normalized to baseline",
        &Mechanism::all_managed(),
        |w, m| w.norm_hs(m),
    )
}

/// Fig. 14: normalized memory traffic.
pub fn fig14(eval: &Evaluation) -> FigureSeries {
    series(
        eval,
        "Fig. 14 — normalized memory bandwidth consumption",
        &Mechanism::all_managed(),
        |w, m| w.norm_bw(m),
    )
}

/// Supplementary fairness table (not a paper figure): Gabor fairness
/// (min/max slowdown) of the baseline and each mechanism, computed from
/// the run-alone IPCs. The paper folds fairness into HS; this view makes
/// the isolation improvement explicit.
pub fn fairness(eval: &Evaluation) -> FigureSeries {
    let mechs = eval.mechanisms.clone();
    let rows = eval
        .workloads
        .iter()
        .map(|w| {
            let mut vals = vec![met::gabor_fairness(&w.alone, &w.baseline.ipcs)];
            vals.extend(mechs.iter().map(|m| met::gabor_fairness(&w.alone, &w.managed[m].ipcs)));
            (w.mix.name.clone(), vals)
        })
        .collect();
    let category_means = categories_of(eval)
        .into_iter()
        .map(|c| {
            let mut vals =
                vec![eval.category_mean(c, |w| met::gabor_fairness(&w.alone, &w.baseline.ipcs))];
            vals.extend(mechs.iter().map(|&m| {
                eval.category_mean(c, |w| met::gabor_fairness(&w.alone, &w.managed[&m].ipcs))
            }));
            (c.label().to_string(), vals)
        })
        .collect();
    let mut columns = vec!["Baseline".to_string()];
    columns.extend(mechs.iter().map(|m| m.label().to_string()));
    FigureSeries {
        title: "Supplementary — Gabor fairness (min/max slowdown)".into(),
        columns,
        rows,
        category_means,
    }
}

/// The `repro bandwidth` mechanism roster: the paper's best two-resource
/// mechanism, the bandwidth-only ablation, and the three-resource CBP
/// coordination, side by side.
pub const BANDWIDTH_MECHS: [Mechanism; 3] = [Mechanism::CmmA, Mechanism::Mba, Mechanism::Cbp];

/// The three-resource comparison for `repro bandwidth`: per-mechanism
/// harmonic-mean IPC and Gabor fairness per mix. Raw hm_ipc (not
/// baseline-normalized HS) so the CBP-vs-CMM-a ordering on
/// bandwidth-contended mixes reads straight off the table.
pub fn bandwidth(eval: &Evaluation) -> (FigureSeries, FigureSeries) {
    (
        series(
            eval,
            "Bandwidth partitioning — harmonic-mean IPC per mechanism",
            &BANDWIDTH_MECHS,
            |w, m| met::hm_ipc(&w.managed[&m].ipcs),
        ),
        series(
            eval,
            "Bandwidth partitioning — Gabor fairness (min/max slowdown)",
            &BANDWIDTH_MECHS,
            |w, m| met::gabor_fairness(&w.alone, &w.managed[&m].ipcs),
        ),
    )
}

/// Fig. 15: normalized summed `STALLS_L2_PENDING`.
pub fn fig15(eval: &Evaluation) -> FigureSeries {
    series(
        eval,
        "Fig. 15 — normalized L2-pending stall cycles",
        &Mechanism::all_managed(),
        |w, m| w.norm_stalls(m),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_eval(mechs: &[Mechanism]) -> Evaluation {
        let mut cfg = EvalConfig::quick();
        cfg.mixes_per_category = 1;
        evaluate(mechs, &cfg, false)
    }

    #[test]
    fn evaluation_covers_all_categories_in_order() {
        let eval = tiny_eval(&[Mechanism::Pt]);
        assert_eq!(eval.workloads.len(), 4);
        let cats: Vec<Category> = eval.workloads.iter().map(|w| w.mix.category).collect();
        assert_eq!(cats, Category::all().to_vec());
    }

    #[test]
    fn series_shape_matches_grid() {
        let eval = tiny_eval(&[Mechanism::Pt]);
        let (hs, ws) = fig7(&eval);
        assert_eq!(hs.rows.len(), 4);
        assert_eq!(hs.columns, vec!["PT"]);
        assert_eq!(hs.category_means.len(), 4);
        assert_eq!(ws.rows[0].1.len(), 1);
    }

    #[test]
    fn norm_metrics_are_positive_and_sane() {
        let eval = tiny_eval(&[Mechanism::Pt]);
        for w in &eval.workloads {
            let hs = w.norm_hs(Mechanism::Pt);
            let ws = w.norm_ws(Mechanism::Pt);
            let wc = w.worst_case(Mechanism::Pt);
            assert!(hs > 0.3 && hs < 3.0, "hs {hs}");
            assert!(ws > 0.3 && ws < 3.0, "ws {ws}");
            assert!(wc > 0.0 && wc <= 2.0, "wc {wc}");
            assert!(w.norm_bw(Mechanism::Pt) > 0.0);
            assert!(w.norm_stalls(Mechanism::Pt) > 0.0);
        }
    }

    #[test]
    fn bandwidth_tables_cover_the_three_resource_roster() {
        let eval = tiny_eval(&BANDWIDTH_MECHS);
        let (hm, fair) = bandwidth(&eval);
        assert_eq!(hm.columns, vec!["CMM-a", "MBA", "CBP"]);
        assert_eq!(fair.columns, hm.columns);
        assert_eq!(hm.rows.len(), 4);
        for (_, vals) in hm.rows.iter().chain(&fair.rows) {
            assert!(vals.iter().all(|v| *v > 0.0), "{vals:?}");
        }
    }

    #[test]
    fn category_mean_is_mean_of_members() {
        let eval = tiny_eval(&[Mechanism::Pt]);
        let f = |w: &WorkloadEval| w.norm_hs(Mechanism::Pt);
        let manual = f(&eval.workloads[0]);
        assert!((eval.category_mean(Category::PrefFri, f) - manual).abs() < 1e-12);
    }
}
