//! Assembles the `cmm-journal/2` (single-socket) / `cmm-journal/3`
//! (multi-socket) / `cmm-journal/4` (MBA-capable) / `cmm-journal/5`
//! (governed) / `cmm-journal/6` (learned) run journal (see
//! [`cmm_core::telemetry`]) and pretty-prints it back
//! (`repro journal-summary`). The summary reader accepts
//! `cmm-journal/1` through `/6` — each schema only adds keys (`/3`: a
//! manifest `topology` and per-record `domain`; `/4`: per-trial and
//! applied `mba` levels; `/5`: a manifest `governor` flag and per-record
//! `governor` event arrays; `/6`: a manifest `learn` flag and per-record
//! `features` vectors and `action` labels).
//!
//! The journal is JSONL: one manifest line (schema, target, seed, git SHA,
//! host, config digest) followed by one line per controller profiling
//! epoch. Rendering delegates to [`cmm_core::telemetry`]; this module adds
//! the run-level context (git SHA discovery, host info), the deterministic
//! cell ordering for `evaluate` results, and the summary view.

use std::path::{Path, PathBuf};

use cmm_core::telemetry::{config_digest, EpochRecord, Manifest};

use crate::atomic::{salvage_jsonl, write_atomic};
use crate::figures::Evaluation;
use crate::json::{parse, Json};

/// What a harness knows about the run it is journaling.
#[derive(Debug, Clone)]
pub struct JournalMeta {
    /// Repro target (`"table1"`, `"fig7"`, `"all"`, …).
    pub target: String,
    /// Whether the `--quick` durations were used.
    pub quick: bool,
    /// Mix-construction seed.
    pub seed: u64,
    /// Canonical (Debug) rendering of the run's configuration; only its
    /// digest lands in the journal.
    pub config_debug: String,
    /// Topology label (`"2x16"`) on multi-socket runs; `None` keeps the
    /// journal at schema `/2`, byte-identical to pre-topology output.
    pub topology: Option<String>,
    /// Whether the run's mechanisms may program the MBA bandwidth knob;
    /// `true` declares schema `/4`. Legacy targets pass `false` and keep
    /// their /2 (or /3) journals byte-identical.
    pub mba: bool,
    /// Whether the run's driver carries the safety governor; `true`
    /// declares schema `/5`. Ungoverned targets pass `false` and keep
    /// their journals byte-identical.
    pub governor: bool,
    /// Whether the run's driver carries a learned controller; `true`
    /// declares schema `/6`. Unlearned targets pass `false` and keep
    /// their journals byte-identical.
    pub learn: bool,
}

/// Builds the manifest line's data from the meta plus the environment.
pub fn manifest(meta: &JournalMeta) -> Manifest {
    Manifest {
        target: meta.target.clone(),
        quick: meta.quick,
        seed: meta.seed,
        git_sha: git_sha().unwrap_or_else(|| "unknown".into()),
        host_os: std::env::consts::OS.to_string(),
        host_arch: std::env::consts::ARCH.to_string(),
        host_cpus: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        config_digest: config_digest(&meta.config_debug),
        topology: meta.topology.clone(),
        mba: meta.mba,
        governor: meta.governor,
        learn: meta.learn,
    }
}

/// The commit SHA of the working tree, read straight from `.git` (no git
/// binary dependency): follows `HEAD` through one level of symref, falling
/// back to `packed-refs`. `None` when not in a git checkout.
pub fn git_sha() -> Option<String> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if head.is_file() {
            return resolve_head(&dir.join(".git"), &head);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git_dir: &Path, head: &Path) -> Option<String> {
    let content = std::fs::read_to_string(head).ok()?;
    let content = content.trim();
    if let Some(refname) = content.strip_prefix("ref: ") {
        if let Ok(sha) = std::fs::read_to_string(git_dir.join(refname)) {
            return Some(sha.trim().to_string());
        }
        // Ref not loose — look it up in packed-refs.
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(sha) = line.strip_suffix(refname) {
                return Some(sha.trim().to_string());
            }
        }
        None
    } else {
        // Detached HEAD: the SHA itself.
        Some(content.to_string())
    }
}

/// Renders a complete journal: manifest first, then every cell's epochs in
/// the order given. Each `(run, epochs)` cell labels its records with the
/// run string (e.g. `"PrefAgg-00: CMM-a"`).
pub fn render(man: &Manifest, cells: &[(String, Vec<EpochRecord>)]) -> String {
    let mut out = String::new();
    out.push_str(&man.to_json_line());
    out.push('\n');
    for (run, epochs) in cells {
        for r in epochs {
            out.push_str(&r.to_json_line(run));
            out.push('\n');
        }
    }
    out
}

/// Writes the journal to `path` atomically (temp-then-rename, so a crash
/// mid-write can never leave a torn journal). Returns the epoch-line count.
pub fn write(
    path: &Path,
    man: &Manifest,
    cells: &[(String, Vec<EpochRecord>)],
) -> std::io::Result<usize> {
    write_atomic(path, render(man, cells).as_bytes())?;
    Ok(cells.iter().map(|(_, e)| e.len()).sum())
}

/// A loaded journal: parsed manifest plus parsed epoch records, with the
/// torn-tail salvage accounting every reader shares.
#[derive(Debug)]
pub struct JournalDoc {
    /// The manifest line, parsed.
    pub manifest: Json,
    /// Every `kind == "epoch"` record, parsed, in file order.
    pub epochs: Vec<Json>,
    /// Trailing partial lines dropped by torn-tail salvage (0 or 1).
    pub dropped: usize,
}

/// Parses a journal with torn-tail recovery: a final line torn by a crash
/// mid-write is dropped (and counted in [`JournalDoc::dropped`]) instead
/// of failing the whole file; mid-file garbage is still a proper error —
/// that is corruption, not an interrupted append.
pub fn load(text: &str) -> Result<JournalDoc, String> {
    let salvage = salvage_jsonl(text);
    let mut lines = salvage.lines.iter();
    let first = lines.next().ok_or("empty journal")?;
    let manifest = parse(first).map_err(|e| format!("line 1: {e}"))?;
    let schema = manifest.get("schema").and_then(Json::as_str).unwrap_or("");
    if !matches!(
        schema,
        "cmm-journal/1"
            | "cmm-journal/2"
            | "cmm-journal/3"
            | "cmm-journal/4"
            | "cmm-journal/5"
            | "cmm-journal/6"
    ) {
        return Err(format!("unsupported schema '{schema}' (want cmm-journal/1 through /6)"));
    }
    let mut epochs = Vec::new();
    for (i, line) in lines.enumerate() {
        let rec = parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        if rec.get("kind").and_then(Json::as_str) == Some("epoch") {
            epochs.push(rec);
        }
    }
    Ok(JournalDoc { manifest, epochs, dropped: salvage.dropped })
}

/// Extracts the journal cells from an [`Evaluation`], in the harness's
/// canonical order: per mix, the baseline first, then the evaluation's
/// mechanism order — the same order `evaluate` ran (and prints) them, and
/// independent of `--jobs`.
pub fn eval_cells(eval: &Evaluation) -> Vec<(String, Vec<EpochRecord>)> {
    let mut cells = Vec::new();
    for w in &eval.workloads {
        cells.push((
            format!("{}: {}", w.mix.name, w.baseline.mechanism.label()),
            w.baseline.epochs.clone(),
        ));
        for m in &eval.mechanisms {
            cells.push((format!("{}: {}", w.mix.name, m.label()), w.managed[m].epochs.clone()));
        }
    }
    cells
}

/// Per-run accumulator for [`summarize`]. On `/3` journals each CAT
/// domain of a run gets its own row (`domain` is the grouping key's second
/// half); on `/1`–`/2` journals `domain` is always `None`.
struct RunStats {
    run: String,
    domain: Option<u64>,
    mechanism: String,
    epochs: u64,
    agg_epochs: u64,
    agg_core_sum: u64,
    trials: u64,
    winners: u64,
    faults: u64,
    degraded_epochs: u64,
    churn: u64,
    applied_sig: Option<String>,
    rollbacks: u64,
    quarantines: u64,
    breaker_trips: u64,
    last_throttled: usize,
    last_partitioned: usize,
}

/// Parses a journal and renders the human-readable summary: manifest
/// context plus one row per run (epoch count, how often aggressors were
/// detected, trials searched, final applied state).
pub fn summarize(text: &str) -> Result<String, String> {
    let doc = load(text)?;
    let man = doc.manifest;
    let mut runs: Vec<RunStats> = Vec::new();
    for rec in &doc.epochs {
        let run = rec.get("run").and_then(Json::as_str).unwrap_or("?").to_string();
        let domain = rec.get("domain").and_then(Json::as_u64);
        let stats = match runs.iter_mut().find(|r| r.run == run && r.domain == domain) {
            Some(s) => s,
            None => {
                runs.push(RunStats {
                    run: run.clone(),
                    domain,
                    mechanism: rec
                        .get("mechanism")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    epochs: 0,
                    agg_epochs: 0,
                    agg_core_sum: 0,
                    trials: 0,
                    winners: 0,
                    faults: 0,
                    degraded_epochs: 0,
                    churn: 0,
                    applied_sig: None,
                    rollbacks: 0,
                    quarantines: 0,
                    breaker_trips: 0,
                    last_throttled: 0,
                    last_partitioned: 0,
                });
                runs.last_mut().unwrap()
            }
        };
        stats.epochs += 1;
        let agg_len = rec.get("agg").and_then(Json::as_array).map(<[Json]>::len).unwrap_or(0);
        if agg_len > 0 {
            stats.agg_epochs += 1;
            stats.agg_core_sum += agg_len as u64;
        }
        stats.trials +=
            rec.get("trials").and_then(Json::as_array).map(<[Json]>::len).unwrap_or(0) as u64;
        if rec.get("winner").and_then(Json::as_u64).is_some() {
            stats.winners += 1;
        }
        // /2-only keys; absent (0) on /1 journals.
        stats.faults +=
            rec.get("faults").and_then(Json::as_array).map(<[Json]>::len).unwrap_or(0) as u64;
        if rec.get("degraded").and_then(Json::as_str).is_some() {
            stats.degraded_epochs += 1;
        }
        // /5-only key; absent on ungoverned journals.
        if let Some(events) = rec.get("governor").and_then(Json::as_array) {
            for ev in events {
                match ev.get("action").and_then(Json::as_str) {
                    Some("rollback") => stats.rollbacks += 1,
                    Some("quarantine") => stats.quarantines += 1,
                    Some("breaker_open") => stats.breaker_trips += 1,
                    _ => {}
                }
            }
        }
        if let Some(applied) = rec.get("applied") {
            stats.last_throttled = applied
                .get("prefetch")
                .and_then(Json::as_array)
                .map(|v| v.iter().filter(|p| p.as_bool() == Some(false)).count())
                .unwrap_or(0);
            // "Partitioned" = not every core shares one identical mask.
            stats.last_partitioned = applied
                .get("way_mask")
                .and_then(Json::as_array)
                .map(|v| {
                    let first = v.first().and_then(Json::as_u64);
                    if v.iter().all(|m| m.as_u64() == first) {
                        0
                    } else {
                        v.len()
                    }
                })
                .unwrap_or(0);
            // Decision churn: an epoch churns when its applied machine
            // state (CLOS/mask/prefetch/MBA images) differs from the run's
            // previous epoch. The msr_1a4 image subsumes the boolean
            // prefetch view; the elided-when-all-zero mba key renders as a
            // stable empty segment.
            let sig = ["clos", "way_mask", "msr_1a4", "mba"]
                .iter()
                .map(|k| {
                    applied
                        .get(k)
                        .and_then(Json::as_array)
                        .map(|v| {
                            v.iter()
                                .filter_map(Json::as_u64)
                                .map(|x| x.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        })
                        .unwrap_or_default()
                })
                .collect::<Vec<_>>()
                .join(";");
            if stats.applied_sig.as_deref().is_some_and(|prev| prev != sig) {
                stats.churn += 1;
            }
            stats.applied_sig = Some(sig);
        }
    }

    let mut out = String::new();
    let field = |k: &str| man.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let target = field("target");
    let quick = man.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let seed = man.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let host = man.get("host");
    let topology = man
        .get("topology")
        .and_then(Json::as_str)
        .map(|t| format!(" topology={t}"))
        .unwrap_or_default();
    out.push_str(&format!(
        "journal: target={target} quick={quick} seed={seed}{topology} git={} host={}/{} cpus={} {}\n",
        field("git_sha"),
        host.and_then(|h| h.get("os")).and_then(Json::as_str).unwrap_or("?"),
        host.and_then(|h| h.get("arch")).and_then(Json::as_str).unwrap_or("?"),
        host.and_then(|h| h.get("cpus")).and_then(Json::as_u64).unwrap_or(0),
        field("config_digest"),
    ));
    if doc.dropped > 0 {
        out.push_str(&format!(
            "note: torn tail — dropped {} partial line(s), salvaged {} epoch record(s)\n",
            doc.dropped,
            doc.epochs.len()
        ));
    }
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let mean_agg = if r.agg_epochs > 0 {
                format!("{:.1}", r.agg_core_sum as f64 / r.agg_epochs as f64)
            } else {
                "-".into()
            };
            vec![
                match r.domain {
                    Some(d) => format!("{} [d{d}]", r.run),
                    None => r.run.clone(),
                },
                r.mechanism.clone(),
                r.epochs.to_string(),
                format!("{}/{}", r.agg_epochs, r.epochs),
                mean_agg,
                r.trials.to_string(),
                r.winners.to_string(),
                r.faults.to_string(),
                r.degraded_epochs.to_string(),
                r.churn.to_string(),
                r.last_throttled.to_string(),
                if r.last_partitioned > 0 { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &format!("journal-summary — {} runs, {} epochs", runs.len(), {
            runs.iter().map(|r| r.epochs).sum::<u64>()
        }),
        &[
            "run",
            "mechanism",
            "epochs",
            "agg-epochs",
            "mean|Agg|",
            "trials",
            "winners",
            "faults",
            "degraded",
            "churn",
            "throttled",
            "partitioned",
        ],
        &rows,
    ));
    // Resilience footer: only on runs where the harness actually absorbed
    // something, so clean-run summaries stay byte-identical.
    let eventful: Vec<&RunStats> = runs
        .iter()
        .filter(|r| {
            r.faults + r.degraded_epochs + r.rollbacks + r.quarantines + r.breaker_trips > 0
        })
        .collect();
    if !eventful.is_empty() {
        let sum = |f: fn(&RunStats) -> u64| eventful.iter().map(|r| f(r)).sum::<u64>();
        out.push_str(&format!(
            "resilience: faults={} degraded-epochs={} rollbacks={} quarantines={} \
             breaker-trips={}\n",
            sum(|r| r.faults),
            sum(|r| r.degraded_epochs),
            sum(|r| r.rollbacks),
            sum(|r| r.quarantines),
            sum(|r| r.breaker_trips),
        ));
        for r in eventful {
            out.push_str(&format!(
                "  {}: faults={} degraded-epochs={} rollbacks={} quarantines={} \
                 breaker-trips={}\n",
                match r.domain {
                    Some(d) => format!("{} [d{d}]", r.run),
                    None => r.run.clone(),
                },
                r.faults,
                r.degraded_epochs,
                r.rollbacks,
                r.quarantines,
                r.breaker_trips,
            ));
        }
    }
    Ok(out)
}

/// Renders the journal's per-epoch telemetry as a plottable CSV
/// (`journal-summary --csv`): one row per epoch record, with the
/// execution-epoch outcome fields the control loop is judged by. Empty
/// cells mean "not available this epoch" (e.g. `exec_hm_ipc` before the
/// first execution epoch completes).
pub fn epochs_csv(text: &str) -> Result<String, String> {
    let doc = load(text)?;
    // The domain column only appears on multi-socket (/3) journals, so
    // single-socket CSV output stays byte-identical to the /2 reader's.
    let with_domain = doc.epochs.iter().any(|r| r.get("domain").is_some());
    let mut out = if with_domain {
        String::from("run,domain,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded\n")
    } else {
        String::from("run,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded\n")
    };
    for rec in &doc.epochs {
        let run = rec.get("run").and_then(Json::as_str).unwrap_or("?");
        let epoch = rec.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        let mech = rec.get("mechanism").and_then(Json::as_str).unwrap_or("?");
        let hm = rec
            .get("exec_hm_ipc")
            .and_then(Json::as_f64)
            .map(|v| format!("{v:.6}"))
            .unwrap_or_default();
        let delta = rec
            .get("exec_ipc_delta")
            .and_then(Json::as_f64)
            .map(|v| format!("{v:.6}"))
            .unwrap_or_default();
        let faults = rec.get("faults").and_then(Json::as_array).map(<[Json]>::len).unwrap_or(0);
        let degraded = rec.get("degraded").and_then(Json::as_str).unwrap_or("");
        let domain = if with_domain {
            format!(
                "{},",
                rec.get("domain").and_then(Json::as_u64).map(|d| d.to_string()).unwrap_or_default()
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{},{domain}{},{},{},{},{},{}\n",
            csv_field(run),
            epoch,
            csv_field(mech),
            hm,
            delta,
            faults,
            csv_field(degraded)
        ));
    }
    Ok(out)
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_core::frontend::Metrics;
    use cmm_core::telemetry::{CoreSample, Trial};
    use cmm_sim::system::CoreControl;

    fn record(epoch: u64, trials: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            cycle: epoch * 100_000,
            mechanism: "CMM-a",
            domain: None,
            cores: vec![CoreSample {
                ipc: 1.0,
                metrics: Metrics {
                    l2_llc_traffic: 10,
                    l2_pf_miss_frac: 0.5,
                    l2_ptr: 0.01,
                    pga: 2.0,
                    l2_pmr: 0.7,
                    l2_ppm: 3.0,
                    llc_pt: 1.0,
                },
            }],
            agg: vec![0],
            friendly: vec![],
            unfriendly: vec![0],
            trials: (0..trials)
                .map(|i| Trial {
                    msr_1a4: vec![0xF * (i as u64 % 2)],
                    mba: vec![],
                    hm_ipc: 1.0 + i as f64,
                })
                .collect(),
            winner: if trials > 0 { Some(trials - 1) } else { None },
            exec_hm_ipc: if epoch > 1 { Some(1.0) } else { None },
            exec_ipc_delta: None,
            faults: Vec::new(),
            degraded: None,
            features: Vec::new(),
            action: None,
            governor: Vec::new(),
            applied: vec![
                CoreControl { clos: 1, way_mask: 0b11, msr_1a4: 0xF, mba_level: 0 },
                CoreControl { clos: 0, way_mask: 0xFFFFF, msr_1a4: 0x0, mba_level: 0 },
            ],
        }
    }

    fn meta() -> JournalMeta {
        JournalMeta {
            target: "test".into(),
            quick: true,
            seed: 3,
            config_debug: "cfg".into(),
            topology: None,
            mba: false,
            governor: false,
            learn: false,
        }
    }

    #[test]
    fn mba_journal_declares_schema_4_and_summarizes() {
        let man = manifest(&JournalMeta { mba: true, ..meta() });
        let mut r = record(1, 1);
        r.mechanism = "CBP";
        r.trials[0].mba = vec![40, 0];
        r.applied[0].mba_level = 40;
        let text = render(&man, &[("Mix-00: CBP".to_string(), vec![r])]);
        assert!(text.starts_with("{\"schema\":\"cmm-journal/4\""), "{text}");
        assert!(text.contains("\"mba\":[40,0]"), "{text}");
        let summary = summarize(&text).expect("summary");
        assert!(summary.contains("Mix-00: CBP"), "{summary}");
    }

    #[test]
    fn governed_journal_declares_schema_5_and_reports_resilience() {
        use cmm_core::telemetry::GovernorEvent;
        let man = manifest(&JournalMeta { mba: true, governor: true, ..meta() });
        let mut r = record(2, 1);
        r.mechanism = "CBP+gov";
        r.governor = vec![
            GovernorEvent { cycle: 200_000, action: "rollback", core: None, class: None },
            GovernorEvent { cycle: 200_000, action: "quarantine", core: Some(3), class: None },
            GovernorEvent {
                cycle: 200_000,
                action: "breaker_open",
                core: None,
                class: Some("mba"),
            },
            GovernorEvent {
                cycle: 200_000,
                action: "breaker_close",
                core: None,
                class: Some("mba"),
            },
        ];
        let text = render(&man, &[("Mix-00: CBP+gov".to_string(), vec![r])]);
        assert!(text.starts_with("{\"schema\":\"cmm-journal/5\""), "{text}");
        assert!(text.contains("\"governor\":true"), "{text}");
        assert!(text.contains("\"action\":\"rollback\""), "{text}");
        let summary = summarize(&text).expect("summary");
        assert!(
            summary.contains(
                "resilience: faults=0 degraded-epochs=0 rollbacks=1 quarantines=1 \
                 breaker-trips=1"
            ),
            "{summary}"
        );
        assert!(summary.contains("  Mix-00: CBP+gov: faults=0"), "{summary}");
        // The CSV header is pinned: governor events must not widen it.
        let csv = epochs_csv(&text).expect("csv");
        assert!(
            csv.starts_with("run,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded\n"),
            "{csv}"
        );
    }

    #[test]
    fn learned_journal_declares_schema_6_and_counts_churn() {
        let man = manifest(&JournalMeta { mba: true, learn: true, ..meta() });
        let mut r1 = record(1, 0);
        r1.features = vec![1.25, 0.5];
        r1.action = Some("pf=0xf,cat=cmm,mba=0,stretch=1".into());
        let mut r2 = record(2, 0);
        r2.applied[0].way_mask = 0b1100; // re-planned differently: churn
        let mut r3 = record(3, 0);
        r3.applied[0].way_mask = 0b1100; // held steady: no churn
        for r in [&mut r1, &mut r2, &mut r3] {
            r.mechanism = "RL-CBP";
        }
        let text = render(&man, &[("Mix-00: RL-CBP".to_string(), vec![r1, r2, r3])]);
        assert!(text.starts_with("{\"schema\":\"cmm-journal/6\""), "{text}");
        assert!(text.contains("\"learn\":true"), "{text}");
        assert!(text.contains("\"features\":[1.250000,0.500000]"), "{text}");
        assert!(text.contains("\"action\":\"pf=0xf,cat=cmm,mba=0,stretch=1\""), "{text}");
        let summary = summarize(&text).expect("summary");
        let row = summary.lines().find(|l| l.contains("Mix-00: RL-CBP")).expect("run row");
        let cols: Vec<&str> = row.split_whitespace().collect();
        // Trailing columns: …, degraded, churn, throttled, partitioned.
        assert_eq!(cols[cols.len() - 3], "1", "one applied-state change in three epochs: {row}");
        // The CSV header is pinned: /6 keys must not widen it.
        let csv = epochs_csv(&text).expect("csv");
        assert!(
            csv.starts_with("run,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded\n"),
            "{csv}"
        );
    }

    #[test]
    fn clean_summaries_have_no_resilience_footer() {
        let man = manifest(&meta());
        let text = render(&man, &[("Mix-00: CMM-a".to_string(), vec![record(1, 1)])]);
        let summary = summarize(&text).expect("summary");
        assert!(!summary.contains("resilience:"), "{summary}");
    }

    #[test]
    fn multi_socket_journal_groups_by_domain() {
        let man = manifest(&JournalMeta { topology: Some("2x2".into()), ..meta() });
        let mut d0 = record(1, 1);
        d0.domain = Some(0);
        let mut d1 = record(1, 2);
        d1.domain = Some(1);
        let text = render(&man, &[("Mix-00: CMM-a".to_string(), vec![d0, d1])]);
        assert!(text.starts_with("{\"schema\":\"cmm-journal/3\""), "{text}");
        let summary = summarize(&text).expect("summary");
        // One row per domain, plus the topology in the header.
        assert!(summary.contains("topology=2x2"), "{summary}");
        assert!(summary.contains("Mix-00: CMM-a [d0]"), "{summary}");
        assert!(summary.contains("Mix-00: CMM-a [d1]"), "{summary}");
        assert!(summary.contains("2 runs, 2 epochs"), "{summary}");
        let csv = epochs_csv(&text).expect("csv");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "run,domain,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded"
        );
        assert!(lines[1].starts_with("Mix-00: CMM-a,0,1,"), "{csv}");
        assert!(lines[2].starts_with("Mix-00: CMM-a,1,1,"), "{csv}");
    }

    #[test]
    fn rendered_journal_round_trips_through_summarize() {
        let man = manifest(&meta());
        let cells = vec![
            ("Mix-00: Baseline".to_string(), vec![record(1, 0)]),
            ("Mix-00: CMM-a".to_string(), vec![record(1, 2), record(2, 3)]),
        ];
        let text = render(&man, &cells);
        assert_eq!(text.lines().count(), 4);
        let summary = summarize(&text).expect("summary");
        assert!(summary.contains("target=test"), "{summary}");
        assert!(summary.contains("Mix-00: CMM-a"), "{summary}");
        assert!(summary.contains("2 runs, 3 epochs"), "{summary}");
        // CMM row: 2 epochs, 5 trials, 2 winners, 1 throttled core,
        // partitioned.
        assert!(summary.contains('5'), "{summary}");
        assert!(summary.contains("yes"), "{summary}");
    }

    #[test]
    fn every_journal_line_is_valid_json() {
        let man = manifest(&meta());
        let text = render(&man, &[("r".to_string(), vec![record(1, 1)])]);
        for line in text.lines() {
            assert!(parse(line).is_ok(), "invalid journal line: {line}");
        }
    }

    #[test]
    fn load_recovers_a_torn_tail() {
        let man = manifest(&meta());
        let text = render(&man, &[("r".to_string(), vec![record(1, 1), record(2, 2)])]);
        // Tear the final epoch line as a crash mid-write would.
        let torn = &text[..text.len() - 25];
        let doc = load(torn).expect("torn tail must salvage, not error");
        assert_eq!(doc.dropped, 1);
        assert_eq!(doc.epochs.len(), 1, "only the intact epoch survives");
        let summary = summarize(torn).expect("summary of salvaged journal");
        assert!(summary.contains("torn tail"), "{summary}");
        assert!(summary.contains("1 runs, 1 epochs"), "{summary}");
    }

    #[test]
    fn load_still_rejects_mid_file_corruption() {
        let man = manifest(&meta());
        let text = render(&man, &[("r".to_string(), vec![record(1, 1), record(2, 2)])]);
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{definitely not json";
        let corrupted = format!("{}\n", lines.join("\n"));
        let err = load(&corrupted).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(summarize(&corrupted).is_err());
    }

    #[test]
    fn torn_manifest_is_an_error_not_a_panic() {
        // A journal whose only line is a torn manifest salvages to empty.
        let err = load("{\"schema\":\"cmm-jour").unwrap_err();
        assert!(err.contains("empty journal"), "{err}");
    }

    #[test]
    fn epochs_csv_exports_one_row_per_epoch() {
        let man = manifest(&meta());
        let cells = vec![
            ("Mix-00: Baseline".to_string(), vec![record(1, 0)]),
            ("Mix-00: CMM-a".to_string(), vec![record(1, 2), record(2, 3)]),
        ];
        let csv = epochs_csv(&render(&man, &cells)).expect("csv");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "run,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded");
        assert_eq!(lines.len(), 4, "{csv}");
        assert!(lines[1].starts_with("Mix-00: Baseline,1,CMM-a,"), "{csv}");
        // Epoch 1 has no completed execution epoch: empty exec fields.
        assert!(lines[2].ends_with(",,,0,"), "{csv}");
        // Epoch 2 reports exec_hm_ipc at journal precision.
        assert!(lines[3].contains(",1.000000,"), "{csv}");
    }

    #[test]
    fn csv_fields_with_delimiters_are_quoted() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn manifest_reflects_environment() {
        let man = manifest(&meta());
        assert_eq!(man.host_os, std::env::consts::OS);
        assert!(man.host_cpus >= 1);
        assert!(man.config_digest.starts_with("fnv1a:"));
        // Running inside the repo's checkout, the SHA must resolve.
        assert_ne!(man.git_sha, "");
    }

    #[test]
    fn git_sha_resolves_in_this_checkout() {
        let sha = git_sha().expect("repo checkout");
        assert!(sha.len() >= 7, "sha {sha}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "sha {sha}");
    }

    #[test]
    fn summarize_rejects_garbage() {
        assert!(summarize("").is_err());
        assert!(summarize("{\"schema\":\"other\"}").is_err());
        assert!(summarize("not json").is_err());
    }

    #[test]
    fn write_reports_epoch_count() {
        let dir = std::env::temp_dir().join("cmm_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let man = manifest(&meta());
        let n = write(&path, &man, &[("r".to_string(), vec![record(1, 0), record(2, 1)])])
            .expect("write");
        assert_eq!(n, 2);
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
