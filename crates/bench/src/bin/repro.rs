//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <target> [--quick] [--mixes N] [--seed S] [--jobs N] [--csv DIR]
//!       [--bench-json PATH] [--journal PATH] [--fault-seed S]
//!       [--resume PATH] [--attempts N] [--trace-dir DIR]
//!       [--topology SxM[@shared|@CYCLES]]
//!
//! targets:
//!   table1   Table I metrics for every benchmark (run alone)
//!   fig1     memory bandwidth with/without prefetching
//!   fig2     IPC speedup from prefetching
//!   fig3     IPC vs number of LLC ways (prefetchers on)
//!   fig5     Agg-set detector stages on a sample mix
//!   fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!   fairness supplementary Gabor-fairness table
//!   overhead controller overhead accounting (paper: <0.1 %)
//!   ablate   partition-scale / epoch-ratio / QBS sensitivity studies
//!   extension  PT vs PT-fine (per-engine throttling beyond the paper)
//!   faults   fault-injection resilience sweep (hm_ipc vs fault rate;
//!            exit 1 if degradation cliffs below the smoothness floor);
//!            includes an MBA-register fault leg driving CBP -> CMM-a
//!   governor safety-governor dominance sweep: CBP bare vs CBP with the
//!            runtime governor (rollback, quarantine, circuit breakers)
//!            at increasing fault rates; exit 1 unless the governed run
//!            keeps at least the bare run's hm_ipc at every nonzero rate
//!   bandwidth  three-resource comparison: CMM-a vs bandwidth-only MBA vs
//!            CBP (prefetch × CAT × MBA), per-mix hm_ipc and fairness
//!   scale    topology sweep 1x8 -> 2x16 -> 4x32 (or one --topology):
//!            per-CAT-domain hm_ipc, one BENCH target per leg (scale_SxM)
//!   all      everything above (except ablate/extension/faults/scale)
//!
//! Trace subcommands (see DESIGN.md "Trace subsystem"):
//!   trace record <dir> [mix-name] [--ops N] [--seed S]
//!            record every core of a synthetic mix (default PrefAgg-00)
//!            into cmm-trace/1 binary files under <dir>
//!   trace convert <in> <out>
//!            transcode text <-> binary (input sniffed, output by extension)
//!   trace stat <file>...
//!            op counts, footprint and derived-MLP summary per file
//!
//! `--trace-dir DIR` on the fig7..fig15/fairness/overhead/ablate/all
//! targets replaces the synthetic mixes with the traces in DIR (grouped
//! 8 per mix, wrapping round-robin); the trace-set checksums join the
//! checkpoint config digest, so `--resume` refuses to splice cells from a
//! different trace set.
//!
//! CI subcommands (no simulation):
//!   bench-compare <baseline.json> <current.json> [--noise F] [--scps-floor N]
//!            diff two BENCH_sim.json perf logs; exit 1 on regression
//!   journal-summary <journal.jsonl> [--csv PATH]
//!            pretty-print a cmm-journal/1../5 run journal (multi-socket
//!            runs keyed per CAT domain: "mix: mech [d0]"); --csv also
//!            exports the per-epoch telemetry as a plottable CSV
//!   journal-diff <a.jsonl> <b.jsonl>
//!            compare two journals' per-epoch decision sequences;
//!            exit 1 on divergence, 2 on read/parse errors or when the
//!            two journals were recorded on different topologies or
//!            under different journal schemas
//!   soak     kill-and-resume chaos gate: clean run, transient-chaos run,
//!            persistent-chaos failure + resume, hard-kill + resume; exit 1
//!            unless every converged output is byte-identical
//! ```
//!
//! **Crash safety & resume.** Evaluation cells run panic-isolated with a
//! bounded retry budget (`--attempts`, default 3): a panicking cell never
//! aborts its siblings, and a cell that exhausts the budget surfaces in a
//! per-cell failure report (exit 1) after the rest of the sweep completed.
//! `--resume PATH` maintains a `cmm-ckpt/1` sidecar of completed cells:
//! an interrupted run re-invoked with the same `--resume` splices the
//! cached results and produces byte-identical stdout/journal output to an
//! uninterrupted run at any `--jobs`. The chaos flags (`--chaos-seed`,
//! `--chaos-rate`, `--chaos-mode`, `--chaos-kill`) inject seeded panics /
//! a hard process kill into the harness itself; `repro soak` drives them
//! end-to-end.
//!
//! `--quick` shrinks durations and the per-category workload count so the
//! whole suite finishes in minutes; the default matches the scaled
//! methodology of DESIGN.md.
//!
//! `--jobs N` fans independent simulations (the (mix × mechanism) matrix,
//! the characterisation roster, ablation points) across N threads; the
//! default is the host core count and `--jobs 1` is the serial fallback.
//! Table/figure output — and the run journal — is bit-identical for
//! every N.
//!
//! `--topology SxM` runs any target on an S-socket × M-core machine:
//! per-socket LLC + CAT domain, per-socket memory controllers by default
//! (`@shared` / `@CYCLES` select one controller homed on socket 0 with a
//! cross-socket fill penalty), one CMM controller instance per CAT
//! domain, and mixes tiled onto the larger machine by round-robin slot
//! replication. `--topology 1x8` is a complete no-op: digest, stdout and
//! journal stay byte-identical to the flagless run.
//!
//! Every run writes a machine-readable perf log (wall-clock, cells/sec,
//! sim-cycles/sec per target) to `BENCH_sim.json` (see `--bench-json`)
//! and a `cmm-journal/2` JSONL decision journal (per profiling epoch:
//! metric cascade, Agg set, trialed configs with hm_ipc, applied winner,
//! observed substrate faults and degradations) to `JOURNAL_sim.jsonl`
//! (see `--journal`); multi-socket runs upgrade it to `cmm-journal/3`
//! (manifest `topology` key, per-epoch CAT `domain`), MBA-capable
//! targets (`bandwidth`, `faults`) to `cmm-journal/4` (per-epoch MBA
//! trial/applied delay levels), and the governed `governor` target to
//! `cmm-journal/5` (manifest `governor` flag, per-epoch governor events).
//! `--fault-seed` seeds the `faults`/`governor` targets' injected fault
//! schedule (and the governor's jitter stream).

use cmm_bench::ablate;
use cmm_bench::chaos::{self, ChaosMode};
use cmm_bench::characterize::{
    prefetch_impact, profile_alone, way_sweep, ways_needed, CharacterizeConfig,
};
use cmm_bench::checkpoint::Checkpoint;
use cmm_bench::figures::{self, EvalConfig, Evaluation};
use cmm_bench::perf::BenchLog;
use cmm_bench::runner::{default_jobs, parallel_map, CellFailure, Progress, DEFAULT_ATTEMPTS};
use cmm_bench::{compare, diff, faults, governor, journal, learn, report, soak};
use cmm_core::backend;
use cmm_core::experiment::{run_mix_pooled, ExperimentConfig, WarmupPool};
use cmm_core::frontend::{detect_agg, metrics, DetectorConfig};
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_core::telemetry::EpochRecord;
use cmm_learn::{fnv1a, Model};
use cmm_metrics as met;
use cmm_sim::config::{SystemConfig, Topology};
use cmm_sim::System;
use cmm_workloads::spec::{self, thresholds, Benchmark};
use cmm_workloads::{build_mixes, Mix, TraceSet};

struct Args {
    target: String,
    /// Positional operands after the target (subcommand file paths).
    operands: Vec<String>,
    quick: bool,
    mixes: Option<usize>,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    csv: Option<std::path::PathBuf>,
    bench_json: std::path::PathBuf,
    journal: std::path::PathBuf,
    noise: f64,
    /// `bench-compare`: hard floor on each current target's
    /// `sim_cycles_per_s` (the CI `smoke_perf` gate).
    scps_floor: Option<f64>,
    resume: Option<std::path::PathBuf>,
    attempts: u32,
    trace_dir: Option<std::path::PathBuf>,
    /// `repro trace record`: ops captured per core.
    ops: usize,
    chaos_seed: u64,
    chaos_rate: f64,
    chaos_mode: ChaosMode,
    chaos_kill: Option<u64>,
    /// `--topology SxM[@shared|@cycles]`: sockets × cores/socket. `None`
    /// and single-socket values leave every output byte-identical to the
    /// historical single-socket runs.
    topology: Option<Topology>,
    /// `repro learn --model PATH`: load a `cmm-model/1` classifier instead
    /// of training one in-process (exit 2 on any format error).
    model: Option<std::path::PathBuf>,
    /// `repro learn train --out PATH`: where the fitted model is written.
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut target: Option<String> = None;
    let mut operands = Vec::new();
    let mut quick = false;
    let mut mixes = None;
    let mut seed = 42;
    let mut fault_seed = 7;
    let mut jobs = default_jobs();
    let mut csv = None;
    let mut bench_json = std::path::PathBuf::from("BENCH_sim.json");
    let mut journal = std::path::PathBuf::from("JOURNAL_sim.jsonl");
    let mut noise = compare::DEFAULT_NOISE;
    let mut scps_floor = None;
    let mut resume = None;
    let mut attempts = DEFAULT_ATTEMPTS;
    let mut trace_dir = None;
    let mut ops = 50_000;
    let mut chaos_seed = soak::SOAK_CHAOS_SEED;
    let mut chaos_rate = 0.0;
    let mut chaos_mode = ChaosMode::Transient;
    let mut chaos_kill = None;
    let mut topology = None;
    let mut model = None;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                csv = Some(std::path::PathBuf::from(it.next().expect("--csv needs a directory")))
            }
            "--bench-json" => {
                bench_json = std::path::PathBuf::from(it.next().expect("--bench-json needs a path"))
            }
            "--journal" => {
                journal = std::path::PathBuf::from(it.next().expect("--journal needs a path"))
            }
            "--noise" => {
                noise = it.next().and_then(|v| v.parse().ok()).expect("--noise needs a fraction")
            }
            "--scps-floor" => {
                scps_floor = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scps-floor needs sim-cycles/s"),
                )
            }
            "--mixes" => {
                mixes =
                    Some(it.next().and_then(|v| v.parse().ok()).expect("--mixes needs a number"))
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed needs a number")
            }
            "--fault-seed" => {
                fault_seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--fault-seed needs a number")
            }
            "--jobs" => {
                jobs = it.next().and_then(|v| v.parse().ok()).expect("--jobs needs a number");
                if jobs == 0 {
                    jobs = default_jobs();
                }
            }
            "--resume" => {
                resume = Some(std::path::PathBuf::from(
                    it.next().expect("--resume needs a checkpoint path"),
                ))
            }
            "--attempts" => {
                attempts =
                    it.next().and_then(|v| v.parse().ok()).expect("--attempts needs a number");
                if attempts == 0 {
                    attempts = 1;
                }
            }
            "--trace-dir" => {
                trace_dir = Some(std::path::PathBuf::from(
                    it.next().expect("--trace-dir needs a directory"),
                ))
            }
            "--ops" => {
                ops = it.next().and_then(|v| v.parse().ok()).expect("--ops needs a number");
                if ops == 0 {
                    ops = 1;
                }
            }
            "--chaos-seed" => {
                chaos_seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--chaos-seed needs a number")
            }
            "--chaos-rate" => {
                chaos_rate =
                    it.next().and_then(|v| v.parse().ok()).expect("--chaos-rate needs a fraction")
            }
            "--chaos-mode" => {
                chaos_mode = match it.next().as_deref() {
                    Some("transient") => ChaosMode::Transient,
                    Some("persistent") => ChaosMode::Persistent,
                    Some("hang") => ChaosMode::Hang,
                    other => {
                        eprintln!(
                            "--chaos-mode needs 'transient', 'persistent' or 'hang' (got {other:?})"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--chaos-kill" => {
                chaos_kill = Some(
                    it.next().and_then(|v| v.parse().ok()).expect("--chaos-kill needs a number"),
                )
            }
            "--model" => {
                model = Some(std::path::PathBuf::from(
                    it.next().expect("--model needs a cmm-model/1 path"),
                ))
            }
            "--out" => out = Some(std::path::PathBuf::from(it.next().expect("--out needs a path"))),
            "--topology" => {
                let spec = it.next().unwrap_or_default();
                topology = match spec.parse::<Topology>() {
                    Ok(t) => Some(t),
                    Err(e) => {
                        eprintln!("--topology: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro <table1|fig1|fig2|fig3|fig5|fig7..fig15|overhead|faults|\
                     governor|bandwidth|learn|all> \
                     [--quick] [--mixes N] [--seed S] [--fault-seed S] [--jobs N] [--csv DIR] \
                     [--bench-json PATH] [--journal PATH] [--resume CKPT] [--attempts N] \
                     [--topology SxM]\n       \
                     repro bandwidth … — three-resource comparison (CMM-a, MBA, CBP): \
                     per-mix hm_ipc and fairness, cmm-journal/4\n       \
                     repro governor [--quick] [--fault-seed S] … — CBP bare vs governed \
                     under injected faults (dominance gate), cmm-journal/5\n       \
                     repro learn [--quick] [--model PATH] … — learned controllers \
                     (ML-Sel, RL-CBP) vs CMM-a/CBP (floor + convergence gates), \
                     cmm-journal/6; trains in-process unless --model is given\n       \
                     repro learn train [--quick] [--out PATH] — fit the phase \
                     classifier and write it as cmm-model/1 (default mlsel.model)\n       \
                     repro scale [--quick] [--topology SxM] — topology sweep \
                     (default 1x8, 2x16, 4x32) with per-domain hm_ipc\n       \
                     repro <fig7..fig15|fairness|overhead|ablate|all> --trace-dir DIR …\n       \
                     repro trace record <dir> [mix-name] [--ops N] [--seed S]\n       \
                     repro trace convert <in> <out>\n       \
                     repro trace stat <file>...\n       \
                     repro soak [--jobs N]\n       \
                     repro bench-compare <baseline.json> <current.json> [--noise F] \
                     [--scps-floor N]\n       \
                     repro journal-summary <journal.jsonl> [--csv PATH]\n       \
                     repro journal-diff <a.jsonl> <b.jsonl>\n\n\
                     crash safety: --resume CKPT keeps a cmm-ckpt/1 sidecar of completed\n\
                     cells and splices them on re-run (byte-identical output); --attempts\n\
                     bounds per-cell retries after a panic. --chaos-seed/--chaos-rate/\n\
                     --chaos-mode/--chaos-kill inject harness faults (used by 'repro soak')."
                );
                std::process::exit(0);
            }
            t if !t.starts_with('-') => {
                if target.is_none() {
                    target = Some(t.to_string());
                } else {
                    operands.push(t.to_string());
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        target: target.unwrap_or_else(|| "all".into()),
        operands,
        quick,
        mixes,
        seed,
        fault_seed,
        jobs,
        csv,
        bench_json,
        journal,
        noise,
        scps_floor,
        resume,
        attempts,
        trace_dir,
        ops,
        chaos_seed,
        chaos_rate,
        chaos_mode,
        chaos_kill,
        topology,
        model,
        out,
    }
}

/// `repro learn train`: fit the phase classifier from the roster corpus
/// and write it out as a `cmm-model/1` document. Exit 0 on success, 2 on
/// an unwritable output path.
fn run_learn_train(args: &Args) -> i32 {
    let out = args.out.clone().unwrap_or_else(|| std::path::PathBuf::from("mlsel.model"));
    let t = learn::train_model(args.quick);
    print!(
        "{}",
        report::table(
            "Phase-classifier training corpus — run-alone IPC per 0x1A4 image",
            &learn::TRAIN_HEADERS,
            &t.rows,
        )
    );
    println!(
        "trained cmm-model/1: {} samples, {} classes, training accuracy {:.3}",
        t.samples,
        t.model.labels.len(),
        t.accuracy
    );
    let text = t.model.to_text();
    if let Err(e) = cmm_bench::atomic::write_atomic(&out, text.as_bytes()) {
        eprintln!("[repro] learn train: cannot write {}: {e}", out.display());
        return 2;
    }
    println!("wrote {} ({} bytes, digest {})", out.display(), text.len(), fnv1a(text.as_bytes()));
    0
}

/// Resolves the `repro learn` classifier: loads `--model` (exit 2 on any
/// `cmm-model/1` format error) or trains one in-process, printing the
/// training table. Returns the model plus its content digest (folded into
/// the run's config digest so `--resume` refuses a different model).
fn resolve_learn_model(args: &Args, log: &Progress) -> (Model, String) {
    match &args.model {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[repro] --model {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match Model::from_text(&text) {
                Ok(m) => {
                    log.note(&format!(
                        "loaded cmm-model/1 from {} ({} classes, digest {})",
                        path.display(),
                        m.labels.len(),
                        fnv1a(text.as_bytes())
                    ));
                    (m, fnv1a(text.as_bytes()))
                }
                Err(e) => {
                    eprintln!("[repro] --model {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => {
            let t = learn::train_model(args.quick);
            print!(
                "{}",
                report::table(
                    "Phase-classifier training corpus — run-alone IPC per 0x1A4 image",
                    &learn::TRAIN_HEADERS,
                    &t.rows,
                )
            );
            log.note(&format!(
                "trained phase classifier in-process: {} samples, accuracy {:.3}",
                t.samples, t.accuracy
            ));
            let digest = fnv1a(t.model.to_text().as_bytes());
            (t.model, digest)
        }
    }
}

/// `repro bench-compare <baseline> <current>`: exit 0 when within noise,
/// 1 on any regression (or missing target), 2 on usage/parse errors.
fn run_bench_compare(args: &Args) -> i32 {
    let [base_path, cur_path] = match args.operands.as_slice() {
        [b, c] => [b, c],
        _ => {
            eprintln!(
                "usage: repro bench-compare <baseline.json> <current.json> \
                 [--noise F] [--scps-floor N]"
            );
            return 2;
        }
    };
    let load = |p: &str| compare::load_doc(std::path::Path::new(p));
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-compare: {e}");
            return 2;
        }
    };
    if base.quick != cur.quick {
        eprintln!(
            "bench-compare: warning: comparing quick={} against quick={}",
            base.quick, cur.quick
        );
    }
    let deltas = compare::compare(&base, &cur, args.noise);
    print!("{}", compare::render(&deltas, args.noise));
    let mut failed = false;
    if compare::any_regression(&deltas) {
        eprintln!("bench-compare: REGRESSION over {base_path}");
        failed = true;
    }
    // --scps-floor: absolute throughput gate on the *current* log, the CI
    // smoke_perf hard floor (the relative sim-cyc/s column stays advisory).
    if let Some(floor) = args.scps_floor {
        for (name, scps) in compare::below_scps_floor(&cur, floor) {
            eprintln!(
                "bench-compare: {name}: {:.1}M sim-cycles/s below the {:.1}M floor",
                scps / 1e6,
                floor / 1e6
            );
            failed = true;
        }
    }
    i32::from(failed)
}

/// `repro journal-summary <journal.jsonl> [--csv PATH]`: exit 0 on
/// success, 2 on read/parse errors. With `--csv`, also exports the
/// journal's per-epoch telemetry (epoch, mechanism, exec hm_ipc and delta,
/// fault count, degraded flag) as a plottable CSV.
fn run_journal_summary(args: &Args) -> i32 {
    let [path] = match args.operands.as_slice() {
        [p] => [p],
        _ => {
            eprintln!("usage: repro journal-summary <journal.jsonl> [--csv PATH]");
            return 2;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("journal-summary: read {path}: {e}");
            return 2;
        }
    };
    let summary = match journal::summarize(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("journal-summary: {path}: {e}");
            return 2;
        }
    };
    print!("{summary}");
    if let Some(csv_path) = &args.csv {
        let csv = match journal::epochs_csv(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("journal-summary: {path}: {e}");
                return 2;
            }
        };
        if let Err(e) = cmm_bench::atomic::write_atomic(csv_path, csv.as_bytes()) {
            eprintln!("journal-summary: write {}: {e}", csv_path.display());
            return 2;
        }
        eprintln!("[repro] wrote {} ({} epoch rows)", csv_path.display(), csv.lines().count() - 1);
    }
    0
}

/// `repro journal-diff <a> <b>`: exit 0 when the decision sequences are
/// identical, 1 on divergence, 2 on read/parse errors.
fn run_journal_diff(args: &Args) -> i32 {
    let [a_path, b_path] = match args.operands.as_slice() {
        [a, b] => [a, b],
        _ => {
            eprintln!("usage: repro journal-diff <a.jsonl> <b.jsonl>");
            return 2;
        }
    };
    let load = |p: &str| -> Result<diff::Decisions, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        diff::parse_decisions(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("journal-diff: {e}");
            return 2;
        }
    };
    // Different machine shapes produce per-domain decision sequences that
    // cannot line up; refuse rather than report spurious divergences.
    if a.topology != b.topology {
        let show = |t: &Option<String>| t.clone().unwrap_or_else(|| "single-socket".into());
        eprintln!(
            "journal-diff: topology mismatch: {a_path} is {} but {b_path} is {}; \
             re-run both journals on the same --topology to compare decisions",
            show(&a.topology),
            show(&b.topology)
        );
        return 2;
    }
    // A /4 journal records a third resource (MBA delay levels) that
    // earlier schemas cannot express; a same-schema journal with different
    // decisions is a real divergence, but a cross-schema pair would only
    // report the schema gap dressed up as decision drift. Refuse outright,
    // like the topology gate above.
    if a.schema != b.schema {
        eprintln!(
            "journal-diff: schema mismatch: {a_path} is {} but {b_path} is {}; \
             re-record both journals under the same schema to compare decisions",
            a.schema, b.schema
        );
        return 2;
    }
    let rep = diff::diff(&a, &b);
    print!("{}", rep.render(a_path, b_path));
    if rep.identical() {
        0
    } else {
        1
    }
}

/// Prints a series and, when `--csv DIR` was given, also writes it there.
fn emit(series: &cmm_bench::figures::FigureSeries, csv: &Option<std::path::PathBuf>) {
    print!("{}", report::render(series));
    if let Some(dir) = csv {
        match cmm_bench::export::write_csv(dir, series) {
            Ok(path) => eprintln!("[repro] wrote {}", path.display()),
            Err(e) => eprintln!("[repro] csv export failed: {e}"),
        }
    }
}

fn char_cfg(quick: bool) -> (SystemConfig, CharacterizeConfig) {
    let sys = SystemConfig::scaled(1);
    let cfg = if quick { CharacterizeConfig::quick() } else { CharacterizeConfig::default() };
    (sys, cfg)
}

fn eval_cfg(args: &Args) -> EvalConfig {
    let mut cfg = if args.quick { EvalConfig::quick() } else { EvalConfig::default() };
    if let Some(m) = args.mixes {
        cfg.mixes_per_category = m;
    }
    cfg.seed = args.seed;
    cfg.jobs = args.jobs;
    cfg.attempts = args.attempts;
    // Multi-socket runs keep the per-socket geometry and replicate it;
    // mixes are tiled to the machine inside `evaluate_resumable`. A
    // single-socket --topology is a no-op, keeping output byte-identical.
    if let Some(t) = args.topology.filter(|t| !t.is_single()) {
        cfg.exp.sys.set_topology(t);
    }
    cfg
}

/// Simulated core-cycles of one characterisation run.
fn char_cycles(cfg: &CharacterizeConfig) -> u64 {
    cfg.warmup + cfg.measure
}

/// Topologies swept by `repro scale` when `--topology` doesn't narrow it
/// to one leg (the CI matrix does).
const SCALE_SWEEP: [&str; 3] = ["1x8", "2x16", "4x32"];

/// Per-cell durations for `repro scale`: the `--quick` eval durations are
/// sized for 8 cores, so the many-core legs (4x32 simulates 128 cores per
/// cell) get a further cut to stay inside the CI smoke budget.
fn scale_exp(quick: bool) -> ExperimentConfig {
    let mut cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    if quick {
        cfg.warmup_cycles = 300_000;
        cfg.total_cycles = 600_000;
    }
    cfg
}

/// `repro scale`: Baseline and CMM-a on tiled mixes across the topology
/// sweep, reporting per-CAT-domain hm_ipc. Each leg is its own
/// `scale_<label>` perf-log target, so `bench-compare` gates many-core
/// throughput (wall, sim-cycles/s) separately from the 8-core targets.
fn run_scale(args: &Args, bench: &mut BenchLog, log: &Progress) -> Vec<JournalCell> {
    let topos: Vec<Topology> = match args.topology {
        Some(t) => vec![t],
        None => SCALE_SWEEP.iter().map(|s| s.parse().expect("sweep labels parse")).collect(),
    };
    let mechs = [Mechanism::Baseline, Mechanism::CmmA];
    let mut cells: Vec<JournalCell> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for topo in topos {
        let mut cfg = scale_exp(args.quick);
        cfg.sys.set_topology(topo);
        let pairs: Vec<(Mix, Mechanism)> = build_mixes(args.seed, 1)
            .into_iter()
            .take(2)
            .map(|m| m.tiled(topo.total_cores()))
            .flat_map(|m| mechs.into_iter().map(move |mech| (m.clone(), mech)))
            .collect();
        let per_cell = (cfg.warmup_cycles + cfg.total_cycles) * topo.total_cores() as u64;
        let name = format!("scale_{}", topo.label());
        let results =
            bench.measure(&name, pairs.len() as u64, pairs.len() as u64 * per_cell, || {
                let pool = WarmupPool::new();
                parallel_map(&pairs, args.jobs, |_, (mix, mech)| {
                    log.cell(
                        &format!("scale {}: {} {}", topo.label(), mix.name, mech.label()),
                        || run_mix_pooled(&pool, mix, *mech, &cfg),
                    )
                })
            });
        let len = topo.cores_per_socket;
        for r in results {
            for d in 0..topo.sockets {
                rows.push(vec![
                    topo.label(),
                    r.mix_name.clone(),
                    r.mechanism.label().to_string(),
                    d.to_string(),
                    format!("{:.4}", met::hm_ipc(&r.ipcs[d * len..(d + 1) * len])),
                ]);
            }
            cells.push((
                format!("scale {}: {} {}", topo.label(), r.mix_name, r.mechanism.label()),
                r.epochs,
            ));
        }
    }
    print!(
        "{}",
        report::table(
            "Scale sweep — per-CAT-domain harmonic-mean IPC",
            &["topology", "mix", "mechanism", "domain", "hm_ipc"],
            &rows,
        )
    );
    cells
}

/// Work volume (cells, simulated core-cycles) of one full evaluation.
fn eval_volume(cfg: &EvalConfig, mechanisms: &[Mechanism]) -> (u64, u64) {
    let mixes = match &cfg.trace_mixes {
        Some(m) => m.clone(),
        None => build_mixes(cfg.seed, cfg.mixes_per_category),
    };
    let mut distinct: Vec<String> = Vec::new();
    for mix in &mixes {
        for s in &mix.slots {
            if !distinct.iter().any(|n| n == s.name()) {
                distinct.push(s.name().to_string());
            }
        }
    }
    let per_mix = (cfg.exp.warmup_cycles + cfg.exp.total_cycles) * cfg.exp.sys.num_cores as u64;
    let per_alone = cfg.exp.warmup_cycles + cfg.exp.alone_cycles;
    let mix_cells = (mixes.len() * (1 + mechanisms.len())) as u64;
    let cells = mix_cells + distinct.len() as u64;
    let cycles = mix_cells * per_mix + distinct.len() as u64 * per_alone;
    (cells, cycles)
}

/// One journal cell: a run label (`"table1: bwaves3d"`, `"PrefAgg-00:
/// CMM-a"`) and its recorded controller epochs.
type JournalCell = (String, Vec<EpochRecord>);

/// Table I. Besides printing the metric table, every benchmark's run ends
/// with one real PT profiling epoch on the still-warm machine, so the
/// target journals genuine controller decisions (cascade, Agg verdict,
/// throttle trials, applied winner) without changing the printed numbers.
fn table1(quick: bool, jobs: usize, log: &Progress) -> Vec<JournalCell> {
    let (sys, cfg) = char_cfg(quick);
    let ctrl = if quick { ControllerConfig::quick() } else { ControllerConfig::default() };
    let results: Vec<(Vec<String>, JournalCell)> =
        parallel_map(spec::roster(), jobs, |_, b: &Benchmark| {
            log.cell(&format!("table1: {}", b.name), || {
                let (r, epochs) = profile_alone(b, &sys, &cfg, &ctrl);
                let m = r.metrics;
                let row = vec![
                    b.name.to_string(),
                    format!("{:.3}", r.ipc),
                    format!("{}", m.l2_llc_traffic),
                    format!("{:.2}", m.l2_pf_miss_frac),
                    format!("{:.4}", m.l2_ptr),
                    format!("{:.2}", m.pga),
                    format!("{:.2}", m.l2_pmr),
                    format!("{:.2}", m.l2_ppm),
                    format!("{:.3}", m.llc_pt),
                ];
                (row, (format!("table1: {}", b.name), epochs))
            })
        });
    let (rows, cells): (Vec<Vec<String>>, Vec<JournalCell>) = results.into_iter().unzip();
    print!(
        "{}",
        report::table(
            "Table I — per-benchmark metrics (run alone, prefetchers on)",
            &[
                "benchmark",
                "IPC",
                "M-1 L2-LLC",
                "M-2 frac",
                "M-3 PTR",
                "M-4 PGA",
                "M-5 PMR",
                "M-6 PPM",
                "M-7 LLC-PT"
            ],
            &rows,
        )
    );
    cells
}

fn fig1(quick: bool, jobs: usize, log: &Progress) {
    let (sys, cfg) = char_cfg(quick);
    let rows: Vec<Vec<String>> = parallel_map(spec::roster(), jobs, |_, b: &Benchmark| {
        log.cell(&format!("fig1: {}", b.name), || {
            let imp = prefetch_impact(b, &sys, &cfg);
            let agg = imp.off.demand_bpc > thresholds::DEMAND_INTENSIVE_BPC
                && imp.bw_increase() > thresholds::AGGRESSIVE_BW_INCREASE;
            vec![
                b.name.to_string(),
                b.spec_alias.to_string(),
                format!("{:.3}", imp.off.total_bpc()),
                format!("{:.3}", imp.on.total_bpc()),
                format!("{:+.0}%", imp.bw_increase() * 100.0),
                format!("{}", if agg { "yes" } else { "no" }),
                format!("{}", if b.class.prefetch_aggressive { "yes" } else { "no" }),
            ]
        })
    });
    print!(
        "{}",
        report::table(
            "Fig. 1 — memory bandwidth (bytes/cycle) without/with prefetching",
            &[
                "benchmark",
                "SPEC analogue",
                "BW off",
                "BW on",
                "increase",
                "aggressive?",
                "intended"
            ],
            &rows,
        )
    );
}

fn fig2(quick: bool, jobs: usize, log: &Progress) {
    let (sys, cfg) = char_cfg(quick);
    let rows: Vec<Vec<String>> = parallel_map(spec::roster(), jobs, |_, b: &Benchmark| {
        log.cell(&format!("fig2: {}", b.name), || {
            let imp = prefetch_impact(b, &sys, &cfg);
            let friendly = imp.ipc_speedup() > thresholds::FRIENDLY_IPC_SPEEDUP;
            vec![
                b.name.to_string(),
                format!("{:.3}", imp.off.ipc),
                format!("{:.3}", imp.on.ipc),
                format!("{:+.0}%", imp.ipc_speedup() * 100.0),
                format!("{}", if friendly { "yes" } else { "no" }),
                format!("{}", if b.class.prefetch_friendly { "yes" } else { "no" }),
            ]
        })
    });
    print!(
        "{}",
        report::table(
            "Fig. 2 — IPC speedup from prefetching",
            &["benchmark", "IPC off", "IPC on", "speedup", "friendly?", "intended"],
            &rows,
        )
    );
}

fn fig3(quick: bool, jobs: usize, log: &Progress) {
    let (sys, cfg) = char_cfg(quick);
    let header_ways: Vec<String> = (1..=sys.llc.ways).map(|w| format!("{w}w")).collect();
    let mut headers: Vec<&str> = vec!["benchmark", "needs", "sensitive?"];
    headers.extend(header_ways.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = parallel_map(spec::roster(), jobs, |_, b: &Benchmark| {
        log.cell(&format!("fig3: {}", b.name), || {
            // The roster is already fanned out across `jobs`; the sweep's
            // inner way loop stays serial to avoid oversubscription.
            let sweep = way_sweep(b, &sys, &cfg, 1);
            let needs = ways_needed(&sweep, thresholds::LLC_SENSITIVE_PERF);
            let mut row = vec![
                b.name.to_string(),
                format!("{needs}"),
                format!("{}", if needs >= thresholds::LLC_SENSITIVE_WAYS { "yes" } else { "no" }),
            ];
            let peak = sweep.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
            row.extend(sweep.iter().map(|&i| format!("{:.2}", i / peak)));
            row
        })
    });
    print!(
        "{}",
        report::table(
            "Fig. 3 — IPC (relative to peak) vs LLC way count, prefetchers on",
            &headers,
            &rows,
        )
    );
}

fn fig5(quick: bool) {
    // Demonstrates the detector cascade on one Pref Agg mix.
    let mix: Mix = build_mixes(42, 1)[1].clone();
    let mut sys_cfg = SystemConfig::scaled(8);
    sys_cfg.set_num_cores(mix.num_cores());
    let workloads = mix.instantiate(sys_cfg.llc.size_bytes);
    let mut sys = System::new(sys_cfg, workloads);
    sys.run(if quick { 300_000 } else { 600_000 });
    let deltas = backend::sample(&mut sys, if quick { 40_000 } else { 100_000 });
    let det_cfg = DetectorConfig::default();
    let agg = detect_agg(&deltas, &det_cfg);
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let m = metrics(d);
            vec![
                format!("core {i}"),
                mix.slots[i].name().to_string(),
                format!("{:.2}", m.pga),
                format!("{:.2}", m.l2_pmr),
                format!("{:.4}", m.l2_ptr),
                format!("{}", if agg.contains(&i) { "AGG" } else { "-" }),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &format!(
                "Fig. 5 — Agg-set detection on {} (PGA≥{}, PMR≥{}, PTR≥{})",
                mix.name, det_cfg.pga_floor, det_cfg.pmr_threshold, det_cfg.ptr_threshold
            ),
            &["core", "benchmark", "PGA", "PMR", "PTR", "verdict"],
            &rows,
        )
    );
    let _ = ControllerConfig::default();
}

fn needed_mechanisms(target: &str) -> Vec<Mechanism> {
    match target {
        "fig7" | "fig8" => vec![Mechanism::Pt],
        "fig9" | "fig10" => vec![Mechanism::Dunn, Mechanism::PrefCp, Mechanism::PrefCp2],
        "fig11" | "fig12" => vec![Mechanism::CmmA, Mechanism::CmmB, Mechanism::CmmC],
        _ => Mechanism::all_managed().to_vec(),
    }
}

fn print_eval_target(target: &str, eval: &Evaluation, csv: &Option<std::path::PathBuf>) {
    match target {
        "fig7" => {
            let (hs, ws) = figures::fig7(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig8" => emit(&figures::fig8(eval), csv),
        "fig9" => {
            let (hs, ws) = figures::fig9(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig10" => emit(&figures::fig10(eval), csv),
        "fig11" => {
            let (hs, ws) = figures::fig11(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig12" => emit(&figures::fig12(eval), csv),
        "fig13" => emit(&figures::fig13(eval), csv),
        "fig14" => emit(&figures::fig14(eval), csv),
        "fig15" => emit(&figures::fig15(eval), csv),
        "fairness" => emit(&figures::fairness(eval), csv),
        "overhead" => {
            let mut rows = Vec::new();
            for w in &eval.workloads {
                for (&m, r) in &w.managed {
                    rows.push(vec![
                        w.mix.name.clone(),
                        m.label().to_string(),
                        format!("{:.4}%", r.overhead_ratio * 100.0),
                    ]);
                }
            }
            rows.sort();
            print!(
                "{}",
                report::table(
                    "Controller overhead (paper reports <0.1%)",
                    &["workload", "mechanism", "overhead"],
                    &rows,
                )
            );
        }
        other => unreachable!("unhandled eval target {other}"),
    }
}

fn run_ablations(args: &Args, trace_set: Option<&TraceSet>, log: &Progress) -> Vec<JournalCell> {
    let mut cfg = if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    if args.quick {
        cfg.total_cycles = 1_000_000;
    }
    let mixes = match trace_set {
        Some(set) => set.build_mixes(8),
        None => ablate::default_mixes(),
    };
    let mut cells: Vec<JournalCell> = Vec::new();
    let mut dump = |title: &str, sweep: &str, pts: Vec<ablate::AblationPoint>| {
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| vec![p.setting.clone(), p.mix.clone(), format!("{:.3}", p.norm_hs)])
            .collect();
        print!("{}", report::table(title, &["setting", "workload", "CMM-a norm. HS"], &rows));
        // The journal records the CMM-a decision telemetry of every grid
        // point, labelled by sweep and setting.
        for p in pts {
            cells.push((format!("{sweep}[{}] {}: CMM-a", p.setting, p.mix), p.epochs));
        }
    };
    log.note("ablation: partition scale");
    dump(
        "Ablation — partition sizing factor (paper: 1.5×)",
        "partition-scale",
        ablate::ablate_partition_scale(&cfg, &mixes, args.jobs),
    );
    log.note("ablation: epoch ratio");
    dump(
        "Ablation — execution-epoch : sampling-interval ratio (paper: 50:1)",
        "epoch-ratio",
        ablate::ablate_epoch_ratio(&cfg, &mixes, args.jobs),
    );
    log.note("ablation: QBS");
    dump(
        "Ablation — inclusive-LLC QBS victim selection",
        "qbs",
        ablate::ablate_qbs(&cfg, &mixes, args.jobs),
    );
    cells
}

fn run_extension(args: &Args, log: &Progress) -> Vec<JournalCell> {
    use cmm_core::experiment::{run_alone_ipcs, run_mix_pooled, WarmupPool};
    let cfg = if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let mixes: Vec<Mix> = build_mixes(args.seed, 2)
        .into_iter()
        .filter(|m| {
            matches!(
                m.category,
                cmm_workloads::Category::PrefUnfri | cmm_workloads::Category::PrefAgg
            )
        })
        .collect();
    let results: Vec<(Vec<String>, Vec<JournalCell>)> =
        parallel_map(&mixes, args.jobs, |_, mix| {
            log.cell(&format!("extension: {}", mix.name), || {
                let pool = WarmupPool::new();
                let alone = run_alone_ipcs(mix, &cfg);
                let base = run_mix_pooled(&pool, mix, Mechanism::Baseline, &cfg);
                let hs_base = cmm_metrics::harmonic_speedup(&alone, &base.ipcs);
                let mut row = vec![mix.name.clone()];
                let mut cells =
                    vec![(format!("{}: {}", mix.name, Mechanism::Baseline.label()), base.epochs)];
                for mech in [Mechanism::Pt, Mechanism::PtFine] {
                    let r = run_mix_pooled(&pool, mix, mech, &cfg);
                    let hs = cmm_metrics::harmonic_speedup(&alone, &r.ipcs) / hs_base;
                    let wc = cmm_metrics::worst_case_speedup(&r.ipcs, &base.ipcs);
                    row.push(format!("{hs:.3}"));
                    row.push(format!("{wc:.3}"));
                    cells.push((format!("{}: {}", mix.name, mech.label()), r.epochs));
                }
                (row, cells)
            })
        });
    let mut rows = Vec::with_capacity(results.len());
    let mut cells = Vec::new();
    for (row, mix_cells) in results {
        rows.push(row);
        cells.extend(mix_cells);
    }
    print!(
        "{}",
        report::table(
            "Extension — binary PT vs per-engine PT-fine (norm. HS / worst case)",
            &["workload", "PT HS", "PT wc", "PT-fine HS", "PT-fine wc"],
            &rows,
        )
    );
    cells
}

/// Reports cells that exhausted their attempt budget; the run continues to
/// write its perf log and (manifest-only) journal before exiting 1. With a
/// checkpoint, each failure is also recorded in the sidecar so a later
/// `--resume` can list what went wrong post-mortem.
fn report_cell_failures(target: &str, failures: &[CellFailure], ckpt: Option<&Checkpoint>) {
    eprintln!("[repro] {target}: {} cell(s) exhausted the retry budget:", failures.len());
    for f in failures {
        eprintln!(
            "[repro]   cell '{}' failed after {} attempt(s): {}",
            f.key, f.attempts, f.panic_msg
        );
        if let Some(ck) = ckpt {
            ck.record_failure(&f.key, f.attempts, &f.panic_msg);
        }
    }
    eprintln!(
        "[repro] every sibling cell completed; re-run with --resume to retry only the \
         failed cells"
    );
}

fn main() {
    let args = parse_args();
    // CI subcommands: pure file processing, no simulation, no perf log.
    // `soak` re-invokes this binary against a scratch dir and gates on
    // byte identity of the converged artifacts.
    match args.target.as_str() {
        "bench-compare" => std::process::exit(run_bench_compare(&args)),
        "journal-summary" => std::process::exit(run_journal_summary(&args)),
        "journal-diff" => std::process::exit(run_journal_diff(&args)),
        "trace" => {
            std::process::exit(cmm_bench::tracecmd::run(&args.operands, args.seed, args.ops))
        }
        "learn" if args.operands.first().map(String::as_str) == Some("train") => {
            std::process::exit(run_learn_train(&args))
        }
        "soak" => std::process::exit(soak::run(args.jobs)),
        _ => {}
    }
    // Trace-driven runs: the trace set replaces the synthetic mixes and
    // its checksums join the config digest below, so `--resume` refuses
    // to splice cells recorded against a different trace set.
    let trace_set: Option<TraceSet> =
        args.trace_dir.as_ref().map(|dir| match TraceSet::load_dir(dir) {
            Ok(set) => {
                eprintln!(
                    "[repro] trace-dir {}: {} trace(s) -> {} mix(es)",
                    dir.display(),
                    set.files.len(),
                    set.build_mixes(8).len()
                );
                set
            }
            Err(e) => {
                eprintln!("[repro] --trace-dir: {e}");
                std::process::exit(2);
            }
        });
    if args.chaos_rate > 0.0 || args.chaos_kill.is_some() {
        chaos::arm(chaos::ChaosConfig {
            seed: args.chaos_seed,
            rate: args.chaos_rate,
            mode: args.chaos_mode,
            kill_after: args.chaos_kill,
        });
        eprintln!(
            "[repro] chaos armed: seed={} rate={} mode={:?} kill_after={:?}",
            args.chaos_seed, args.chaos_rate, args.chaos_mode, args.chaos_kill
        );
    }
    let log = Progress::new(true);
    let mut bench = BenchLog::new(args.jobs, args.quick);
    let roster_n = spec::roster().len() as u64;
    let (_, ccfg) = char_cfg(args.quick);
    let c1 = char_cycles(&ccfg);
    // Run identity, shared by the journal manifest and the resume
    // checkpoint. Deliberately excludes --jobs, --attempts and the chaos
    // flags: none of them can change a deterministic run's results, so an
    // interrupted run may legitimately resume at a different parallelism.
    let mut config_debug = format!(
        "target={};quick={};seed={};fault_seed={};mixes={:?};exp={:?};char={:?};ctrl={:?}",
        args.target,
        args.quick,
        args.seed,
        args.fault_seed,
        args.mixes,
        if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() },
        ccfg,
        if args.quick { ControllerConfig::quick() } else { ControllerConfig::default() },
    );
    // Appended only for --trace-dir runs, so synthetic runs keep their
    // historical digests (old checkpoints stay resumable).
    if let Some(set) = &trace_set {
        config_debug.push_str(&format!(";traces={}", set.digest()));
    }
    // Topology joins the digest only when it changes the run: multi-socket
    // anywhere, or any explicit --topology on the `scale` sweep (which it
    // restricts to one leg). Plain single-socket runs keep their
    // historical digests and cmm-journal/2 manifests.
    let topo_label = match args.topology {
        Some(t) if args.target == "scale" || !t.is_single() => Some(t.label()),
        _ => None,
    };
    if let Some(label) = &topo_label {
        config_debug.push_str(&format!(";topology={label}"));
    }
    // The learned target resolves its classifier up front (load --model or
    // train in-process) and folds the model digest into the run identity,
    // so `--resume` refuses to splice cells evaluated under a different
    // model. Legacy targets keep their historical digests untouched.
    let learn_model: Option<Model> = (args.target == "learn").then(|| {
        let (model, digest) = resolve_learn_model(&args, &log);
        config_debug.push_str(&format!(";model={digest}"));
        model
    });
    let manifest_topology =
        topo_label.or_else(|| (args.target == "scale").then(|| SCALE_SWEEP.join("+")));
    let meta = journal::JournalMeta {
        target: args.target.clone(),
        quick: args.quick,
        seed: args.seed,
        config_debug,
        topology: manifest_topology,
        // MBA-capable targets journal per-epoch delay levels (/4). Every
        // other target keeps its historical schema byte-for-byte.
        mba: matches!(args.target.as_str(), "bandwidth" | "faults" | "governor" | "learn"),
        // The governed target journals per-epoch governor events (/5).
        governor: args.target == "governor",
        // The learned target journals per-epoch features and actions (/6).
        learn: args.target == "learn",
    };
    let digest = cmm_core::telemetry::config_digest(&meta.config_debug);
    let ckpt: Option<Checkpoint> = match &args.resume {
        None => None,
        Some(path) => match Checkpoint::open(path, &args.target, &digest) {
            Ok((ck, info)) => {
                if info.fresh {
                    eprintln!("[repro] checkpointing to {} (new sidecar)", path.display());
                } else {
                    eprintln!(
                        "[repro] resuming from {}: {} completed cell(s){}",
                        path.display(),
                        info.cached,
                        if info.dropped > 0 {
                            format!(", dropped {} torn line(s)", info.dropped)
                        } else {
                            String::new()
                        }
                    );
                }
                // Post-mortem: failures a previous run recorded for cells
                // that still have no result (satisfied or superseded
                // failures are filtered out by the checkpoint reader).
                for f in ck.prior_failures() {
                    eprintln!(
                        "[repro] prior failure: cell '{}' exhausted {} attempt(s): {}",
                        f.key, f.attempts, f.panic_msg
                    );
                }
                Some(ck)
            }
            Err(e) => {
                eprintln!("[repro] --resume: {e}");
                std::process::exit(2);
            }
        },
    };
    // Controller decision telemetry, per (run × mechanism) cell; becomes
    // the JSONL run journal after the target finishes.
    let mut cells: Vec<JournalCell> = Vec::new();
    // Deferred failure (the faults smoothness gate, cells that exhausted
    // their retry budget): the perf log and journal are still written
    // before the non-zero exit.
    let mut exit_code = 0;
    let eval_targets = [
        "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fairness",
        "overhead",
    ];
    match args.target.as_str() {
        "ablate" => {
            // 18 grid points, each ≈ one mix of alone runs + 2 mix runs.
            let e =
                if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
            let per_point =
                8 * (e.warmup_cycles + e.alone_cycles) + 2 * (e.warmup_cycles + e.total_cycles) * 8;
            cells = bench.measure("ablate", 18 * 10, 18 * per_point, || {
                run_ablations(&args, trace_set.as_ref(), &log)
            });
        }
        "extension" => {
            let e =
                if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
            let per_mix =
                8 * (e.warmup_cycles + e.alone_cycles) + 3 * (e.warmup_cycles + e.total_cycles) * 8;
            cells = bench.measure("extension", 4 * 11, 4 * per_mix, || run_extension(&args, &log));
        }
        "faults" => {
            let e =
                if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
            let n = faults::RATES.len() as u64;
            let per_rate = (e.warmup_cycles + e.total_cycles) * 8;
            let sweep = bench.measure("faults", n, n * per_rate, || {
                faults::sweep_resumable(
                    args.quick,
                    args.seed,
                    args.fault_seed,
                    args.jobs,
                    args.attempts,
                    &log,
                    ckpt.as_ref(),
                )
            });
            match sweep {
                Ok(sweep) => {
                    print!(
                        "{}",
                        report::table(
                            &format!(
                                "Fault-injection sweep — CMM-a, hm_ipc vs injected fault rate \
                                 (floor {:.2}× fault-free)",
                                faults::SMOOTHNESS_FLOOR
                            ),
                            &["rate", "hm_ipc", "rel", "faults", "degraded epochs", "verdict"],
                            &faults::rows(&sweep),
                        )
                    );
                    if !faults::passes(&sweep) {
                        eprintln!("[repro] faults: hm_ipc cliffed below the smoothness floor");
                        exit_code = 1;
                    }
                    cells = faults::journal_cells(sweep);
                }
                Err(failures) => {
                    report_cell_failures("faults", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
            // The MBA-register leg: CBP under faults confined to the MBA
            // throttle MSR, exercising the CBP -> CMM-a degradation rung.
            let mba_sweep = bench.measure("faults_mba", n, n * per_rate, || {
                faults::sweep_mba_resumable(
                    args.quick,
                    args.seed,
                    args.fault_seed,
                    args.jobs,
                    args.attempts,
                    &log,
                    ckpt.as_ref(),
                )
            });
            match mba_sweep {
                Ok(sweep) => {
                    print!(
                        "{}",
                        report::table(
                            &format!(
                                "MBA-fault sweep — CBP, hm_ipc vs MBA-register fault rate \
                                 (floor {:.2}× fault-free)",
                                faults::SMOOTHNESS_FLOOR
                            ),
                            &["rate", "hm_ipc", "rel", "faults", "degraded epochs", "verdict"],
                            &faults::rows(&sweep),
                        )
                    );
                    if !faults::passes(&sweep) {
                        eprintln!("[repro] faults: MBA leg cliffed below the smoothness floor");
                        exit_code = 1;
                    }
                    cells.extend(faults::mba_journal_cells(sweep));
                }
                Err(failures) => {
                    report_cell_failures("faults (mba leg)", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        "governor" => {
            let e =
                if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
            // Two legs (bare, governed) per swept rate.
            let n = 2 * governor::RATES.len() as u64;
            let per_cell = (e.warmup_cycles + e.total_cycles) * 8;
            let sweep = bench.measure("governor", n, n * per_cell, || {
                governor::sweep_resumable(
                    args.quick,
                    args.seed,
                    args.fault_seed,
                    args.jobs,
                    args.attempts,
                    &log,
                    ckpt.as_ref(),
                )
            });
            match sweep {
                Ok(sweep) => {
                    print!(
                        "{}",
                        report::table(
                            "Safety-governor sweep — CBP bare vs governed, hm_ipc vs fault \
                             rate (gate: governed >= bare at every nonzero rate)",
                            &[
                                "rate",
                                "hm bare",
                                "hm gov",
                                "delta",
                                "faults",
                                "rollbacks",
                                "quarantines",
                                "breaker trips",
                                "verdict"
                            ],
                            &governor::rows(&sweep),
                        )
                    );
                    if !governor::passes(&sweep) {
                        eprintln!(
                            "[repro] governor: governed CBP lost to bare CBP at a nonzero \
                             fault rate"
                        );
                        exit_code = 1;
                    }
                    cells = governor::journal_cells(sweep);
                }
                Err(failures) => {
                    report_cell_failures("governor", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        "learn" => {
            let e =
                if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
            let model = learn_model.as_ref().expect("learn target resolved a model above");
            // 4 standard mixes × 5 mechanisms (baseline, CMM-a, CBP and
            // the two learned controllers).
            let n = 4 * learn::MECHS.len() as u64;
            let per_cell = (e.warmup_cycles + e.total_cycles) * 8;
            let eval = bench.measure("learn", n, n * per_cell, || {
                learn::evaluate_resumable(
                    args.quick,
                    args.seed,
                    args.jobs,
                    args.attempts,
                    &log,
                    ckpt.as_ref(),
                    model,
                )
            });
            match eval {
                Ok(results) => {
                    print!(
                        "{}",
                        report::table(
                            "Learned controllers — per-mix hm_ipc, fairness and decision \
                             churn vs CMM-a/CBP",
                            &learn::EVAL_HEADERS,
                            &learn::rows(&results),
                        )
                    );
                    print!(
                        "{}",
                        report::table(
                            "ML-Sel vs CMM-a decision diff — per-epoch 0x1A4 agreement",
                            &learn::AGREEMENT_HEADERS,
                            &learn::agreement_rows(&results),
                        )
                    );
                    let vrows: Vec<Vec<String>> = learn::verdicts(&results)
                        .iter()
                        .map(|v| {
                            vec![
                                v.mix.clone(),
                                format!("{:.3}", v.mlsel_ratio),
                                format!("{:.3}", v.rl_tail_ratio),
                                format!("{:.3}", v.rl_run_ratio),
                                if v.ok() { "ok" } else { "MISS" }.into(),
                            ]
                        })
                        .collect();
                    print!(
                        "{}",
                        report::table(
                            &format!(
                                "Gate — ML-Sel >= {floor:.2}x CMM-a on every mix; RL-CBP \
                                 converges to >= CMM-a (tail or whole-run)",
                                floor = learn::MLSEL_FLOOR_RATIO
                            ),
                            &["mix", "mlsel/cmm", "rl tail/cmm", "rl run/cmm", "verdict"],
                            &vrows,
                        )
                    );
                    if !learn::passes(&results) {
                        eprintln!(
                            "[repro] learn: a learned controller missed its gate (ML-Sel \
                             floor or RL-CBP convergence)"
                        );
                        exit_code = 1;
                    }
                    cells = learn::journal_cells(results);
                }
                Err(failures) => {
                    report_cell_failures("learn", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        "scale" => {
            cells = run_scale(&args, &mut bench, &log);
        }
        "bandwidth" => {
            // Three-resource comparison: the paper's best two-resource
            // mechanism (CMM-a), the bandwidth-only MBA ablation, and the
            // CBP coordination of all three knobs, over the standard mixes
            // (tiled when --topology is multi-socket).
            let mut cfg = eval_cfg(&args);
            if let Some(set) = &trace_set {
                cfg.trace_mixes = Some(set.build_mixes(8));
            }
            let mechs = figures::BANDWIDTH_MECHS.to_vec();
            let (n_cells, cycles) = eval_volume(&cfg, &mechs);
            let eval = bench.measure("bandwidth", n_cells, cycles, || {
                figures::evaluate_resumable(&mechs, &cfg, true, ckpt.as_ref())
            });
            match eval {
                Ok(eval) => {
                    let (hm, fair) = figures::bandwidth(&eval);
                    emit(&hm, &args.csv);
                    emit(&fair, &args.csv);
                    cells = journal::eval_cells(&eval);
                }
                Err(failures) => {
                    report_cell_failures("bandwidth", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        "table1" => {
            cells = bench
                .measure("table1", roster_n, roster_n * c1, || table1(args.quick, args.jobs, &log));
        }
        "fig1" => {
            bench.measure("fig1", 2 * roster_n, 2 * roster_n * c1, || {
                fig1(args.quick, args.jobs, &log)
            });
        }
        "fig2" => {
            bench.measure("fig2", 2 * roster_n, 2 * roster_n * c1, || {
                fig2(args.quick, args.jobs, &log)
            });
        }
        "fig3" => {
            let ways = SystemConfig::scaled(1).llc.ways as u64;
            bench.measure("fig3", ways * roster_n, ways * roster_n * c1, || {
                fig3(args.quick, args.jobs, &log)
            });
        }
        "fig5" => {
            let cycles = if args.quick { 340_000u64 } else { 700_000 } * 8;
            bench.measure("fig5", 1, cycles, || fig5(args.quick));
        }
        t if eval_targets.contains(&t) => {
            let mut cfg = eval_cfg(&args);
            if let Some(set) = &trace_set {
                cfg.trace_mixes = Some(set.build_mixes(8));
            }
            let mechs = needed_mechanisms(t);
            let (n_cells, cycles) = eval_volume(&cfg, &mechs);
            let eval = bench.measure(t, n_cells, cycles, || {
                figures::evaluate_resumable(&mechs, &cfg, true, ckpt.as_ref())
            });
            match eval {
                Ok(eval) => {
                    print_eval_target(t, &eval, &args.csv);
                    cells = journal::eval_cells(&eval);
                }
                Err(failures) => {
                    report_cell_failures(t, &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        "all" => {
            cells = bench
                .measure("table1", roster_n, roster_n * c1, || table1(args.quick, args.jobs, &log));
            bench.measure("fig1", 2 * roster_n, 2 * roster_n * c1, || {
                fig1(args.quick, args.jobs, &log)
            });
            bench.measure("fig2", 2 * roster_n, 2 * roster_n * c1, || {
                fig2(args.quick, args.jobs, &log)
            });
            let ways = SystemConfig::scaled(1).llc.ways as u64;
            bench.measure("fig3", ways * roster_n, ways * roster_n * c1, || {
                fig3(args.quick, args.jobs, &log)
            });
            let f5_cycles = if args.quick { 340_000u64 } else { 700_000 } * 8;
            bench.measure("fig5", 1, f5_cycles, || fig5(args.quick));
            let mut cfg = eval_cfg(&args);
            if let Some(set) = &trace_set {
                cfg.trace_mixes = Some(set.build_mixes(8));
            }
            let mechs = Mechanism::all_managed().to_vec();
            let (n_cells, cycles) = eval_volume(&cfg, &mechs);
            let eval = bench.measure("evaluate", n_cells, cycles, || {
                figures::evaluate_resumable(&mechs, &cfg, true, ckpt.as_ref())
            });
            match eval {
                Ok(eval) => {
                    for t in eval_targets {
                        print_eval_target(t, &eval, &args.csv);
                    }
                    cells.extend(journal::eval_cells(&eval));
                }
                Err(failures) => {
                    report_cell_failures("all", &failures, ckpt.as_ref());
                    exit_code = 1;
                }
            }
        }
        other => {
            eprintln!("unknown target {other}; try --help");
            std::process::exit(2);
        }
    }
    match bench.write(&args.bench_json) {
        Ok(()) => eprintln!("[repro] wrote {}", args.bench_json.display()),
        Err(e) => eprintln!("[repro] bench log failed: {e}"),
    }
    // The run journal: manifest + every recorded controller epoch. Targets
    // without a control loop (fig1–fig5, ablate, extension) still get the
    // manifest line, so downstream tooling can always read the file.
    match journal::write(&args.journal, &journal::manifest(&meta), &cells) {
        Ok(n) => eprintln!("[repro] wrote {} ({n} epochs)", args.journal.display()),
        Err(e) => eprintln!("[repro] journal failed: {e}"),
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
