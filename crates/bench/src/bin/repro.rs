//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <target> [--quick] [--mixes N] [--seed S]
//!
//! targets:
//!   table1   Table I metrics for every benchmark (run alone)
//!   fig1     memory bandwidth with/without prefetching
//!   fig2     IPC speedup from prefetching
//!   fig3     IPC vs number of LLC ways (prefetchers on)
//!   fig5     Agg-set detector stages on a sample mix
//!   fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!   fairness supplementary Gabor-fairness table
//!   overhead controller overhead accounting (paper: <0.1 %)
//!   ablate   partition-scale / epoch-ratio / QBS sensitivity studies
//!   extension  PT vs PT-fine (per-engine throttling beyond the paper)
//!   all      everything above (except ablate/extension)
//! ```
//!
//! `--quick` shrinks durations and the per-category workload count so the
//! whole suite finishes in minutes; the default matches the scaled
//! methodology of DESIGN.md.

use cmm_bench::ablate;
use cmm_bench::characterize::{
    prefetch_impact, way_sweep, ways_needed, CharacterizeConfig,
};
use cmm_core::experiment::ExperimentConfig;
use cmm_bench::figures::{self, EvalConfig, Evaluation};
use cmm_bench::report;
use cmm_core::backend;
use cmm_core::frontend::{detect_agg, metrics, DetectorConfig};
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_sim::config::SystemConfig;
use cmm_sim::System;
use cmm_workloads::spec::{self, thresholds};
use cmm_workloads::{build_mixes, Mix};

struct Args {
    target: String,
    quick: bool,
    mixes: Option<usize>,
    seed: u64,
    csv: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut target = String::from("all");
    let mut quick = false;
    let mut mixes = None;
    let mut seed = 42;
    let mut csv = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => csv = Some(std::path::PathBuf::from(it.next().expect("--csv needs a directory"))),
            "--mixes" => {
                mixes = Some(
                    it.next().and_then(|v| v.parse().ok()).expect("--mixes needs a number"),
                )
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed needs a number")
            }
            "--help" | "-h" => {
                println!("usage: repro <table1|fig1|fig2|fig3|fig5|fig7..fig15|overhead|all> [--quick] [--mixes N] [--seed S]");
                std::process::exit(0);
            }
            t if !t.starts_with('-') => target = t.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args { target, quick, mixes, seed, csv }
}

/// Prints a series and, when `--csv DIR` was given, also writes it there.
fn emit(series: &cmm_bench::figures::FigureSeries, csv: &Option<std::path::PathBuf>) {
    print!("{}", report::render(series));
    if let Some(dir) = csv {
        match cmm_bench::export::write_csv(dir, series) {
            Ok(path) => eprintln!("[repro] wrote {}", path.display()),
            Err(e) => eprintln!("[repro] csv export failed: {e}"),
        }
    }
}

fn char_cfg(quick: bool) -> (SystemConfig, CharacterizeConfig) {
    let sys = SystemConfig::scaled(1);
    let cfg = if quick { CharacterizeConfig::quick() } else { CharacterizeConfig::default() };
    (sys, cfg)
}

fn eval_cfg(args: &Args) -> EvalConfig {
    let mut cfg = if args.quick { EvalConfig::quick() } else { EvalConfig::default() };
    if let Some(m) = args.mixes {
        cfg.mixes_per_category = m;
    }
    cfg.seed = args.seed;
    cfg
}

fn table1(quick: bool) {
    let (sys, cfg) = char_cfg(quick);
    let rows: Vec<Vec<String>> = spec::roster()
        .iter()
        .map(|b| {
            let r = cmm_bench::characterize::run_alone(b, &sys, &cfg, true, None);
            let m = r.metrics;
            vec![
                b.name.to_string(),
                format!("{:.3}", r.ipc),
                format!("{}", m.l2_llc_traffic),
                format!("{:.2}", m.l2_pf_miss_frac),
                format!("{:.4}", m.l2_ptr),
                format!("{:.2}", m.pga),
                format!("{:.2}", m.l2_pmr),
                format!("{:.2}", m.l2_ppm),
                format!("{:.3}", m.llc_pt),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            "Table I — per-benchmark metrics (run alone, prefetchers on)",
            &["benchmark", "IPC", "M-1 L2-LLC", "M-2 frac", "M-3 PTR", "M-4 PGA", "M-5 PMR", "M-6 PPM", "M-7 LLC-PT"],
            &rows,
        )
    );
}

fn fig1(quick: bool) {
    let (sys, cfg) = char_cfg(quick);
    let rows: Vec<Vec<String>> = spec::roster()
        .iter()
        .map(|b| {
            let imp = prefetch_impact(b, &sys, &cfg);
            let agg = imp.off.demand_bpc > thresholds::DEMAND_INTENSIVE_BPC
                && imp.bw_increase() > thresholds::AGGRESSIVE_BW_INCREASE;
            vec![
                b.name.to_string(),
                b.spec_alias.to_string(),
                format!("{:.3}", imp.off.total_bpc()),
                format!("{:.3}", imp.on.total_bpc()),
                format!("{:+.0}%", imp.bw_increase() * 100.0),
                format!("{}", if agg { "yes" } else { "no" }),
                format!("{}", if b.class.prefetch_aggressive { "yes" } else { "no" }),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            "Fig. 1 — memory bandwidth (bytes/cycle) without/with prefetching",
            &["benchmark", "SPEC analogue", "BW off", "BW on", "increase", "aggressive?", "intended"],
            &rows,
        )
    );
}

fn fig2(quick: bool) {
    let (sys, cfg) = char_cfg(quick);
    let rows: Vec<Vec<String>> = spec::roster()
        .iter()
        .map(|b| {
            let imp = prefetch_impact(b, &sys, &cfg);
            let friendly = imp.ipc_speedup() > thresholds::FRIENDLY_IPC_SPEEDUP;
            vec![
                b.name.to_string(),
                format!("{:.3}", imp.off.ipc),
                format!("{:.3}", imp.on.ipc),
                format!("{:+.0}%", imp.ipc_speedup() * 100.0),
                format!("{}", if friendly { "yes" } else { "no" }),
                format!("{}", if b.class.prefetch_friendly { "yes" } else { "no" }),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            "Fig. 2 — IPC speedup from prefetching",
            &["benchmark", "IPC off", "IPC on", "speedup", "friendly?", "intended"],
            &rows,
        )
    );
}

fn fig3(quick: bool) {
    let (sys, cfg) = char_cfg(quick);
    let header_ways: Vec<String> = (1..=sys.llc.ways).map(|w| format!("{w}w")).collect();
    let mut headers: Vec<&str> = vec!["benchmark", "needs", "sensitive?"];
    headers.extend(header_ways.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = spec::roster()
        .iter()
        .map(|b| {
            let sweep = way_sweep(b, &sys, &cfg);
            let needs = ways_needed(&sweep, thresholds::LLC_SENSITIVE_PERF);
            let mut row = vec![
                b.name.to_string(),
                format!("{needs}"),
                format!(
                    "{}",
                    if needs >= thresholds::LLC_SENSITIVE_WAYS { "yes" } else { "no" }
                ),
            ];
            let peak = sweep.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
            row.extend(sweep.iter().map(|&i| format!("{:.2}", i / peak)));
            row
        })
        .collect();
    print!(
        "{}",
        report::table(
            "Fig. 3 — IPC (relative to peak) vs LLC way count, prefetchers on",
            &headers,
            &rows,
        )
    );
}

fn fig5(quick: bool) {
    // Demonstrates the detector cascade on one Pref Agg mix.
    let mix: Mix = build_mixes(42, 1)[1].clone();
    let mut sys_cfg = SystemConfig::scaled(8);
    sys_cfg.num_cores = mix.num_cores();
    let workloads = mix.instantiate(sys_cfg.llc.size_bytes);
    let mut sys = System::new(sys_cfg, workloads);
    sys.run(if quick { 300_000 } else { 600_000 });
    let deltas = backend::sample(&mut sys, if quick { 40_000 } else { 100_000 });
    let det_cfg = DetectorConfig::default();
    let agg = detect_agg(&deltas, &det_cfg);
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let m = metrics(d);
            vec![
                format!("core {i}"),
                mix.benchmarks[i].name.to_string(),
                format!("{:.2}", m.pga),
                format!("{:.2}", m.l2_pmr),
                format!("{:.4}", m.l2_ptr),
                format!("{}", if agg.contains(&i) { "AGG" } else { "-" }),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &format!(
                "Fig. 5 — Agg-set detection on {} (PGA≥{}, PMR≥{}, PTR≥{})",
                mix.name, det_cfg.pga_floor, det_cfg.pmr_threshold, det_cfg.ptr_threshold
            ),
            &["core", "benchmark", "PGA", "PMR", "PTR", "verdict"],
            &rows,
        )
    );
    let _ = ControllerConfig::default();
}

fn needed_mechanisms(target: &str) -> Vec<Mechanism> {
    match target {
        "fig7" | "fig8" => vec![Mechanism::Pt],
        "fig9" | "fig10" => vec![Mechanism::Dunn, Mechanism::PrefCp, Mechanism::PrefCp2],
        "fig11" | "fig12" => vec![Mechanism::CmmA, Mechanism::CmmB, Mechanism::CmmC],
        _ => Mechanism::all_managed().to_vec(),
    }
}

fn print_eval_target(target: &str, eval: &Evaluation, csv: &Option<std::path::PathBuf>) {
    match target {
        "fig7" => {
            let (hs, ws) = figures::fig7(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig8" => emit(&figures::fig8(eval), csv),
        "fig9" => {
            let (hs, ws) = figures::fig9(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig10" => emit(&figures::fig10(eval), csv),
        "fig11" => {
            let (hs, ws) = figures::fig11(eval);
            emit(&hs, csv);
            emit(&ws, csv);
        }
        "fig12" => emit(&figures::fig12(eval), csv),
        "fig13" => emit(&figures::fig13(eval), csv),
        "fig14" => emit(&figures::fig14(eval), csv),
        "fig15" => emit(&figures::fig15(eval), csv),
        "fairness" => emit(&figures::fairness(eval), csv),
        "overhead" => {
            let mut rows = Vec::new();
            for w in &eval.workloads {
                for (&m, r) in &w.managed {
                    rows.push(vec![
                        w.mix.name.clone(),
                        m.label().to_string(),
                        format!("{:.4}%", r.overhead_ratio * 100.0),
                    ]);
                }
            }
            rows.sort();
            print!(
                "{}",
                report::table(
                    "Controller overhead (paper reports <0.1%)",
                    &["workload", "mechanism", "overhead"],
                    &rows,
                )
            );
        }
        other => unreachable!("unhandled eval target {other}"),
    }
}

fn run_ablations(args: &Args) {
    let mut cfg =
        if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    if args.quick {
        cfg.total_cycles = 1_000_000;
    }
    let dump = |title: &str, pts: &[ablate::AblationPoint]| {
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| vec![p.setting.clone(), p.mix.clone(), format!("{:.3}", p.norm_hs)])
            .collect();
        print!("{}", report::table(title, &["setting", "workload", "CMM-a norm. HS"], &rows));
    };
    eprintln!("[repro] ablation: partition scale");
    dump("Ablation — partition sizing factor (paper: 1.5×)", &ablate::ablate_partition_scale(&cfg));
    eprintln!("[repro] ablation: epoch ratio");
    dump("Ablation — execution-epoch : sampling-interval ratio (paper: 50:1)", &ablate::ablate_epoch_ratio(&cfg));
    eprintln!("[repro] ablation: QBS");
    dump("Ablation — inclusive-LLC QBS victim selection", &ablate::ablate_qbs(&cfg));
}

fn run_extension(args: &Args) {
    use cmm_core::experiment::{run_alone_ipcs, run_mix};
    let cfg = if args.quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let mut rows = Vec::new();
    for mix in build_mixes(args.seed, 2) {
        if !matches!(mix.category, cmm_workloads::Category::PrefUnfri | cmm_workloads::Category::PrefAgg) {
            continue;
        }
        eprintln!("[repro] extension: {}", mix.name);
        let alone = run_alone_ipcs(&mix, &cfg);
        let base = run_mix(&mix, Mechanism::Baseline, &cfg);
        let hs_base = cmm_metrics::harmonic_speedup(&alone, &base.ipcs);
        let mut row = vec![mix.name.clone()];
        for mech in [Mechanism::Pt, Mechanism::PtFine] {
            let r = run_mix(&mix, mech, &cfg);
            let hs = cmm_metrics::harmonic_speedup(&alone, &r.ipcs) / hs_base;
            let wc = cmm_metrics::worst_case_speedup(&r.ipcs, &base.ipcs);
            row.push(format!("{hs:.3}"));
            row.push(format!("{wc:.3}"));
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(
            "Extension — binary PT vs per-engine PT-fine (norm. HS / worst case)",
            &["workload", "PT HS", "PT wc", "PT-fine HS", "PT-fine wc"],
            &rows,
        )
    );
}

fn main() {
    let args = parse_args();
    let eval_targets = [
        "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fairness",
        "overhead",
    ];
    match args.target.as_str() {
        "ablate" => run_ablations(&args),
        "extension" => run_extension(&args),
        "table1" => table1(args.quick),
        "fig1" => fig1(args.quick),
        "fig2" => fig2(args.quick),
        "fig3" => fig3(args.quick),
        "fig5" => fig5(args.quick),
        t if eval_targets.contains(&t) => {
            let eval = figures::evaluate(&needed_mechanisms(t), &eval_cfg(&args), true);
            print_eval_target(t, &eval, &args.csv);
        }
        "all" => {
            table1(args.quick);
            fig1(args.quick);
            fig2(args.quick);
            fig3(args.quick);
            fig5(args.quick);
            let eval =
                figures::evaluate(&Mechanism::all_managed(), &eval_cfg(&args), true);
            for t in eval_targets {
                print_eval_target(t, &eval, &args.csv);
            }
        }
        other => {
            eprintln!("unknown target {other}; try --help");
            std::process::exit(2);
        }
    }
}
