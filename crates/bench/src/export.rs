//! CSV export of figure series, for plotting outside the terminal.
//!
//! `repro <target> --csv DIR` writes one file per series next to the text
//! tables, in a dialect any plotting tool ingests directly:
//! `workload,<col1>,<col2>,...` rows plus trailing `mean:<category>` rows.

use crate::figures::FigureSeries;
use std::io::Write;
use std::path::Path;

/// Sanitises a series title into a file name (`fig7_hs.csv`-style).
pub fn file_name(title: &str) -> String {
    let mut out = String::new();
    for c in title.chars() {
        match c {
            'a'..='z' | '0'..='9' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            ' ' | '-' | '.' | '—' | ':' | '(' | ')' | '/'
                if !out.ends_with('_') && !out.is_empty() =>
            {
                out.push('_');
            }
            _ => {}
        }
    }
    let trimmed = out.trim_matches('_');
    format!("{trimmed}.csv")
}

/// Renders one series as CSV text.
pub fn to_csv(series: &FigureSeries) -> String {
    let mut out = String::new();
    out.push_str("workload");
    for c in &series.columns {
        out.push(',');
        out.push_str(c);
    }
    out.push('\n');
    for (name, vals) in &series.rows {
        out.push_str(name);
        for v in vals {
            out.push_str(&format!(",{v:.6}"));
        }
        out.push('\n');
    }
    for (name, vals) in &series.category_means {
        out.push_str(&format!("mean:{name}"));
        for v in vals {
            out.push_str(&format!(",{v:.6}"));
        }
        out.push('\n');
    }
    out
}

/// Writes `series` under `dir` (created if absent). Returns the path.
pub fn write_csv(dir: &Path, series: &FigureSeries) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name(&series.title));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(to_csv(series).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> FigureSeries {
        FigureSeries {
            title: "Fig. 7 — PT: HS normalized to baseline".into(),
            columns: vec!["PT".into(), "CMM-a".into()],
            rows: vec![("PrefFri-00".into(), vec![1.05, 1.1])],
            category_means: vec![("Pref Fri".into(), vec![1.02, 1.07])],
        }
    }

    #[test]
    fn file_names_are_clean() {
        assert_eq!(file_name(&series().title), "fig_7_pt_hs_normalized_to_baseline.csv");
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv(&series());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "workload,PT,CMM-a");
        assert!(lines[1].starts_with("PrefFri-00,1.05"));
        assert!(lines[2].starts_with("mean:Pref Fri,"));
    }

    #[test]
    fn write_roundtrip() {
        let dir = std::env::temp_dir().join("cmm_csv_test");
        let path = write_csv(&dir, &series()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("PrefFri-00"));
        std::fs::remove_file(path).ok();
    }
}
