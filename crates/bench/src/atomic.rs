//! Crash-safe artifact IO.
//!
//! Every file the harness writes falls into one of two shapes, and each
//! gets a crash-safety discipline here:
//!
//! * **Whole documents** (`BENCH_sim.json`, the final run journal): written
//!   via [`write_atomic`] — the bytes land in a temp file in the same
//!   directory, are synced, and are renamed over the destination. A crash
//!   at any point leaves either the old complete file or the new complete
//!   file, never a torn mix.
//! * **Append-only JSONL** (the `cmm-ckpt/1` resume sidecar): written via
//!   [`JsonlAppender`] — one `write` + flush + fsync per record, so after a
//!   crash at most the *final* line is partial. [`salvage_jsonl`] is the
//!   matching reader: it drops an unterminated (or unparseable) tail line
//!   and reports how many records survived, instead of refusing the file.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json;

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename. Readers never observe a partially written file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact");
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Thread-safe append-only JSONL writer: each [`append`](Self::append)
/// writes `line + "\n"` as one buffer, flushes, and fsyncs, so a crash can
/// tear at most the record being written — never an earlier one.
#[derive(Debug)]
pub struct JsonlAppender {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl JsonlAppender {
    /// Opens `path` for appending (creating it if absent).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlAppender { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    /// Appends one record (no trailing newline in `line`) durably.
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let f = self.file.lock().expect("appender lock poisoned");
        let mut f = &*f;
        f.write_all(buf.as_bytes())?;
        f.flush()?;
        f.sync_data()
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of reading a possibly-torn JSONL file.
#[derive(Debug, Clone)]
pub struct Salvage {
    /// The complete, parseable records, in file order.
    pub lines: Vec<String>,
    /// Trailing partial/unparseable lines dropped (0 or 1 for files
    /// written by [`JsonlAppender`]).
    pub dropped: usize,
}

impl Salvage {
    /// True when a torn tail was truncated.
    pub fn torn(&self) -> bool {
        self.dropped > 0
    }
}

/// Recovers the complete records of a JSONL file whose final line may have
/// been torn by a crash mid-append. A trailing line is dropped when it is
/// unterminated *and* not valid JSON (a legacy file without a final
/// newline still keeps its last record); a terminated final line that
/// fails to parse is also dropped, covering filesystems that persisted the
/// newline before the payload.
pub fn salvage_jsonl(text: &str) -> Salvage {
    let mut lines: Vec<String> =
        text.split_inclusive('\n').map(|l| l.trim_end_matches(['\n', '\r']).to_string()).collect();
    let mut dropped = 0;
    let unterminated = !text.is_empty() && !text.ends_with('\n');
    if let Some(last) = lines.last() {
        let last_ok = json::parse(last).is_ok();
        if !last_ok && (unterminated || !last.trim().is_empty()) {
            lines.pop();
            dropped = 1;
        }
    }
    // Blank lines are separators, not records.
    lines.retain(|l| !l.trim().is_empty());
    Salvage { lines, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cmm_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn write_atomic_replaces_content_and_leaves_no_temp() {
        let path = tmp("doc.json");
        write_atomic(&path, b"{\"v\":1}\n").unwrap();
        write_atomic(&path, b"{\"v\":2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appender_writes_one_line_per_record() {
        let path = tmp("app.jsonl");
        std::fs::remove_file(&path).ok();
        let app = JsonlAppender::open(&path).unwrap();
        app.append("{\"a\":1}").unwrap();
        app.append("{\"a\":2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_drops_torn_tail_and_counts_survivors() {
        let s = salvage_jsonl("{\"a\":1}\n{\"a\":2}\n{\"a\":3");
        assert_eq!(s.lines, vec!["{\"a\":1}", "{\"a\":2}"]);
        assert_eq!(s.dropped, 1);
        assert!(s.torn());
    }

    #[test]
    fn salvage_keeps_clean_files_intact() {
        let s = salvage_jsonl("{\"a\":1}\n{\"a\":2}\n");
        assert_eq!(s.lines.len(), 2);
        assert_eq!(s.dropped, 0);
        // Legacy file without a final newline but with a complete record.
        let s = salvage_jsonl("{\"a\":1}\n{\"a\":2}");
        assert_eq!(s.lines.len(), 2);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn salvage_drops_terminated_garbage_tail() {
        let s = salvage_jsonl("{\"a\":1}\n{\"a\":2xx\n");
        assert_eq!(s.lines, vec!["{\"a\":1}"]);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn salvage_of_empty_input_is_empty() {
        let s = salvage_jsonl("");
        assert!(s.lines.is_empty());
        assert_eq!(s.dropped, 0);
    }
}
