//! Seeded chaos injection for the run harness itself.
//!
//! PR 3 made the *simulated machine* faulty; this module makes the
//! *harness* faulty on demand, so `repro soak` and CI can prove the cell
//! runner's panic isolation, retry budget, and checkpoint/resume actually
//! work. Two failure modes:
//!
//! * **Injected panics** — [`maybe_panic`] panics inside a cell's
//!   `catch_unwind` scope when the cell's key is selected by the seeded
//!   schedule. `Transient` panics fail only the first attempt (the retry
//!   budget must heal them); `Persistent` panics fail every attempt (the
//!   run must complete with an explicit per-cell failure report).
//! * **Injected hangs** — [`maybe_hang`] stalls a selected cell's first
//!   attempt past the runner's watchdog deadline (`Hang` mode), proving
//!   the hang watchdog converts a stuck cell into a retryable failure.
//! * **Process kills** — [`on_cell_complete`] hard-exits the process after
//!   N cells have completed, emulating a mid-run `kill -9` with a valid
//!   checkpoint tail behind it.
//!
//! Selection hashes the cell *key* (not its schedule slot), so the same
//! cells fail at any `--jobs`, keeping chaos runs deterministic. Chaos is
//! armed once from the CLI and is completely inert — zero branches beyond
//! one relaxed load — when unarmed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Whether an injected panic repeats across retry attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Fail only a cell's first attempt; retries succeed.
    Transient,
    /// Fail every attempt; the cell exhausts its retry budget.
    Persistent,
    /// Stall a cell's first attempt past the watchdog deadline; the
    /// watchdog must convert the hang into a retryable failure.
    Hang,
}

/// An armed chaos schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Schedule seed (mixed into every cell-key hash).
    pub seed: u64,
    /// Fraction of cells selected to panic, in `[0, 1]`.
    pub rate: f64,
    /// Panic persistence across retries.
    pub mode: ChaosMode,
    /// Hard-exit the process after this many completed cells.
    pub kill_after: Option<u64>,
}

static CHAOS: OnceLock<ChaosConfig> = OnceLock::new();
static COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Exit code used by the injected process kill — distinguishable from
/// ordinary failures in CI logs (mirrors a SIGKILLed process's 137).
pub const KILL_EXIT_CODE: i32 = 137;

/// Arms the chaos schedule for this process. Later calls are ignored
/// (first armer wins), matching one CLI parse per run.
pub fn arm(cfg: ChaosConfig) {
    let _ = CHAOS.set(cfg);
}

/// FNV-1a over the key, then a splitmix64 finalizer mixing in the seed —
/// a stable, jobs-independent per-cell coin.
fn cell_hash(seed: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// True when the armed schedule is in `Hang` mode — the cell runner
/// shortens its watchdog deadline so injected stalls trip the alarm.
pub fn hang_mode() -> bool {
    CHAOS.get().is_some_and(|cfg| cfg.mode == ChaosMode::Hang)
}

/// True when the armed schedule selects `key` to panic.
pub fn selects(key: &str) -> bool {
    let Some(cfg) = CHAOS.get() else { return false };
    cfg.rate > 0.0 && (cell_hash(cfg.seed, key) as f64 / u64::MAX as f64) < cfg.rate
}

/// Panics iff the armed schedule selects this cell for this attempt.
/// Called by the cell runner *inside* its `catch_unwind` scope. Inert
/// under `Hang` mode — stalls are injected by [`maybe_hang`] instead.
pub fn maybe_panic(key: &str, attempt: u32) {
    let Some(cfg) = CHAOS.get() else { return };
    if cfg.mode == ChaosMode::Hang || !selects(key) {
        return;
    }
    if cfg.mode == ChaosMode::Persistent || attempt == 1 {
        panic!("chaos: injected panic in '{key}' (attempt {attempt})");
    }
}

/// Stalls past `deadline_ms` iff the armed schedule is in `Hang` mode and
/// selects this cell's first attempt, then panics on the watchdog's
/// behalf. Called by the cell runner *inside* its `catch_unwind` scope
/// alongside its own deadline check, so even a hang the runner cannot
/// preempt is converted into a retryable cell failure.
pub fn maybe_hang(key: &str, attempt: u32, deadline_ms: u64) {
    let Some(cfg) = CHAOS.get() else { return };
    if cfg.mode != ChaosMode::Hang || attempt != 1 || !selects(key) {
        return;
    }
    eprintln!("[chaos] injected hang in '{key}' (deadline {deadline_ms} ms)");
    std::thread::sleep(std::time::Duration::from_millis(deadline_ms.saturating_mul(2)));
    panic!("chaos: watchdog deadline ({deadline_ms} ms) exceeded in '{key}' (attempt {attempt})");
}

/// Records one completed (and checkpointed) cell; hard-exits the process
/// when the armed kill threshold is reached.
pub fn on_cell_complete() {
    let Some(cfg) = CHAOS.get() else { return };
    let Some(kill_after) = cfg.kill_after else { return };
    let done = COMPLETED.fetch_add(1, Ordering::Relaxed) + 1;
    if done >= kill_after {
        eprintln!("[chaos] killing process after {done} completed cells");
        std::process::exit(KILL_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: `arm` is process-global, so these tests only exercise the
    // pure parts; the armed behavior is covered end-to-end by `repro soak`
    // and the runner's injected-closure tests.

    #[test]
    fn unarmed_chaos_is_inert() {
        assert!(!selects("anything"));
        maybe_panic("anything", 1);
        maybe_hang("anything", 1, 1);
        on_cell_complete();
    }

    #[test]
    fn cell_hash_is_stable_and_seed_sensitive() {
        assert_eq!(cell_hash(7, "PrefAgg-00: CMM-a"), cell_hash(7, "PrefAgg-00: CMM-a"));
        assert_ne!(cell_hash(7, "PrefAgg-00: CMM-a"), cell_hash(8, "PrefAgg-00: CMM-a"));
        assert_ne!(cell_hash(7, "a"), cell_hash(7, "b"));
    }

    #[test]
    fn hash_fractions_cover_the_unit_interval() {
        // With 200 keys, a 0.35 rate should select a sane fraction — this
        // guards against a broken mixer that maps everything to one side.
        let selected = (0..200)
            .filter(|i| (cell_hash(1, &format!("cell-{i}")) as f64 / u64::MAX as f64) < 0.35)
            .count();
        assert!((30..=110).contains(&selected), "selected {selected}/200");
    }
}
