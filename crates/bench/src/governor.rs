//! `repro governor` — safety-governor resilience sweep.
//!
//! Runs one prefetch-aggressive mix under CBP twice per fault rate — once
//! bare, once with the [`cmm_core::governor`] attached to the driver —
//! while a [`cmm_core::fault::FaultySubstrate`] injects MSR rejections,
//! CLOS exhaustion and PMU corruption at increasing rates. The gate is
//! **dominance**: at every nonzero rate the governed run must keep at
//! least the bare run's harmonic-mean IPC (rollback, quarantine and the
//! circuit breakers are supposed to *help* under faults), and at rate
//! zero the governed run must be byte-identical to the bare one (the
//! governor must be invisible when nothing goes wrong).
//!
//! The sweep is deterministic — the fault schedule and every governor
//! draw come from seeded splitmix64 streams — so its journal cells are
//! byte-identical across `--jobs`, and CI runs it twice to prove that.

use crate::checkpoint::{self, Checkpoint};
use crate::json::Json;
use crate::runner::{run_cells, CellFailure, Progress};
use cmm_core::experiment::{run_mix_governed, run_mix_with_faults, ExperimentConfig};
use cmm_core::fault::FaultConfig;
use cmm_core::governor::GovernorConfig;
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::EpochRecord;
use cmm_workloads::build_mixes;

/// Fault rates swept, fault-free first (the invisibility check).
pub const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.25];

/// Rates at or above this run the *hard-fault* regime: on top of the
/// uniform transient schedule, CLOS exhaustion (`clos_limit = 1`) kills
/// CAT outright. Transient faults are largely absorbed by the retry and
/// sample-zeroing layers below the governor; a dead register class is the
/// failure mode the circuit breaker exists for — the bare controller
/// re-profiles and re-fails every epoch, the governed one pins the
/// degradation leg and stops perturbing the machine.
pub const HARD_RATE: f64 = 0.1;

/// The fault schedule for one swept rate (shared by both legs of a pair).
fn fault_config(fault_seed: u64, rate: f64) -> FaultConfig {
    let mut f = FaultConfig::uniform(fault_seed, rate);
    if rate >= HARD_RATE {
        f.clos_limit = Some(1);
    }
    f
}

/// One swept (rate, governed?) cell's outcome.
#[derive(Debug, Clone)]
pub struct GovCell {
    /// Injected per-operation fault rate.
    pub rate: f64,
    /// Whether the driver carried the governor.
    pub governed: bool,
    /// Harmonic-mean IPC over the measurement window.
    pub hm_ipc: f64,
    /// Total substrate faults the controller observed and journaled.
    pub faults: u64,
    /// Profiling epochs that retreated to a fallback mechanism.
    pub degraded_epochs: u64,
    /// Governor rollbacks (kept-last-good epochs).
    pub rollbacks: u64,
    /// Governor core quarantines.
    pub quarantines: u64,
    /// Governor circuit-breaker trips.
    pub breaker_trips: u64,
    /// The run's controller telemetry (journal cell payload).
    pub epochs: Vec<EpochRecord>,
}

/// The sweep's cell label — also its journal run label and checkpoint key.
pub fn cell_label(rate: f64, governed: bool) -> String {
    format!("governor rate={rate:.2}: {}", if governed { "CBP+gov" } else { "CBP" })
}

/// Lossless JSON float (shortest round-trip); non-finite degrades to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn count_events(epochs: &[EpochRecord], action: &str) -> u64 {
    epochs.iter().flat_map(|e| &e.governor).filter(|ev| ev.action == action).count() as u64
}

/// Encodes a [`GovCell`] as a `cmm-ckpt/1` payload (lossless floats).
pub fn encode_cell(c: &GovCell) -> String {
    let mut s = format!(
        "{{\"rate\":{},\"governed\":{},\"hm_ipc\":{},\"faults\":{},\"degraded_epochs\":{},\
         \"rollbacks\":{},\"quarantines\":{},\"breaker_trips\":{},\"epochs\":[",
        num(c.rate),
        c.governed,
        num(c.hm_ipc),
        c.faults,
        c.degraded_epochs,
        c.rollbacks,
        c.quarantines,
        c.breaker_trips
    );
    for (i, e) in c.epochs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.to_json_line(""));
    }
    s.push_str("]}");
    s
}

/// Decodes a [`GovCell`] checkpoint payload.
pub fn decode_cell(j: &Json) -> Result<GovCell, String> {
    let u = |k: &str| {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("governor cell missing '{k}'"))
    };
    Ok(GovCell {
        rate: j.get("rate").and_then(Json::as_f64).ok_or("governor cell missing 'rate'")?,
        governed: j
            .get("governed")
            .and_then(Json::as_bool)
            .ok_or("governor cell missing 'governed'")?,
        hm_ipc: j.get("hm_ipc").and_then(Json::as_f64).ok_or("governor cell missing 'hm_ipc'")?,
        faults: u("faults")?,
        degraded_epochs: u("degraded_epochs")?,
        rollbacks: u("rollbacks")?,
        quarantines: u("quarantines")?,
        breaker_trips: u("breaker_trips")?,
        epochs: j
            .get("epochs")
            .and_then(Json::as_array)
            .ok_or("governor cell missing 'epochs'")?
            .iter()
            .map(checkpoint::decode_epoch)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Runs the paired sweep panic-isolated and (optionally) checkpointed:
/// for each rate a bare-CBP cell and a governed-CBP cell, adjacent in
/// output order. `fault_seed` seeds both the fault schedule and the
/// governor's jitter stream; workload construction stays on `seed`.
pub fn sweep_resumable(
    quick: bool,
    seed: u64,
    fault_seed: u64,
    jobs: usize,
    attempts: u32,
    log: &Progress,
    ckpt: Option<&Checkpoint>,
) -> Result<Vec<GovCell>, Vec<CellFailure>> {
    let mix = build_mixes(seed, 1).remove(1); // a PrefAgg mix
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let items: Vec<(f64, bool)> = RATES.iter().flat_map(|&r| [(r, false), (r, true)]).collect();
    let run = run_cells(
        &items,
        jobs,
        attempts,
        |_, &(rate, governed)| cell_label(rate, governed),
        |k| {
            let payload = ckpt?.cached(k)?;
            match decode_cell(&payload) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!(
                        "[repro] checkpoint entry '{k}' is undecodable ({e}); re-running cell"
                    );
                    None
                }
            }
        },
        |k, c: &GovCell| {
            if let Some(ck) = ckpt {
                ck.record(k, &encode_cell(c));
            }
        },
        |_, &(rate, governed)| {
            log.cell(&cell_label(rate, governed), || {
                let faults = fault_config(fault_seed, rate);
                let r = if governed {
                    run_mix_governed(
                        &mix,
                        Mechanism::Cbp,
                        &cfg,
                        &faults,
                        GovernorConfig::new(fault_seed),
                    )
                } else {
                    run_mix_with_faults(&mix, Mechanism::Cbp, &cfg, &faults)
                };
                GovCell {
                    rate,
                    governed,
                    hm_ipc: cmm_metrics::hm_ipc(&r.ipcs),
                    faults: r.epochs.iter().map(|e| e.faults.len() as u64).sum(),
                    degraded_epochs: r.epochs.iter().filter(|e| e.degraded.is_some()).count()
                        as u64,
                    rollbacks: count_events(&r.epochs, "rollback"),
                    quarantines: count_events(&r.epochs, "quarantine"),
                    breaker_trips: count_events(&r.epochs, "breaker_open"),
                    epochs: r.epochs,
                }
            })
        },
    );
    if run.resumed > 0 {
        log.note(&format!("resume: spliced {} cached cell(s) from the checkpoint", run.resumed));
    }
    run.into_results()
}

/// [`sweep_resumable`] without checkpointing, panicking on cell failure —
/// the convenience entry point for tests.
pub fn sweep(quick: bool, seed: u64, fault_seed: u64, jobs: usize, log: &Progress) -> Vec<GovCell> {
    sweep_resumable(quick, seed, fault_seed, jobs, 1, log, None).unwrap_or_else(|failures| {
        panic!("{} governor-sweep cell(s) failed", failures.len());
    })
}

/// The sweep's (bare, governed) pairs in rate order. Panics on a
/// malformed cell list (the sweep always emits adjacent pairs).
pub fn pairs(cells: &[GovCell]) -> Vec<(&GovCell, &GovCell)> {
    cells
        .chunks(2)
        .map(|pair| {
            assert!(
                pair.len() == 2
                    && pair[0].rate == pair[1].rate
                    && !pair[0].governed
                    && pair[1].governed,
                "governor sweep cells must come in (bare, governed) pairs"
            );
            (&pair[0], &pair[1])
        })
        .collect()
}

/// Table rows: per rate, bare vs governed hm_ipc, the governed delta, and
/// the governor's intervention counts, with the dominance verdict.
pub fn rows(cells: &[GovCell]) -> Vec<Vec<String>> {
    pairs(cells)
        .into_iter()
        .map(|(bare, gov)| {
            let delta = gov.hm_ipc - bare.hm_ipc;
            vec![
                format!("{:.2}", bare.rate),
                format!("{:.3}", bare.hm_ipc),
                format!("{:.3}", gov.hm_ipc),
                format!("{delta:+.3}"),
                gov.faults.to_string(),
                gov.rollbacks.to_string(),
                gov.quarantines.to_string(),
                gov.breaker_trips.to_string(),
                if bare.rate == 0.0 || gov.hm_ipc >= bare.hm_ipc {
                    "ok".into()
                } else {
                    "WORSE".into()
                },
            ]
        })
        .collect()
}

/// True when the governed run dominates at every nonzero rate: losing to
/// the bare run under faults means a defense is misfiring.
pub fn passes(cells: &[GovCell]) -> bool {
    !cells.is_empty()
        && pairs(cells).into_iter().all(|(bare, gov)| bare.rate == 0.0 || gov.hm_ipc >= bare.hm_ipc)
}

/// Journal cells for the sweep, one per (rate, leg), in sweep order.
pub fn journal_cells(cells: Vec<GovCell>) -> Vec<(String, Vec<EpochRecord>)> {
    cells.into_iter().map(|c| (cell_label(c.rate, c.governed), c.epochs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rate: f64, governed: bool, hm: f64) -> GovCell {
        GovCell {
            rate,
            governed,
            hm_ipc: hm,
            faults: 0,
            degraded_epochs: 0,
            rollbacks: 0,
            quarantines: 0,
            breaker_trips: 0,
            epochs: vec![],
        }
    }

    #[test]
    fn dominance_gate_passes_and_fails_correctly() {
        let good = vec![
            cell(0.0, false, 1.0),
            cell(0.0, true, 1.0),
            cell(0.1, false, 0.8),
            cell(0.1, true, 0.85),
        ];
        assert!(passes(&good));
        let bad = vec![
            cell(0.0, false, 1.0),
            cell(0.0, true, 1.0),
            cell(0.1, false, 0.8),
            cell(0.1, true, 0.7),
        ];
        assert!(!passes(&bad));
        assert!(!passes(&[]), "an empty sweep must not pass");
        // A zero-rate governed deficit would be a determinism bug caught
        // elsewhere; the dominance gate only judges nonzero rates.
        let zero_only = vec![cell(0.0, false, 1.0), cell(0.0, true, 0.9)];
        assert!(passes(&zero_only));
    }

    #[test]
    fn rows_report_the_governed_delta_and_verdict() {
        let cells = vec![
            cell(0.0, false, 1.0),
            cell(0.0, true, 1.0),
            cell(0.25, false, 0.6),
            cell(0.25, true, 0.5),
        ];
        let rows = rows(&cells);
        assert_eq!(rows[0][3], "+0.000");
        assert_eq!(rows[0][8], "ok");
        assert_eq!(rows[1][3], "-0.100");
        assert_eq!(rows[1][8], "WORSE");
    }

    #[test]
    fn journal_labels_are_stable() {
        let cells = vec![cell(0.0, false, 1.0), cell(0.0, true, 1.0)];
        let labels: Vec<String> = journal_cells(cells).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["governor rate=0.00: CBP", "governor rate=0.00: CBP+gov"]);
    }

    #[test]
    fn cell_codec_round_trips_losslessly() {
        let c = GovCell {
            rate: 0.05,
            governed: true,
            hm_ipc: 1.0872273441234567,
            faults: 17,
            degraded_epochs: 3,
            rollbacks: 2,
            quarantines: 1,
            breaker_trips: 4,
            epochs: vec![],
        };
        let j = crate::json::parse(&encode_cell(&c)).expect("valid payload");
        let back = decode_cell(&j).unwrap();
        assert_eq!(back.rate, c.rate);
        assert!(back.governed);
        assert_eq!(back.hm_ipc, c.hm_ipc, "hm_ipc must be bit-identical");
        assert_eq!(
            (
                back.faults,
                back.degraded_epochs,
                back.rollbacks,
                back.quarantines,
                back.breaker_trips
            ),
            (17, 3, 2, 1, 4)
        );
        assert!(back.epochs.is_empty());
    }

    #[test]
    fn zero_rate_legs_are_byte_identical_and_jobs_invariant() {
        let log = Progress::new(false);
        let cells = sweep(true, 42, 7, 1, &log);
        assert_eq!(cells.len(), 2 * RATES.len());
        // Invisibility: at rate 0 the governed journal cell renders
        // byte-identically to the bare one.
        let render = |c: &GovCell| {
            c.epochs.iter().map(|e| e.to_json_line("x")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(render(&cells[0]), render(&cells[1]), "governor visible at zero fault rate");
        // Scheduling independence: a parallel sweep is byte-identical.
        let parallel = sweep(true, 42, 7, 4, &log);
        for (a, b) in cells.iter().zip(&parallel) {
            assert_eq!(render(a), render(b), "sweep differs across --jobs");
        }
        // Under faults the governor must actually act somewhere.
        assert!(
            cells.iter().any(|c| c.rollbacks + c.quarantines + c.breaker_trips > 0),
            "no governor interventions across the whole sweep"
        );
    }
}
