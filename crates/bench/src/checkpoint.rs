//! `cmm-ckpt/1` — the checkpoint/resume sidecar behind `repro --resume`.
//!
//! A resumable run appends one JSONL record per completed evaluation cell
//! to a sidecar manifest. The first line binds the sidecar to a run
//! configuration (schema, target, FNV-1a config digest); every further
//! line caches one cell's *complete result*:
//!
//! ```text
//! {"schema":"cmm-ckpt/1","kind":"manifest","target":"fig7","config_digest":"fnv1a:…"}
//! {"kind":"cell","key":"alone: lbm","payload":{"ipc":1.2345}}
//! {"kind":"cell","key":"PrefAgg-00: CMM-a","payload":{…full MixResult…}}
//! ```
//!
//! On `--resume`, cells whose key is present are spliced from the cached
//! payload instead of re-running, and the run appends the cells it still
//! computes — so an interrupted sweep converges over any number of
//! kill/resume cycles. The payload codecs are **lossless** (floats render
//! in shortest round-trip form), which is what makes a resumed run's
//! stdout, journal, and figure output byte-identical to an uninterrupted
//! one: a spliced `MixResult` is indistinguishable from a recomputed one.
//!
//! Writes go through [`crate::atomic`]: appends flush+fsync per record, so
//! a crash tears at most the final line, and [`Checkpoint::open`] salvages
//! such a tail (dropping the partial record, keeping the rest). A digest
//! mismatch — resuming against a different configuration — is refused
//! rather than silently mixing incompatible results.

use std::collections::HashMap;
use std::path::Path;

use cmm_core::experiment::MixResult;
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::{CoreSample, EpochRecord, FaultRecord, GovernorEvent, Trial};
use cmm_sim::pmu::Pmu;
use cmm_sim::system::CoreControl;

use crate::atomic::{salvage_jsonl, write_atomic, JsonlAppender};
use crate::json::{parse, Json};

/// Sidecar schema identifier.
pub const SCHEMA: &str = "cmm-ckpt/1";

/// What [`Checkpoint::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct ResumeInfo {
    /// Completed cells loaded from the sidecar.
    pub cached: usize,
    /// Torn-tail lines dropped during salvage.
    pub dropped: usize,
    /// True when the sidecar did not exist (fresh run).
    pub fresh: bool,
}

/// A cell failure recorded by a previous attempt (post-mortem context for
/// `--resume`; failure records are never spliced as results).
#[derive(Debug, Clone)]
pub struct PriorFailure {
    /// The failed cell's stable key.
    pub key: String,
    /// Attempts the previous run burned on it.
    pub attempts: u64,
    /// The final panic message, stringified.
    pub panic_msg: String,
}

/// An open checkpoint: cached cells from a previous attempt plus an
/// append handle for the cells this attempt completes.
#[derive(Debug)]
pub struct Checkpoint {
    cached: HashMap<String, Json>,
    failures: Vec<PriorFailure>,
    appender: JsonlAppender,
}

impl Checkpoint {
    /// Opens (or creates) the sidecar at `path`, validating that it
    /// belongs to this run's `target` and `config_digest`. A torn tail is
    /// salvaged and the file compacted before appending resumes.
    pub fn open(
        path: &Path,
        target: &str,
        config_digest: &str,
    ) -> Result<(Checkpoint, ResumeInfo), String> {
        let mut info = ResumeInfo::default();
        let mut cached = HashMap::new();
        let mut failures: Vec<PriorFailure> = Vec::new();
        let manifest_line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"kind\":\"manifest\",\"target\":\"{}\",\
             \"config_digest\":\"{}\"}}",
            escape(target),
            escape(config_digest)
        );
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        match existing {
            Some(text) if !salvage_jsonl(&text).lines.is_empty() => {
                let salvage = salvage_jsonl(&text);
                info.dropped = salvage.dropped;
                let man = parse(&salvage.lines[0])
                    .map_err(|e| format!("{}: manifest: {e}", path.display()))?;
                let schema = man.get("schema").and_then(Json::as_str).unwrap_or("");
                if schema != SCHEMA {
                    return Err(format!(
                        "{}: unsupported checkpoint schema '{schema}' (want {SCHEMA})",
                        path.display()
                    ));
                }
                let got_target = man.get("target").and_then(Json::as_str).unwrap_or("");
                let got_digest = man.get("config_digest").and_then(Json::as_str).unwrap_or("");
                if got_target != target || got_digest != config_digest {
                    return Err(format!(
                        "{}: checkpoint was recorded for target '{got_target}' digest \
                         {got_digest}, but this run is target '{target}' digest \
                         {config_digest}; refusing to splice incompatible results",
                        path.display()
                    ));
                }
                for (i, line) in salvage.lines.iter().enumerate().skip(1) {
                    let rec = parse(line)
                        .map_err(|e| format!("{}: line {}: {e}", path.display(), i + 1))?;
                    if rec.get("kind").and_then(Json::as_str) == Some("failure") {
                        if let Some(key) = rec.get("key").and_then(Json::as_str) {
                            // Latest record per key wins: a cell can fail
                            // on several runs before finally completing.
                            failures.retain(|f| f.key != key);
                            failures.push(PriorFailure {
                                key: key.to_string(),
                                attempts: rec.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                                panic_msg: rec
                                    .get("panic_msg")
                                    .and_then(Json::as_str)
                                    .unwrap_or("")
                                    .to_string(),
                            });
                        }
                        continue;
                    }
                    if rec.get("kind").and_then(Json::as_str) != Some("cell") {
                        continue;
                    }
                    let key = rec
                        .get("key")
                        .and_then(Json::as_str)
                        .ok_or_else(|| {
                            format!("{}: line {}: cell without key", path.display(), i + 1)
                        })?
                        .to_string();
                    let payload = rec.get("payload").cloned().ok_or_else(|| {
                        format!("{}: line {}: cell without payload", path.display(), i + 1)
                    })?;
                    cached.insert(key, payload);
                }
                info.cached = cached.len();
                if salvage.dropped > 0 {
                    // Compact away the torn tail so appends start clean.
                    let mut compacted = salvage.lines.join("\n");
                    compacted.push('\n');
                    write_atomic(path, compacted.as_bytes())
                        .map_err(|e| format!("compact {}: {e}", path.display()))?;
                }
            }
            _ => {
                // Absent (or empty/unsalvageable) sidecar: start fresh.
                info.fresh = true;
                let mut line = manifest_line.clone();
                line.push('\n');
                write_atomic(path, line.as_bytes())
                    .map_err(|e| format!("create {}: {e}", path.display()))?;
            }
        }
        let appender =
            JsonlAppender::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        // A failure superseded by a completed cell is history, not news.
        failures.retain(|f| !cached.contains_key(&f.key));
        Ok((Checkpoint { cached, failures, appender }, info))
    }

    /// The cached payload for `key`, if a previous attempt completed it.
    pub fn cached(&self, key: &str) -> Option<Json> {
        self.cached.get(key).cloned()
    }

    /// Number of cached cells.
    pub fn cached_len(&self) -> usize {
        self.cached.len()
    }

    /// Durably appends one completed cell. Checkpoint loss is not fatal to
    /// the run (only to future resumes), so IO errors degrade to a warning.
    pub fn record(&self, key: &str, payload: &str) {
        let line =
            format!("{{\"kind\":\"cell\",\"key\":\"{}\",\"payload\":{payload}}}", escape(key));
        if let Err(e) = self.appender.append(&line) {
            eprintln!("[repro] checkpoint append failed ({}): {e}", self.appender.path().display());
        }
    }

    /// Durably appends one exhausted cell failure, so a later `--resume`
    /// can report what went wrong before this process exited. The readers
    /// skip non-`cell` kinds, so pre-existing tooling is unaffected.
    pub fn record_failure(&self, key: &str, attempts: u32, panic_msg: &str) {
        let line = format!(
            "{{\"kind\":\"failure\",\"key\":\"{}\",\"attempts\":{attempts},\"panic_msg\":\"{}\"}}",
            escape(key),
            escape(panic_msg)
        );
        if let Err(e) = self.appender.append(&line) {
            eprintln!("[repro] checkpoint append failed ({}): {e}", self.appender.path().display());
        }
    }

    /// Failures recorded by previous attempts whose cells have still not
    /// completed (latest record per key), for post-mortem reporting on
    /// `--resume`.
    pub fn prior_failures(&self) -> &[PriorFailure] {
        &self.failures
    }
}

// ---------------------------------------------------------------------------
// Payload codecs. Encoding is lossless: floats use Rust's shortest
// round-trip `Display`, so decode(encode(x)) == x bit-for-bit and spliced
// results format identically to freshly computed ones.

/// Lossless JSON float (shortest round-trip); non-finite degrades to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn f64_list(vals: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&num(*v));
    }
    s.push(']');
    s
}

/// Encodes a run-alone IPC cell payload.
pub fn encode_alone(ipc: f64) -> String {
    format!("{{\"ipc\":{}}}", num(ipc))
}

/// Decodes a run-alone IPC cell payload.
pub fn decode_alone(j: &Json) -> Result<f64, String> {
    j.get("ipc").and_then(Json::as_f64).ok_or_else(|| "alone payload missing 'ipc'".into())
}

/// Pmu counters in struct declaration order (see [`Pmu`]).
fn pmu_to_list(p: &Pmu) -> [u64; 18] {
    [
        p.cycles,
        p.instructions,
        p.l1d_accesses,
        p.l1d_misses,
        p.l2_dm_req,
        p.l2_dm_miss,
        p.l2_pf_req,
        p.l2_pf_miss,
        p.l3_load_miss,
        p.llc_pf_to_mem,
        p.stalls_l2_pending,
        p.stall_cycles,
        p.l1_pf_req,
        p.mem_demand_bytes,
        p.mem_prefetch_bytes,
        p.mem_writeback_bytes,
        p.pf_used,
        p.pf_wasted,
    ]
}

fn pmu_from_list(vals: &[u64]) -> Result<Pmu, String> {
    if vals.len() != 18 {
        return Err(format!("pmu list has {} counters, want 18", vals.len()));
    }
    Ok(Pmu {
        cycles: vals[0],
        instructions: vals[1],
        l1d_accesses: vals[2],
        l1d_misses: vals[3],
        l2_dm_req: vals[4],
        l2_dm_miss: vals[5],
        l2_pf_req: vals[6],
        l2_pf_miss: vals[7],
        l3_load_miss: vals[8],
        llc_pf_to_mem: vals[9],
        stalls_l2_pending: vals[10],
        stall_cycles: vals[11],
        l1_pf_req: vals[12],
        mem_demand_bytes: vals[13],
        mem_prefetch_bytes: vals[14],
        mem_writeback_bytes: vals[15],
        pf_used: vals[16],
        pf_wasted: vals[17],
    })
}

/// Encodes a full [`MixResult`] cell payload.
pub fn encode_mix_result(r: &MixResult) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str(&format!("{{\"mechanism\":\"{}\"", escape(r.mechanism.label())));
    s.push_str(&format!(",\"mix_name\":\"{}\"", escape(&r.mix_name)));
    s.push_str(",\"benchmarks\":[");
    for (i, b) in r.benchmarks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\"", escape(b)));
    }
    s.push(']');
    s.push_str(&format!(",\"ipcs\":{}", f64_list(&r.ipcs)));
    s.push_str(",\"pmu\":[");
    for (i, p) in r.pmu.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (k, v) in pmu_to_list(p).iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&v.to_string());
        }
        s.push(']');
    }
    s.push(']');
    s.push_str(&format!(",\"mem_bytes\":{}", r.mem_bytes));
    s.push_str(&format!(",\"stalls_l2\":{}", r.stalls_l2));
    s.push_str(&format!(",\"overhead_ratio\":{}", num(r.overhead_ratio)));
    s.push_str(",\"epochs\":[");
    for (i, e) in r.epochs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // Reuse the journal rendering; the embedded "run" label is unused.
        s.push_str(&e.to_json_line(""));
    }
    s.push_str("]}");
    s
}

fn u64s(v: Option<&Json>, what: &str) -> Result<Vec<u64>, String> {
    v.and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_u64).collect::<Vec<u64>>())
        .ok_or_else(|| format!("missing array '{what}'"))
}

fn usizes(v: Option<&Json>, what: &str) -> Result<Vec<usize>, String> {
    Ok(u64s(v, what)?.into_iter().map(|x| x as usize).collect())
}

fn f64s(v: Option<&Json>, what: &str) -> Result<Vec<f64>, String> {
    v.and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_f64).collect())
        .ok_or_else(|| format!("missing array '{what}'"))
}

/// Interns a string against a closed vocabulary of `&'static str` the
/// telemetry structs use; unknown values (from a newer writer) leak once —
/// acceptable for a short-lived CLI reading its own small sidecars.
fn intern(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        // Mechanism labels.
        "Baseline",
        "PT",
        "Dunn",
        "Pref-CP",
        "Pref-CP2",
        "CMM-a",
        "CMM-b",
        "CMM-c",
        "PT-fine",
        "MBA",
        "CBP",
        "ML-Sel",
        "RL-CBP",
        // Degradation fallbacks.
        "no-op",
        "throttle-only",
        // Fault kinds.
        "msr_rejected",
        "clos_exhausted",
        "msr_error",
        "pmu_anomaly",
        "degraded",
        // Fault actions.
        "retry_ok",
        "gave_up",
        "reread",
        "zeroed_sample",
        "fallback_cmm_a",
        "fallback_dunn",
        "fallback_noop",
        "fallback_throttle",
        "kept_last_good",
        // Governor actions (journal /5).
        "rollback",
        "quarantine",
        "breaker_open",
        "breaker_close",
        // Governor register classes.
        "prefetch",
        "cat",
        "mba",
    ];
    KNOWN
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or_else(|| Box::leak(s.to_string().into_boxed_str()))
}

fn decode_fault(j: &Json) -> Result<FaultRecord, String> {
    Ok(FaultRecord {
        cycle: j.get("cycle").and_then(Json::as_u64).ok_or("fault missing 'cycle'")?,
        kind: intern(j.get("kind").and_then(Json::as_str).ok_or("fault missing 'kind'")?),
        core: j.get("core").and_then(Json::as_u64).map(|c| c as usize),
        msr: j.get("msr").and_then(Json::as_u64).map(|m| m as u32),
        action: intern(j.get("action").and_then(Json::as_str).ok_or("fault missing 'action'")?),
    })
}

fn decode_governor_event(j: &Json) -> Result<GovernorEvent, String> {
    Ok(GovernorEvent {
        cycle: j.get("cycle").and_then(Json::as_u64).ok_or("governor event missing 'cycle'")?,
        action: intern(
            j.get("action").and_then(Json::as_str).ok_or("governor event missing 'action'")?,
        ),
        core: j.get("core").and_then(Json::as_u64).map(|c| c as usize),
        class: j.get("class").and_then(Json::as_str).map(intern),
    })
}

fn decode_core_sample(j: &Json) -> Result<CoreSample, String> {
    let f = |k: &str| j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("core missing '{k}'"));
    Ok(CoreSample {
        ipc: f("ipc")?,
        metrics: cmm_core::frontend::Metrics {
            l2_llc_traffic: j
                .get("m1_l2_llc")
                .and_then(Json::as_u64)
                .ok_or("core missing 'm1_l2_llc'")?,
            l2_pf_miss_frac: f("m2_pf_frac")?,
            l2_ptr: f("m3_ptr")?,
            pga: f("m4_pga")?,
            l2_pmr: f("m5_pmr")?,
            l2_ppm: f("m6_ppm")?,
            llc_pt: f("m7_llc_pt")?,
        },
    })
}

/// Decodes one epoch record from its journal/checkpoint JSON rendering —
/// the exact inverse of [`EpochRecord::to_json_line`].
pub fn decode_epoch(j: &Json) -> Result<EpochRecord, String> {
    let cores = j
        .get("cores")
        .and_then(Json::as_array)
        .ok_or("epoch missing 'cores'")?
        .iter()
        .map(decode_core_sample)
        .collect::<Result<Vec<_>, _>>()?;
    let trials = j
        .get("trials")
        .and_then(Json::as_array)
        .ok_or("epoch missing 'trials'")?
        .iter()
        .map(|t| {
            Ok::<Trial, String>(Trial {
                msr_1a4: u64s(t.get("msr_1a4"), "trial msr_1a4")?,
                // The mba key joined in /4; absent on older journals.
                mba: match t.get("mba") {
                    Some(_) => u64s(t.get("mba"), "trial mba")?,
                    None => Vec::new(),
                },
                hm_ipc: t.get("hm_ipc").and_then(Json::as_f64).ok_or("trial missing 'hm_ipc'")?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let faults = j
        .get("faults")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(decode_fault)
        .collect::<Result<Vec<_>, _>>()?;
    // The governor key joined in /5 and is elided when no events fired.
    let governor = j
        .get("governor")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(decode_governor_event)
        .collect::<Result<Vec<_>, _>>()?;
    let applied = j.get("applied").ok_or("epoch missing 'applied'")?;
    let clos = usizes(applied.get("clos"), "applied clos")?;
    let way_mask = u64s(applied.get("way_mask"), "applied way_mask")?;
    let msr_1a4 = u64s(applied.get("msr_1a4"), "applied msr_1a4")?;
    // The mba key joined in /4 and is elided when every level is 0.
    let mba = match applied.get("mba") {
        Some(_) => u64s(applied.get("mba"), "applied mba")?,
        None => vec![0; clos.len()],
    };
    if clos.len() != way_mask.len() || clos.len() != msr_1a4.len() || clos.len() != mba.len() {
        return Err("applied arrays disagree on core count".into());
    }
    let applied = clos
        .into_iter()
        .zip(way_mask)
        .zip(msr_1a4)
        .zip(mba)
        .map(|(((clos, way_mask), msr_1a4), mba_level)| CoreControl {
            clos,
            way_mask,
            msr_1a4,
            mba_level,
        })
        .collect();
    Ok(EpochRecord {
        epoch: j.get("epoch").and_then(Json::as_u64).ok_or("epoch missing 'epoch'")?,
        cycle: j.get("cycle").and_then(Json::as_u64).ok_or("epoch missing 'cycle'")?,
        mechanism: intern(
            j.get("mechanism").and_then(Json::as_str).ok_or("epoch missing 'mechanism'")?,
        ),
        domain: j.get("domain").and_then(Json::as_u64).map(|d| d as usize),
        cores,
        agg: usizes(j.get("agg"), "agg")?,
        friendly: usizes(j.get("friendly"), "friendly")?,
        unfriendly: usizes(j.get("unfriendly"), "unfriendly")?,
        trials,
        winner: j.get("winner").and_then(Json::as_u64).map(|w| w as usize),
        exec_hm_ipc: j.get("exec_hm_ipc").and_then(Json::as_f64),
        exec_ipc_delta: j.get("exec_ipc_delta").and_then(Json::as_f64),
        faults,
        degraded: j.get("degraded").and_then(Json::as_str).map(intern),
        governor,
        // The features/action keys joined in /6 and are elided when a
        // mechanism records neither.
        features: match j.get("features") {
            Some(_) => f64s(j.get("features"), "features")?,
            None => Vec::new(),
        },
        action: j.get("action").and_then(Json::as_str).map(str::to_string),
        applied,
    })
}

/// Decodes a full [`MixResult`] cell payload.
pub fn decode_mix_result(j: &Json) -> Result<MixResult, String> {
    let label = j.get("mechanism").and_then(Json::as_str).ok_or("payload missing 'mechanism'")?;
    let mechanism =
        Mechanism::from_label(label).ok_or_else(|| format!("unknown mechanism '{label}'"))?;
    let pmu = j
        .get("pmu")
        .and_then(Json::as_array)
        .ok_or("payload missing 'pmu'")?
        .iter()
        .map(|p| pmu_from_list(&u64s(Some(p), "pmu counters")?))
        .collect::<Result<Vec<_>, _>>()?;
    let epochs = j
        .get("epochs")
        .and_then(Json::as_array)
        .ok_or("payload missing 'epochs'")?
        .iter()
        .map(decode_epoch)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MixResult {
        mechanism,
        mix_name: j
            .get("mix_name")
            .and_then(Json::as_str)
            .ok_or("payload missing 'mix_name'")?
            .to_string(),
        benchmarks: j
            .get("benchmarks")
            .and_then(Json::as_array)
            .ok_or("payload missing 'benchmarks'")?
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect(),
        ipcs: f64s(j.get("ipcs"), "ipcs")?,
        pmu,
        mem_bytes: j
            .get("mem_bytes")
            .and_then(Json::as_u64)
            .ok_or("payload missing 'mem_bytes'")?,
        stalls_l2: j
            .get("stalls_l2")
            .and_then(Json::as_u64)
            .ok_or("payload missing 'stalls_l2'")?,
        overhead_ratio: j
            .get("overhead_ratio")
            .and_then(Json::as_f64)
            .ok_or("payload missing 'overhead_ratio'")?,
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_core::frontend::Metrics;

    fn sample_epoch() -> EpochRecord {
        EpochRecord {
            epoch: 2,
            cycle: 200_000,
            mechanism: "CMM-a",
            domain: None,
            cores: vec![CoreSample {
                ipc: 1.2345678901234,
                metrics: Metrics {
                    l2_llc_traffic: 42,
                    l2_pf_miss_frac: 0.5,
                    l2_ptr: 0.0125,
                    pga: 2.25,
                    l2_pmr: 0.75,
                    l2_ppm: 3.5,
                    llc_pt: 1.125,
                },
            }],
            agg: vec![0, 3],
            friendly: vec![0],
            unfriendly: vec![3],
            trials: vec![
                Trial { msr_1a4: vec![0xF, 0x0], mba: vec![], hm_ipc: 1.5 },
                Trial { msr_1a4: vec![0xF, 0x0], mba: vec![0, 40], hm_ipc: 1.75 },
            ],
            winner: Some(0),
            exec_hm_ipc: Some(1.25),
            exec_ipc_delta: Some(-0.125),
            faults: vec![FaultRecord {
                cycle: 123,
                kind: "msr_rejected",
                core: Some(1),
                msr: Some(0x1A4),
                action: "retry_ok",
            }],
            degraded: Some("Dunn"),
            features: vec![],
            action: None,
            governor: vec![
                GovernorEvent { cycle: 200_000, action: "rollback", core: None, class: None },
                GovernorEvent {
                    cycle: 200_000,
                    action: "breaker_open",
                    core: None,
                    class: Some("cat"),
                },
                GovernorEvent { cycle: 200_000, action: "quarantine", core: Some(1), class: None },
            ],
            applied: vec![
                CoreControl { clos: 1, way_mask: 0b11, msr_1a4: 0xF, mba_level: 90 },
                CoreControl { clos: 0, way_mask: 0xFFFFF, msr_1a4: 0x0, mba_level: 0 },
            ],
        }
    }

    fn sample_result() -> MixResult {
        MixResult {
            mechanism: Mechanism::CmmA,
            mix_name: "PrefAgg-00".into(),
            benchmarks: vec!["lbm".into(), "mcf".into()],
            ipcs: vec![1.087227344, 0.4432191],
            pmu: vec![
                Pmu { cycles: 1000, instructions: 1087, ..Pmu::default() },
                Pmu { pf_wasted: 7, mem_writeback_bytes: 640, ..Pmu::default() },
            ],
            mem_bytes: 123_456,
            stalls_l2: 789,
            overhead_ratio: 0.000123456789,
            epochs: vec![sample_epoch()],
        }
    }

    #[test]
    fn mix_result_round_trips_losslessly() {
        let r = sample_result();
        let j = parse(&encode_mix_result(&r)).expect("valid payload JSON");
        let back = decode_mix_result(&j).expect("decodes");
        assert_eq!(back.mechanism, r.mechanism);
        assert_eq!(back.mix_name, r.mix_name);
        assert_eq!(back.benchmarks, r.benchmarks);
        assert_eq!(back.ipcs, r.ipcs, "ipcs must be bit-identical");
        assert_eq!(back.pmu, r.pmu);
        assert_eq!(back.mem_bytes, r.mem_bytes);
        assert_eq!(back.stalls_l2, r.stalls_l2);
        assert_eq!(back.overhead_ratio, r.overhead_ratio);
        // Epoch floats are journal-precision; the journal rendering — the
        // byte-identity surface — must match exactly.
        assert_eq!(back.epochs.len(), 1);
        assert_eq!(back.epochs[0].to_json_line("x"), {
            let j2 = parse(&encode_mix_result(&r)).unwrap();
            decode_mix_result(&j2).unwrap().epochs[0].to_json_line("x")
        });
        assert_eq!(back.epochs[0].faults, r.epochs[0].faults);
        assert_eq!(back.epochs[0].degraded, r.epochs[0].degraded);
        assert_eq!(back.epochs[0].applied, r.epochs[0].applied);
    }

    #[test]
    fn epoch_journal_rendering_is_stable_across_one_round_trip() {
        // decode(to_json_line) re-rendered must be byte-identical: the
        // journal is written from decoded epochs after a resume.
        let e = sample_epoch();
        let line = e.to_json_line("run");
        let decoded = decode_epoch(&parse(&line).unwrap()).unwrap();
        assert_eq!(decoded.to_json_line("run"), line);
    }

    #[test]
    fn epochs_without_mba_keys_decode_to_unthrottled_state() {
        // Pre-/4 journals have no mba keys anywhere; decoding must fill in
        // the power-on defaults (empty trial vec, level 0 per core).
        let mut e = sample_epoch();
        e.trials.truncate(1);
        for c in &mut e.applied {
            c.mba_level = 0;
        }
        let line = e.to_json_line("run");
        assert!(!line.contains("\"mba\""), "all-zero MBA state must elide the key");
        let decoded = decode_epoch(&parse(&line).unwrap()).unwrap();
        assert!(decoded.trials[0].mba.is_empty());
        assert!(decoded.applied.iter().all(|c| c.mba_level == 0));
        assert_eq!(decoded.to_json_line("run"), line);
    }

    #[test]
    fn alone_round_trips() {
        let j = parse(&encode_alone(1.234567890123456)).unwrap();
        assert_eq!(decode_alone(&j).unwrap(), 1.234567890123456);
    }

    #[test]
    fn checkpoint_open_record_reopen() {
        let dir = std::env::temp_dir().join("cmm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ck-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert!(info.fresh);
        assert_eq!(info.cached, 0);
        ck.record("alone: lbm", &encode_alone(1.5));
        ck.record("PrefAgg-00: CMM-a", &encode_mix_result(&sample_result()));
        drop(ck);

        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert!(!info.fresh);
        assert_eq!(info.cached, 2);
        assert_eq!(info.dropped, 0);
        let alone = ck.cached("alone: lbm").unwrap();
        assert_eq!(decode_alone(&alone).unwrap(), 1.5);
        let mix = ck.cached("PrefAgg-00: CMM-a").unwrap();
        assert_eq!(decode_mix_result(&mix).unwrap().ipcs, sample_result().ipcs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_salvaged_and_compacted() {
        let dir = std::env::temp_dir().join("cmm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        let (ck, _) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        ck.record("a", &encode_alone(1.0));
        ck.record("b", &encode_alone(2.0));
        drop(ck);
        // Tear the final record mid-line, as a crash mid-append would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();

        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert_eq!(info.dropped, 1);
        assert_eq!(info.cached, 1, "only the intact record survives");
        assert!(ck.cached("a").is_some());
        assert!(ck.cached("b").is_none());
        // The compacted file is clean again: append and re-open.
        ck.record("b", &encode_alone(2.0));
        drop(ck);
        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert_eq!((info.cached, info.dropped), (2, 0));
        assert!(ck.cached("b").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn governed_epochs_round_trip_and_ungoverned_lines_elide_the_key() {
        let e = sample_epoch();
        let line = e.to_json_line("run");
        assert!(line.contains("\"governor\":["), "{line}");
        let decoded = decode_epoch(&parse(&line).unwrap()).unwrap();
        assert_eq!(decoded.governor, e.governor);
        assert_eq!(decoded.to_json_line("run"), line);

        let mut quiet = sample_epoch();
        quiet.governor.clear();
        let line = quiet.to_json_line("run");
        assert!(!line.contains("\"governor\""), "event-free epochs must elide the key");
        assert!(decode_epoch(&parse(&line).unwrap()).unwrap().governor.is_empty());
    }

    #[test]
    fn learned_epochs_round_trip_and_quiet_lines_elide_the_keys() {
        // A /6 epoch carries the feature vector and the learned-action
        // label; both must survive the checkpoint round trip byte-for-byte.
        let mut e = sample_epoch();
        e.features = vec![1.25, 0.5, 0.0, 0.015625, 2.0, 0.875, 0.25, 0.03125];
        e.action = Some("pf=0xf,cat=cmm,mba=0,stretch=1".into());
        let line = e.to_json_line("run");
        assert!(line.contains("\"features\":[1.250000,"), "{line}");
        assert!(line.contains("\"action\":\"pf=0xf,cat=cmm,mba=0,stretch=1\""), "{line}");
        let decoded = decode_epoch(&parse(&line).unwrap()).unwrap();
        assert_eq!(decoded.action, e.action);
        assert_eq!(decoded.features, e.features);
        assert_eq!(decoded.to_json_line("run"), line);

        // Pre-/6 epochs have neither key; decoding fills the defaults.
        let quiet = sample_epoch();
        let line = quiet.to_json_line("run");
        assert!(!line.contains("\"features\""), "{line}");
        let decoded = decode_epoch(&parse(&line).unwrap()).unwrap();
        assert!(decoded.features.is_empty());
        assert_eq!(decoded.action, None);
        assert_eq!(decoded.to_json_line("run"), line);
    }

    #[test]
    fn failure_records_survive_resume_until_the_cell_completes() {
        let dir = std::env::temp_dir().join("cmm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("fail-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        let (ck, _) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        ck.record("ok-cell", &encode_alone(1.0));
        ck.record_failure("bad-cell", 3, "chaos: injected panic in 'bad-cell' (attempt 3)");
        drop(ck);

        // Resume: the unresolved failure is reported, the completed cell
        // is not.
        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert_eq!(info.cached, 1);
        let prior = ck.prior_failures();
        assert_eq!(prior.len(), 1);
        assert_eq!(prior[0].key, "bad-cell");
        assert_eq!(prior[0].attempts, 3);
        assert!(prior[0].panic_msg.contains("injected panic"), "{}", prior[0].panic_msg);
        // The cell completes this time: the failure is history.
        ck.record("bad-cell", &encode_alone(2.0));
        drop(ck);
        let (ck, info) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert_eq!(info.cached, 2);
        assert!(ck.prior_failures().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_or_target_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("cmm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("mismatch-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let (_, _) = Checkpoint::open(&path, "fig7", "fnv1a:abc").unwrap();
        assert!(Checkpoint::open(&path, "fig7", "fnv1a:OTHER").is_err());
        assert!(Checkpoint::open(&path, "fig9", "fnv1a:abc").is_err());
        std::fs::remove_file(&path).ok();
    }
}
