//! Fixed-width table printing for the `repro` binary.

use crate::figures::FigureSeries;

/// Renders a [`FigureSeries`] as an aligned text table, with the paper's
/// grey category-mean bars as a trailing block.
pub fn render(series: &FigureSeries) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {}\n", series.title));
    let name_w = series
        .rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(series.category_means.iter().map(|(n, _)| n.len()))
        .chain(std::iter::once("workload".len()))
        .max()
        .unwrap_or(10);
    let col_w = series.columns.iter().map(|c| c.len().max(8)).collect::<Vec<_>>();

    out.push_str(&format!("{:<name_w$}", "workload"));
    for (c, w) in series.columns.iter().zip(&col_w) {
        out.push_str(&format!("  {c:>w$}"));
    }
    out.push('\n');
    for (name, vals) in &series.rows {
        out.push_str(&format!("{name:<name_w$}"));
        for (v, w) in vals.iter().zip(&col_w) {
            out.push_str(&format!("  {v:>w$.3}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:-<1$}\n", "", name_w + col_w.iter().map(|w| w + 2).sum::<usize>()));
    for (name, vals) in &series.category_means {
        out.push_str(&format!("{name:<name_w$}"));
        for (v, w) in vals.iter().zip(&col_w) {
            out.push_str(&format!("  {v:>w$.3}"));
        }
        out.push_str("  (mean)\n");
    }
    out
}

/// Renders a plain header + rows table (for Table I / Figs. 1–3).
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("{h:<w$}  "));
    }
    out.push('\n');
    out.push_str(&format!("{:-<1$}\n", "", widths.iter().map(|w| w + 2).sum::<usize>()));
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("{cell:<w$}  "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureSeries;

    #[test]
    fn render_contains_rows_and_means() {
        let s = FigureSeries {
            title: "Test".into(),
            columns: vec!["PT".into()],
            rows: vec![("W-00".into(), vec![1.234])],
            category_means: vec![("Cat".into(), vec![1.111])],
        };
        let r = render(&s);
        assert!(r.contains("W-00"));
        assert!(r.contains("1.234"));
        assert!(r.contains("1.111"));
        assert!(r.contains("(mean)"));
    }

    #[test]
    fn table_aligns_headers() {
        let t = table("T", &["name", "x"], &[vec!["longname".into(), "1".into()]]);
        assert!(t.contains("longname"));
        assert!(t.contains("## T"));
    }
}
