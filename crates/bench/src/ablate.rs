//! Quality-side ablations of the design choices DESIGN.md calls out:
//!
//! * the paper's **1.5× partition-sizing rule** (Sec. III-B3);
//! * the **epoch : sampling-interval ratio** (Sec. IV-B reports 50:1 and
//!   claims robustness across 2 B/50 M and 1 B/40 M);
//! * the substrate's **QBS inclusion-victim mitigation** (what the
//!   evaluation would look like on a naive pure-LRU inclusive LLC).
//!
//! Each ablation runs one Pref Agg and one Pref Unfri mix under CMM-a and
//! reports HS normalized to that configuration's own baseline.

use cmm_core::experiment::{run_alone_ipcs, run_mix_pooled, ExperimentConfig, WarmupPool};
use cmm_core::policy::Mechanism;
use cmm_metrics::harmonic_speedup;
use cmm_workloads::{build_mixes, Category, Mix};

use crate::runner::parallel_map;

/// One ablation observation.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Parameter label, e.g. `"scale=1.5"`.
    pub setting: String,
    /// Workload name.
    pub mix: String,
    /// CMM-a HS normalized to the same-configuration baseline.
    pub norm_hs: f64,
    /// Controller decision telemetry of the CMM-a run (feeds the
    /// `--journal` run journal).
    pub epochs: Vec<cmm_core::telemetry::EpochRecord>,
}

fn eval_point(setting: &str, mix: &Mix, cfg: &ExperimentConfig) -> AblationPoint {
    // Baseline and CMM-a share one warm-up via the pool (the pool is local
    // to this point because every sweep point runs a different config).
    let pool = WarmupPool::new();
    let alone = run_alone_ipcs(mix, cfg);
    let base = run_mix_pooled(&pool, mix, Mechanism::Baseline, cfg);
    let cmm = run_mix_pooled(&pool, mix, Mechanism::CmmA, cfg);
    let norm_hs = harmonic_speedup(&alone, &cmm.ipcs) / harmonic_speedup(&alone, &base.ipcs);
    AblationPoint {
        setting: setting.to_string(),
        mix: mix.name.clone(),
        norm_hs,
        epochs: cmm.epochs,
    }
}

/// The default ablation workloads: one Pref Agg and one Pref Unfri mix.
/// `--trace-dir` runs substitute trace mixes via the `mixes` parameter of
/// the `ablate_*` functions instead.
pub fn default_mixes() -> Vec<Mix> {
    let mixes = build_mixes(42, 1);
    mixes
        .into_iter()
        .filter(|m| matches!(m.category, Category::PrefAgg | Category::PrefUnfri))
        .collect()
}

/// Runs the (setting × mix) grid across `jobs` threads; points come back
/// in grid order, so the table a caller prints is identical to a serial
/// sweep.
fn sweep(points: Vec<(String, ExperimentConfig, Mix)>, jobs: usize) -> Vec<AblationPoint> {
    parallel_map(&points, jobs, |_, (setting, cfg, mix)| eval_point(setting, mix, cfg))
}

/// Sweeps the partition-sizing factor around the paper's 1.5× over the
/// given workloads.
pub fn ablate_partition_scale(
    base_cfg: &ExperimentConfig,
    mixes: &[Mix],
    jobs: usize,
) -> Vec<AblationPoint> {
    let mut points = Vec::new();
    for &scale in &[1.0f64, 1.5, 2.0, 3.0] {
        let mut cfg = base_cfg.clone();
        cfg.ctrl.partition_scale = scale;
        for mix in mixes {
            points.push((format!("scale={scale}"), cfg.clone(), mix.clone()));
        }
    }
    sweep(points, jobs)
}

/// Sweeps the execution-epoch : sampling-interval ratio at a fixed
/// sampling-interval length.
pub fn ablate_epoch_ratio(
    base_cfg: &ExperimentConfig,
    mixes: &[Mix],
    jobs: usize,
) -> Vec<AblationPoint> {
    let mut points = Vec::new();
    for &ratio in &[10u64, 50, 125] {
        let mut cfg = base_cfg.clone();
        cfg.ctrl.execution_epoch = cfg.ctrl.sampling_interval * ratio;
        for mix in mixes {
            points.push((format!("ratio={ratio}:1"), cfg.clone(), mix.clone()));
        }
    }
    sweep(points, jobs)
}

/// Compares the evaluation with and without the LLC's QBS
/// inclusion-victim mitigation.
pub fn ablate_qbs(base_cfg: &ExperimentConfig, mixes: &[Mix], jobs: usize) -> Vec<AblationPoint> {
    let mut points = Vec::new();
    for &qbs in &[true, false] {
        let mut cfg = base_cfg.clone();
        cfg.sys.qbs = qbs;
        for mix in mixes {
            points.push((format!("qbs={qbs}"), cfg.clone(), mix.clone()));
        }
    }
    sweep(points, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_scale_sweep_produces_all_points() {
        let mut cfg = ExperimentConfig::quick();
        cfg.total_cycles = 600_000;
        let pts = ablate_partition_scale(&cfg, &default_mixes(), 1);
        assert_eq!(pts.len(), 4 * 2);
        assert!(pts.iter().all(|p| p.norm_hs > 0.5 && p.norm_hs < 2.0));
    }

    #[test]
    fn qbs_sweep_covers_both_settings() {
        let mut cfg = ExperimentConfig::quick();
        cfg.total_cycles = 600_000;
        let pts = ablate_qbs(&cfg, &default_mixes(), 1);
        assert!(pts.iter().any(|p| p.setting == "qbs=true"));
        assert!(pts.iter().any(|p| p.setting == "qbs=false"));
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let mut cfg = ExperimentConfig::quick();
        cfg.total_cycles = 600_000;
        let serial = ablate_qbs(&cfg, &default_mixes(), 1);
        let parallel = ablate_qbs(&cfg, &default_mixes(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.setting, p.setting);
            assert_eq!(s.mix, p.mix);
            assert_eq!(s.norm_hs.to_bits(), p.norm_hs.to_bits(), "{}: {}", s.setting, s.mix);
        }
    }
}
