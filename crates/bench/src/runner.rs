//! Ordered parallel execution of experiment work-lists.
//!
//! The evaluation matrix (mix × mechanism) is embarrassingly parallel:
//! every cell owns its `System`, so cells only share read-only inputs.
//! [`parallel_map`] fans a work-list across `jobs` scoped threads pulling
//! indices from a shared atomic counter, and returns results **in input
//! order**, so callers produce output bit-identical to a serial run no
//! matter how the cells were scheduled. With `jobs <= 1` the closure runs
//! inline on the caller's thread — the serial fallback, with no thread
//! overhead at all.
//!
//! [`Progress`] is the matching thread-safe `[repro]` logger: each cell
//! emits exactly one timestamped line (elapsed since start, plus the
//! cell's own wall-clock) built as a single `String` and written with one
//! locked stderr write, so concurrent cells can never interleave halves of
//! a line.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Degree of parallelism to use when the user does not pass `--jobs`:
/// every available host core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` with `jobs` worker threads, returning results in
/// input order. `f` receives `(index, &item)`.
///
/// Work is distributed dynamically (an atomic next-index counter), so a
/// slow cell does not stall the queue behind it. `jobs <= 1` — or a
/// single-item list — runs serially inline.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                slots.lock().expect("runner slots poisoned")[i] = Some(r);
            });
        }
    });
    let results = slots.into_inner().expect("runner slots poisoned");
    results.into_iter().map(|r| r.expect("every index was processed")).collect()
}

/// Thread-safe timestamped `[repro]` progress logger.
///
/// Cloneable by shared reference: cells call [`Progress::cell`] around
/// their work and one line per cell reaches stderr on completion, e.g.
///
/// ```text
/// [repro +12.4s] PrefAgg-00: CMM-a (3.21s)
/// ```
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    start: Instant,
}

impl Progress {
    /// A logger; when `enabled` is false every call is a no-op.
    pub fn new(enabled: bool) -> Self {
        Progress { enabled, start: Instant::now() }
    }

    /// Runs `work`, then logs `label` with the elapsed-since-start stamp
    /// and the cell's own wall-clock. Returns `work`'s result.
    pub fn cell<R>(&self, label: &str, work: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return work();
        }
        let t0 = Instant::now();
        let r = work();
        let line = format!(
            "[repro +{:.1}s] {} ({:.2}s)",
            self.start.elapsed().as_secs_f64(),
            label,
            t0.elapsed().as_secs_f64()
        );
        // One write per line: eprintln! takes the stderr lock once, so
        // parallel cells cannot interleave within a line.
        eprintln!("{line}");
        r
    }

    /// Logs a bare annotation line (no per-cell timing).
    pub fn note(&self, msg: &str) {
        if self.enabled {
            eprintln!("[repro +{:.1}s] {}", self.start.elapsed().as_secs_f64(), msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |i, &x| (i, x * x));
        let parallel = parallel_map(&items, 8, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
        assert_eq!(serial[17], (17, 17 * 17));
    }

    #[test]
    fn empty_and_single_items() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_exceeding_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn progress_disabled_is_silent_passthrough() {
        let p = Progress::new(false);
        assert_eq!(p.cell("x", || 41 + 1), 42);
        p.note("nothing");
    }

    #[test]
    fn work_observes_every_index_once() {
        let hits = Mutex::new(vec![0u32; 50]);
        let items: Vec<usize> = (0..50).collect();
        parallel_map(&items, 6, |i, _| {
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }
}
