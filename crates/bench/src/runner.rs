//! Ordered, panic-isolated parallel execution of experiment work-lists.
//!
//! The evaluation matrix (mix × mechanism) is embarrassingly parallel:
//! every cell owns its `System`, so cells only share read-only inputs.
//! [`run_cells`] fans a work-list across `jobs` scoped threads pulling
//! indices from a shared atomic counter and returns results **in input
//! order**, so callers produce output bit-identical to a serial run no
//! matter how the cells were scheduled. With `jobs <= 1` the closure runs
//! inline on the caller's thread — the serial fallback, with no thread
//! overhead at all.
//!
//! Every cell executes under `catch_unwind`: a panicking cell is retried
//! up to a bounded attempt budget and, if it keeps failing, becomes an
//! explicit [`CellOutcome::Failed`] with its panic payload captured —
//! sibling cells always run to completion and the caller decides how to
//! report the loss, instead of one bad cell aborting a multi-hour run.
//! [`run_cells`] additionally supports checkpoint splicing: cells whose
//! key is found in a resume sidecar are answered from cache without
//! running (or re-panicking) at all.
//!
//! Each attempt also runs under a **hang watchdog**: a monitor thread
//! raises a `[runner] watchdog:` alarm when a cell exceeds its deadline
//! ([`HANG_DEADLINE_MS`] under `--chaos-mode hang`, a generous stall
//! threshold otherwise), so a wedged cell is flagged instead of silently
//! stalling the whole run.
//!
//! [`Progress`] is the matching thread-safe `[repro]` logger: each cell
//! emits exactly one timestamped line (elapsed since start, plus the
//! cell's own wall-clock) built as a single `String` and written with one
//! locked stderr write, so concurrent cells can never interleave halves of
//! a line.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::chaos;

/// Default per-cell attempt budget: one run plus two retries.
pub const DEFAULT_ATTEMPTS: u32 = 3;

/// Watchdog deadline for a cell attempt under `--chaos-mode hang`: the
/// injected stall sleeps past this, so the watchdog observably fires in
/// the soak's hang leg before the stall converts into a retryable panic.
pub const HANG_DEADLINE_MS: u64 = 750;

/// Watchdog deadline outside hang-chaos runs: generous enough that no
/// legitimate cell trips it, so a warning really means a stuck cell.
const STALL_WARN_MS: u64 = 300_000;

/// Degree of parallelism to use when the user does not pass `--jobs`:
/// every available host core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A cell that exhausted its attempt budget.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Input-order index of the cell.
    pub index: usize,
    /// The cell's stable key (run label).
    pub key: String,
    /// Attempts consumed (== the budget).
    pub attempts: u32,
    /// Payload of the final panic, stringified.
    pub panic_msg: String,
}

/// Per-cell result of an isolated run.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// The cell completed (possibly after retries, possibly from cache).
    Ok(R),
    /// The cell panicked on every attempt.
    Failed(CellFailure),
}

/// Outcome of a [`run_cells`] sweep.
#[derive(Debug)]
pub struct CellRun<R> {
    /// One outcome per input item, in input order.
    pub outcomes: Vec<CellOutcome<R>>,
    /// Cells answered from the resume cache without running.
    pub resumed: usize,
}

impl<R> CellRun<R> {
    /// Splits into results (all cells ok) or the failure list.
    pub fn into_results(self) -> Result<Vec<R>, Vec<CellFailure>> {
        let mut results = Vec::with_capacity(self.outcomes.len());
        let mut failures = Vec::new();
        for o in self.outcomes {
            match o {
                CellOutcome::Ok(r) => results.push(r),
                CellOutcome::Failed(f) => failures.push(f),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(failures)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work` under `catch_unwind` with a watchdog thread alongside: if
/// the attempt is still running when `deadline_ms` elapses, the watchdog
/// raises one `[runner] watchdog:` alarm on stderr. Cancellation is
/// cooperative — the watchdog cannot preempt arbitrary Rust code, so the
/// alarm flags the hang and the chaos stall's own deadline panic (or the
/// operator) converts it into a failed attempt.
fn run_attempt_watched<R>(
    key: &str,
    attempt: u32,
    deadline_ms: u64,
    work: impl FnOnce() -> R,
) -> Result<R, Box<dyn std::any::Any + Send>> {
    let done = Mutex::new(false);
    let cv = Condvar::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut flag = done.lock().expect("watchdog flag poisoned");
            let mut alarmed = false;
            while !*flag {
                let (f, timeout) = cv
                    .wait_timeout(flag, Duration::from_millis(deadline_ms))
                    .expect("watchdog flag poisoned");
                flag = f;
                if timeout.timed_out() && !*flag && !alarmed {
                    alarmed = true;
                    eprintln!(
                        "[runner] watchdog: cell '{key}' still running after \
                         {deadline_ms} ms (attempt {attempt})"
                    );
                }
            }
        });
        let r = catch_unwind(AssertUnwindSafe(work));
        *done.lock().expect("watchdog flag poisoned") = true;
        cv.notify_all();
        r
    })
}

/// Runs one cell under the attempt budget, consulting the chaos schedule
/// inside the unwind scope so injected panics exercise the real path.
fn run_one<T, R>(
    index: usize,
    item: &T,
    key: &str,
    attempts: u32,
    f: &(impl Fn(usize, &T) -> R + Sync),
) -> CellOutcome<R> {
    let budget = attempts.max(1);
    let deadline_ms = if chaos::hang_mode() { HANG_DEADLINE_MS } else { STALL_WARN_MS };
    let mut last_msg = String::new();
    for attempt in 1..=budget {
        match run_attempt_watched(key, attempt, deadline_ms, || {
            chaos::maybe_panic(key, attempt);
            chaos::maybe_hang(key, attempt, HANG_DEADLINE_MS);
            f(index, item)
        }) {
            Ok(r) => return CellOutcome::Ok(r),
            Err(payload) => {
                last_msg = panic_message(payload);
                eprintln!(
                    "[runner] cell '{key}' panicked (attempt {attempt}/{budget}): {last_msg}"
                );
            }
        }
    }
    CellOutcome::Failed(CellFailure {
        index,
        key: key.to_string(),
        attempts: budget,
        panic_msg: last_msg,
    })
}

/// Maps `f` over `items` with `jobs` worker threads, panic-isolated and
/// resume-aware, returning per-cell outcomes in input order.
///
/// * `key` names each cell stably (the journal run label); keys drive
///   checkpoint lookups and the seeded chaos schedule, so they must be
///   independent of scheduling.
/// * `cached` answers a cell from the resume sidecar; a `Some` result is
///   spliced in without running `f` (counted in [`CellRun::resumed`]).
/// * `record` persists a freshly computed result (checkpoint append); it
///   runs before the cell counts as complete, so a kill directly after it
///   resumes without losing the cell.
///
/// Work is distributed dynamically (an atomic next-index counter), so a
/// slow cell does not stall the queue behind it. `jobs <= 1` — or a
/// single-item list — runs serially inline.
pub fn run_cells<T, R>(
    items: &[T],
    jobs: usize,
    attempts: u32,
    key: impl Fn(usize, &T) -> String + Sync,
    cached: impl Fn(&str) -> Option<R> + Sync,
    record: impl Fn(&str, &R) + Sync,
    f: impl Fn(usize, &T) -> R + Sync,
) -> CellRun<R>
where
    T: Sync,
    R: Send,
{
    let resumed = AtomicUsize::new(0);
    let cell = |i: usize| -> CellOutcome<R> {
        let k = key(i, &items[i]);
        if let Some(r) = cached(&k) {
            resumed.fetch_add(1, Ordering::Relaxed);
            return CellOutcome::Ok(r);
        }
        let outcome = run_one(i, &items[i], &k, attempts, &f);
        if let CellOutcome::Ok(r) = &outcome {
            record(&k, r);
            chaos::on_cell_complete();
        }
        outcome
    };

    if jobs <= 1 || items.len() <= 1 {
        let outcomes = (0..items.len()).map(cell).collect();
        return CellRun { outcomes, resumed: resumed.into_inner() };
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellOutcome<R>>>> =
        Mutex::new((0..items.len()).map(|_| None).collect());
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = cell(i);
                slots.lock().expect("runner slots poisoned")[i] = Some(outcome);
            });
        }
    });
    let outcomes = slots
        .into_inner()
        .expect("runner slots poisoned")
        .into_iter()
        .map(|o| o.expect("every index was processed"))
        .collect();
    CellRun { outcomes, resumed: resumed.into_inner() }
}

/// Panic-isolated map without checkpointing: every cell runs (or fails)
/// under the attempt budget, keyed `cell-<index>`.
pub fn try_parallel_map<T, R, F>(
    items: &[T],
    jobs: usize,
    attempts: u32,
    f: F,
) -> Vec<CellOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_cells(items, jobs, attempts, |i, _| format!("cell-{i}"), |_| None, |_, _| (), f).outcomes
}

/// Maps `f` over `items` with `jobs` worker threads, returning results in
/// input order. `f` receives `(index, &item)`.
///
/// Cells are panic-isolated: a panicking cell no longer aborts its
/// siblings mid-flight — every cell runs to completion and the collected
/// failures surface as one panic afterwards. Callers that want to survive
/// failures use [`run_cells`] and handle [`CellOutcome::Failed`] instead.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut results = Vec::with_capacity(items.len());
    let mut failed = Vec::new();
    for o in try_parallel_map(items, jobs, 1, f) {
        match o {
            CellOutcome::Ok(r) => results.push(r),
            CellOutcome::Failed(fail) => {
                failed.push(format!("#{}: {}", fail.index, fail.panic_msg))
            }
        }
    }
    assert!(failed.is_empty(), "{} cell(s) panicked: {}", failed.len(), failed.join("; "));
    results
}

/// Thread-safe timestamped `[repro]` progress logger.
///
/// Cloneable by shared reference: cells call [`Progress::cell`] around
/// their work and one line per cell reaches stderr on completion, e.g.
///
/// ```text
/// [repro +12.4s] PrefAgg-00: CMM-a (3.21s)
/// ```
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    start: Instant,
}

impl Progress {
    /// A logger; when `enabled` is false every call is a no-op.
    pub fn new(enabled: bool) -> Self {
        Progress { enabled, start: Instant::now() }
    }

    /// Runs `work`, then logs `label` with the elapsed-since-start stamp
    /// and the cell's own wall-clock. Returns `work`'s result.
    pub fn cell<R>(&self, label: &str, work: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return work();
        }
        let t0 = Instant::now();
        let r = work();
        let line = format!(
            "[repro +{:.1}s] {} ({:.2}s)",
            self.start.elapsed().as_secs_f64(),
            label,
            t0.elapsed().as_secs_f64()
        );
        // One write per line: eprintln! takes the stderr lock once, so
        // parallel cells cannot interleave within a line.
        eprintln!("{line}");
        r
    }

    /// Logs a bare annotation line (no per-cell timing).
    pub fn note(&self, msg: &str) {
        if self.enabled {
            eprintln!("[repro +{:.1}s] {}", self.start.elapsed().as_secs_f64(), msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |i, &x| (i, x * x));
        let parallel = parallel_map(&items, 8, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
        assert_eq!(serial[17], (17, 17 * 17));
    }

    #[test]
    fn empty_and_single_items() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_exceeding_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn progress_disabled_is_silent_passthrough() {
        let p = Progress::new(false);
        assert_eq!(p.cell("x", || 41 + 1), 42);
        p.note("nothing");
    }

    #[test]
    fn work_observes_every_index_once() {
        let hits = Mutex::new(vec![0u32; 50]);
        let items: Vec<usize> = (0..50).collect();
        parallel_map(&items, 6, |i, _| {
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn panicking_cell_never_aborts_siblings() {
        let items: Vec<u32> = (0..20).collect();
        let outcomes = try_parallel_map(&items, 4, 2, |_, &x| {
            assert!(x != 7, "cell 7 exploded");
            x * 2
        });
        let (mut ok, mut failed) = (0, 0);
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                CellOutcome::Ok(v) => {
                    ok += 1;
                    assert_eq!(*v, items[i] * 2);
                }
                CellOutcome::Failed(f) => {
                    failed += 1;
                    assert_eq!(f.index, 7);
                    assert_eq!(f.attempts, 2);
                    assert!(f.panic_msg.contains("cell 7 exploded"), "{}", f.panic_msg);
                }
            }
        }
        assert_eq!((ok, failed), (19, 1));
    }

    #[test]
    fn transient_panic_heals_within_the_attempt_budget() {
        let tries = Mutex::new(vec![0u32; 8]);
        let items: Vec<usize> = (0..8).collect();
        let run = run_cells(
            &items,
            3,
            3,
            |i, _| format!("k{i}"),
            |_| None,
            |_, _| (),
            |i, _| {
                let mut t = tries.lock().unwrap();
                t[i] += 1;
                let attempt = t[i];
                drop(t);
                assert!(i != 5 || attempt >= 3, "transient failure in cell 5");
                i * 10
            },
        );
        let results = run.into_results().expect("budget heals transient panics");
        assert_eq!(results[5], 50);
        assert_eq!(tries.into_inner().unwrap()[5], 3);
    }

    #[test]
    fn retry_budget_exhaustion_reports_the_failure() {
        let run = run_cells(
            &[1u32],
            1,
            4,
            |_, _| "doomed".to_string(),
            |_| None,
            |_, _| (),
            |_, _| -> u32 { panic!("always fails") },
        );
        let failures = run.into_results().unwrap_err();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attempts, 4);
        assert_eq!(failures[0].key, "doomed");
        assert!(failures[0].panic_msg.contains("always fails"));
    }

    #[test]
    fn cached_cells_are_spliced_without_running() {
        let ran = Mutex::new(Vec::new());
        let recorded = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..6).collect();
        let run = run_cells(
            &items,
            2,
            1,
            |i, _| format!("k{i}"),
            |k| if k == "k2" || k == "k4" { Some(999usize) } else { None },
            |k, r: &usize| recorded.lock().unwrap().push((k.to_string(), *r)),
            |i, _| {
                ran.lock().unwrap().push(i);
                i
            },
        );
        assert_eq!(run.resumed, 2);
        let results = run.into_results().unwrap();
        assert_eq!(results, vec![0, 1, 999, 3, 999, 5]);
        let mut ran = ran.into_inner().unwrap();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 3, 5], "cached cells must not run");
        let mut rec = recorded.into_inner().unwrap();
        rec.sort();
        // Only freshly computed cells are re-recorded.
        assert_eq!(
            rec.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["k0", "k1", "k3", "k5"]
        );
    }

    #[test]
    fn watchdog_alarm_does_not_kill_a_slow_cell() {
        // The watchdog is warn-only: a cell that outlives the deadline
        // still completes and returns its result.
        let r = run_attempt_watched("slow", 1, 20, || {
            std::thread::sleep(Duration::from_millis(80));
            7u32
        });
        assert_eq!(r.unwrap(), 7);
    }

    #[test]
    fn watchdog_propagates_attempt_panics() {
        let r = run_attempt_watched("bad", 1, 1_000, || -> u32 { panic!("inner failure") });
        assert!(panic_message(r.unwrap_err()).contains("inner failure"));
    }

    #[test]
    #[should_panic(expected = "cell(s) panicked")]
    fn parallel_map_still_fails_loudly_after_isolation() {
        parallel_map(&[1u32, 2, 3], 2, |_, &x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
