//! `repro learn` — learned-controller training and evaluation.
//!
//! Two halves, mirroring the `cmm-learn` crate's two backends:
//!
//! * **Training** ([`train_model`]): builds the `ML-Sel` phase
//!   classifier's corpus from run-alone phases of the roster — each
//!   workload runs solo with every candidate MSR 0x1A4 image and the
//!   image with the best IPC labels the phase's feature vector (measured
//!   prefetch-on, exactly what the controller's detection interval sees
//!   at inference time). Training is batch gradient descent from zero
//!   weights: byte-reproducible, so the committed
//!   `benchmarks/fixtures/mlsel.model` can be regenerated bit-for-bit by
//!   `repro learn train`.
//! * **Evaluation** ([`evaluate_resumable`]): every standard mix under
//!   {Baseline, CMM-a, CBP, ML-Sel, RL-CBP}, journaled under
//!   `cmm-journal/6` with per-epoch feature vectors and action labels.
//!   The gate ([`passes`]): ML-Sel keeps at least
//!   [`MLSEL_FLOOR_RATIO`]× CMM-a's harmonic-mean IPC on *every* mix,
//!   and RL-CBP's tail (converged) execution epochs reach CMM-a's on
//!   every mix — an online learner that fails to rediscover the
//!   incumbent policy is a regression, not an experiment.
//!
//! Everything is seeded and deterministic: cells are byte-identical
//! across `--jobs` and `--resume` splices (the checkpoint payloads reuse
//! the lossless [`crate::checkpoint`] MixResult codec).

use crate::checkpoint::{self, Checkpoint};
use crate::runner::{run_cells, CellFailure, Progress};
use cmm_core::experiment::{run_mix, run_mix_learned, ExperimentConfig, MixResult};
use cmm_core::learned::{self, Learner, RlPolicy};
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::EpochRecord;
use cmm_learn::features::N_FEATURES;
use cmm_learn::model::Model;
use cmm_sim::msr;
use cmm_sim::System;
use cmm_workloads::{build_mixes, spec, Slot};

/// The evaluation's mechanism roster: the uncontrolled baseline, the
/// paper's best coordinated mechanism, the three-resource search, and the
/// two learned controllers under test.
pub const MECHS: [Mechanism; 5] =
    [Mechanism::Baseline, Mechanism::CmmA, Mechanism::Cbp, Mechanism::MlSel, Mechanism::RlCbp];

/// ML-Sel must keep at least this fraction of CMM-a's hm_ipc on every mix.
pub const MLSEL_FLOOR_RATIO: f64 = 0.95;

/// Minimum per-core classifier confidence before ML-Sel trusts a
/// prediction (3 classes ⇒ an uninformative posterior is ~0.33; below
/// this the epoch degrades to the CMM-a search).
pub const CONFIDENCE_FLOOR: f64 = 0.45;

/// RL-CBP's initial exploration probability for the evaluation (decays
/// multiplicatively per selection inside the bandit).
pub const RL_EPSILON: f64 = 0.1;

/// Phases sampled per roster workload when building the training corpus.
pub const TRAIN_WINDOWS: usize = 2;

/// Gradient-descent schedule for [`train_model`] (full-batch steps,
/// learning rate, L2 decay) — fixed so the fixture is reproducible.
const TRAIN_ITERS: usize = 400;
const TRAIN_LR: f64 = 0.5;
const TRAIN_DECAY: f64 = 1e-4;

/// One fitted classifier plus its training-set report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The fitted `cmm-model/1` classifier.
    pub model: Model,
    /// Training samples (one per roster workload × window).
    pub samples: usize,
    /// Training-set accuracy of the fitted model.
    pub accuracy: f64,
    /// Per-sample rows: workload/window, IPC under each image, the label.
    pub rows: Vec<Vec<String>>,
}

/// Builds the training corpus and fits the phase classifier. Fully
/// deterministic: run-alone machines use the same instantiation constants
/// as [`cmm_core::experiment::run_alone_ipc`], and gradient descent has
/// no random state.
pub fn train_model(quick: bool) -> TrainReport {
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    let mut samples: Vec<([f64; N_FEATURES], usize)> = Vec::new();
    let mut rows = Vec::new();
    for b in spec::roster() {
        let mut sys_cfg = cfg.sys.clone();
        sys_cfg.set_num_cores(1);
        let w = Slot::Bench(b).instantiate(sys_cfg.llc.size_bytes, 1 << 36, 7);
        let mut sys = System::new(sys_cfg, vec![w]);
        sys.run(cfg.warmup_cycles.max(1));
        for window in 0..TRAIN_WINDOWS {
            // The feature vector comes from the prefetch-on segment —
            // the controller's own detection interval also runs with
            // every prefetcher enabled, so train and inference see the
            // same distribution.
            let mut feats = [0.0; N_FEATURES];
            let mut ipcs = [0.0; learned::PF_CHOICES.len()];
            for (k, &image) in learned::PF_CHOICES.iter().enumerate() {
                sys.write_msr(0, msr::MSR_MISC_FEATURE_CONTROL, image)
                    .expect("run-alone machine accepts 0x1A4 writes");
                let before = sys.pmu(0);
                sys.run(cfg.alone_cycles);
                let delta = sys.pmu(0) - before;
                if k == 0 {
                    feats = learned::core_features(&delta);
                }
                ipcs[k] = delta.ipc();
            }
            sys.write_msr(0, msr::MSR_MISC_FEATURE_CONTROL, 0x0)
                .expect("run-alone machine accepts 0x1A4 writes");
            let best = ipcs
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(k, _)| k)
                .unwrap_or(0);
            rows.push(vec![
                format!("{}/w{window}", b.name),
                format!("{:.3}", ipcs[0]),
                format!("{:.3}", ipcs[1]),
                format!("{:.3}", ipcs[2]),
                format!("{:#x}", learned::PF_CHOICES[best]),
            ]);
            samples.push((feats, best));
        }
    }
    let model =
        Model::train(&samples, learned::PF_CHOICES.to_vec(), TRAIN_ITERS, TRAIN_LR, TRAIN_DECAY);
    let accuracy = model.accuracy(&samples);
    TrainReport { model, samples: samples.len(), accuracy, rows }
}

/// Column headers for the [`TrainReport::rows`] table.
pub const TRAIN_HEADERS: [&str; 5] = ["phase", "ipc@0x0", "ipc@0x3", "ipc@0xf", "label"];

/// The evaluation's cell label — also its journal run label and
/// checkpoint key.
pub fn cell_label(mix: &str, mechanism: Mechanism) -> String {
    format!("{mix}: {}", mechanism.label())
}

/// Runs the (mix × mechanism) evaluation grid panic-isolated and
/// (optionally) checkpointed. `seed` builds the standard mixes and seeds
/// the RL policy's entropy stream; the grid order (per mix, [`MECHS`]
/// order) is independent of `jobs`.
pub fn evaluate_resumable(
    quick: bool,
    seed: u64,
    jobs: usize,
    attempts: u32,
    log: &Progress,
    ckpt: Option<&Checkpoint>,
    model: &Model,
) -> Result<Vec<MixResult>, Vec<CellFailure>> {
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };
    evaluate_with(&cfg, seed, jobs, attempts, log, ckpt, model)
}

/// [`evaluate_resumable`] with an explicit [`ExperimentConfig`] — the
/// determinism tests use deliberately tiny windows.
pub fn evaluate_with(
    cfg: &ExperimentConfig,
    seed: u64,
    jobs: usize,
    attempts: u32,
    log: &Progress,
    ckpt: Option<&Checkpoint>,
    model: &Model,
) -> Result<Vec<MixResult>, Vec<CellFailure>> {
    let mixes = build_mixes(seed, 1);
    let items: Vec<(cmm_workloads::Mix, Mechanism)> =
        mixes.iter().flat_map(|m| MECHS.iter().map(move |&mech| (m.clone(), mech))).collect();
    let run = run_cells(
        &items,
        jobs,
        attempts,
        |_, (mix, mech)| cell_label(&mix.name, *mech),
        |k| {
            let payload = ckpt?.cached(k)?;
            match checkpoint::decode_mix_result(&payload) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!(
                        "[repro] checkpoint entry '{k}' is undecodable ({e}); re-running cell"
                    );
                    None
                }
            }
        },
        |k, r: &MixResult| {
            if let Some(ck) = ckpt {
                ck.record(k, &checkpoint::encode_mix_result(r));
            }
        },
        |_, (mix, mech)| {
            log.cell(&cell_label(&mix.name, *mech), || match mech {
                Mechanism::MlSel => run_mix_learned(
                    mix,
                    *mech,
                    cfg,
                    Some(Learner::Ml { model: model.clone(), floor: CONFIDENCE_FLOOR }),
                ),
                Mechanism::RlCbp => run_mix_learned(
                    mix,
                    *mech,
                    cfg,
                    Some(Learner::Rl(RlPolicy::new(seed, RL_EPSILON))),
                ),
                _ => run_mix(mix, *mech, cfg),
            })
        },
    );
    if run.resumed > 0 {
        log.note(&format!("resume: spliced {} cached cell(s) from the checkpoint", run.resumed));
    }
    run.into_results()
}

/// Decision churn of one run: epochs whose applied machine state
/// (CLOS/mask/0x1A4/MBA images) differs from the previous epoch's — the
/// same definition `repro journal-summary` reports.
pub fn churn(epochs: &[EpochRecord]) -> u64 {
    epochs
        .windows(2)
        .filter(|w| {
            let sig = |e: &EpochRecord| {
                e.applied
                    .iter()
                    .map(|c| (c.clos, c.way_mask, c.msr_1a4, c.mba_level))
                    .collect::<Vec<_>>()
            };
            sig(&w[0]) != sig(&w[1])
        })
        .count() as u64
}

/// Mean `exec_hm_ipc` over the run's last (up to) three reporting epochs
/// — the converged tail an online learner is judged by. `None` before
/// any execution epoch completes.
pub fn tail_hm(epochs: &[EpochRecord]) -> Option<f64> {
    let vals: Vec<f64> = epochs.iter().filter_map(|e| e.exec_hm_ipc).collect();
    if vals.is_empty() {
        return None;
    }
    let tail = &vals[vals.len().saturating_sub(3)..];
    Some(tail.iter().sum::<f64>() / tail.len() as f64)
}

/// The cell for (mix, mechanism), if present.
fn find<'a>(cells: &'a [MixResult], mix: &str, mech: Mechanism) -> Option<&'a MixResult> {
    cells.iter().find(|r| r.mix_name == mix && r.mechanism == mech)
}

/// The distinct mix names in first-appearance (grid) order.
pub fn mix_names(cells: &[MixResult]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in cells {
        if !names.contains(&r.mix_name) {
            names.push(r.mix_name.clone());
        }
    }
    names
}

/// Table rows: one per (mix, mechanism) — hm_ipc, ratio to the mix's
/// CMM-a, Jain fairness over baseline-normalized per-core IPCs, decision
/// churn, and degraded-epoch count.
pub fn rows(cells: &[MixResult]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for mix in mix_names(cells) {
        let cmm = find(cells, &mix, Mechanism::CmmA).map(|r| cmm_metrics::hm_ipc(&r.ipcs));
        let base = find(cells, &mix, Mechanism::Baseline).map(|r| r.ipcs.clone());
        for mech in MECHS {
            let Some(r) = find(cells, &mix, mech) else { continue };
            let hm = cmm_metrics::hm_ipc(&r.ipcs);
            let vs_cmm = match cmm {
                Some(c) if c > 0.0 => format!("{:.3}", hm / c),
                _ => "-".into(),
            };
            let fairness = match &base {
                Some(b) => format!(
                    "{:.3}",
                    cmm_metrics::jain_index(&cmm_metrics::normalized_ipcs(&r.ipcs, b))
                ),
                None => "-".into(),
            };
            out.push(vec![
                mix.clone(),
                mech.label().to_string(),
                format!("{hm:.3}"),
                vs_cmm,
                fairness,
                churn(&r.epochs).to_string(),
                r.epochs.iter().filter(|e| e.degraded.is_some()).count().to_string(),
            ]);
        }
    }
    out
}

/// Column headers for the [`rows`] table.
pub const EVAL_HEADERS: [&str; 7] =
    ["mix", "mechanism", "hm_ipc", "vs CMM-a", "fairness", "churn", "degraded"];

/// Journal-diff rows comparing ML-Sel's decisions to CMM-a's: per mix,
/// how many epochs applied the same prefetch image CMM-a's search chose,
/// and how many of ML-Sel's epochs were zero-trial classifier decisions
/// versus fallback searches.
pub fn agreement_rows(cells: &[MixResult]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for mix in mix_names(cells) {
        let (Some(ml), Some(cmm)) =
            (find(cells, &mix, Mechanism::MlSel), find(cells, &mix, Mechanism::CmmA))
        else {
            continue;
        };
        let n = ml.epochs.len().min(cmm.epochs.len());
        let agree = (0..n)
            .filter(|&i| {
                let img = |e: &EpochRecord| e.applied.iter().map(|c| c.msr_1a4).collect::<Vec<_>>();
                img(&ml.epochs[i]) == img(&cmm.epochs[i])
            })
            .count();
        let zero_trial = ml.epochs.iter().filter(|e| e.trials.is_empty()).count();
        out.push(vec![
            mix.clone(),
            format!("{agree}/{n}"),
            format!("{zero_trial}/{}", ml.epochs.len()),
            format!("{}/{}", ml.epochs.len() - zero_trial, ml.epochs.len()),
        ]);
    }
    out
}

/// Column headers for the [`agreement_rows`] table.
pub const AGREEMENT_HEADERS: [&str; 4] =
    ["mix", "pf-image agreement", "zero-trial epochs", "fallback epochs"];

/// One mix's gate verdict.
#[derive(Debug, Clone)]
pub struct MixVerdict {
    /// The mix judged.
    pub mix: String,
    /// `hm_ipc(ML-Sel) / hm_ipc(CMM-a)` — must reach
    /// [`MLSEL_FLOOR_RATIO`].
    pub mlsel_ratio: f64,
    /// `tail_hm(RL-CBP) / tail_hm(CMM-a)` — must reach 1.0 (the online
    /// learner converged to at least the incumbent policy), with the
    /// whole-run `hm_ipc` ratio accepted as an alternative witness.
    pub rl_tail_ratio: f64,
    /// Whole-run `hm_ipc(RL-CBP) / hm_ipc(CMM-a)`.
    pub rl_run_ratio: f64,
}

impl MixVerdict {
    /// Whether both learned controllers clear the mix's gate.
    pub fn ok(&self) -> bool {
        self.mlsel_ratio >= MLSEL_FLOOR_RATIO
            && (self.rl_tail_ratio >= 1.0 || self.rl_run_ratio >= 1.0)
    }
}

/// Per-mix gate verdicts, in grid order.
pub fn verdicts(cells: &[MixResult]) -> Vec<MixVerdict> {
    mix_names(cells)
        .into_iter()
        .filter_map(|mix| {
            let cmm = find(cells, &mix, Mechanism::CmmA)?;
            let ml = find(cells, &mix, Mechanism::MlSel)?;
            let rl = find(cells, &mix, Mechanism::RlCbp)?;
            let cmm_hm = cmm_metrics::hm_ipc(&cmm.ipcs);
            let ratio = |v: f64| if cmm_hm > 0.0 { v / cmm_hm } else { 0.0 };
            let tail_ratio = match (tail_hm(&rl.epochs), tail_hm(&cmm.epochs)) {
                (Some(r), Some(c)) if c > 0.0 => r / c,
                _ => 0.0,
            };
            Some(MixVerdict {
                mix,
                mlsel_ratio: ratio(cmm_metrics::hm_ipc(&ml.ipcs)),
                rl_tail_ratio: tail_ratio,
                rl_run_ratio: ratio(cmm_metrics::hm_ipc(&rl.ipcs)),
            })
        })
        .collect()
}

/// The evaluation gate: every mix's verdict holds (and the grid was not
/// empty).
pub fn passes(cells: &[MixResult]) -> bool {
    let v = verdicts(cells);
    !v.is_empty() && v.iter().all(MixVerdict::ok)
}

/// Journal cells in the harness's canonical grid order.
pub fn journal_cells(cells: Vec<MixResult>) -> Vec<(String, Vec<EpochRecord>)> {
    cells.into_iter().map(|r| (cell_label(&r.mix_name, r.mechanism), r.epochs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.total_cycles = 500_000;
        cfg.warmup_cycles = 200_000;
        cfg.alone_cycles = 100_000;
        cfg
    }

    fn tiny_train() -> Model {
        // A tiny hand-rolled corpus keeps the unit tests off the full
        // roster sweep: streaming phases (high pf accuracy) keep
        // prefetchers, thrashing phases (wasted prefetch) drop them.
        let mut on = [0.0; N_FEATURES];
        on[0] = 1.5;
        on[5] = 0.9;
        let mut off = [0.0; N_FEATURES];
        off[0] = 0.4;
        off[5] = 0.1;
        Model::train(&[(on, 0), (off, 2)], learned::PF_CHOICES.to_vec(), 200, 0.5, 0.0)
    }

    #[test]
    fn training_is_deterministic_and_fits_its_corpus() {
        let a = tiny_train();
        let b = tiny_train();
        assert_eq!(a.to_text(), b.to_text(), "training must be reproducible");
        assert_eq!(a.labels, learned::PF_CHOICES.to_vec());
        let mut on = [0.0; N_FEATURES];
        on[0] = 1.5;
        on[5] = 0.9;
        assert_eq!(a.predict(&on).class, 0);
    }

    #[test]
    fn evaluation_grid_is_byte_identical_across_job_counts() {
        let model = tiny_train();
        let log = Progress::new(false);
        let cfg = tiny_cfg();
        let serial = evaluate_with(&cfg, 42, 1, 1, &log, None, &model).expect("serial grid");
        let parallel = evaluate_with(&cfg, 42, 4, 1, &log, None, &model).expect("parallel grid");
        assert_eq!(serial.len(), 4 * MECHS.len(), "4 standard mixes × mechanisms");
        let render = |cells: &[MixResult]| {
            journal_cells(cells.to_vec())
                .iter()
                .flat_map(|(run, epochs)| {
                    epochs.iter().map(move |e| e.to_json_line(run)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&serial), render(&parallel), "learn grid differs across --jobs");
    }

    #[test]
    fn zero_exploration_rl_is_deterministic_and_no_worse_than_baseline() {
        let cfg = tiny_cfg();
        for mix in build_mixes(42, 1) {
            let base = run_mix(&mix, Mechanism::Baseline, &cfg);
            let cmm = run_mix(&mix, Mechanism::CmmA, &cfg);
            let rl = |seed: u64| {
                run_mix_learned(
                    &mix,
                    Mechanism::RlCbp,
                    &cfg,
                    Some(Learner::Rl(RlPolicy::new(seed, 0.0))),
                )
            };
            let a = rl(1);
            let b = rl(999);
            let lines = |r: &MixResult| {
                r.epochs.iter().map(|e| e.to_json_line(&mix.name)).collect::<Vec<_>>()
            };
            // Epsilon 0 draws no entropy: the seed must not matter.
            assert_eq!(lines(&a), lines(&b), "{}: epsilon=0 run depends on its seed", mix.name);
            assert_eq!(a.ipcs, b.ipcs);
            // The greedy policy is the CMM prior: it must track the real
            // CMM-a run at the same (transient-dominated) window size,
            // and never collapse below the uncontrolled machine — the
            // full-size `repro learn` gate pins RL-CBP >= baseline on
            // every mix where the partition's transient has amortized.
            let rl_hm = cmm_metrics::hm_ipc(&a.ipcs);
            let (base_hm, cmm_hm) =
                (cmm_metrics::hm_ipc(&base.ipcs), cmm_metrics::hm_ipc(&cmm.ipcs));
            assert!(
                rl_hm >= cmm_hm * 0.995,
                "{}: epsilon=0 RL-CBP hm_ipc {rl_hm} lost to its own CMM-a prior {cmm_hm}",
                mix.name
            );
            assert!(
                rl_hm >= base_hm * 0.95,
                "{}: epsilon=0 RL-CBP hm_ipc {rl_hm} collapsed below baseline {base_hm}",
                mix.name
            );
        }
    }

    #[test]
    fn resumed_evaluation_splices_identical_cells() {
        let model = tiny_train();
        let log = Progress::new(false);
        let cfg = tiny_cfg();
        let dir = std::env::temp_dir().join("cmm_learn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("learn-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        let (ck, _) = Checkpoint::open(&path, "learn", "fnv1a:test").unwrap();
        let fresh = evaluate_with(&cfg, 42, 2, 1, &log, Some(&ck), &model).expect("fresh grid");
        drop(ck);
        let (ck, info) = Checkpoint::open(&path, "learn", "fnv1a:test").unwrap();
        assert_eq!(info.cached, fresh.len(), "every cell checkpointed");
        let resumed = evaluate_with(&cfg, 42, 2, 1, &log, Some(&ck), &model).expect("resumed");
        let render = |cells: &[MixResult]| {
            journal_cells(cells.to_vec())
                .iter()
                .flat_map(|(run, epochs)| {
                    epochs.iter().map(move |e| e.to_json_line(run)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&fresh), render(&resumed), "resume must splice byte-identical cells");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn churn_counts_applied_state_changes() {
        use cmm_sim::system::CoreControl;
        let mut a = EpochRecord {
            epoch: 1,
            cycle: 0,
            mechanism: "RL-CBP",
            domain: None,
            cores: vec![],
            agg: vec![],
            friendly: vec![],
            unfriendly: vec![],
            trials: vec![],
            winner: None,
            exec_hm_ipc: None,
            exec_ipc_delta: None,
            faults: vec![],
            degraded: None,
            features: vec![],
            action: None,
            governor: vec![],
            applied: vec![CoreControl { clos: 0, way_mask: 0xF, msr_1a4: 0, mba_level: 0 }],
        };
        let b = a.clone();
        let mut c = a.clone();
        c.applied[0].msr_1a4 = 0xF;
        assert_eq!(churn(&[a.clone(), b.clone()]), 0, "identical state: no churn");
        assert_eq!(churn(&[a.clone(), c.clone(), b.clone()]), 2);
        a.exec_hm_ipc = Some(1.0);
        assert_eq!(churn(&[a]), 0, "a single epoch cannot churn");
    }

    #[test]
    fn tail_hm_averages_the_final_reporting_epochs() {
        let mk = |hm: Option<f64>| {
            let mut e = EpochRecord {
                epoch: 1,
                cycle: 0,
                mechanism: "CMM-a",
                domain: None,
                cores: vec![],
                agg: vec![],
                friendly: vec![],
                unfriendly: vec![],
                trials: vec![],
                winner: None,
                exec_hm_ipc: None,
                exec_ipc_delta: None,
                faults: vec![],
                degraded: None,
                features: vec![],
                action: None,
                governor: vec![],
                applied: vec![],
            };
            e.exec_hm_ipc = hm;
            e
        };
        assert_eq!(tail_hm(&[mk(None)]), None);
        let epochs: Vec<EpochRecord> =
            [None, Some(0.1), Some(1.0), Some(2.0), Some(3.0)].map(mk).into_iter().collect();
        assert_eq!(tail_hm(&epochs), Some(2.0), "mean of the last three values");
    }

    #[test]
    fn gate_judges_mlsel_floor_and_rl_convergence() {
        let ok = MixVerdict {
            mix: "m".into(),
            mlsel_ratio: 0.97,
            rl_tail_ratio: 1.01,
            rl_run_ratio: 0.9,
        };
        assert!(ok.ok());
        let rl_late_bloomer = MixVerdict { rl_tail_ratio: 0.8, rl_run_ratio: 1.0, ..ok.clone() };
        assert!(rl_late_bloomer.ok(), "whole-run parity is an accepted witness");
        let ml_bad = MixVerdict { mlsel_ratio: 0.90, ..ok.clone() };
        assert!(!ml_bad.ok());
        let rl_bad = MixVerdict { rl_tail_ratio: 0.9, rl_run_ratio: 0.95, ..ok };
        assert!(!rl_bad.ok());
        assert!(!passes(&[]), "an empty grid must not pass");
    }
}
