//! Minimal JSON reader for the harness's own artifacts.
//!
//! The build environment has no serde, and the harness needs to read back
//! the two documents it writes itself — `BENCH_sim.json` (perf log, for
//! `repro bench-compare`) and the `cmm-journal/2` JSONL journal (for
//! `repro journal-summary` and `journal-diff`). This is a small
//! recursive-descent parser for
//! exactly that: full JSON value grammar, no streaming, numbers as `f64`,
//! object keys kept in document order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`; the harness's integers fit exactly).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by the harness's
                        // own writers; map lone surrogates to U+FFFD.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe: take the full
                // sequence from the source slice).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn handles_escapes_and_whitespace() {
        let doc = parse(" { \"k\\\"ey\" : \"a\\nb\" } ").unwrap();
        assert_eq!(doc.get("k\"ey").unwrap().as_str(), Some("a\nb"));
        let u = parse(r#""A""#).unwrap();
        assert_eq!(u.as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn integers_round_trip_via_as_u64() {
        let doc = parse(r#"{"cells": 70000000}"#).unwrap();
        assert_eq!(doc.get("cells").unwrap().as_u64(), Some(70_000_000));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
