//! Single-benchmark characterisation: Figs. 1–3, Table I and Fig. 5.
//!
//! Each benchmark runs alone on a one-core machine with the full cache
//! hierarchy (the paper's characterisation methodology), once with all
//! prefetchers on and once with them off, plus a CAT way sweep for Fig. 3.

use cmm_core::driver::Driver;
use cmm_core::frontend::{self, Metrics};
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_core::telemetry::EpochRecord;
use cmm_sim::config::SystemConfig;
use cmm_sim::msr::contiguous_mask;
use cmm_sim::workload::Workload;
use cmm_sim::System;
use cmm_workloads::spec::Benchmark;

/// How long to warm and measure each characterisation run.
#[derive(Debug, Clone, Copy)]
pub struct CharacterizeConfig {
    /// Cycles before measurement starts.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        // The LLC-sensitive chases need ~4M cycles to populate a
        // multi-megabyte working set at chase speed; measuring earlier
        // reports the compulsory-miss phase instead of steady state.
        CharacterizeConfig { warmup: 4_000_000, measure: 1_000_000 }
    }
}

impl CharacterizeConfig {
    /// Fast settings for tests: long enough that the steady-state class of
    /// every roster benchmark is already the measured one.
    pub fn quick() -> Self {
        CharacterizeConfig { warmup: 2_000_000, measure: 500_000 }
    }
}

/// One run-alone measurement.
#[derive(Debug, Clone, Copy)]
pub struct AloneRun {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Demand bytes/cycle from memory.
    pub demand_bpc: f64,
    /// Prefetch bytes/cycle from memory.
    pub prefetch_bpc: f64,
    /// Writeback bytes/cycle.
    pub writeback_bpc: f64,
    /// Table I metrics over the measured window.
    pub metrics: Metrics,
}

impl AloneRun {
    /// Total memory bandwidth in bytes/cycle.
    pub fn total_bpc(&self) -> f64 {
        self.demand_bpc + self.prefetch_bpc + self.writeback_bpc
    }
}

fn one_core_system(bench: &Benchmark, sys_cfg: &SystemConfig, seed: u64) -> System {
    let mut cfg = sys_cfg.clone();
    cfg.set_num_cores(1);
    let w = bench.instantiate(cfg.llc.size_bytes, 1 << 36, seed);
    System::new(cfg, vec![Box::new(w) as Box<dyn Workload + Send>])
}

/// Runs `bench` alone with the given prefetcher state (and optional CAT
/// way restriction) and measures it.
pub fn run_alone(
    bench: &Benchmark,
    sys_cfg: &SystemConfig,
    cfg: &CharacterizeConfig,
    prefetch_on: bool,
    ways: Option<u32>,
) -> AloneRun {
    run_alone_keep(bench, sys_cfg, cfg, prefetch_on, ways).0
}

/// [`run_alone`], also returning the still-warm machine so callers can
/// keep measuring it (e.g. [`profile_alone`]'s journal epoch).
pub fn run_alone_keep(
    bench: &Benchmark,
    sys_cfg: &SystemConfig,
    cfg: &CharacterizeConfig,
    prefetch_on: bool,
    ways: Option<u32>,
) -> (AloneRun, System) {
    let mut sys = one_core_system(bench, sys_cfg, 7);
    sys.set_prefetching(0, prefetch_on);
    if let Some(w) = ways {
        sys.set_clos_mask(1, contiguous_mask(0, w)).expect("way mask");
        sys.assign_clos(0, 1).expect("clos");
    }
    sys.run(cfg.warmup);
    let before_pmu = sys.pmu(0);
    let before_tr = sys.traffic(0);
    sys.run(cfg.measure);
    let d = sys.pmu(0) - before_pmu;
    let tr = sys.traffic(0);
    let cycles = d.cycles.max(1) as f64;
    let run = AloneRun {
        ipc: d.ipc(),
        demand_bpc: (tr.demand_bytes - before_tr.demand_bytes) as f64 / cycles,
        prefetch_bpc: (tr.prefetch_bytes - before_tr.prefetch_bytes) as f64 / cycles,
        writeback_bpc: (tr.writeback_bytes - before_tr.writeback_bytes) as f64 / cycles,
        metrics: frontend::metrics(&d),
    };
    (run, sys)
}

/// Measures `bench` like [`run_alone`] (prefetchers on, no way cap), then
/// runs one real PT profiling epoch on the still-warm machine so the
/// measurement also yields journal telemetry (detected `Agg` set, trialed
/// configurations with `hm_ipc`, applied winner). The measured numbers are
/// identical to [`run_alone`]'s — the controller only touches the machine
/// after the measurement window closes.
pub fn profile_alone(
    bench: &Benchmark,
    sys_cfg: &SystemConfig,
    cfg: &CharacterizeConfig,
    ctrl: &ControllerConfig,
) -> (AloneRun, Vec<EpochRecord>) {
    let (run, sys) = run_alone_keep(bench, sys_cfg, cfg, true, None);
    let mut driver = Driver::new(sys, Mechanism::Pt, ctrl.clone());
    driver.epoch();
    (run, driver.take_records())
}

/// Fig. 1 / Fig. 2 row: bandwidth and IPC with and without prefetching.
#[derive(Debug, Clone)]
pub struct PrefetchImpact {
    /// Benchmark name.
    pub name: &'static str,
    /// SPEC program this generator mimics.
    pub spec_alias: &'static str,
    /// Measurement with prefetchers off.
    pub off: AloneRun,
    /// Measurement with prefetchers on.
    pub on: AloneRun,
}

impl PrefetchImpact {
    /// Fractional bandwidth increase from prefetching (Fig. 1's stacked
    /// top bar relative to the demand-only bottom bar).
    pub fn bw_increase(&self) -> f64 {
        if self.off.total_bpc() <= 0.0 {
            0.0
        } else {
            self.on.total_bpc() / self.off.total_bpc() - 1.0
        }
    }

    /// IPC speedup from prefetching (Fig. 2).
    pub fn ipc_speedup(&self) -> f64 {
        if self.off.ipc <= 0.0 {
            0.0
        } else {
            self.on.ipc / self.off.ipc - 1.0
        }
    }
}

/// Measures one benchmark for Figs. 1–2.
pub fn prefetch_impact(
    bench: &Benchmark,
    sys_cfg: &SystemConfig,
    cfg: &CharacterizeConfig,
) -> PrefetchImpact {
    PrefetchImpact {
        name: bench.name,
        spec_alias: bench.spec_alias,
        off: run_alone(bench, sys_cfg, cfg, false, None),
        on: run_alone(bench, sys_cfg, cfg, true, None),
    }
}

/// Fig. 3 row: IPC at each way count (prefetchers on), 1..=llc_ways.
///
/// The per-way runs are independent simulations, so they fan out across
/// `jobs` threads; results come back in way order, making the sweep
/// bit-identical for every job count.
pub fn way_sweep(
    bench: &Benchmark,
    sys_cfg: &SystemConfig,
    cfg: &CharacterizeConfig,
    jobs: usize,
) -> Vec<f64> {
    let ways: Vec<u32> = (1..=sys_cfg.llc.ways).collect();
    crate::runner::parallel_map(&ways, jobs, |_, &w| {
        run_alone(bench, sys_cfg, cfg, true, Some(w)).ipc
    })
}

/// The smallest way count reaching `frac` of the peak IPC in a sweep
/// (Fig. 3's classification input; paper: 8 ways at 80 % ⇒ LLC sensitive).
pub fn ways_needed(sweep: &[f64], frac: f64) -> u32 {
    let peak = sweep.iter().cloned().fold(0.0f64, f64::max);
    for (i, &ipc) in sweep.iter().enumerate() {
        if ipc >= frac * peak {
            return i as u32 + 1;
        }
    }
    sweep.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_workloads::spec;

    fn cfgs() -> (SystemConfig, CharacterizeConfig) {
        (SystemConfig::scaled(1), CharacterizeConfig::quick())
    }

    #[test]
    fn stream_is_aggressive_and_friendly_by_measurement() {
        let (sys, cfg) = cfgs();
        let imp = prefetch_impact(spec::by_name("bwaves3d").unwrap(), &sys, &cfg);
        assert!(imp.ipc_speedup() > 0.3, "speedup {:.2}", imp.ipc_speedup());
        assert!(imp.bw_increase() > 0.5, "bw increase {:.2}", imp.bw_increase());
        assert!(imp.off.demand_bpc > 0.5, "demand intensive: {:.2}", imp.off.demand_bpc);
    }

    #[test]
    fn rand_access_prefetching_is_harmful() {
        let (sys, cfg) = cfgs();
        let imp = prefetch_impact(spec::by_name("rand_access").unwrap(), &sys, &cfg);
        assert!(imp.ipc_speedup() < 0.05, "useless prefetching: {:.2}", imp.ipc_speedup());
        assert!(imp.bw_increase() > 0.5, "but aggressive: {:.2}", imp.bw_increase());
    }

    #[test]
    fn compute_benchmark_barely_touches_memory() {
        let (sys, cfg) = cfgs();
        let imp = prefetch_impact(spec::by_name("povray_rt").unwrap(), &sys, &cfg);
        assert!(imp.on.total_bpc() < 0.1, "bw {:.3}", imp.on.total_bpc());
    }

    #[test]
    fn ways_needed_finds_threshold() {
        assert_eq!(ways_needed(&[0.1, 0.5, 0.79, 0.9, 1.0], 0.8), 4);
        assert_eq!(ways_needed(&[1.0, 1.0, 1.0], 0.8), 1);
    }

    #[test]
    fn way_sweep_is_identical_across_job_counts() {
        let sys = SystemConfig::scaled(1);
        // Short windows: we compare the sweep against itself, not against
        // a steady-state classification.
        let cfg = CharacterizeConfig { warmup: 150_000, measure: 80_000 };
        let b = spec::by_name("astar_path").unwrap();
        let serial = way_sweep(b, &sys, &cfg, 1);
        let parallel = way_sweep(b, &sys, &cfg, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn llc_sensitive_benchmark_needs_many_ways() {
        let (sys, cfg) = cfgs();
        // A coarse sweep (4 points) to keep the test fast.
        let b = spec::by_name("mcf_refine").unwrap();
        let few = run_alone(b, &sys, &cfg, true, Some(2)).ipc;
        let many = run_alone(b, &sys, &cfg, true, Some(20)).ipc;
        assert!(many > few * 1.3, "way sensitivity: 2w={few:.3} 20w={many:.3}");
    }

    #[test]
    fn stream_indifferent_to_ways() {
        let (sys, cfg) = cfgs();
        let b = spec::by_name("bwaves3d").unwrap();
        let few = run_alone(b, &sys, &cfg, true, Some(2)).ipc;
        let many = run_alone(b, &sys, &cfg, true, Some(20)).ipc;
        assert!(many < few * 1.15, "streams need ≤2 ways: 2w={few:.3} 20w={many:.3}");
    }
}
