//! `repro soak` — the kill-and-resume chaos gate.
//!
//! Proves the fault-tolerance claims end-to-end by re-invoking the `repro`
//! binary itself against a small evaluation target under injected chaos
//! (see [`crate::chaos`]) and gating on **byte identity** of the converged
//! artifacts:
//!
//! 1. **Clean run** — the reference stdout + journal.
//! 2. **Transient chaos** — seeded panics that fail each selected cell's
//!    first attempt. The run must succeed in one invocation (the retry
//!    budget heals every injected panic) and match the reference bytes.
//! 3. **Persistent chaos** — the selected cells fail every attempt. The
//!    run must *fail* (exit 1) with a per-cell failure report while the
//!    sibling cells complete and reach the checkpoint.
//! 4. **Resume after failure** — re-running with `--resume` over the
//!    partial checkpoint (chaos disarmed) must converge to the reference
//!    bytes.
//! 5. **Kill + resume** — a run that hard-exits after N checkpointed
//!    cells (emulating `kill -9`), then a resume, must also converge.
//! 6. **Hang chaos** — selected cells wedge on their first attempt: the
//!    runner's watchdog flags the stall, the chaos layer kills the
//!    attempt on the watchdog's behalf, and the retry heals it with
//!    identical bytes; a `kill -9` mid-hang-run followed by a resume
//!    must converge too.
//!
//! Stdout and the journal are the identity surface; stderr (progress,
//! retry noise) and the wall-clock fields of `BENCH_sim.json` are
//! intentionally excluded. The work dir is kept on failure for forensics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Chaos schedule used by the soak: seed/rate chosen so that at least one
/// cell of the `fig7 --quick --mixes 1` target is selected (asserted by a
/// unit test below, so a hash change cannot silently neuter the gate).
pub const SOAK_CHAOS_SEED: u64 = 5;
/// See [`SOAK_CHAOS_SEED`].
pub const SOAK_CHAOS_RATE: f64 = 0.35;

struct Step {
    name: &'static str,
    args: Vec<String>,
}

fn run_step(exe: &Path, step: &Step) -> Result<Output, String> {
    let out = Command::new(exe)
        .args(&step.args)
        .output()
        .map_err(|e| format!("soak: spawning '{}' failed: {e}", step.name))?;
    Ok(out)
}

fn expect_code(step: &str, out: &Output, want: i32) -> Result<(), String> {
    let got = out.status.code();
    if got == Some(want) {
        return Ok(());
    }
    Err(format!(
        "soak: step '{step}' exited with {:?}, expected {want}; stderr tail:\n{}",
        got,
        tail(&String::from_utf8_lossy(&out.stderr), 15)
    ))
}

fn tail(text: &str, n: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("soak: read {}: {e}", path.display()))
}

fn expect_identical(what: &str, reference: &str, candidate: &str) -> Result<(), String> {
    if reference == candidate {
        return Ok(());
    }
    let diverge = reference
        .lines()
        .zip(candidate.lines())
        .position(|(a, b)| a != b)
        .map(|i| format!("first divergent line: {}", i + 1))
        .unwrap_or_else(|| {
            format!(
                "line counts differ: {} vs {}",
                reference.lines().count(),
                candidate.lines().count()
            )
        });
    Err(format!("soak: {what} is NOT byte-identical to the clean run ({diverge})"))
}

/// Runs the full soak sequence; returns the process exit code (0 = every
/// gate held, 1 = a gate failed). `jobs` is forwarded to every child run.
pub fn run(jobs: usize) -> i32 {
    match run_inner(jobs) {
        Ok(dir) => {
            let _ = std::fs::remove_dir_all(&dir);
            println!("soak: PASS — transient chaos healed, persistent chaos isolated,");
            println!("soak: hangs watchdogged + retried, kill-and-resume converged;");
            println!("soak: stdout and journal byte-identical.");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn run_inner(jobs: usize) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("soak: current_exe: {e}"))?;
    let dir = std::env::temp_dir().join(format!("cmm_soak_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("soak: mkdir {}: {e}", dir.display()))?;
    eprintln!("soak: work dir {} (kept on failure)", dir.display());

    let base = |journal: &str, bench: &str| -> Vec<String> {
        [
            "fig7",
            "--quick",
            "--mixes",
            "1",
            "--jobs",
            &jobs.to_string(),
            "--journal",
            &dir.join(journal).display().to_string(),
            "--bench-json",
            &dir.join(bench).display().to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };
    let chaos = |mode: &str| -> Vec<String> {
        [
            "--chaos-seed",
            &SOAK_CHAOS_SEED.to_string(),
            "--chaos-rate",
            &SOAK_CHAOS_RATE.to_string(),
            "--chaos-mode",
            mode,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };
    let resume = |name: &str| -> Vec<String> {
        vec!["--resume".to_string(), dir.join(name).display().to_string()]
    };

    // 1. Clean reference run.
    eprintln!("soak: [1/6] clean reference run");
    let clean = Step { name: "clean", args: base("clean.jsonl", "clean.json") };
    let out = run_step(&exe, &clean)?;
    expect_code("clean", &out, 0)?;
    let ref_stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let ref_journal = read(&dir.join("clean.jsonl"))?;

    // 2. Transient chaos: every injected panic must heal within the retry
    //    budget, in one invocation, with identical output.
    eprintln!("soak: [2/6] transient chaos (panics heal via retry)");
    let mut args = base("transient.jsonl", "transient.json");
    args.extend(chaos("transient"));
    let out = run_step(&exe, &Step { name: "transient", args })?;
    expect_code("transient", &out, 0)?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !stderr.contains("chaos: injected panic") {
        return Err(format!(
            "soak: transient run injected no panics — chaos schedule selected zero cells \
             (seed {SOAK_CHAOS_SEED}, rate {SOAK_CHAOS_RATE}); the gate proved nothing"
        ));
    }
    expect_identical("transient-chaos stdout", &ref_stdout, &String::from_utf8_lossy(&out.stdout))?;
    expect_identical(
        "transient-chaos journal",
        &ref_journal,
        &read(&dir.join("transient.jsonl"))?,
    )?;

    // 3. Persistent chaos: selected cells exhaust the budget; the run must
    //    fail loudly while sibling cells complete into the checkpoint.
    eprintln!("soak: [3/6] persistent chaos (failure report, siblings survive)");
    let mut args = base("persist.jsonl", "persist.json");
    args.extend(chaos("persistent"));
    args.extend(resume("persist.ckpt"));
    let out = run_step(&exe, &Step { name: "persistent", args })?;
    expect_code("persistent", &out, 1)?;
    let ckpt = read(&dir.join("persist.ckpt"))?;
    if !ckpt.contains("\"kind\":\"cell\"") {
        return Err("soak: persistent-chaos checkpoint recorded no completed cells — \
                    a failing cell took its siblings down with it"
            .to_string());
    }

    // 4. Resume over the partial checkpoint with chaos disarmed.
    eprintln!("soak: [4/6] resume after failure");
    let mut args = base("persist.jsonl", "persist.json");
    args.extend(resume("persist.ckpt"));
    let out = run_step(&exe, &Step { name: "resume-after-failure", args })?;
    expect_code("resume-after-failure", &out, 0)?;
    expect_identical("resumed stdout", &ref_stdout, &String::from_utf8_lossy(&out.stdout))?;
    expect_identical("resumed journal", &ref_journal, &read(&dir.join("persist.jsonl"))?)?;

    // 5. Hard kill after 2 checkpointed cells, then resume.
    eprintln!("soak: [5/6] kill -9 after 2 cells, then resume");
    let mut args = base("kill.jsonl", "kill.json");
    args.extend(resume("kill.ckpt"));
    args.extend(["--chaos-kill".to_string(), "2".to_string()]);
    let out = run_step(&exe, &Step { name: "kill", args })?;
    expect_code("kill", &out, crate::chaos::KILL_EXIT_CODE)?;
    let mut args = base("kill.jsonl", "kill.json");
    args.extend(resume("kill.ckpt"));
    let out = run_step(&exe, &Step { name: "resume-after-kill", args })?;
    expect_code("resume-after-kill", &out, 0)?;
    expect_identical("post-kill stdout", &ref_stdout, &String::from_utf8_lossy(&out.stdout))?;
    expect_identical("post-kill journal", &ref_journal, &read(&dir.join("kill.jsonl"))?)?;

    // 6. Injected hangs: the selected cells wedge on attempt 1, the
    //    watchdog flags them, the chaos layer kills the wedged attempt on
    //    the watchdog's behalf, and the retry heals the cell — then a
    //    hard kill mid-hang-run plus a resume must still converge.
    eprintln!("soak: [6/6] hang chaos (watchdog kill + retry), then kill -9 + resume");
    let mut args = base("hang.jsonl", "hang.json");
    args.extend(chaos("hang"));
    let out = run_step(&exe, &Step { name: "hang", args })?;
    expect_code("hang", &out, 0)?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !stderr.contains("[chaos] injected hang") {
        return Err(format!(
            "soak: hang run injected no hangs — chaos schedule selected zero cells \
             (seed {SOAK_CHAOS_SEED}, rate {SOAK_CHAOS_RATE}); the gate proved nothing"
        ));
    }
    if !stderr.contains("watchdog: cell") {
        return Err("soak: hang run never tripped the runner's watchdog — the injected hang \
                    outlived no deadline"
            .to_string());
    }
    expect_identical("hang-chaos stdout", &ref_stdout, &String::from_utf8_lossy(&out.stdout))?;
    expect_identical("hang-chaos journal", &ref_journal, &read(&dir.join("hang.jsonl"))?)?;
    let mut args = base("hang_kill.jsonl", "hang_kill.json");
    args.extend(chaos("hang"));
    args.extend(resume("hang_kill.ckpt"));
    args.extend(["--chaos-kill".to_string(), "2".to_string()]);
    let out = run_step(&exe, &Step { name: "hang-kill", args })?;
    expect_code("hang-kill", &out, crate::chaos::KILL_EXIT_CODE)?;
    let mut args = base("hang_kill.jsonl", "hang_kill.json");
    args.extend(resume("hang_kill.ckpt"));
    let out = run_step(&exe, &Step { name: "resume-after-hang-kill", args })?;
    expect_code("resume-after-hang-kill", &out, 0)?;
    expect_identical("post-hang-kill stdout", &ref_stdout, &String::from_utf8_lossy(&out.stdout))?;
    expect_identical("post-hang-kill journal", &ref_journal, &read(&dir.join("hang_kill.jsonl"))?)?;

    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_returns_last_lines() {
        assert_eq!(tail("a\nb\nc\nd", 2), "c\nd");
        assert_eq!(tail("a", 5), "a");
    }

    #[test]
    fn identical_passes_divergent_fails() {
        assert!(expect_identical("x", "a\nb", "a\nb").is_ok());
        let err = expect_identical("x", "a\nb", "a\nc").unwrap_err();
        assert!(err.contains("line: 2"), "{err}");
        assert!(expect_identical("x", "a\nb", "a\nb\nc").is_err());
    }
}
